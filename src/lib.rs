//! Umbrella crate for the reproduction of *"Design and Analysis of the
//! Network Software Stack of an Asynchronous Many-task System — The LCI
//! parcelport of HPX"* (SC-W 2023).
//!
//! Re-exports every workspace crate so examples and integration tests can
//! use one dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use amt;
pub use lci;
pub use mpisim;
pub use netsim;
pub use octotiger_mini;
pub use parcelport;
pub use simcore;
pub use telemetry;
