//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the subset it uses: the [`proptest!`] macro (both
//! the `arg in strategy` and `arg: Type` parameter forms),
//! [`prop_assert!`] / [`prop_assert_eq!`], [`any`], [`Strategy`] with
//! `prop_map`, and [`collection::vec`].
//!
//! Differences from upstream, deliberate for an offline, deterministic
//! test suite:
//!
//! * a fixed number of cases ([`NUM_CASES`]) per property, generated
//!   from a seed derived from the test's name — runs are bit-identical
//!   across invocations and machines;
//! * no shrinking: a failing case panics with the assertion message
//!   (the deterministic seed makes the failure reproducible as-is);
//! * `prop_assert*` panics instead of returning `Err`, which is
//!   equivalent at test granularity.

use std::ops::Range;

/// Cases generated per property.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    //! The deterministic case generator.

    /// SplitMix64-based generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { x: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                ((self.next_u64() as u128 * bound as u128) >> 64) as u64
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let n = rng.below(65) as usize;
        (0..n).map(|_| T::arbitrary(rng)).collect()
    }
}

macro_rules! tuple_arbitrary {
    ($(($($n:ident),+);)*) => {$(
        impl<$($n: Arbitrary),+> Arbitrary for ($($n,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($n::arbitrary(rng),)+)
            }
        }
    )*};
}
tuple_arbitrary! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Per-block configuration (case count).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: NUM_CASES }
    }
}

/// Define property tests. Supports both parameter forms used upstream —
/// `fn prop(x in strategy)` and `fn prop(x: Type)` (which uses
/// [`any::<Type>()`]) — plus an optional leading
/// `#![proptest_config(...)]` inner attribute.
#[macro_export]
macro_rules! proptest {
    () => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::ProptestConfig::from($cfg).cases;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::ProptestConfig::from($cfg).cases;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cases {
                let _ = __case;
                $(let $arg: $ty = $crate::Arbitrary::arbitrary(&mut __rng);)+
            $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn typed_form_generates(v: Vec<u8>, flag: bool) {
            let _ = flag;
            prop_assert!(v.len() <= 64);
        }

        #[test]
        fn map_and_vec_compose(
            items in collection::vec((any::<bool>(), 0u64..5).prop_map(|(b, n)| if b { n } else { 0 }), 1..10),
        ) {
            prop_assert!(!items.is_empty());
            prop_assert!(items.iter().all(|&n| n < 5));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
