//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the subset of the `bytes` API it actually uses:
//!
//! * [`Bytes`] — an immutable, cheaply cloneable view into shared byte
//!   storage. Clones bump a reference count; `slice` produces a
//!   zero-copy sub-view. Pointer identity is preserved across clones,
//!   which the zero-copy serialization tests rely on.
//! * [`BytesMut`] — a growable buffer that freezes into [`Bytes`].
//! * [`BufMut`] — the little-endian append trait used by the codec.
//!
//! Semantics match the real crate for this subset; only specialized
//! memory-management tricks (inline representation, `split_off`
//! bookkeeping) are omitted.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared storage behind a [`Bytes`] handle.
#[derive(Clone)]
enum Repr {
    /// Borrowed from a `'static` slice — no refcount needed.
    Static(&'static [u8]),
    /// Reference-counted heap storage.
    Shared(Arc<Vec<u8>>),
}

/// An immutable, reference-counted view into contiguous byte storage.
///
/// `clone()` is a refcount bump; the underlying bytes are never copied.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    #[inline]
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]), off: 0, len: 0 }
    }

    /// A view over a `'static` slice (no allocation, no refcount).
    #[inline]
    pub const fn from_static(b: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(b), off: 0, len: b.len() }
    }

    /// Copy `data` into fresh shared storage.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of this buffer (refcount bump, no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of range");
        Bytes { repr: self.repr.clone(), off: self.off + start, len: end - start }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        let base: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        };
        &base[self.off..self.off + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len > 32 {
            write!(f, "..{} bytes", self.len)?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Remove all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Convert into an immutable [`Bytes`] (moves the storage; no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian append operations over a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, x: u8) {
        self.put_slice(&[x]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, x: u16) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, x: u32) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, x: u64) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, x: f64) {
        self.put_slice(&x.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(2) });
        assert_eq!(a.slice(..).len(), 6);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0xAABBCCDD);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 7);
        assert_eq!(b[0], 7);
        assert_eq!(&b[5..], b"xy");
    }

    #[test]
    fn static_and_eq() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert!(a == b"abc".as_slice());
    }
}
