//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the subset it uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`Rng::gen`] / [`Rng::gen_bool`] /
//! [`Rng::gen_range`].
//!
//! `StdRng` is xoshiro256** seeded via SplitMix64 — a deterministic,
//! high-quality generator. Streams differ numerically from upstream
//! `rand`'s ChaCha-based `StdRng`, which is fine here: the simulator
//! only requires *self-consistent* determinism (same seed → same
//! stream), never a specific stream.

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core uniform-generation interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable from uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        f64::sample(self) < p
    }

    /// Uniform draw from `[low, high)` (u64 ranges).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift reduction: negligible bias for simulation use.
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = r.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }
}
