//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the subset it uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Timing is a simple best-of-N wall-clock measurement printed to
//! stdout — no statistics, plots, or HTML reports. Under `cargo test`
//! each bench body runs once (smoke mode), keeping tier-1 runs fast.

use std::time::Instant;

/// Whether we are in smoke mode (`cargo test` passes `--test`).
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    /// Best observed per-iteration time, ns.
    best_ns: f64,
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored; kept for API
/// compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let mut best = f64::INFINITY;
        for _ in 0..self.iters.max(1) {
            let t0 = Instant::now();
            let out = routine();
            let dt = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            best = best.min(dt);
        }
        self.best_ns = best;
    }

    /// Time `routine` over fresh inputs built by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut best = f64::INFINITY;
        for _ in 0..self.iters.max(1) {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            best = best.min(dt);
        }
        self.best_ns = best;
    }
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: if smoke_mode() { 1 } else { 10 } }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.sample_size, best_ns: f64::NAN };
        f(&mut b);
        report(name.as_ref(), b.best_ns);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count (upstream API; here: iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = if smoke_mode() { 1 } else { n.max(1) as u64 };
        self
    }

    /// Register and immediately run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.parent.sample_size, best_ns: f64::NAN };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.as_ref()), b.best_ns);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, best_ns: f64) {
    if best_ns.is_nan() {
        println!("bench {name:50} (no measurement)");
    } else if best_ns >= 1e6 {
        println!("bench {name:50} {:>12.3} ms", best_ns / 1e6);
    } else {
        println!("bench {name:50} {best_ns:>12.0} ns");
    }
}

/// Prevent the optimizer from discarding `x` (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Group bench functions into one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }

    #[test]
    fn groups_run_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut total = 0usize;
        g.bench_function("b", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| total += v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(total >= 8);
    }
}
