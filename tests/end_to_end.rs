//! End-to-end integration: action payloads survive every parcelport
//! configuration, message size regime, and topology.

mod common;

use common::{reference_checksums, send_all};
use hpx_lci_repro::parcelport::{PpConfig, WorldConfig};

fn mixed_payloads(seed: u64, n: usize) -> Vec<Vec<u8>> {
    // Deterministic mix of sizes straddling the eager and zero-copy
    // thresholds: 8 B ... 64 KiB.
    (0..n)
        .map(|i| {
            let x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64);
            let size = match x % 5 {
                0 => 8,
                1 => 512,
                2 => 8191,
                3 => 8192,
                _ => 40_000,
            };
            (0..size).map(|j| (x as u8).wrapping_add(j as u8)).collect()
        })
        .collect()
}

#[test]
fn every_config_delivers_mixed_sizes_intact() {
    let payloads = mixed_payloads(7, 30);
    let reference = reference_checksums(&payloads);
    for cfg in PpConfig::paper_set() {
        let d = send_all(WorldConfig::two_nodes(cfg, 8), payloads.clone());
        assert_eq!(d.delivered, payloads.len(), "{cfg}: lost messages");
        // Per-payload integrity: the multiset of checksums must match
        // (delivery order may legally differ under aggregation).
        let mut got = d.checksums.clone();
        let mut want = reference.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{cfg}: payload corruption");
    }
}

#[test]
fn uniform_eager_messages_preserve_send_order() {
    // HPX parcels carry no ordering guarantee in general (mixed sizes
    // take different protocols), but a single-worker sender pushing
    // same-class eager messages over the in-order fabric does arrive in
    // order — a useful canary for accidental reordering inside the
    // parcelports' fast path.
    let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 64]).collect();
    let reference = reference_checksums(&payloads);
    for name in ["lci_psr_cq_pin_i", "mpi_i"] {
        let cores = 1 + usize::from(name.starts_with("lci")); // 1 worker
        let cfg = WorldConfig::two_nodes(name.parse().unwrap(), cores);
        let d = send_all(cfg, payloads.clone());
        assert_eq!(d.checksums, reference, "{name}: order broken");
    }
}

#[test]
fn many_localities_all_to_all() {
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::ActionRegistry;
    use hpx_lci_repro::parcelport::build_world;
    use std::cell::Cell;
    use std::rc::Rc;

    for name in ["lci_psr_cq_pin_i", "mpi_i", "lci_sr_sy_mt_i"] {
        let locs = 6usize;
        let mut registry = ActionRegistry::new();
        let got = Rc::new(Cell::new(0usize));
        let g = got.clone();
        registry.register("sink", move |sim, _l, _c, p| {
            assert_eq!(p.args[0].len(), 64);
            g.set(g.get() + 1);
            sim.now() + 100
        });
        let sink = registry.id_of("sink").unwrap();
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 4);
        cfg.localities = locs;
        let mut world = build_world(&cfg, registry);
        let expect = locs * (locs - 1);
        for src in 0..locs {
            for dst in 0..locs {
                if src == dst {
                    continue;
                }
                let l = world.locality(src).clone();
                l.spawn(
                    &mut world.sim,
                    0,
                    Box::new(move |sim, loc, core| {
                        loc.send_action(sim, core, dst, sink, vec![Bytes::from(vec![1u8; 64])])
                    }),
                );
            }
        }
        let g = got.clone();
        let done = world.run_while(60_000_000_000, move |_| g.get() < expect);
        assert!(done, "{name}: all-to-all delivered only {}/{expect}", got.get());
    }
}

#[test]
fn empty_and_argless_parcels() {
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::ActionRegistry;
    use hpx_lci_repro::parcelport::build_world;
    use std::cell::Cell;
    use std::rc::Rc;

    let mut registry = ActionRegistry::new();
    let got = Rc::new(Cell::new(0usize));
    let g = got.clone();
    registry.register("nop", move |sim, _l, _c, p| {
        assert!(p.args.iter().all(|a| a.is_empty()));
        g.set(g.get() + 1);
        sim.now()
    });
    let nop = registry.id_of("nop").unwrap();
    let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 4);
    let mut world = build_world(&cfg, registry);
    let loc0 = world.locality(0).clone();
    loc0.spawn(
        &mut world.sim,
        0,
        Box::new(move |sim, loc, core| {
            loc.send_action(sim, core, 1, nop, vec![]);
            loc.send_action(sim, core, 1, nop, vec![Bytes::new(), Bytes::new()])
        }),
    );
    let g = got.clone();
    assert!(world.run_while(5_000_000_000, move |_| g.get() < 2));
}

#[test]
fn zero_copy_threshold_configurable() {
    // Dropping the threshold turns small args into zero-copy chunks; the
    // stack must still deliver correctly.
    let payloads = vec![vec![5u8; 100], vec![6u8; 2000]];
    let reference = reference_checksums(&payloads);
    let mut cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 4);
    cfg.zero_copy_threshold = 64;
    let d = send_all(cfg, payloads);
    assert_eq!(d.delivered, 2);
    let mut got = d.checksums;
    got.sort_unstable();
    let mut want = reference;
    want.sort_unstable();
    assert_eq!(got, want);
}
