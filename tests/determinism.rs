//! Determinism: identical inputs give bit-identical simulations — the
//! property that makes every figure in EXPERIMENTS.md exactly
//! reproducible.

mod common;

use common::send_all;
use hpx_lci_repro::parcelport::WorldConfig;

fn payloads() -> Vec<Vec<u8>> {
    (0..40).map(|i| vec![i as u8; 8 + (i * 37) % 20_000]).collect()
}

#[test]
fn identical_seeds_identical_timelines() {
    for name in ["lci_psr_cq_pin_i", "mpi", "lci_sr_sy_mt_i"] {
        let run = |seed: u64| {
            let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
            cfg.seed = seed;
            let d = send_all(cfg, payloads());
            (d.world.sim.now(), d.world.sim.events_executed(), d.checksums)
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.0, b.0, "{name}: virtual end time diverged");
        assert_eq!(a.1, b.1, "{name}: event count diverged");
        assert_eq!(a.2, b.2, "{name}: delivery order diverged");
    }
}

#[test]
fn different_seeds_still_complete() {
    // Seeds only drive fault injection / model randomness; a reliable
    // fabric must deliver everything under any seed.
    for seed in [1u64, 2, 999] {
        let mut cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 8);
        cfg.seed = seed;
        let d = send_all(cfg, payloads());
        assert_eq!(d.delivered, 40);
    }
}

#[test]
fn octotiger_is_deterministic() {
    use hpx_lci_repro::octotiger_mini::{run_octotiger, OctoParams};
    let run = || {
        let mut p = OctoParams::expanse("lci_psr_cq_pin_i".parse().unwrap(), 4);
        p.level = 3;
        p.steps = 2;
        p.cores = 6;
        run_octotiger(&p)
    };
    let a = run();
    let b = run();
    assert!(a.completed && b.completed);
    assert_eq!(a.total, b.total, "octotiger timing diverged between runs");
    assert_eq!(a.steps_per_sec, b.steps_per_sec);
}
