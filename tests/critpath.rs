//! Acceptance tests for the causal critical-path analyzer and the
//! what-if engine (ISSUE 4 tentpole).
//!
//! Structural identity: the sum of per-component on-path durations must
//! equal the measured end-to-end time exactly — for the makespan path
//! and for every per-parcel path — on both a fig1-style (message-rate)
//! and a fig8-style (windowed latency) scenario. What-if validation:
//! predicted speedups from critical-path slack must agree with measured
//! speedups from deterministic re-runs.

use bench::{run_latency, run_msgrate, whatif_latency, Knob, LatencyParams, MsgRateParams};
use telemetry::CritPath;

fn assert_partition_identity(cp: &CritPath, config: &str) {
    assert!(cp.total_ns > 0, "[{config}] empty critical path");
    assert!(!cp.truncated, "[{config}] causal log truncated");
    // Segments tile [0, total] with no gaps or overlaps.
    let mut cursor = 0u64;
    for seg in &cp.segments {
        assert_eq!(seg.start, cursor, "[{config}] gap/overlap before {seg:?}");
        assert!(seg.end > seg.start, "[{config}] empty segment {seg:?}");
        cursor = seg.end;
    }
    assert_eq!(cursor, cp.total_ns, "[{config}] segments do not reach the end");
    // Per-component shares are the same partition, grouped.
    let seg_sum: u64 = cp.segments.iter().map(|s| s.len_ns()).sum();
    let comp_sum: u64 = cp.components.iter().map(|c| c.on_path_ns).sum();
    assert_eq!(seg_sum, cp.total_ns, "[{config}] segment sum != makespan");
    assert_eq!(comp_sum, cp.total_ns, "[{config}] component sum != makespan");
}

fn check_latency_config(config: &str, window: usize) {
    let mut p = LatencyParams::new(config.parse().unwrap(), 8);
    p.steps = 40;
    p.window = window;
    p.cores = 8;
    let (r, tel) = bench::trace::instrumented(|| run_latency(&p));
    assert!(r.completed, "[{config}] run did not complete");
    let cp = tel.critpath(config).expect("critical path");
    assert_partition_identity(&cp, config);
    // The makespan path ends at the last executed event; the benchmark's
    // own finish time adds at most the final handler's work (100 ns) on
    // top of that event's start.
    assert!(
        cp.total_ns + 1_000 >= r.total.as_nanos(),
        "[{config}] critpath total {} < benchmark finish {}",
        cp.total_ns,
        r.total.as_nanos()
    );

    // Per-parcel paths: stage partition equals deliver − put, exactly.
    let paths = tel.parcel_paths();
    assert!(!paths.is_empty(), "[{config}] no delivered parcels");
    for pp in &paths {
        let sum: u64 = pp.segments.iter().map(|s| s.len_ns()).sum();
        assert_eq!(sum, pp.total_ns, "[{config}] parcel {} stage sum != end-to-end", pp.flow);
        let mut cursor = pp.segments.first().map(|s| s.start).unwrap_or(0);
        for seg in &pp.segments {
            assert_eq!(seg.start, cursor, "[{config}] parcel {} gap at {seg:?}", pp.flow);
            cursor = seg.end;
        }
    }
}

#[test]
fn makespan_and_parcel_identity_fig8_style() {
    // Fig-8 shape: windowed ping-pong latency, LCI best + MPI baseline.
    for config in ["lci_psr_cq_pin_i", "mpi"] {
        check_latency_config(config, 4);
    }
}

#[test]
fn makespan_and_parcel_identity_fig1_style() {
    // Fig-1 shape: message-rate injection, both backends.
    for config in ["lci_psr_cq_pin_i", "mpi_i"] {
        let mut p = MsgRateParams::small(config.parse().unwrap());
        p.total_msgs = 2_000;
        p.batch = 50;
        p.cores = 8;
        let (r, tel) = bench::trace::instrumented(|| run_msgrate(&p));
        assert!(r.completed, "[{config}] run did not complete");
        let cp = tel.critpath(config).expect("critical path");
        assert_partition_identity(&cp, config);
        let paths = tel.parcel_paths();
        assert!(paths.len() >= 2_000, "[{config}] only {} parcel paths", paths.len());
        for pp in &paths {
            let sum: u64 = pp.segments.iter().map(|s| s.len_ns()).sum();
            assert_eq!(sum, pp.total_ns, "[{config}] parcel {} identity", pp.flow);
        }
    }
}

#[test]
fn whatif_predictions_match_measured_reruns() {
    // Window-1 ping-pong on the LCI best config: the path is almost pure
    // wire + software pipeline, so critical-path predictions should land
    // within 10% of deterministic re-runs for every predictable knob.
    let mut p = LatencyParams::new("lci_psr_cq_pin_i".parse().unwrap(), 16 * 1024);
    p.steps = 60;
    p.window = 1;
    p.cores = 8;
    let knobs = [
        Knob::SerializeScale(0.0),
        Knob::WireLatencyScale(2.0),
        Knob::WireLatencyScale(0.5),
        Knob::WireBandwidthScale(2.0),
    ];
    let (_cp, rows) = whatif_latency(&p, &knobs);
    assert_eq!(rows.len(), knobs.len());
    for row in &rows {
        let err = row.prediction_error().expect("predictable knob");
        eprintln!(
            "whatif[{}]: base {} predicted {:?} measured {} err {:.4}",
            row.knob, row.base_ns, row.predicted_ns, row.measured_ns, err
        );
        assert!(
            err <= 0.10,
            "knob {}: predicted {:?} vs measured {} ({:.1}% off)",
            row.knob,
            row.predicted_ns,
            row.measured_ns,
            err * 100.0
        );
    }
    // The knobs must actually move the makespan (no vacuous agreement).
    let moved = rows
        .iter()
        .filter(|r| (r.measured_ns as f64 - r.base_ns as f64).abs() / r.base_ns as f64 > 0.02)
        .count();
    assert!(moved >= 3, "only {moved} knobs moved the makespan > 2%");
}

#[test]
fn whatif_lock_hold_prediction_on_mpi() {
    // Fine-grained-sync knob on the MPI stack, with enough concurrent
    // chains that the ucp_progress lock carries real on-path time:
    // removing the hold must be predicted correctly and must actually
    // speed up the re-run.
    let mut p = LatencyParams::new("mpi".parse().unwrap(), 8);
    p.steps = 60;
    p.window = 8;
    p.cores = 8;
    let (cp, rows) = whatif_latency(&p, &[Knob::LockHoldScale(0.0)]);
    assert!(cp.component_ns("ucp_progress") > 0, "no lock-hold time on path:\n{}", cp.to_text());
    let row = &rows[0];
    let err = row.prediction_error().expect("predictable");
    eprintln!(
        "whatif[{}]: base {} predicted {:?} measured {} err {:.4}",
        row.knob, row.base_ns, row.predicted_ns, row.measured_ns, err
    );
    assert!(err <= 0.10, "lock-hold prediction {:.1}% off", err * 100.0);
    assert!(row.measured_ns < row.base_ns, "halving the lock hold did not speed up the run");
}
