//! Shared helpers for the cross-crate integration tests.
//!
//! Compiled separately into every integration-test target; not every
//! target uses every helper, so per-target dead-code analysis is noise.
#![allow(dead_code)]

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use hpx_lci_repro::amt::action::ActionRegistry;
use hpx_lci_repro::parcelport::{build_world, World, WorldConfig};

/// Outcome of a counted-delivery workload.
pub struct Delivery {
    /// The world after the run (for stats inspection).
    pub world: World,
    /// Messages delivered to the sink action.
    pub delivered: usize,
    /// Concatenation-order payload checksums seen by the sink.
    pub checksums: Vec<u64>,
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Send `payloads` from locality 0 to a sink action on locality 1 over
/// the given configuration; returns the delivery record.
pub fn send_all(cfg: WorldConfig, payloads: Vec<Vec<u8>>) -> Delivery {
    let mut registry = ActionRegistry::new();
    let delivered = Rc::new(Cell::new(0usize));
    let checksums = Rc::new(RefCell::new(Vec::new()));
    let expect = payloads.len();
    {
        let delivered = delivered.clone();
        let checksums = checksums.clone();
        registry.register("sink", move |sim, _loc, _core, p| {
            delivered.set(delivered.get() + 1);
            checksums.borrow_mut().push(fnv(&p.args[0]));
            sim.now() + 150
        });
    }
    let sink = registry.id_of("sink").unwrap();
    let mut world = build_world(&cfg, registry);
    for payload in payloads {
        let loc0 = world.locality(0).clone();
        let data = Bytes::from(payload);
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| loc.send_action(sim, core, 1, sink, vec![data])),
        );
    }
    let d = delivered.clone();
    world.run_while(60_000_000_000, move |_| d.get() < expect);
    let sums = checksums.borrow().clone();
    Delivery { world, delivered: delivered.get(), checksums: sums }
}

/// Reference checksums in send order.
pub fn reference_checksums(payloads: &[Vec<u8>]) -> Vec<u64> {
    payloads.iter().map(|p| fnv(p)).collect()
}

/// Outcome of a counted-delivery workload on the sharded (federated)
/// world — the parallel-engine analogue of [`Delivery`].
pub struct ShardedDelivery {
    /// The world after the run (for nested-event inspection).
    pub world: hpx_lci_repro::parcelport::ShardedWorld,
    /// Messages delivered to the sink action.
    pub delivered: usize,
    /// Concatenation-order payload checksums seen by the sink.
    pub checksums: Vec<u64>,
}

/// [`send_all`] on the sharded engine: same workload, one engine lane
/// per locality over `shards` shards, run to quiescence under `mode`.
/// Counters live in atomics because the two lanes may execute on
/// different threads; the checksum order is deterministic regardless
/// (one consumer lane, nested virtual-time order).
pub fn send_all_sharded(
    cfg: WorldConfig,
    payloads: Vec<Vec<u8>>,
    shards: usize,
    mode: hpx_lci_repro::simcore::shard::RunMode,
) -> ShardedDelivery {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    let delivered = Arc::new(AtomicUsize::new(0));
    let checksums = Arc::new(Mutex::new(Vec::new()));
    let d = delivered.clone();
    let c = checksums.clone();
    let mut world = hpx_lci_repro::parcelport::build_sharded_world(
        &cfg,
        shards,
        move |_rank| {
            let mut registry = ActionRegistry::new();
            let delivered = d.clone();
            let checksums = c.clone();
            registry.register("sink", move |sim, _loc, _core, p| {
                delivered.fetch_add(1, Ordering::Relaxed);
                checksums.lock().unwrap().push(fnv(&p.args[0]));
                sim.now() + 150
            });
            registry.into()
        },
        move |rank, sim, loc| {
            if rank != 0 {
                return;
            }
            let sink = loc.with_registry(|r| r.id_of("sink").unwrap());
            for payload in payloads.clone() {
                let data = Bytes::from(payload);
                loc.spawn(
                    sim,
                    0,
                    Box::new(move |sim, loc, core| loc.send_action(sim, core, 1, sink, vec![data])),
                );
            }
        },
    );
    world.engine.set_exec_capture(true);
    world.run(Some(mode));
    let sums = checksums.lock().unwrap().clone();
    ShardedDelivery { world, delivered: delivered.load(Ordering::Relaxed), checksums: sums }
}
