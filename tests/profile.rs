//! End-to-end tests of the virtual-time core profiler: the partition
//! invariant must hold after real parcelport runs, and the fig8-style
//! per-core breakdown must show the paper's qualitative contrast —
//! `mpi` worker cores burn their time in progress + lock-wait, while
//! `lci` with a pinned progress thread concentrates progress work on
//! core 0 and leaves the workers to compute.

use bench::{run_latency, LatencyParams};
use telemetry::CoreState;

/// A reduced fig8-style run (window 64) with telemetry enabled,
/// returning the collected profiler state.
fn profiled_latency(config: &str) -> std::rc::Rc<telemetry::Telemetry> {
    let tel = telemetry::enable();
    let mut p = LatencyParams::new(config.parse().unwrap(), 8);
    p.cores = 8;
    p.window = 64;
    p.steps = 30;
    let r = run_latency(&p);
    telemetry::disable();
    assert!(r.completed, "{config}: run hit the safety deadline");
    tel
}

/// The tentpole invariant, end to end: after a real run, every core's
/// finalized state durations partition the elapsed virtual time exactly
/// — no gaps, no double counting — and the flamegraph leaves
/// re-partition the busy time.
#[test]
fn state_durations_partition_virtual_time_after_real_runs() {
    for config in ["mpi", "lci_psr_cq_pin_i", "lci_sr_sy_mt"] {
        let tel = profiled_latency(config);
        tel.with_profile(|prof| {
            assert!(!prof.is_empty(), "{config}: profiler saw no records");
            let snap = prof.snapshot();
            for ((loc, core), acct) in &snap {
                acct.check_partition().unwrap_or_else(|e| {
                    panic!("{config} loc{loc}/core{core}: partition broken: {e}")
                });
                let sum: u64 = acct.state_table().iter().sum();
                assert_eq!(
                    sum,
                    acct.elapsed_ns(),
                    "{config} loc{loc}/core{core}: states do not sum to elapsed time"
                );
                let leaf_sum: u64 = acct.leaves().map(|(_, _, ns)| ns).sum();
                assert_eq!(
                    leaf_sum,
                    acct.busy_ns(),
                    "{config} loc{loc}/core{core}: leaves do not sum to busy time"
                );
            }
        });
    }
}

/// Overhead contract: with telemetry disabled (the default), the
/// profiler records nothing at all.
#[test]
fn disabled_profiler_records_nothing() {
    assert!(!telemetry::enabled());
    let mut p = LatencyParams::new("mpi".parse().unwrap(), 8);
    p.cores = 4;
    p.window = 8;
    p.steps = 10;
    let r = run_latency(&p);
    assert!(r.completed);
    // No collector was installed, so there is nothing to inspect — the
    // free-function hooks short-circuited on the thread-local None.
    assert!(telemetry::active().is_none());
}

/// The paper's §5 observation, asserted quantitatively: under a
/// window-64 ping-pong, MPI worker cores spend a large share of their
/// busy time in the network stack — driving progress and waiting on the
/// coarse `ucp_progress` lock — while the LCI pinned-progress variant
/// concentrates progress on dedicated core 0 and its worker cores see
/// only a sliver of network-stack overhead.
#[test]
fn fig8_profile_contrasts_mpi_and_pinned_lci() {
    let mpi = profiled_latency("mpi");
    let lci = profiled_latency("lci_psr_cq_pin_i");

    // A leaf is network-stack overhead if it is the Progress state (the
    // progress loop itself) or a lock-wait on a network-stack resource.
    // AMT-level queue waits (amt.task_queue / amt.parcel_queue) are
    // scheduler contention, not parcelport overhead, and are excluded.
    fn is_net_leaf(state: CoreState, leaf: &str) -> bool {
        state == CoreState::Progress
            || (state == CoreState::LockWait
                && (leaf == "ucp_progress" || leaf.starts_with("lci.") || leaf.starts_with("nic.")))
    }

    // Share of the kept cores' busy time spent in network-stack
    // overhead leaves.
    fn net_overhead_share(tel: &telemetry::Telemetry, keep: impl Fn(usize) -> bool) -> f64 {
        tel.with_profile(|prof| {
            let mut busy = 0u64;
            let mut overhead = 0u64;
            for ((_, core), acct) in prof.snapshot() {
                if !keep(core) {
                    continue;
                }
                busy += acct.busy_ns();
                overhead += acct
                    .leaves()
                    .filter(|&(state, leaf, _)| is_net_leaf(state, leaf))
                    .map(|(_, _, ns)| ns)
                    .sum::<u64>();
            }
            overhead as f64 / busy.max(1) as f64
        })
    }

    // mpi has no dedicated progress core: every core is a worker.
    let mpi_worker_share = net_overhead_share(&mpi, |_| true);
    // lci pin: core 0 is the dedicated progress core; workers are 1..
    let lci_worker_share = net_overhead_share(&lci, |c| c != 0);
    eprintln!("mpi worker network-stack busy share:  {mpi_worker_share:.3}");
    eprintln!("lci worker network-stack busy share:  {lci_worker_share:.3}");
    assert!(
        mpi_worker_share > 0.15,
        "mpi workers should spend a material busy share in the network \
         stack (got {mpi_worker_share:.3})"
    );
    assert!(
        mpi_worker_share > 5.0 * lci_worker_share,
        "mpi worker network-stack share ({mpi_worker_share:.3}) should \
         dwarf lci's ({lci_worker_share:.3})"
    );

    // And the LCI progress work itself must be concentrated on the
    // pinned core 0 of each locality.
    lci.with_profile(|prof| {
        let snap = prof.snapshot();
        let mut per_loc: std::collections::BTreeMap<usize, (u64, u64)> = Default::default();
        for ((loc, core), acct) in &snap {
            let e = per_loc.entry(*loc).or_default();
            let p = acct.state_ns(CoreState::Progress);
            e.1 += p;
            if *core == 0 {
                e.0 += p;
            }
        }
        for (loc, (core0, total)) in per_loc {
            let frac = core0 as f64 / total.max(1) as f64;
            eprintln!("lci loc{loc}: core0 progress fraction {frac:.3}");
            assert!(
                frac > 0.8,
                "loc{loc}: pinned core 0 should own the progress time \
                 (got {frac:.3} of {total} ns)"
            );
        }
    });
}
