//! Golden trace for the switched fabric: a 64-locality fig-1-style
//! message-rate run over a k=8 fat-tree, pinned to its exact virtual
//! timeline and per-port transmit totals.
//!
//! Two invariants ride on these pins: (1) the topology walk is
//! deterministic — routing, port queueing, and counter accounting must
//! reproduce bit-for-bit across engine changes; (2) telemetry stays pure
//! observation on the switched path exactly as it does on the direct
//! wire (the per-port counter tracks sample without moving time).
//!
//! Re-pin only for an intentional model change:
//! `cargo test --test fabric_topology -- --ignored --nocapture`.

mod common;

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use hpx_lci_repro::amt::action::ActionRegistry;
use hpx_lci_repro::parcelport::{build_world, World, WorldConfig};

const LOCALITIES: usize = 64;
const MSGS_PER_LOC: usize = 3;

/// Pinned `(end ns, events executed, fabric xmit_pkts, fabric
/// xmit_wait_ns)` for the workload below, captured from the seed run.
const PIN_END_NS: u64 = 20_620;
const PIN_EXECUTED: u64 = 1_152;
const PIN_XMIT_PKTS: u64 = 960;
const PIN_XMIT_WAIT_NS: u64 = 31_104;

/// Every locality fires `MSGS_PER_LOC` 8-byte parcels at the locality
/// half the machine away — all-cross-pod traffic, the fig-1 message-rate
/// shape scaled out to 64 nodes.
fn run() -> (World, usize) {
    let mut registry = ActionRegistry::new();
    let got = Rc::new(Cell::new(0usize));
    let g = got.clone();
    registry.register("sink", move |sim, _l, _c, _p| {
        g.set(g.get() + 1);
        sim.now() + 150
    });
    let sink = registry.id_of("sink").unwrap();
    let mut cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), LOCALITIES, 2);
    cfg.seed = 11;
    let mut world = build_world(&cfg, registry);
    for src in 0..LOCALITIES {
        let dst = (src + LOCALITIES / 2) % LOCALITIES;
        for _ in 0..MSGS_PER_LOC {
            let loc = world.locality(src).clone();
            loc.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    loc.send_action(sim, core, dst, sink, vec![Bytes::from_static(b"fig1-8b!")])
                }),
            );
        }
    }
    let expect = LOCALITIES * MSGS_PER_LOC;
    let g = got.clone();
    world.run_while(60_000_000_000, move |_| g.get() < expect);
    let n = got.get();
    (world, n)
}

fn port_totals(world: &World) -> (u64, u64) {
    let fab = world.fabric.borrow();
    let topo = fab.topology().expect("cluster config builds a switched fabric");
    let rows = topo.ranked_ports();
    (rows.iter().map(|r| r.1.xmit_pkts).sum(), rows.iter().map(|r| r.1.xmit_wait_ns).sum())
}

#[test]
#[ignore]
fn capture_pins() {
    let (world, delivered) = run();
    let (pkts, wait) = port_totals(&world);
    eprintln!(
        "PIN_END_NS: {}  PIN_EXECUTED: {}  PIN_XMIT_PKTS: {pkts}  PIN_XMIT_WAIT_NS: {wait}  \
         (delivered {delivered})",
        world.sim.now().as_nanos(),
        world.sim.events_executed(),
    );
}

#[test]
fn sixty_four_locality_fat_tree_trace_is_pinned() {
    let (world, delivered) = run();
    assert_eq!(delivered, LOCALITIES * MSGS_PER_LOC, "lost parcels");
    assert_eq!(world.sim.now().as_nanos(), PIN_END_NS, "virtual end time moved");
    assert_eq!(world.sim.events_executed(), PIN_EXECUTED, "event count moved");
    let (pkts, wait) = port_totals(&world);
    assert_eq!(pkts, PIN_XMIT_PKTS, "per-port transmit totals moved");
    assert_eq!(wait, PIN_XMIT_WAIT_NS, "per-port queueing totals moved");
    assert!(wait > 0, "cross-pod incast must show switch-port queueing");
}

#[test]
fn telemetry_is_pure_observation_on_the_switched_path() {
    let tel = hpx_lci_repro::telemetry::enable();
    let (world, delivered) = run();
    hpx_lci_repro::telemetry::disable();
    assert_eq!(delivered, LOCALITIES * MSGS_PER_LOC, "lost parcels under telemetry");
    assert_eq!(world.sim.now().as_nanos(), PIN_END_NS, "telemetry moved the end time");
    assert_eq!(world.sim.events_executed(), PIN_EXECUTED, "telemetry moved the event count");
    let (pkts, wait) = port_totals(&world);
    assert_eq!(pkts, PIN_XMIT_PKTS, "telemetry moved port transmit totals");
    assert_eq!(wait, PIN_XMIT_WAIT_NS, "telemetry moved port queueing totals");
    // The observation itself: per-port counter tracks were sampled,
    // time-ordered per track (what `trace_check --require-counters`
    // later enforces on the bench artifacts), and reach the Chrome export.
    drop(world); // harvest tracers
    let (fab_tracks, ordered) = tel.with_metrics(|m| {
        let mut n = 0usize;
        let mut ordered = true;
        for (name, series) in m.tracks() {
            if name.starts_with("fab.") {
                n += 1;
                ordered &= series.windows(2).all(|w| w[0].0 <= w[1].0);
            }
        }
        (n, ordered)
    });
    assert!(fab_tracks > 0, "switch-port counter tracks missing");
    assert!(ordered, "switch-port counter tracks must be time-ordered");
    assert!(
        tel.chrome_trace_collected().contains("\"fab."),
        "port counters missing from the Chrome export"
    );
}
