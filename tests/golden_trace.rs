//! Golden traces: end-to-end runs pinned to exact virtual timelines.
//!
//! The end times and payload digests below were captured from the
//! pre-rewrite engine (`BinaryHeap` of boxed closures) and must survive
//! any event-engine change bit-for-bit: the typed-event/indexed-heap
//! engine is required to be *observationally identical*, not merely
//! deterministic. If an engine change moves any of these numbers, it
//! changed simulation semantics — that is a bug in the change, not a
//! reason to re-pin (the one sanctioned exception: `events_executed`,
//! which dropped when cancel/reschedule eliminated the old engine's
//! stale no-op events; those counts are pinned to the current engine).

mod common;

use common::send_all;
use hpx_lci_repro::parcelport::WorldConfig;

fn payloads() -> Vec<Vec<u8>> {
    (0..40).map(|i| vec![i as u8; 8 + (i * 37) % 20_000]).collect()
}

fn fnv_u64s(xs: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &x in xs {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// `(config, end time ns, events executed, delivery-digest)`.
///
/// End times and digests are the seed engine's; executed counts are the
/// current engine's (one stale `mpi` tick event became a reschedule:
/// 358 -> 357; the LCI configs never had stale events in this workload).
const GOLDEN: &[(&str, u64, u64, u64)] = &[
    ("lci_psr_cq_pin_i", 72_051, 176, 0x7062299104bea1c2),
    ("mpi", 164_593, 357, 0xe1fad10c31e16f9a),
    ("lci_sr_sy_mt_i", 134_234, 286, 0x6059481a96439b4a),
];

#[test]
fn two_node_traces_match_pre_rewrite_engine() {
    for &(name, end_ns, executed, digest) in GOLDEN {
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
        cfg.seed = 11;
        let d = send_all(cfg, payloads());
        assert_eq!(d.delivered, 40, "{name}: lost deliveries");
        assert_eq!(
            d.world.sim.now().as_nanos(),
            end_ns,
            "{name}: virtual end time moved — engine changed simulation semantics"
        );
        assert_eq!(
            fnv_u64s(&d.checksums),
            digest,
            "{name}: delivery order/content moved — engine changed simulation semantics"
        );
        assert_eq!(
            d.world.sim.events_executed(),
            executed,
            "{name}: event count moved (legitimate only if stale-event elimination changed)"
        );
    }
}

/// Telemetry must be *pure observation*: with a collector enabled, every
/// pinned timeline above has to come out bit-for-bit identical — same end
/// time, same delivery digest, same event count — while the collector
/// records a complete flow per parcel. (With telemetry disabled, the
/// hooks compile down to a thread-local `None` check, covered by
/// `two_node_traces_match_pre_rewrite_engine` running first-class against
/// the same pins.)
#[test]
fn telemetry_enabled_is_pure_observation() {
    for &(name, end_ns, executed, digest) in GOLDEN {
        let tel = hpx_lci_repro::telemetry::enable();
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
        cfg.seed = 11;
        let d = send_all(cfg, payloads());
        hpx_lci_repro::telemetry::disable();
        assert_eq!(d.delivered, 40, "{name}: lost deliveries under telemetry");
        assert_eq!(
            d.world.sim.now().as_nanos(),
            end_ns,
            "{name}: enabling telemetry moved the virtual end time"
        );
        assert_eq!(
            fnv_u64s(&d.checksums),
            digest,
            "{name}: enabling telemetry changed delivery order/content"
        );
        assert_eq!(
            d.world.sim.events_executed(),
            executed,
            "{name}: enabling telemetry changed the event count"
        );
        // And the observation itself must be complete: one flow per
        // parcel, every one delivered, with the end-to-end stage chain.
        assert_eq!(tel.flow_count(), 40, "{name}: expected one flow per parcel");
        let b = tel.breakdown(name);
        assert_eq!(b.delivered, 40, "{name}: flows lost before delivery");
        assert!(b.total.summary.count > 0, "{name}: no end-to-end latencies recorded");
        // Causal-edge recording rode along on the exact pinned timeline
        // above, so provenance capture is itself pure observation. The
        // log must be complete: one node per executed event, and the
        // critical path it yields must partition [0, end] exactly.
        let log = tel.causal_log().expect("telemetry enabled records a causal log");
        assert_eq!(
            log.node_count() as u64,
            executed,
            "{name}: causal log must record every executed event"
        );
        let cp = tel.critpath(name).expect("non-empty run has a critical path");
        assert!(!cp.truncated, "{name}: causal log truncated");
        assert!(cp.total_ns <= end_ns, "{name}: critical path ends after the pinned end time");
        let seg_sum: u64 = cp.segments.iter().map(|s| s.len_ns()).sum();
        assert_eq!(seg_sum, cp.total_ns, "{name}: on-path durations must sum to the makespan");
        // Every delivered parcel got a causally-attributed delivery node.
        let paths = tel.parcel_paths();
        assert_eq!(paths.len(), 40, "{name}: expected one causal path per parcel");
        for pp in &paths {
            let sum: u64 = pp.segments.iter().map(|s| s.len_ns()).sum();
            assert_eq!(sum, pp.total_ns, "{name}: parcel {} path identity", pp.flow);
        }
    }
}

/// The windowed timeline rides on the same hooks as plain telemetry, so
/// enabling it (with SLO rules armed) must also be pure observation:
/// every pinned timeline comes out bit-for-bit identical, while the
/// window partition reproduces the run-total histograms exactly.
#[test]
fn timeline_enabled_reproduces_golden_pins() {
    use hpx_lci_repro::telemetry::{SloRule, TimelineConfig};
    for &(name, end_ns, executed, digest) in GOLDEN {
        let cfg_tl = TimelineConfig {
            slos: vec![SloRule {
                name: "lat".into(),
                hist: "parcel.latency_ns".into(),
                objective_ns: 50_000,
                target: 0.99,
                burn_threshold: 1.0,
                min_samples: 4,
            }],
            ..TimelineConfig::default()
        };
        let tel = hpx_lci_repro::telemetry::enable_with(cfg_tl);
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
        cfg.seed = 11;
        let d = send_all(cfg, payloads());
        hpx_lci_repro::telemetry::disable();
        assert_eq!(d.delivered, 40, "{name}: lost deliveries under timeline");
        assert_eq!(
            d.world.sim.now().as_nanos(),
            end_ns,
            "{name}: enabling the timeline moved the virtual end time"
        );
        assert_eq!(
            fnv_u64s(&d.checksums),
            digest,
            "{name}: enabling the timeline changed delivery order/content"
        );
        assert_eq!(
            d.world.sim.events_executed(),
            executed,
            "{name}: enabling the timeline changed the event count"
        );
        // The windowed series must partition the run exactly: merging
        // every window of the parcel-latency histogram reproduces the
        // run-total histogram, one sample per delivered parcel.
        tel.timeline_finalize();
        let merged = tel
            .with_timeline(|tl| tl.merged_hist("parcel.latency_ns").expect("deliveries recorded"))
            .expect("timeline enabled");
        let total =
            tel.with_metrics(|m| m.hist("parcel.latency_ns").cloned()).expect("run total recorded");
        assert_eq!(merged, total, "{name}: windows do not merge to the run total");
        assert_eq!(merged.count(), 40, "{name}: expected one latency sample per parcel");
    }
}

/// A deterministic fault scenario must produce a deterministic alert
/// window and flight-recorder dump: same seed, same faults, same
/// timeline — pinned like the timelines above. If these move, windowed
/// observation (or fault injection) changed behavior.
#[test]
fn fault_scenario_pins_alert_window_and_flight_dump() {
    use hpx_lci_repro::netsim::FaultConfig;
    use hpx_lci_repro::telemetry::{SloRule, TimelineConfig};
    // 10 µs windows over a ~70 µs run: the fault-inflated latency tail is
    // visible per window while the run-mean stays low.
    let cfg_tl = TimelineConfig {
        window_ns: 10_000,
        slos: vec![SloRule {
            name: "lat".into(),
            hist: "parcel.latency_ns".into(),
            objective_ns: 25_000,
            target: 0.99,
            burn_threshold: 1.0,
            min_samples: 2,
        }],
        ..TimelineConfig::default()
    };
    let tel = hpx_lci_repro::telemetry::enable_with(cfg_tl);
    let mut cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 8);
    cfg.seed = 11;
    cfg.faults = Some(FaultConfig { drop_prob: 0.2, ..FaultConfig::default() });
    let d = send_all(cfg, payloads());
    hpx_lci_repro::telemetry::disable();
    assert_eq!(d.delivered, 40, "drops must not lose parcels");
    assert!(d.world.sim.stats.get("net.retransmitted") > 0, "20% loss must retransmit");
    tel.timeline_finalize();

    let alerts = tel.timeline_alerts();
    let dumps = tel.timeline_dumps();
    eprintln!(
        "fault pins: end {} alerts {:?} dumps {:?}",
        d.world.sim.now().as_nanos(),
        alerts.iter().map(|a| (a.rule.clone(), a.window, a.bad, a.total)).collect::<Vec<_>>(),
        dumps.iter().map(|f| (f.reason.clone(), f.window, f.records.len())).collect::<Vec<_>>(),
    );
    // The retransmit fault fires before any SLO window settles, so the
    // recorder arms on the fault; the dump and the alert land in pinned
    // windows with a pinned record population.
    let first_dump = dumps.first().expect("fault must arm the flight recorder");
    assert_eq!(first_dump.reason, "fault:net.retransmit", "dump must name the fault");
    let first_alert = alerts.first().expect("late retransmitted parcels must breach the SLO");
    assert_eq!(first_alert.rule, "lat");
    // Pinned values, captured from this scenario's deterministic run.
    assert_eq!(first_alert.window, 6, "alert window moved");
    assert_eq!((first_alert.bad, first_alert.total), (7, 7), "alert population moved");
    assert_eq!(first_dump.window, 0, "dump trigger window moved");
    assert_eq!(first_dump.records.len(), 402, "dump record population moved");
    // The dump must carry the retransmitted parcels themselves: flow
    // records delivered after the triggering fault instant.
    use hpx_lci_repro::telemetry::timeline::FlightRec;
    let late_flows = first_dump
        .records
        .iter()
        .filter(|r| matches!(r, FlightRec::Flow { deliver_ns, .. } if *deliver_ns > first_dump.trigger_ns))
        .count();
    assert!(late_flows > 0, "dump must include parcels delivered after the fault");
}

mod sharded {
    //! Sharded-engine golden pins: the parallel engine's canonical
    //! timeline for a fixed workload, frozen at capture time from the
    //! 1-shard sequential run. Every placement (1/2/4 shards) and both
    //! executors (sequential, threaded) must reproduce it bit-for-bit,
    //! and turning on the tracer + causal capture must not move it —
    //! observation stays pure under parallelism exactly as it does on
    //! the single-threaded engine above.

    use std::any::Any;

    use hpx_lci_repro::simcore::{LaneCtx, LaneId, ShardActor, ShardedSim, SimTime};

    const LOOKAHEAD_NS: u64 = 250;
    const LANES: usize = 8;
    const SEED: u64 = 0x5EED_601D_7274_ACE5;

    /// Pinned `(end time ns, events executed, canonical digest)` for the
    /// workload below, captured from the 1-shard sequential run.
    const PIN_END_NS: u64 = 1_141;
    const PIN_EXECUTED: u64 = 488;
    const PIN_DIGEST: u64 = 0x653f_7b05_2802_134a;

    /// Self-driving actor: each event advances a private xorshift RNG and
    /// either schedules locally (ties at `now` included), sends cross-lane
    /// at `now + lookahead + jitter`, or cancels/reschedules a pending
    /// handle — the stream depends only on the seed and the actor's own
    /// history, never on placement.
    struct Pinned {
        rng: u64,
        budget: u32,
        pending: Vec<hpx_lci_repro::simcore::ShardEventId>,
    }

    impl Pinned {
        fn next(&mut self) -> u64 {
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            self.rng
        }
    }

    impl ShardActor for Pinned {
        fn on_event(&mut self, ctx: &mut LaneCtx<'_>, _arg: u64) {
            // One span per delivered event when the observer is on — the
            // purity test below checks the merged population is complete.
            let (now, lane) = (ctx.now(), ctx.lane().0);
            if let Some(tr) = ctx.tracer() {
                tr.span(format!("lane{lane}"), "event", now, now + 1);
            }
            for _ in 0..2 {
                if self.budget == 0 {
                    break;
                }
                let r = self.next();
                match r % 4 {
                    0 | 1 => {
                        self.budget -= 1;
                        let id = ctx.schedule_in(r >> 8 & 63, r);
                        self.pending.push(id);
                    }
                    2 => {
                        self.budget -= 1;
                        let peer = LaneId((r as u32 >> 16) % LANES as u32);
                        let at = ctx.now() + ctx.lookahead() + (r >> 8 & 31);
                        ctx.send(peer, at, r);
                    }
                    _ => {
                        if !self.pending.is_empty() {
                            let i = (r as usize >> 16) % self.pending.len();
                            if r & 1 == 0 {
                                ctx.cancel(self.pending.swap_remove(i));
                            } else {
                                let at = ctx.now() + (r >> 8 & 127);
                                ctx.reschedule(self.pending[i], at);
                            }
                        }
                    }
                }
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn run(shards: usize, threaded: bool, observed: bool) -> (u64, u64, u64, ShardedSim) {
        let mut sim = ShardedSim::new(shards, LOOKAHEAD_NS);
        sim.set_exec_capture(true);
        if observed {
            sim.set_tracing(true);
            sim.set_causal_capture(true);
        }
        for lane in 0..LANES {
            let w = Pinned {
                rng: SEED ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1),
                budget: 60,
                pending: Vec::new(),
            };
            sim.add_actor(lane % shards, Box::new(w));
        }
        for lane in 0..LANES as u32 {
            sim.seed(LaneId(lane), SimTime::from_nanos(lane as u64 % 3), lane as u64);
        }
        let report = if threaded { sim.run_threaded() } else { sim.run_sequential() };
        assert_eq!(sim.events_pending(), 0, "run must drain");
        (report.end.as_nanos(), report.executed, sim.digest(), sim)
    }

    #[test]
    #[ignore]
    fn capture_pins() {
        let (end, executed, digest, _) = run(1, false, false);
        eprintln!("PIN_END_NS: {end}  PIN_EXECUTED: {executed}  PIN_DIGEST: {digest:#018x}");
    }

    #[test]
    fn every_placement_matches_the_pinned_timeline() {
        for &(shards, threaded) in &[(1, false), (2, false), (2, true), (4, false), (4, true)] {
            let (end, executed, digest, _) = run(shards, threaded, false);
            let what =
                format!("{shards} shard(s) {}", if threaded { "threaded" } else { "sequential" });
            assert_eq!(end, PIN_END_NS, "{what}: virtual end time moved");
            assert_eq!(executed, PIN_EXECUTED, "{what}: event count moved");
            assert_eq!(digest, PIN_DIGEST, "{what}: canonical digest moved");
        }
    }

    #[test]
    fn tracer_and_causal_capture_stay_pure_under_sharding() {
        for &(shards, threaded) in &[(1, false), (4, false), (4, true)] {
            let (end, executed, digest, mut sim) = run(shards, threaded, true);
            let what =
                format!("{shards} shard(s) {}", if threaded { "threaded" } else { "sequential" });
            assert_eq!(end, PIN_END_NS, "{what}: tracing moved the end time");
            assert_eq!(executed, PIN_EXECUTED, "{what}: tracing moved the event count");
            assert_eq!(digest, PIN_DIGEST, "{what}: tracing moved the digest");
            // The observation itself must be complete and deterministic:
            // the merged causal log records every executed event, and the
            // merged tracer carries the same span population regardless of
            // placement or executor.
            let log = sim.merged_causal().expect("causal capture was on");
            assert_eq!(
                log.node_count() as u64,
                executed,
                "{what}: merged causal log must record every executed event"
            );
            let spans = sim.merged_tracer().spans().len();
            assert_eq!(
                spans as u64, executed,
                "{what}: merged tracer must carry one span per executed event"
            );
        }
    }
}

mod sharded_world {
    //! Federated-world golden pins: the `World`/`Locality` layer running
    //! one engine lane per locality on the sharded conservative engine.
    //! Engine placement is pure mechanics — every shard count and both
    //! executors must reproduce the *single-heap* world's pinned
    //! timeline bit-for-bit: same virtual end time, same delivery
    //! digest, same per-lane event total, same canonical engine log.

    use super::{common, fnv_u64s, payloads, GOLDEN};
    use common::{send_all, send_all_sharded};
    use hpx_lci_repro::parcelport::WorldConfig;
    use hpx_lci_repro::simcore::shard::RunMode;

    const PLACEMENTS: &[(usize, RunMode)] = &[
        (1, RunMode::Sequential),
        (1, RunMode::Threaded),
        (2, RunMode::Sequential),
        (2, RunMode::Threaded),
    ];

    /// `(config, quiescence end ns, nested events executed, canonical
    /// engine digest)` — captured from the 1-shard sequential federated
    /// run. The end time and event count exceed the single-heap GOLDEN
    /// values *by design*: the single-heap harness stops the instant the
    /// 40th delivery lands, while the federated engine runs its lanes to
    /// quiescence (trailing sink completions and progress-poll
    /// wind-down). The delivery digest, by contrast, must equal GOLDEN
    /// exactly — what is delivered, in what order, with what content is
    /// engine-independent.
    const SHARDED_PINS: &[(&str, u64, u64, u64)] = &[
        ("lci_psr_cq_pin_i", 78_001, 185, 0xc08cfcaf068fb099),
        ("mpi", 369_326, 988, 0x32bdcc3f2e9b5e29),
        ("lci_sr_sy_mt_i", 161_000, 316, 0x9c6df252f031af0f),
    ];

    /// Single-heap delivery digest for `name` (from the GOLDEN table).
    fn golden_delivery_digest(name: &str) -> u64 {
        GOLDEN.iter().find(|g| g.0 == name).expect("config pinned in GOLDEN").3
    }

    #[test]
    #[ignore]
    fn capture_pins() {
        for &(name, ..) in SHARDED_PINS {
            let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
            cfg.seed = 11;
            let d = send_all_sharded(cfg, super::payloads(), 1, RunMode::Sequential);
            eprintln!(
                "(\"{name}\", {}, {}, {:#018x}),",
                d.world.now().as_nanos(),
                d.world.events_executed(),
                d.world.engine.digest(),
            );
        }
    }

    /// Every pinned two-node timeline survives federation: the delivery
    /// digest equals the single-heap GOLDEN constant, and the quiescence
    /// end time, nested event total, and canonical engine log are
    /// identical at every shard count under both executors.
    #[test]
    fn federated_world_matches_single_heap_pins() {
        for &(name, end_ns, executed, engine_digest) in SHARDED_PINS {
            for &(shards, mode) in PLACEMENTS {
                let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
                cfg.seed = 11;
                let d = send_all_sharded(cfg, payloads(), shards, mode);
                let what = format!("{name} shards={shards} {mode:?}");
                assert_eq!(d.delivered, 40, "{what}: lost deliveries");
                assert_eq!(
                    fnv_u64s(&d.checksums),
                    golden_delivery_digest(name),
                    "{what}: delivery order/content diverged from the single-heap world"
                );
                assert_eq!(
                    d.world.now().as_nanos(),
                    end_ns,
                    "{what}: quiescence end time moved with placement"
                );
                assert_eq!(
                    d.world.events_executed(),
                    executed,
                    "{what}: nested event total moved with placement"
                );
                assert_eq!(
                    d.world.engine.digest(),
                    engine_digest,
                    "{what}: canonical engine digest moved with placement"
                );
            }
        }
    }

    /// Scenario-level pins on the paper workloads (reduced sizes):
    /// `(comm-done ns, nested events)` for the fig1 message-rate run,
    /// finish-time ns for the fig8 window-8 latency run, and `(total ns,
    /// nested events)` for the 4-locality octotiger run — identical at
    /// every shard count under both executors, and identical to the
    /// legacy single-heap runner computed in the same process.
    #[test]
    fn scenario_results_are_placement_invariant() {
        use hpx_lci_repro::octotiger_mini::{run_octotiger, run_octotiger_sharded, OctoParams};

        // fig1 message rate, reduced.
        let mut mp = bench::MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
        mp.total_msgs = 2_000;
        mp.batch = 50;
        mp.cores = 8;
        let legacy = bench::run_msgrate(&mp);
        assert!(legacy.completed);
        for &(shards, mode) in PLACEMENTS {
            let r = bench::run_msgrate_sharded(&mp, shards, Some(mode));
            assert!(r.completed, "fig1 shards={shards} {mode:?}");
            assert_eq!(r.comm_done, legacy.comm_done, "fig1 shards={shards} {mode:?}");
            assert_eq!(r.injection_done, legacy.injection_done);
        }

        // fig8 latency, window 8, reduced.
        let mut lp = bench::LatencyParams::new("lci_psr_cq_pin_i".parse().unwrap(), 8);
        lp.window = 8;
        lp.steps = 50;
        lp.cores = 8;
        let legacy = bench::run_latency(&lp);
        assert!(legacy.completed);
        for &(shards, mode) in PLACEMENTS {
            let r = bench::run_latency_sharded(&lp, shards, Some(mode));
            assert!(r.completed, "fig8 shards={shards} {mode:?}");
            assert_eq!(r.total, legacy.total, "fig8 w8 shards={shards} {mode:?}");
        }

        // Octotiger on 4 localities — here shard counts above 2 engage.
        let mut op = OctoParams::expanse("lci_psr_cq_pin_i".parse().unwrap(), 4);
        op.level = 4;
        op.steps = 2;
        op.cores = 6;
        let legacy = run_octotiger(&op);
        assert!(legacy.completed && legacy.mass_ok);
        // 8 shards exercises the clamp (4 localities -> 4 lanes).
        for &(shards, mode) in &[
            (1, RunMode::Sequential),
            (2, RunMode::Threaded),
            (4, RunMode::Sequential),
            (4, RunMode::Threaded),
            (8, RunMode::Threaded),
        ] {
            let r = run_octotiger_sharded(&op, shards, Some(mode));
            assert!(r.completed && r.mass_ok, "octo shards={shards} {mode:?}");
            assert_eq!(r.total, legacy.total, "octo L4 shards={shards} {mode:?}");
        }
    }

    /// Telemetry purity under threaded execution: with a collector on,
    /// the threaded 2-shard run reproduces the pinned timeline
    /// bit-for-bit while the merged per-lane collectors carry the
    /// complete observation — one flow per parcel, all delivered.
    #[test]
    fn telemetry_stays_pure_under_threaded_sharding() {
        for &(name, end_ns, executed, _) in SHARDED_PINS {
            let tel = hpx_lci_repro::telemetry::enable();
            let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
            cfg.seed = 11;
            let d = send_all_sharded(cfg, payloads(), 2, RunMode::Threaded);
            hpx_lci_repro::telemetry::disable();
            assert_eq!(d.delivered, 40, "{name}: lost deliveries under telemetry");
            assert_eq!(
                d.world.now().as_nanos(),
                end_ns,
                "{name}: telemetry moved the threaded federated end time"
            );
            assert_eq!(
                fnv_u64s(&d.checksums),
                golden_delivery_digest(name),
                "{name}: telemetry changed threaded federated delivery order"
            );
            assert_eq!(
                d.world.events_executed(),
                executed,
                "{name}: telemetry changed the threaded federated event count"
            );
            // The merged observation must be complete: one flow per
            // parcel with the end-to-end stage chain, exactly as the
            // single-heap collector records it.
            assert_eq!(tel.flow_count(), 40, "{name}: expected one flow per parcel");
            let b = tel.breakdown(name);
            assert_eq!(b.delivered, 40, "{name}: flows lost before delivery");
            assert!(b.total.summary.count > 0, "{name}: no end-to-end latencies recorded");
        }
    }

    /// The merged telemetry of a federated run equals the single-heap
    /// collector's on the same workload: same flow population, same
    /// delivered count, same parcel-latency histogram — lane merge is
    /// exact, not approximate.
    #[test]
    fn merged_lane_telemetry_equals_single_heap_collector() {
        let name = "lci_psr_cq_pin_i";
        let run_legacy = || {
            let tel = hpx_lci_repro::telemetry::enable();
            let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
            cfg.seed = 11;
            let d = send_all(cfg, payloads());
            drop(d);
            hpx_lci_repro::telemetry::disable();
            tel
        };
        let run_sharded = |shards, mode| {
            let tel = hpx_lci_repro::telemetry::enable();
            let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
            cfg.seed = 11;
            let d = send_all_sharded(cfg, payloads(), shards, mode);
            drop(d);
            hpx_lci_repro::telemetry::disable();
            tel
        };
        let legacy = run_legacy();
        let lh = legacy
            .with_metrics(|m| m.hist("amt.msg_bytes").cloned())
            .expect("legacy run records message sizes");
        for &(shards, mode) in PLACEMENTS {
            let tel = run_sharded(shards, mode);
            let what = format!("shards={shards} {mode:?}");
            assert_eq!(tel.flow_count(), legacy.flow_count(), "{what}: flow population moved");
            let sh = tel
                .with_metrics(|m| m.hist("amt.msg_bytes").cloned())
                .expect("sharded run records message sizes");
            assert_eq!(sh, lh, "{what}: merged message-size histogram diverged");
            let b = tel.breakdown(name);
            assert_eq!(b.delivered, legacy.breakdown(name).delivered, "{what}: delivered moved");
        }
    }
}

fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run-record capture must be *pure observation* on top of the already
/// pure telemetry hooks: capturing a record from a finished run cannot
/// perturb anything another exporter reads from the same collector
/// (byte-identical Chrome traces before/after capture), the pinned
/// golden timeline itself stays bit-for-bit unchanged, and the record
/// document is deterministic down to its serialized bytes — pinned by
/// digest so any schema or capture change is a conscious re-pin.
#[test]
fn run_record_capture_is_pure_and_pinned() {
    use hpx_lci_repro::telemetry::record::{RunMeta, RunRecord};

    // The fig1 message-rate scenario with every workload parameter fixed
    // explicitly (never via BENCH_SCALE — the pin must not depend on the
    // environment).
    let meta = || RunMeta {
        scenario: "fig1_msgrate_8b".into(),
        config: "lci_psr_cq_pin_i".into(),
        params: vec![("total_msgs".into(), "1000".into())],
        knobs: vec![],
        // Legacy single-engine run: both engine fields stay None so the
        // serialized record is byte-identical to pre-sharding baselines.
        ..RunMeta::default()
    };
    let run = || {
        let tel = hpx_lci_repro::telemetry::enable();
        let mut p = bench::MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
        p.total_msgs = 1_000;
        let r = bench::run_msgrate(&p);
        hpx_lci_repro::telemetry::disable();
        (r, tel)
    };

    let (r1, tel1) = run();
    assert!(r1.msg_rate > 0.0);
    let trace_before = tel1.chrome_trace_collected();
    let rec1 = RunRecord::capture(&tel1, meta());
    let trace_after = tel1.chrome_trace_collected();
    assert_eq!(
        trace_before, trace_after,
        "capturing a run record changed the Chrome trace of the same collector"
    );

    // Same binary, same inputs: the record reproduces byte-for-byte.
    let (_, tel2) = run();
    let rec2 = RunRecord::capture(&tel2, meta());
    let json = rec1.to_json();
    assert_eq!(json, rec2.to_json(), "identical runs must yield byte-identical records");

    // The partition identity every diff inherits.
    let cp = rec1.critpath.as_ref().expect("instrumented run has a critical path");
    let comp_sum: u64 = cp.components.iter().map(|&(_, ns)| ns).sum();
    assert_eq!(comp_sum, cp.total_ns, "component table must partition the makespan");
    assert_eq!(rec1.end_to_end_ns, cp.total_ns);

    // Pinned record digest for the fig1 scenario. If this moves, either
    // the simulation or the record schema changed — both are conscious
    // decisions, and baselines under results/baselines/ must be
    // re-recorded in the same commit.
    assert_eq!(
        fnv_bytes(json.as_bytes()),
        0x44ea4b564d1d1442,
        "fig1 run-record bytes moved — re-pin and re-record results/baselines/"
    );
}

#[test]
fn octotiger_trace_matches_pre_rewrite_engine() {
    use hpx_lci_repro::octotiger_mini::{run_octotiger, OctoParams};
    let mut p = OctoParams::expanse("lci_psr_cq_pin_i".parse().unwrap(), 4);
    p.level = 3;
    p.steps = 2;
    p.cores = 6;
    let r = run_octotiger(&p);
    assert!(r.completed);
    assert_eq!(
        r.total.as_nanos(),
        2_374_261,
        "octotiger virtual runtime moved — engine changed simulation semantics"
    );
}
