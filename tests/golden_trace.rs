//! Golden traces: end-to-end runs pinned to exact virtual timelines.
//!
//! The end times and payload digests below were captured from the
//! pre-rewrite engine (`BinaryHeap` of boxed closures) and must survive
//! any event-engine change bit-for-bit: the typed-event/indexed-heap
//! engine is required to be *observationally identical*, not merely
//! deterministic. If an engine change moves any of these numbers, it
//! changed simulation semantics — that is a bug in the change, not a
//! reason to re-pin (the one sanctioned exception: `events_executed`,
//! which dropped when cancel/reschedule eliminated the old engine's
//! stale no-op events; those counts are pinned to the current engine).

mod common;

use common::send_all;
use hpx_lci_repro::parcelport::WorldConfig;

fn payloads() -> Vec<Vec<u8>> {
    (0..40).map(|i| vec![i as u8; 8 + (i * 37) % 20_000]).collect()
}

fn fnv_u64s(xs: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &x in xs {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// `(config, end time ns, events executed, delivery-digest)`.
///
/// End times and digests are the seed engine's; executed counts are the
/// current engine's (one stale `mpi` tick event became a reschedule:
/// 358 -> 357; the LCI configs never had stale events in this workload).
const GOLDEN: &[(&str, u64, u64, u64)] = &[
    ("lci_psr_cq_pin_i", 72_051, 176, 0x7062299104bea1c2),
    ("mpi", 164_593, 357, 0xe1fad10c31e16f9a),
    ("lci_sr_sy_mt_i", 134_234, 286, 0x6059481a96439b4a),
];

#[test]
fn two_node_traces_match_pre_rewrite_engine() {
    for &(name, end_ns, executed, digest) in GOLDEN {
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
        cfg.seed = 11;
        let d = send_all(cfg, payloads());
        assert_eq!(d.delivered, 40, "{name}: lost deliveries");
        assert_eq!(
            d.world.sim.now().as_nanos(),
            end_ns,
            "{name}: virtual end time moved — engine changed simulation semantics"
        );
        assert_eq!(
            fnv_u64s(&d.checksums),
            digest,
            "{name}: delivery order/content moved — engine changed simulation semantics"
        );
        assert_eq!(
            d.world.sim.events_executed(),
            executed,
            "{name}: event count moved (legitimate only if stale-event elimination changed)"
        );
    }
}

/// Telemetry must be *pure observation*: with a collector enabled, every
/// pinned timeline above has to come out bit-for-bit identical — same end
/// time, same delivery digest, same event count — while the collector
/// records a complete flow per parcel. (With telemetry disabled, the
/// hooks compile down to a thread-local `None` check, covered by
/// `two_node_traces_match_pre_rewrite_engine` running first-class against
/// the same pins.)
#[test]
fn telemetry_enabled_is_pure_observation() {
    for &(name, end_ns, executed, digest) in GOLDEN {
        let tel = hpx_lci_repro::telemetry::enable();
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 8);
        cfg.seed = 11;
        let d = send_all(cfg, payloads());
        hpx_lci_repro::telemetry::disable();
        assert_eq!(d.delivered, 40, "{name}: lost deliveries under telemetry");
        assert_eq!(
            d.world.sim.now().as_nanos(),
            end_ns,
            "{name}: enabling telemetry moved the virtual end time"
        );
        assert_eq!(
            fnv_u64s(&d.checksums),
            digest,
            "{name}: enabling telemetry changed delivery order/content"
        );
        assert_eq!(
            d.world.sim.events_executed(),
            executed,
            "{name}: enabling telemetry changed the event count"
        );
        // And the observation itself must be complete: one flow per
        // parcel, every one delivered, with the end-to-end stage chain.
        assert_eq!(tel.flow_count(), 40, "{name}: expected one flow per parcel");
        let b = tel.breakdown(name);
        assert_eq!(b.delivered, 40, "{name}: flows lost before delivery");
        assert!(b.total.summary.count > 0, "{name}: no end-to-end latencies recorded");
        // Causal-edge recording rode along on the exact pinned timeline
        // above, so provenance capture is itself pure observation. The
        // log must be complete: one node per executed event, and the
        // critical path it yields must partition [0, end] exactly.
        let log = tel.causal_log().expect("telemetry enabled records a causal log");
        assert_eq!(
            log.node_count() as u64,
            executed,
            "{name}: causal log must record every executed event"
        );
        let cp = tel.critpath(name).expect("non-empty run has a critical path");
        assert!(!cp.truncated, "{name}: causal log truncated");
        assert!(cp.total_ns <= end_ns, "{name}: critical path ends after the pinned end time");
        let seg_sum: u64 = cp.segments.iter().map(|s| s.len_ns()).sum();
        assert_eq!(seg_sum, cp.total_ns, "{name}: on-path durations must sum to the makespan");
        // Every delivered parcel got a causally-attributed delivery node.
        let paths = tel.parcel_paths();
        assert_eq!(paths.len(), 40, "{name}: expected one causal path per parcel");
        for pp in &paths {
            let sum: u64 = pp.segments.iter().map(|s| s.len_ns()).sum();
            assert_eq!(sum, pp.total_ns, "{name}: parcel {} path identity", pp.flow);
        }
    }
}

#[test]
fn octotiger_trace_matches_pre_rewrite_engine() {
    use hpx_lci_repro::octotiger_mini::{run_octotiger, OctoParams};
    let mut p = OctoParams::expanse("lci_psr_cq_pin_i".parse().unwrap(), 4);
    p.level = 3;
    p.steps = 2;
    p.cores = 6;
    let r = run_octotiger(&p);
    assert!(r.completed);
    assert_eq!(
        r.total.as_nanos(),
        2_374_261,
        "octotiger virtual runtime moved — engine changed simulation semantics"
    );
}
