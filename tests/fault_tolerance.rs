//! Fault injection: the parcelports' matching and assembly logic must
//! tolerate the reorderings our fabric can legally produce, and the
//! test-only fault hooks must be observable end to end.

mod common;

use common::{reference_checksums, send_all};
use hpx_lci_repro::netsim::FaultConfig;
use hpx_lci_repro::parcelport::WorldConfig;

#[test]
fn reordered_channel_still_delivers_mpi() {
    // Adjacent-packet swaps exercise the unexpected-message path: a
    // follow-up chunk can now arrive before its header.
    let payloads: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 100 + i * 731]).collect();
    let reference = reference_checksums(&payloads);
    let mut cfg = WorldConfig::two_nodes("mpi_i".parse().unwrap(), 6);
    cfg.faults = Some(FaultConfig { reorder_prob: 0.5, ..FaultConfig::default() });
    let d = send_all(cfg, payloads);
    assert_eq!(d.delivered, 20, "messages lost under reordering");
    let mut got = d.checksums;
    let mut want = reference;
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "payloads corrupted under reordering");
}

#[test]
fn reordered_channel_still_delivers_lci_sendrecv() {
    // The LCI parcelport's distinct-tag-per-message design exists
    // precisely because LCI does not guarantee in-order delivery (§3.2.1)
    // — so reordering must be harmless.
    let payloads: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 50 + i * 997]).collect();
    let reference = reference_checksums(&payloads);
    for name in ["lci_sr_cq_pin_i", "lci_psr_cq_pin_i"] {
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 6);
        cfg.faults = Some(FaultConfig { reorder_prob: 0.5, ..FaultConfig::default() });
        let d = send_all(cfg, payloads.clone());
        assert_eq!(d.delivered, 20, "{name}: messages lost under reordering");
        let mut got = d.checksums;
        let mut want = reference.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{name}: payloads corrupted under reordering");
    }
}

/// Build a fat-tree cluster world with a counting sink and return
/// `(world, hit-counter, sink-spawner)` plumbing for the topology tests.
mod cluster {
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::{ActionId, ActionRegistry};
    use hpx_lci_repro::parcelport::{build_world, World, WorldConfig};
    use std::cell::Cell;
    use std::rc::Rc;

    pub fn build(cfg: &WorldConfig) -> (World, Rc<Cell<usize>>, ActionId) {
        let mut registry = ActionRegistry::new();
        let got = Rc::new(Cell::new(0usize));
        let g = got.clone();
        registry.register("sink", move |sim, _l, _c, _p| {
            g.set(g.get() + 1);
            sim.now() + 100
        });
        let sink = registry.id_of("sink").unwrap();
        let world = build_world(cfg, registry);
        (world, got, sink)
    }

    pub fn blast(world: &mut World, src: usize, dst: usize, sink: ActionId, n: usize) {
        for _ in 0..n {
            let loc = world.locality(src).clone();
            loc.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    loc.send_action(sim, core, dst, sink, vec![Bytes::from_static(b"parcel")])
                }),
            );
        }
    }
}

#[test]
fn fat_tree_link_failure_reroutes_and_delivers() {
    // Kill a link on the hot route mid-run: the static tables must
    // recompute, every parcel posted after the failure must still arrive
    // (over the surviving path diversity), and the dead port must be
    // observable — frozen xmit counters plus a bumped LinkDowned.
    let cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 8, 4);
    let (mut world, got, sink) = cluster::build(&cfg);

    // Batch 1: localities 0 and 7 sit in different pods — 5-hop routes.
    cluster::blast(&mut world, 0, 7, sink, 10);
    let g = got.clone();
    assert!(world.run_while(10_000_000_000, move |_| g.get() < 10), "batch 1 lost parcels");

    // Kill the first up-link of the 0 -> 7 route (both directions).
    let (victim, before, old_route) = {
        let fab = world.fabric.borrow();
        let topo = fab.topology().expect("cluster runs on a switched fabric");
        let route = topo.route_ports(0, 7);
        let victim = route[0];
        (victim, topo.port_counters(victim.0, victim.1), route)
    };
    assert!(before.xmit_pkts > 0, "victim must sit on the hot route");
    assert!(world.fabric.borrow_mut().fail_link(victim.0, victim.1), "kill must take effect");

    // Batch 2: rerouted traffic must still arrive.
    cluster::blast(&mut world, 0, 7, sink, 10);
    let g = got.clone();
    assert!(world.run_while(10_000_000_000, move |_| g.get() < 20), "batch 2 lost parcels");

    let fab = world.fabric.borrow();
    let topo = fab.topology().unwrap();
    let after = topo.port_counters(victim.0, victim.1);
    assert_eq!(after.xmit_pkts, before.xmit_pkts, "dead port must stop transmitting");
    assert_eq!(after.link_downed, 1, "LinkDowned error counter must record the failure");
    assert_ne!(topo.route_ports(0, 7), old_route, "route must avoid the dead link");
}

#[test]
fn per_link_drop_faults_retransmit_but_deliver() {
    // Per-link loss on a multi-hop fat-tree route: every hop rolls
    // independently and recovers via link-level retransmit, so delivery
    // stays reliable while the retry counters record the flakiness.
    let mut cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 8, 4);
    cfg.faults = Some(FaultConfig { drop_prob: 0.3, ..FaultConfig::default() });
    let (mut world, got, sink) = cluster::build(&cfg);
    cluster::blast(&mut world, 0, 7, sink, 25);
    let g = got.clone();
    assert!(world.run_while(20_000_000_000, move |_| g.get() < 25), "drops must not lose parcels");
    let fab = world.fabric.borrow();
    let topo = fab.topology().unwrap();
    let retries: u64 = topo.ranked_ports().iter().map(|r| r.1.retries).sum();
    assert!(retries > 0, "30% per-link loss must trigger link-level retransmits");
    assert!(world.sim.stats.get("net.retransmitted") > 0);
}

#[test]
fn pool_exhaustion_recovers() {
    // Shrink the LCI packet pool drastically: sends hit Retry and must
    // recover through the parcelport's retry queue.
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::ActionRegistry;
    use hpx_lci_repro::parcelport::build_world;
    use std::cell::Cell;
    use std::rc::Rc;

    let mut registry = ActionRegistry::new();
    let got = Rc::new(Cell::new(0usize));
    let g = got.clone();
    registry.register("sink", move |sim, _l, _c, _p| {
        g.set(g.get() + 1);
        sim.now() + 100
    });
    let sink = registry.id_of("sink").unwrap();
    let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 8);
    let mut world = build_world(&cfg, registry);
    // Flood far more concurrent messages than the default pool holds
    // head-room for in one burst.
    let n = 6_000usize;
    for chunk in 0..n / 100 {
        let loc0 = world.locality(0).clone();
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let mut t = sim.now();
                for _ in 0..100 {
                    t = loc.send_action(
                        sim,
                        core,
                        1,
                        sink,
                        vec![Bytes::from(vec![chunk as u8; 8])],
                    );
                }
                t
            }),
        );
    }
    let g = got.clone();
    let done = world.run_while(120_000_000_000, move |_| g.get() < n);
    assert!(done, "only {}/{} delivered after pool pressure", got.get(), n);
}
