//! Fault injection: the parcelports' matching and assembly logic must
//! tolerate the reorderings our fabric can legally produce, and the
//! test-only fault hooks must be observable end to end.

mod common;

use common::{reference_checksums, send_all};
use hpx_lci_repro::netsim::FaultConfig;
use hpx_lci_repro::parcelport::WorldConfig;

#[test]
fn reordered_channel_still_delivers_mpi() {
    // Adjacent-packet swaps exercise the unexpected-message path: a
    // follow-up chunk can now arrive before its header.
    let payloads: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 100 + i * 731]).collect();
    let reference = reference_checksums(&payloads);
    let mut cfg = WorldConfig::two_nodes("mpi_i".parse().unwrap(), 6);
    cfg.faults = Some(FaultConfig { duplicate_prob: 0.0, reorder_prob: 0.5 });
    let d = send_all(cfg, payloads);
    assert_eq!(d.delivered, 20, "messages lost under reordering");
    let mut got = d.checksums;
    let mut want = reference;
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "payloads corrupted under reordering");
}

#[test]
fn reordered_channel_still_delivers_lci_sendrecv() {
    // The LCI parcelport's distinct-tag-per-message design exists
    // precisely because LCI does not guarantee in-order delivery (§3.2.1)
    // — so reordering must be harmless.
    let payloads: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 50 + i * 997]).collect();
    let reference = reference_checksums(&payloads);
    for name in ["lci_sr_cq_pin_i", "lci_psr_cq_pin_i"] {
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 6);
        cfg.faults = Some(FaultConfig { duplicate_prob: 0.0, reorder_prob: 0.5 });
        let d = send_all(cfg, payloads.clone());
        assert_eq!(d.delivered, 20, "{name}: messages lost under reordering");
        let mut got = d.checksums;
        let mut want = reference.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{name}: payloads corrupted under reordering");
    }
}

#[test]
fn pool_exhaustion_recovers() {
    // Shrink the LCI packet pool drastically: sends hit Retry and must
    // recover through the parcelport's retry queue.
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::ActionRegistry;
    use hpx_lci_repro::parcelport::build_world;
    use std::cell::Cell;
    use std::rc::Rc;

    let mut registry = ActionRegistry::new();
    let got = Rc::new(Cell::new(0usize));
    let g = got.clone();
    registry.register("sink", move |sim, _l, _c, _p| {
        g.set(g.get() + 1);
        sim.now() + 100
    });
    let sink = registry.id_of("sink").unwrap();
    let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 8);
    let mut world = build_world(&cfg, registry);
    // Flood far more concurrent messages than the default pool holds
    // head-room for in one burst.
    let n = 6_000usize;
    for chunk in 0..n / 100 {
        let loc0 = world.locality(0).clone();
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let mut t = sim.now();
                for _ in 0..100 {
                    t = loc.send_action(
                        sim,
                        core,
                        1,
                        sink,
                        vec![Bytes::from(vec![chunk as u8; 8])],
                    );
                }
                t
            }),
        );
    }
    let g = got.clone();
    let done = world.run_while(120_000_000_000, move |_| g.get() < n);
    assert!(done, "only {}/{} delivered after pool pressure", got.get(), n);
}
