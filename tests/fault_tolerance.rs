//! Fault injection: the parcelports' matching and assembly logic must
//! tolerate the reorderings our fabric can legally produce, and the
//! test-only fault hooks must be observable end to end.

mod common;

use common::{reference_checksums, send_all};
use hpx_lci_repro::netsim::FaultConfig;
use hpx_lci_repro::parcelport::WorldConfig;

#[test]
fn reordered_channel_still_delivers_mpi() {
    // Adjacent-packet swaps exercise the unexpected-message path: a
    // follow-up chunk can now arrive before its header.
    let payloads: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 100 + i * 731]).collect();
    let reference = reference_checksums(&payloads);
    let mut cfg = WorldConfig::two_nodes("mpi_i".parse().unwrap(), 6);
    cfg.faults = Some(FaultConfig { reorder_prob: 0.5, ..FaultConfig::default() });
    let d = send_all(cfg, payloads);
    assert_eq!(d.delivered, 20, "messages lost under reordering");
    let mut got = d.checksums;
    let mut want = reference;
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "payloads corrupted under reordering");
}

#[test]
fn reordered_channel_still_delivers_lci_sendrecv() {
    // The LCI parcelport's distinct-tag-per-message design exists
    // precisely because LCI does not guarantee in-order delivery (§3.2.1)
    // — so reordering must be harmless.
    let payloads: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 50 + i * 997]).collect();
    let reference = reference_checksums(&payloads);
    for name in ["lci_sr_cq_pin_i", "lci_psr_cq_pin_i"] {
        let mut cfg = WorldConfig::two_nodes(name.parse().unwrap(), 6);
        cfg.faults = Some(FaultConfig { reorder_prob: 0.5, ..FaultConfig::default() });
        let d = send_all(cfg, payloads.clone());
        assert_eq!(d.delivered, 20, "{name}: messages lost under reordering");
        let mut got = d.checksums;
        let mut want = reference.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{name}: payloads corrupted under reordering");
    }
}

/// Build a fat-tree cluster world with a counting sink and return
/// `(world, hit-counter, sink-spawner)` plumbing for the topology tests.
mod cluster {
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::{ActionId, ActionRegistry};
    use hpx_lci_repro::parcelport::{build_world, World, WorldConfig};
    use std::cell::Cell;
    use std::rc::Rc;

    pub fn build(cfg: &WorldConfig) -> (World, Rc<Cell<usize>>, ActionId) {
        let mut registry = ActionRegistry::new();
        let got = Rc::new(Cell::new(0usize));
        let g = got.clone();
        registry.register("sink", move |sim, _l, _c, _p| {
            g.set(g.get() + 1);
            sim.now() + 100
        });
        let sink = registry.id_of("sink").unwrap();
        let world = build_world(cfg, registry);
        (world, got, sink)
    }

    pub fn blast(world: &mut World, src: usize, dst: usize, sink: ActionId, n: usize) {
        for _ in 0..n {
            let loc = world.locality(src).clone();
            loc.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    loc.send_action(sim, core, dst, sink, vec![Bytes::from_static(b"parcel")])
                }),
            );
        }
    }
}

#[test]
fn fat_tree_link_failure_reroutes_and_delivers() {
    // Kill a link on the hot route mid-run: the static tables must
    // recompute, every parcel posted after the failure must still arrive
    // (over the surviving path diversity), and the dead port must be
    // observable — frozen xmit counters plus a bumped LinkDowned.
    let cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 8, 4);
    let (mut world, got, sink) = cluster::build(&cfg);

    // Batch 1: localities 0 and 7 sit in different pods — 5-hop routes.
    cluster::blast(&mut world, 0, 7, sink, 10);
    let g = got.clone();
    assert!(world.run_while(10_000_000_000, move |_| g.get() < 10), "batch 1 lost parcels");

    // Kill the first up-link of the 0 -> 7 route (both directions).
    let (victim, before, old_route) = {
        let fab = world.fabric.borrow();
        let topo = fab.topology().expect("cluster runs on a switched fabric");
        let route = topo.route_ports(0, 7);
        let victim = route[0];
        (victim, topo.port_counters(victim.0, victim.1), route)
    };
    assert!(before.xmit_pkts > 0, "victim must sit on the hot route");
    assert!(world.fabric.borrow_mut().fail_link(victim.0, victim.1), "kill must take effect");

    // Batch 2: rerouted traffic must still arrive.
    cluster::blast(&mut world, 0, 7, sink, 10);
    let g = got.clone();
    assert!(world.run_while(10_000_000_000, move |_| g.get() < 20), "batch 2 lost parcels");

    let fab = world.fabric.borrow();
    let topo = fab.topology().unwrap();
    let after = topo.port_counters(victim.0, victim.1);
    assert_eq!(after.xmit_pkts, before.xmit_pkts, "dead port must stop transmitting");
    assert_eq!(after.link_downed, 1, "LinkDowned error counter must record the failure");
    assert_ne!(topo.route_ports(0, 7), old_route, "route must avoid the dead link");
}

#[test]
fn link_failure_is_visible_in_the_windowed_timeline() {
    // Chaos visibility: a mid-run link failure must be observable in the
    // windowed timeline three ways — (a) an SLO alert in the window the
    // latency breach occurs, (b) a flight-recorder dump carrying the
    // rerouted parcels, (c) a p999 step in the windowed series that the
    // run-total mean hides.
    use bytes::Bytes;
    use hpx_lci_repro::parcelport::World;
    use hpx_lci_repro::telemetry::timeline::FlightRec;
    use hpx_lci_repro::telemetry::{self, SloRule, TimelineConfig};

    // A long post-roll keeps the flight recorder armed across the whole
    // degraded batch, so the dump carries the rerouted deliveries.
    let tel = telemetry::enable_with(TimelineConfig {
        window_ns: 2_000,
        post_roll_windows: 128,
        ..TimelineConfig::default()
    });
    let cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 8, 4);
    let (mut world, got, sink) = cluster::build(&cfg);

    // Chunky payloads make uplink serialization a visible share of the
    // latency, so a post-failure route collision shows as a step.
    let data = Bytes::from(vec![0u8; 65536]);
    let blast = |world: &mut World, src: usize, dst: usize, n: usize, data: &Bytes| {
        for _ in 0..n {
            let loc = world.locality(src).clone();
            let d = data.clone();
            loc.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| loc.send_action(sim, core, dst, sink, vec![d])),
            );
        }
    };

    // Two flows from the same edge switch whose static routes are
    // port-disjoint: 0 -> 7 plus a 1 -> dst2 decoy. Killing the 0 -> 7
    // up-link then forces both flows onto shared ports.
    let (dst2, victim) = {
        let fab = world.fabric.borrow();
        let topo = fab.topology().expect("cluster runs on a switched fabric");
        let route07 = topo.route_ports(0, 7);
        let victim = route07[0];
        let dst2 = (4..7)
            .find(|&d| topo.route_ports(1, d).iter().all(|p| !route07.contains(p)))
            .expect("the fat tree offers a port-disjoint second flow");
        (dst2, victim)
    };

    // Batch 1 (healthy): both flows in parallel on disjoint up-links.
    blast(&mut world, 0, 7, 15, &data);
    blast(&mut world, 1, dst2, 15, &data);
    let g = got.clone();
    assert!(world.run_while(10_000_000_000, move |_| g.get() < 30), "batch 1 lost parcels");

    // Objective derived from the healthy batch: the smallest latency
    // bound that classifies every batch-1 sample as good (bucket
    // granularity included) — any later breach is fault-induced.
    let h1 = tel
        .with_timeline(|tl| tl.merged_hist("parcel.latency_ns").expect("batch 1 delivered"))
        .expect("timeline enabled");
    let mut objective = h1.max();
    while h1.count_at_most(objective) < h1.count() {
        objective += (h1.max() / 8).max(1);
    }
    tel.timeline_add_rule(SloRule {
        name: "reroute-lat".into(),
        hist: "parcel.latency_ns".into(),
        objective_ns: objective,
        target: 0.99,
        burn_threshold: 1.0,
        min_samples: 1,
    });

    // Kill the hot up-link; the fault event arms the flight recorder at
    // the current cursor instant. Then keep killing whatever up-link the
    // reroute picks until 0 -> 7 is forced onto the decoy's up-link —
    // the fat tree's path diversity would otherwise dodge the collision.
    let fault_ns = tel.with_timeline(|tl| tl.cursor_ns()).expect("timeline enabled");
    assert!(world.fabric.borrow_mut().fail_link(victim.0, victim.1), "kill must take effect");
    let decoy_up = {
        let fab = world.fabric.borrow();
        fab.topology().unwrap().route_ports(1, dst2)[0]
    };
    for _ in 0..8 {
        let hop = {
            let fab = world.fabric.borrow();
            fab.topology().unwrap().route_ports(0, 7)[0]
        };
        if hop == decoy_up {
            break;
        }
        assert!(world.fabric.borrow_mut().fail_link(hop.0, hop.1), "kill must take effect");
    }
    {
        let fab = world.fabric.borrow();
        assert_eq!(
            fab.topology().unwrap().route_ports(0, 7)[0],
            decoy_up,
            "flows must share the surviving up-link"
        );
    }

    // Batch 2 (degraded): the rerouted flow collides with the decoy.
    blast(&mut world, 0, 7, 15, &data);
    blast(&mut world, 1, dst2, 15, &data);
    let g = got.clone();
    assert!(world.run_while(10_000_000_000, move |_| g.get() < 60), "batch 2 lost parcels");
    telemetry::disable();
    tel.timeline_finalize();

    // (a) The SLO alert lands exactly in the first window holding an
    // over-objective sample, at or after the failure.
    let fault_w = tel.with_timeline(|tl| tl.window_of(fault_ns)).expect("timeline enabled");
    let alerts = tel.timeline_alerts();
    let alert = alerts
        .iter()
        .find(|a| a.rule == "reroute-lat")
        .expect("link failure must breach the derived SLO");
    assert!(alert.window >= fault_w, "alert precedes the failure");
    let first_bad = tel
        .with_timeline(|tl| {
            (0..tl.num_windows()).find(|&w| {
                tl.hist_window("parcel.latency_ns", w)
                    .is_some_and(|h| h.count_at_most(objective) < h.count())
            })
        })
        .expect("timeline enabled")
        .expect("a breached window exists");
    assert_eq!(alert.window, first_bad, "alert must land in the window the breach occurs");

    // (b) The flight-recorder dump names the fault and carries rerouted
    // 0 -> 7 parcels delivered after the failure instant.
    let dumps = tel.timeline_dumps();
    let dump = dumps
        .iter()
        .find(|d| d.reason == "fault:fab.link_down")
        .expect("link failure must dump the flight recorder");
    let rerouted = dump
        .records
        .iter()
        .filter(|r| {
            matches!(r, FlightRec::Flow { src: 0, dst: 7, deliver_ns, .. }
                     if *deliver_ns > fault_ns)
        })
        .count();
    assert!(rerouted > 0, "dump must contain rerouted 0->7 parcels");

    // (c) The tail step is windowed-only: some post-failure window's
    // p999 breaches the objective while the run-total mean stays under.
    let merged = tel
        .with_timeline(|tl| tl.merged_hist("parcel.latency_ns").expect("deliveries recorded"))
        .expect("timeline enabled");
    assert!(merged.mean() < objective as f64, "the run mean must hide the fault");
    let step = tel
        .with_timeline(|tl| {
            (fault_w..tl.num_windows()).any(|w| {
                tl.hist_window("parcel.latency_ns", w).is_some_and(|h| h.p999() > objective)
            })
        })
        .expect("timeline enabled");
    assert!(step, "post-failure windows must show a p999 step over the objective");
}

#[test]
fn per_link_drop_faults_retransmit_but_deliver() {
    // Per-link loss on a multi-hop fat-tree route: every hop rolls
    // independently and recovers via link-level retransmit, so delivery
    // stays reliable while the retry counters record the flakiness.
    let mut cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 8, 4);
    cfg.faults = Some(FaultConfig { drop_prob: 0.3, ..FaultConfig::default() });
    let (mut world, got, sink) = cluster::build(&cfg);
    cluster::blast(&mut world, 0, 7, sink, 25);
    let g = got.clone();
    assert!(world.run_while(20_000_000_000, move |_| g.get() < 25), "drops must not lose parcels");
    let fab = world.fabric.borrow();
    let topo = fab.topology().unwrap();
    let retries: u64 = topo.ranked_ports().iter().map(|r| r.1.retries).sum();
    assert!(retries > 0, "30% per-link loss must trigger link-level retransmits");
    assert!(world.sim.stats.get("net.retransmitted") > 0);
}

#[test]
fn pool_exhaustion_recovers() {
    // Shrink the LCI packet pool drastically: sends hit Retry and must
    // recover through the parcelport's retry queue.
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::ActionRegistry;
    use hpx_lci_repro::parcelport::build_world;
    use std::cell::Cell;
    use std::rc::Rc;

    let mut registry = ActionRegistry::new();
    let got = Rc::new(Cell::new(0usize));
    let g = got.clone();
    registry.register("sink", move |sim, _l, _c, _p| {
        g.set(g.get() + 1);
        sim.now() + 100
    });
    let sink = registry.id_of("sink").unwrap();
    let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 8);
    let mut world = build_world(&cfg, registry);
    // Flood far more concurrent messages than the default pool holds
    // head-room for in one burst.
    let n = 6_000usize;
    for chunk in 0..n / 100 {
        let loc0 = world.locality(0).clone();
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let mut t = sim.now();
                for _ in 0..100 {
                    t = loc.send_action(
                        sim,
                        core,
                        1,
                        sink,
                        vec![Bytes::from(vec![chunk as u8; 8])],
                    );
                }
                t
            }),
        );
    }
    let g = got.clone();
    let done = world.run_while(120_000_000_000, move |_| g.get() < n);
    assert!(done, "only {}/{} delivered after pool pressure", got.get(), n);
}
