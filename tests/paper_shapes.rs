//! The paper's headline findings as executable assertions.
//!
//! Each test pins one qualitative result from §4/§5 (a *shape*, not an
//! absolute number) at reduced scale so the suite stays fast. The full
//! figures live in `crates/bench/src/bin/`.

use bench::{run_latency, run_msgrate, LatencyParams, MsgRateParams};

fn rate8(config: &str) -> f64 {
    let mut p = MsgRateParams::small(config.parse().unwrap());
    p.total_msgs = 30_000;
    p.cores = 32;
    let r = run_msgrate(&p);
    assert!(r.completed, "{config}: did not complete");
    r.msg_rate
}

fn rate16(config: &str) -> f64 {
    let mut p = MsgRateParams::large(config.parse().unwrap());
    p.total_msgs = 6_000;
    p.cores = 32;
    let r = run_msgrate(&p);
    // MPI at 16 KiB may hit the deadline under unlimited injection —
    // that *is* the paper's observation; use the partial rate then.
    r.msg_rate
}

fn latency(config: &str, size: usize) -> f64 {
    let mut p = LatencyParams::new(config.parse().unwrap(), size);
    p.steps = 200;
    let r = run_latency(&p);
    assert!(r.completed, "{config}: latency run did not complete");
    r.one_way_us
}

#[test]
fn lci_beats_mpi_on_small_message_rate() {
    // §4.1 / Fig. 1: the LCI baseline sustains a higher 8 B rate than
    // either MPI variant.
    let lci = rate8("lci_psr_cq_pin_i");
    assert!(lci > rate8("mpi") * 1.2, "lci vs mpi");
    assert!(lci > rate8("mpi_i") * 1.2, "lci vs mpi_i");
}

#[test]
fn dedicated_progress_thread_wins_at_8b() {
    // §4.1 / Fig. 2: pin vs mt — thread contention in the progress
    // engine caps the mt variants well below the pinned thread.
    let pin = rate8("lci_psr_cq_pin_i");
    let mt = rate8("lci_psr_cq_mt_i");
    assert!(pin > mt * 1.4, "pin {pin} vs mt {mt}");
}

#[test]
fn put_beats_send_recv_at_8b() {
    // §7.1: "a put with a remote completion signal achieves better
    // performance than send-recv at high short-message rates".
    let psr = rate8("lci_psr_cq_pin_i");
    let sr = rate8("lci_sr_cq_pin_i");
    assert!(psr > sr * 1.5, "psr {psr} vs sr {sr}");
}

#[test]
fn send_immediate_helps_psr_small_messages() {
    // §4.1: removing aggregation improves lci_psr_cq_pin by up to 80%.
    let imm = rate8("lci_psr_cq_pin_i");
    let agg = rate8("lci_psr_cq_pin");
    assert!(imm > agg * 1.2, "immediate {imm} vs aggregated {agg}");
}

#[test]
fn lci_dominates_mpi_at_16k() {
    // §4.1 / Fig. 4: up to 30x; we assert a conservative 3x at our scale.
    let lci = rate16("lci_psr_cq_pin_i");
    let mpi = rate16("mpi_i");
    assert!(lci > mpi * 3.0, "lci {lci} vs mpi_i {mpi}");
}

#[test]
fn aggregation_cannot_help_large_messages() {
    // §4.1: non-immediate variants plateau far below immediate at 16 KiB
    // (zero-copy chunks cannot aggregate).
    let imm = rate16("lci_psr_cq_pin_i");
    let agg = rate16("lci_psr_cq_pin");
    assert!(imm > agg * 2.0, "immediate {imm} vs aggregated {agg}");
}

#[test]
fn latency_ordering_small_messages() {
    // §4.2 / Fig. 7: the LCI baseline has the lowest small-message
    // latency; mpi_i is close (paper: ~1.3x) but not better.
    let lci = latency("lci_psr_cq_pin_i", 8);
    let mpi_i = latency("mpi_i", 8);
    assert!(mpi_i >= lci, "mpi_i {mpi_i} vs lci {lci}");
    assert!(mpi_i < lci * 3.0, "mpi_i should be in the same league below 1KB");
}

#[test]
fn mpi_latency_blows_up_for_large_messages() {
    // §4.2 / Fig. 7: mpi_i is 3-5x worse than the LCI baseline above the
    // zero-copy threshold (protocol switch in MPI/UCX).
    let lci = latency("lci_psr_cq_pin_i", 64 * 1024);
    let mpi_i = latency("mpi_i", 64 * 1024);
    assert!(mpi_i > lci * 2.0, "mpi_i {mpi_i} vs lci {lci}");
}

#[test]
fn send_immediate_always_helps_lci_latency() {
    // §4.2: "for all LCI parcelport variants, the send-immediate
    // optimization always helps reduce the message latency".
    let (with, without) = ("lci_psr_cq_pin_i", "lci_psr_cq_pin");
    let a = latency(with, 8);
    let b = latency(without, 8);
    assert!(a <= b * 1.05, "{with} {a} vs {without} {b}");
}

#[test]
fn window_growth_hurts_mpi_more() {
    // §4.2 / Fig. 9: the mpi_i : lci ratio grows with the window size.
    let lat = |config: &str, window: usize| {
        let mut p = LatencyParams::new(config.parse().unwrap(), 16 * 1024);
        p.steps = 120;
        p.window = window;
        run_latency(&p).one_way_us
    };
    let r1 = lat("mpi_i", 1) / lat("lci_psr_cq_pin_i", 1);
    let r16 = lat("mpi_i", 16) / lat("lci_psr_cq_pin_i", 16);
    assert!(r16 > r1, "ratio must grow with window: w1={r1:.2} w16={r16:.2}");
}

#[test]
fn octotiger_lci_wins_at_scale() {
    // §5 / Fig. 10: lci >= mpi >= mpi_i at high node counts.
    use hpx_lci_repro::octotiger_mini::{run_octotiger, OctoParams};
    let run = |cfg: &str| {
        let mut p = OctoParams::expanse(cfg.parse().unwrap(), 16);
        p.level = 4;
        p.steps = 3;
        let r = run_octotiger(&p);
        assert!(r.completed && r.mass_ok, "{cfg}: {r:?}");
        r.steps_per_sec
    };
    let lci = run("lci_psr_cq_pin_i");
    let mpi_i = run("mpi_i");
    assert!(lci > mpi_i, "lci {lci} vs mpi_i {mpi_i}");
}
