//! Windowed-timeline invariants on real end-to-end workloads: for every
//! instrumented run, the merge of all per-window sub-histograms must
//! reproduce the run-total histogram exactly (bucket-identical — same
//! counts, min/max, and every quantile), every counter's window deltas
//! must sum to its run total, and per-port window accounting must agree
//! with the fabric's own port counters. Checked on the fig-1 message-rate
//! shape, the fig-8 latency shape, and a 64-locality fat-tree run.

mod common;

use std::collections::BTreeMap;

use hpx_lci_repro::telemetry::{self, Histogram, Telemetry, TimelineConfig};

/// Assert the window-partition invariant: windowed histograms and
/// counters recombine exactly to the run totals, for every key.
fn assert_windows_partition(tel: &Telemetry, what: &str) {
    tel.timeline_finalize();
    let merged: BTreeMap<&'static str, Histogram> = tel
        .with_timeline(|tl| {
            let keys: Vec<_> = tl.hist_keys().collect();
            keys.into_iter().map(|k| (k, tl.merged_hist(k).expect("windowed key"))).collect()
        })
        .expect("timeline enabled");
    let totals: BTreeMap<&'static str, Histogram> =
        tel.with_metrics(|m| m.hists().map(|(k, h)| (k, h.clone())).collect());
    assert!(!merged.is_empty(), "{what}: run recorded no windowed histograms");
    assert_eq!(
        merged.keys().collect::<Vec<_>>(),
        totals.keys().collect::<Vec<_>>(),
        "{what}: windowed histogram keys diverge from the run totals"
    );
    for (k, m) in &merged {
        let t = &totals[k];
        assert_eq!(m, t, "{what}: merged windows of {k:?} are not bucket-identical to the total");
        assert_eq!(
            (m.p50(), m.p90(), m.p99(), m.p999()),
            (t.p50(), t.p90(), t.p99(), t.p999()),
            "{what}: quantiles of {k:?} diverge"
        );
        assert_eq!((m.min(), m.max(), m.count()), (t.min(), t.max(), t.count()));
    }
    let counter_keys: Vec<&'static str> =
        tel.with_timeline(|tl| tl.counter_keys().collect()).expect("timeline enabled");
    let counter_totals: BTreeMap<&'static str, u64> = tel.with_metrics(|m| m.counters().collect());
    assert_eq!(
        counter_keys,
        counter_totals.keys().copied().collect::<Vec<_>>(),
        "{what}: windowed counter keys diverge from the run totals"
    );
    for (k, total) in &counter_totals {
        let sum = tel
            .with_timeline(|tl| tl.counter_windows(k).map(|w| w.values().sum::<u64>()))
            .expect("timeline enabled")
            .unwrap_or(0);
        assert_eq!(sum, *total, "{what}: counter {k:?} window deltas do not sum to the total");
    }
    // Coverage is gap-free by construction; sanity-check the horizon.
    let (nwin, window_ns, cursor) = tel
        .with_timeline(|tl| (tl.num_windows(), tl.window_ns(), tl.cursor_ns()))
        .expect("timeline enabled");
    assert!(nwin * window_ns > cursor, "{what}: windows do not cover the horizon");
}

#[test]
fn msgrate_windows_partition_exactly() {
    use bench::{run_msgrate, MsgRateParams};
    let tel = telemetry::enable_with(TimelineConfig::default());
    let mut p = MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
    p.total_msgs = 2_000;
    let r = run_msgrate(&p);
    telemetry::disable();
    assert!(r.msg_rate > 0.0);
    assert_windows_partition(&tel, "fig1 msgrate");
}

#[test]
fn latency_windows_partition_exactly() {
    use bench::{run_latency, LatencyParams};
    let tel = telemetry::enable_with(TimelineConfig::default());
    let mut p = LatencyParams::new("lci_psr_cq_pin_i".parse().unwrap(), 8);
    p.window = 16;
    p.steps = 25;
    let r = run_latency(&p);
    telemetry::disable();
    assert!(r.one_way_us > 0.0);
    assert_windows_partition(&tel, "fig8 latency");
}

#[test]
fn fat_tree_64_windows_partition_exactly() {
    use bytes::Bytes;
    use hpx_lci_repro::amt::action::ActionRegistry;
    use hpx_lci_repro::parcelport::{build_world, WorldConfig};
    use std::cell::Cell;
    use std::rc::Rc;

    let tel = telemetry::enable_with(TimelineConfig::default());
    let mut registry = ActionRegistry::new();
    let got = Rc::new(Cell::new(0usize));
    let g = got.clone();
    registry.register("sink", move |sim, _l, _c, _p| {
        g.set(g.get() + 1);
        sim.now() + 100
    });
    let sink = registry.id_of("sink").unwrap();
    let cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 64, 2);
    let mut world = build_world(&cfg, registry);
    let n = 30usize;
    for i in 0..n {
        let loc = world.locality(0).clone();
        let dst = 1 + (i * 7) % 63;
        loc.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                loc.send_action(sim, core, dst, sink, vec![Bytes::from_static(b"parcel")])
            }),
        );
    }
    let g = got.clone();
    assert!(world.run_while(10_000_000_000, move |_| g.get() < n), "parcels lost");
    telemetry::disable();
    assert_windows_partition(&tel, "fat-tree 64");

    // Per-port window accounting must agree with the fabric's own port
    // counters — the same accesses, sliced by window.
    tel.timeline_finalize();
    let fab = world.fabric.borrow();
    let topo = fab.topology().expect("cluster runs on a switched fabric");
    let ranked = topo.ranked_ports();
    assert!(!ranked.is_empty(), "fat-tree 64: no port carried traffic");
    for (name, c) in &ranked {
        let (wait, pkts, bytes) = tel
            .with_timeline(|tl| {
                let ws = tl.port_windows(name).expect("port has windows");
                (
                    ws.values().map(|p| p.wait_ns).sum::<u64>(),
                    ws.values().map(|p| p.pkts).sum::<u64>(),
                    ws.values().map(|p| p.bytes).sum::<u64>(),
                )
            })
            .expect("timeline enabled");
        assert_eq!(wait, c.xmit_wait_ns, "{name}: windowed wait diverges from port counters");
        assert_eq!(pkts, c.xmit_pkts, "{name}: windowed packets diverge from port counters");
        assert_eq!(bytes, c.xmit_bytes, "{name}: windowed bytes diverge from port counters");
    }
}
