//! Criterion micro-benchmarks of the hot data structures: host-side cost
//! of the simulator's building blocks (these bound how large a virtual
//! experiment can be run per host-second).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::rc::Rc;

use amt::parcel::Parcel;
use amt::serialize::HpxMessage;
use bytes::Bytes;
use lci::{Comp, CompQueue, Request};
use parcelport::header::{plan_message, HeaderInfo, MAX_HEADER_SIZE};
use simcore::{CostModel, Sim, SimResource, SimTime};

fn bench_sim_events(c: &mut Criterion) {
    c.bench_function("sim/schedule+run 1000 events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            for i in 0..1000u64 {
                sim.schedule_in(i, |_| {});
            }
            sim.run();
            sim.now()
        })
    });
}

fn bench_resource(c: &mut Criterion) {
    c.bench_function("simcore/resource access alternating cores", |b| {
        let mut r = SimResource::new("bench", 300);
        let mut t = SimTime::ZERO;
        let mut core = 0usize;
        b.iter(|| {
            core ^= 1;
            t = r.access(t, core, 50);
            t
        })
    });
}

fn bench_cq(c: &mut Criterion) {
    c.bench_function("lci/cq push+pop", |b| {
        let cq = CompQueue::new("bench", 300);
        let cost = CostModel::default();
        let mut sim = Sim::new(0);
        b.iter(|| {
            let req = Request {
                op: lci::OpKind::Recv,
                rank: 0,
                tag: 1,
                data: Bytes::new(),
                user: 7,
                arrived: simcore::SimTime::ZERO,
            };
            cq.push(&mut sim, 0, &cost, req);
            cq.pop(&mut sim, 1, &cost).0
        })
    });
}

fn bench_comp_signal(c: &mut Criterion) {
    c.bench_function("lci/synchronizer signal+test", |b| {
        let cost = CostModel::default();
        let mut sim = Sim::new(0);
        b.iter_batched(
            || lci::Synchronizer::new(1, 300),
            |sync| {
                let req = Request {
                    op: lci::OpKind::Send,
                    rank: 0,
                    tag: 0,
                    data: Bytes::new(),
                    user: 0,
                    arrived: simcore::SimTime::ZERO,
                };
                sync.signal(&mut sim, 0, &cost, req);
                sync.test(&mut sim, 1, &cost).0
            },
            BatchSize::SmallInput,
        )
    });
    // Comp enum dispatch overhead reference point.
    c.bench_function("lci/comp clone", |b| {
        let cq = CompQueue::new("bench", 0);
        let comp = Comp::Cq(cq);
        b.iter(|| comp.clone())
    });
}

fn bench_hpx_codec(c: &mut Criterion) {
    let small = vec![Parcel::new(3, vec![Bytes::from(vec![1u8; 64])]); 8];
    let large = vec![Parcel::new(4, vec![Bytes::from(vec![2u8; 32 * 1024])]); 4];
    c.bench_function("amt/encode 8 small parcels", |b| b.iter(|| HpxMessage::encode(&small, 8192)));
    c.bench_function("amt/encode 4 zero-copy parcels", |b| {
        b.iter(|| HpxMessage::encode(&large, 8192))
    });
    let msg = HpxMessage::encode(&small, 8192);
    c.bench_function("amt/decode 8 small parcels", |b| b.iter(|| msg.decode()));
}

fn bench_header(c: &mut Criterion) {
    let parcels =
        [Parcel::new(0, vec![Bytes::from(vec![1u8; 256]), Bytes::from(vec![2u8; 20_000])])];
    let msg = HpxMessage::encode(&parcels, 8192);
    c.bench_function("parcelport/plan+decode header", |b| {
        b.iter(|| {
            let plan = plan_message(&msg, 42, MAX_HEADER_SIZE, true);
            HeaderInfo::decode(&plan.header).tag_base
        })
    });
}

fn bench_octree(c: &mut Criterion) {
    c.bench_function("octotiger/build level-4 tree + partition", |b| {
        b.iter(|| {
            let t = octotiger_mini::Octree::build(4);
            let p = octotiger_mini::partition(&t, 8);
            (t.len(), p.owner(0))
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let cost = Rc::new(CostModel::default());
    c.bench_function("simcore/cost memcpy+serialize", |b| {
        b.iter(|| cost.memcpy(16 * 1024) + cost.serialize(512))
    });
}

criterion_group!(
    benches,
    bench_sim_events,
    bench_resource,
    bench_cq,
    bench_comp_signal,
    bench_hpx_codec,
    bench_header,
    bench_octree,
    bench_cost_model
);
criterion_main!(benches);
