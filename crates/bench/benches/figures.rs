//! Criterion wrappers around one representative point of each paper
//! experiment, so `cargo bench` exercises the full virtual pipeline and
//! tracks regressions in simulator throughput.
//!
//! The complete figures (full injection grids, all variants) are the
//! binaries in `src/bin/`; these benches use reduced message counts.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{run_latency, run_msgrate, LatencyParams, MsgRateParams};
use octotiger_mini::{run_octotiger, OctoParams};

fn bench_msgrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("msgrate");
    g.sample_size(10);
    for cfg in ["lci_psr_cq_pin_i", "mpi_i"] {
        g.bench_function(format!("8B/{cfg}"), |b| {
            b.iter(|| {
                let mut p = MsgRateParams::small(cfg.parse().unwrap());
                p.total_msgs = 5_000;
                p.cores = 16;
                run_msgrate(&p).msg_rate
            })
        });
        g.bench_function(format!("16K/{cfg}"), |b| {
            b.iter(|| {
                let mut p = MsgRateParams::large(cfg.parse().unwrap());
                p.total_msgs = 1_000;
                p.cores = 16;
                run_msgrate(&p).msg_rate
            })
        });
    }
    g.finish();
}

fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency");
    g.sample_size(10);
    for cfg in ["lci_psr_cq_pin_i", "mpi_i"] {
        g.bench_function(format!("8B-w1/{cfg}"), |b| {
            b.iter(|| {
                let mut p = LatencyParams::new(cfg.parse().unwrap(), 8);
                p.steps = 100;
                p.cores = 16;
                run_latency(&p).one_way_us
            })
        });
    }
    g.finish();
}

fn bench_octotiger(c: &mut Criterion) {
    let mut g = c.benchmark_group("octotiger");
    g.sample_size(10);
    for cfg in ["lci_psr_cq_pin_i", "mpi_i"] {
        g.bench_function(format!("level3-4loc/{cfg}"), |b| {
            b.iter(|| {
                let mut p = OctoParams::expanse(cfg.parse().unwrap(), 4);
                p.level = 3;
                p.steps = 2;
                p.cores = 8;
                run_octotiger(&p).steps_per_sec
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_msgrate, bench_latency, bench_octotiger);
criterion_main!(benches);
