//! Shared command-line handling for the figure harnesses.
//!
//! Every harness (`fig1_msgrate_8b`, `fig8_latency_window_8b`,
//! `fig10_octotiger_expanse`, `fabric_sweep`) accepts the same
//! observability flags, parsed here exactly once — unknown flags are a
//! hard error, never silently ignored:
//!
//! * `--trace FILE` — combined Chrome-trace JSON of the nominated run;
//! * `--breakdown` — per-stage latency breakdown + contention report;
//! * `--json FILE` — machine-readable reports;
//! * `--profile` — per-core virtual-time state table + sparklines;
//! * `--folded FILE` — folded stacks for `inferno` / `flamegraph.pl`;
//! * `--critpath` — causal critical-path report (highlighted in
//!   `--trace` output);
//! * `--whatif KNOBS` — predicted-vs-measured speedup sweep;
//! * `--timeline FILE` — windowed timeline document (JSON) of the
//!   nominated run, plus `FILE.om` (OpenMetrics-style text exposition)
//!   and `FILE.dumpN.json` for any flight-recorder dumps;
//! * `--slo` — install the default latency-objective burn-rate rules and
//!   print any alerts;
//! * `--window-us N` — timeline window width (default 100 µs).
//!
//! [`dispatch`] owns the shared "instrumented pass instead of the full
//! sweep" branching the binaries used to duplicate.

use std::rc::Rc;

use telemetry::{SloRule, Telemetry, TimelineConfig};

/// Parsed observability flags.
#[derive(Debug, Default, Clone)]
pub struct TraceArgs {
    /// Chrome-trace output path (`--trace FILE`).
    pub trace: Option<String>,
    /// Print text breakdown + contention reports (`--breakdown`).
    pub breakdown: bool,
    /// Machine-readable report path (`--json FILE`).
    pub json: Option<String>,
    /// Print the per-core virtual-time profile (`--profile`).
    pub profile: bool,
    /// Folded-stack (flamegraph) output path (`--folded FILE`).
    pub folded: Option<String>,
    /// Print critical-path reports; highlight the path in `--trace`
    /// output (`--critpath`).
    pub critpath: bool,
    /// What-if knob sweep spec (`--whatif KNOBS`, `all` = default sweep).
    pub whatif: Option<String>,
    /// Windowed-timeline document path (`--timeline FILE`).
    pub timeline: Option<String>,
    /// Install the default SLO rules and print alerts (`--slo`).
    pub slo: bool,
    /// Timeline window width in µs (`--window-us N`).
    pub window_us: Option<u64>,
}

fn usage(offender: &str) -> ! {
    eprintln!(
        "unknown argument {offender:?} \
         (supported: --trace FILE, --breakdown, --json FILE, --profile, \
         --folded FILE, --critpath, --whatif KNOBS, --timeline FILE, \
         --slo, --window-us N)"
    );
    std::process::exit(2);
}

impl TraceArgs {
    /// Parse the harness command line; exits with a usage message on an
    /// unknown argument.
    pub fn parse() -> TraceArgs {
        TraceArgs::parse_from(std::env::args().skip(1))
    }

    /// [`TraceArgs::parse`] over an explicit argument list.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> TraceArgs {
        let mut out = TraceArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => out.trace = Some(it.next().expect("--trace needs a file path")),
                "--breakdown" => out.breakdown = true,
                "--json" => out.json = Some(it.next().expect("--json needs a file path")),
                "--profile" => out.profile = true,
                "--folded" => out.folded = Some(it.next().expect("--folded needs a file path")),
                "--critpath" => out.critpath = true,
                "--whatif" => out.whatif = Some(it.next().expect("--whatif needs a knob list")),
                "--timeline" => {
                    out.timeline = Some(it.next().expect("--timeline needs a file path"))
                }
                "--slo" => out.slo = true,
                "--window-us" => {
                    let v = it.next().expect("--window-us needs a width in microseconds");
                    out.window_us =
                        Some(v.parse().expect("--window-us width must be a positive integer"));
                }
                other => usage(other),
            }
        }
        out
    }

    /// Whether an instrumented pass was requested.
    pub fn active(&self) -> bool {
        self.trace.is_some()
            || self.breakdown
            || self.json.is_some()
            || self.profile
            || self.folded.is_some()
            || self.critpath
            || self.whatif.is_some()
            || self.timeline_active()
    }

    /// Whether per-config reports (rather than just one Chrome trace)
    /// were requested — decides how many configs the pass covers.
    pub fn wants_reports(&self) -> bool {
        self.breakdown || self.json.is_some() || self.profile || self.folded.is_some()
    }

    /// Whether the windowed timeline was requested.
    pub fn timeline_active(&self) -> bool {
        self.timeline.is_some() || self.slo || self.window_us.is_some()
    }

    /// The timeline configuration implied by the flags; `None` when no
    /// timeline flag is present.
    pub fn timeline_config(&self) -> Option<TimelineConfig> {
        if !self.timeline_active() {
            return None;
        }
        let mut cfg = TimelineConfig::default();
        if let Some(us) = self.window_us {
            cfg.window_ns = us.max(1) * 1_000;
        }
        if self.slo {
            cfg.slos = default_slo_rules();
        }
        Some(cfg)
    }

    /// The parsed `--whatif` knob list; exits with a usage message on an
    /// unknown knob spec.
    pub fn whatif_knobs(&self) -> Option<Vec<crate::whatif::Knob>> {
        use crate::whatif::Knob;
        let spec = self.whatif.as_deref()?;
        if spec == "all" {
            return Some(vec![
                Knob::SerializeScale(0.0),
                Knob::WireLatencyScale(2.0),
                Knob::WireLatencyScale(0.5),
                Knob::WireBandwidthScale(2.0),
                Knob::LockHoldScale(0.0),
                Knob::TagMatchOff,
                Knob::ProgressPerOpOff,
                Knob::PollSkewOff,
                Knob::SendImmediate,
            ]);
        }
        Some(
            spec.split(',')
                .map(|s| {
                    Knob::parse(s.trim()).unwrap_or_else(|| {
                        eprintln!(
                            "unknown --whatif knob {s:?} (supported: serialize_xK, \
                             wire_latency_xK, wire_bw_xK, lock_hold_xK, tag_match_off, \
                             cq_per_op_off, poll_skew_off, send_immediate, all)"
                        );
                        std::process::exit(2);
                    })
                })
                .collect(),
        )
    }
}

/// The default `--slo` rules: end-to-end parcel latency and raw fabric
/// delivery latency, both at a 99% objective with a burn-rate threshold
/// of 1 (any window spending its error budget faster than allowed
/// alerts).
pub fn default_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "parcel-latency".into(),
            hist: "parcel.latency_ns".into(),
            objective_ns: 50_000,
            target: 0.99,
            burn_threshold: 1.0,
            min_samples: 16,
        },
        SloRule {
            name: "fabric-delivery".into(),
            hist: "fabric.delivery_ns".into(),
            objective_ns: 20_000,
            target: 0.99,
            burn_threshold: 1.0,
            min_samples: 16,
        },
    ]
}

/// Run `f` under a fresh telemetry collector configured per `args`
/// (windowed timeline attached when any timeline flag is present) and
/// return its result plus the collector.
pub fn instrumented_for<R>(args: &TraceArgs, f: impl FnOnce() -> R) -> (R, Rc<Telemetry>) {
    let tel = match args.timeline_config() {
        Some(cfg) => telemetry::enable_with(cfg),
        None => telemetry::enable(),
    };
    let r = f();
    telemetry::disable();
    (r, tel)
}

/// The shared harness dispatch: when any observability flag is present,
/// run the what-if pass (if `--whatif`) and/or the instrumented pass and
/// return `true` — the binary should then skip its full figure sweep.
/// Returns `false` when no flag was given.
pub fn dispatch(
    args: &TraceArgs,
    whatif_pass: impl FnOnce(),
    instrumented_pass: impl FnOnce(),
) -> bool {
    if !args.active() {
        return false;
    }
    if args.whatif.is_some() {
        whatif_pass();
    }
    if args.trace.is_some() || args.wants_reports() || args.critpath || args.timeline_active() {
        instrumented_pass();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> TraceArgs {
        TraceArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--trace",
            "t.json",
            "--breakdown",
            "--json",
            "r.json",
            "--profile",
            "--folded",
            "f.txt",
            "--critpath",
            "--whatif",
            "all",
            "--timeline",
            "tl.json",
            "--slo",
            "--window-us",
            "250",
        ]);
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert!(a.breakdown && a.profile && a.critpath && a.slo);
        assert_eq!(a.timeline.as_deref(), Some("tl.json"));
        assert_eq!(a.window_us, Some(250));
        assert!(a.active() && a.wants_reports() && a.timeline_active());
        let cfg = a.timeline_config().unwrap();
        assert_eq!(cfg.window_ns, 250_000);
        assert_eq!(cfg.slos.len(), 2);
    }

    #[test]
    fn timeline_flags_activate_the_pass() {
        let a = parse(&["--slo"]);
        assert!(a.active() && a.timeline_active() && !a.wants_reports());
        let cfg = a.timeline_config().unwrap();
        assert_eq!(cfg.window_ns, telemetry::timeline::DEFAULT_WINDOW_NS);
        assert!(!cfg.slos.is_empty());
        let b = parse(&["--breakdown"]);
        assert!(b.timeline_config().is_none());
    }

    #[test]
    fn empty_args_are_inactive() {
        let a = parse(&[]);
        assert!(!a.active() && !a.timeline_active());
        assert!(a.timeline_config().is_none());
    }
}
