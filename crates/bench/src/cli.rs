//! Shared command-line handling for the figure harnesses.
//!
//! Every harness (`fig1_msgrate_8b`, `fig8_latency_window_8b`,
//! `fig10_octotiger_expanse`, `fabric_sweep`) accepts the same
//! observability flags, parsed here exactly once — unknown flags are a
//! hard error, never silently ignored:
//!
//! * `--trace FILE` — combined Chrome-trace JSON of the nominated run;
//! * `--breakdown` — per-stage latency breakdown + contention report;
//! * `--json FILE` — machine-readable reports;
//! * `--profile` — per-core virtual-time state table + sparklines;
//! * `--folded FILE` — folded stacks for `inferno` / `flamegraph.pl`;
//! * `--critpath` — causal critical-path report (highlighted in
//!   `--trace` output);
//! * `--whatif KNOBS` — predicted-vs-measured speedup sweep;
//! * `--timeline FILE` — windowed timeline document (JSON) of the
//!   nominated run, plus `FILE.om` (OpenMetrics-style text exposition)
//!   and `FILE.dumpN.json` for any flight-recorder dumps;
//! * `--slo` — install the default latency-objective burn-rate rules and
//!   print any alerts;
//! * `--window-us N` — timeline window width (default 100 µs);
//! * `--record FILE` — canonical [`telemetry::RunRecord`] JSON of the
//!   nominated run (the cross-run diffing artifact `perf_diff`
//!   consumes);
//! * `--out DIR` — route every artifact into `DIR` under canonical
//!   names (`trace.json`, `report.json`, `folded.txt`, `timeline.json`,
//!   `record.json`); per-flag paths still work and win over `--out`;
//! * `--knobs KNOBS` — dial cost-model knobs *for the instrumented run
//!   itself* (as opposed to `--whatif`, which predicts and measures
//!   speedups): a knob-dialed `--record` is how a "what changed"
//!   baseline comparison is produced;
//! * `--param K=V` — workload parameter overrides the harness consults
//!   (e.g. `--param window=8` on fig8); recorded in the run record.
//!
//! [`dispatch`] owns the shared "instrumented pass instead of the full
//! sweep" branching the binaries used to duplicate.

use std::rc::Rc;

use telemetry::{SloRule, Telemetry, TimelineConfig};

/// Parsed observability flags.
#[derive(Debug, Default, Clone)]
pub struct TraceArgs {
    /// Chrome-trace output path (`--trace FILE`).
    pub trace: Option<String>,
    /// Print text breakdown + contention reports (`--breakdown`).
    pub breakdown: bool,
    /// Machine-readable report path (`--json FILE`).
    pub json: Option<String>,
    /// Print the per-core virtual-time profile (`--profile`).
    pub profile: bool,
    /// Folded-stack (flamegraph) output path (`--folded FILE`).
    pub folded: Option<String>,
    /// Print critical-path reports; highlight the path in `--trace`
    /// output (`--critpath`).
    pub critpath: bool,
    /// What-if knob sweep spec (`--whatif KNOBS`, `all` = default sweep).
    pub whatif: Option<String>,
    /// Windowed-timeline document path (`--timeline FILE`).
    pub timeline: Option<String>,
    /// Install the default SLO rules and print alerts (`--slo`).
    pub slo: bool,
    /// Timeline window width in µs (`--window-us N`).
    pub window_us: Option<u64>,
    /// RunRecord output path for the nominated run (`--record FILE`).
    pub record: Option<String>,
    /// Artifact directory with canonical file names (`--out DIR`).
    pub out: Option<String>,
    /// Cost-model knobs dialed for the instrumented run itself
    /// (`--knobs KNOBS`).
    pub knobs: Option<String>,
    /// Workload parameter overrides (`--param K=V`, repeatable).
    pub params: Vec<(String, String)>,
    /// Engine shards for the sharded (federated) world (`--shards N`).
    /// `None` keeps the legacy single-heap world — byte-identical to
    /// every pre-sharding artifact.
    pub shards: Option<usize>,
    /// Sharded-engine executor (`--run-mode seq|threaded`); `None`
    /// lets the engine pick (threaded when shards > 1 and the host has
    /// cores to spare). Implies the sharded world like `--shards`.
    pub run_mode: Option<String>,
}

fn usage(offender: &str) -> ! {
    eprintln!(
        "unknown argument {offender:?} \
         (supported: --trace FILE, --breakdown, --json FILE, --profile, \
         --folded FILE, --critpath, --whatif KNOBS, --timeline FILE, \
         --slo, --window-us N, --record FILE, --out DIR, --knobs KNOBS, \
         --param K=V, --shards N, --run-mode seq|threaded)"
    );
    std::process::exit(2);
}

impl TraceArgs {
    /// Parse the harness command line; exits with a usage message on an
    /// unknown argument. `--out DIR` is resolved here: the directory is
    /// created and unset path flags are filled with canonical names.
    pub fn parse() -> TraceArgs {
        let mut args = TraceArgs::parse_from(std::env::args().skip(1));
        if args.out.is_some() {
            std::fs::create_dir_all(args.out.as_deref().unwrap()).expect("create --out directory");
            args.resolve_out();
        }
        args
    }

    /// [`TraceArgs::parse`] over an explicit argument list.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> TraceArgs {
        let mut out = TraceArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => out.trace = Some(it.next().expect("--trace needs a file path")),
                "--breakdown" => out.breakdown = true,
                "--json" => out.json = Some(it.next().expect("--json needs a file path")),
                "--profile" => out.profile = true,
                "--folded" => out.folded = Some(it.next().expect("--folded needs a file path")),
                "--critpath" => out.critpath = true,
                "--whatif" => out.whatif = Some(it.next().expect("--whatif needs a knob list")),
                "--timeline" => {
                    out.timeline = Some(it.next().expect("--timeline needs a file path"))
                }
                "--slo" => out.slo = true,
                "--window-us" => {
                    let v = it.next().expect("--window-us needs a width in microseconds");
                    out.window_us =
                        Some(v.parse().expect("--window-us width must be a positive integer"));
                }
                "--record" => out.record = Some(it.next().expect("--record needs a file path")),
                "--out" => out.out = Some(it.next().expect("--out needs a directory path")),
                "--knobs" => out.knobs = Some(it.next().expect("--knobs needs a knob list")),
                "--param" => {
                    let kv = it.next().expect("--param needs K=V");
                    let (k, v) = kv
                        .split_once('=')
                        .unwrap_or_else(|| panic!("--param expects K=V, got {kv:?}"));
                    out.params.push((k.to_string(), v.to_string()));
                }
                "--shards" => {
                    let v = it.next().expect("--shards needs a shard count");
                    let n: usize = v.parse().expect("--shards count must be a positive integer");
                    assert!(n >= 1, "--shards count must be >= 1");
                    out.shards = Some(n);
                }
                "--run-mode" => {
                    let v = it.next().expect("--run-mode needs seq or threaded");
                    if v != "seq" && v != "threaded" {
                        eprintln!("--run-mode must be \"seq\" or \"threaded\", got {v:?}");
                        std::process::exit(2);
                    }
                    out.run_mode = Some(v);
                }
                other => usage(other),
            }
        }
        out
    }

    /// Fill unset path flags from `--out DIR` with canonical names. The
    /// per-flag paths win when both are given; [`TraceArgs::parse`]
    /// calls this after creating the directory.
    pub fn resolve_out(&mut self) {
        let Some(dir) = self.out.clone() else { return };
        let fill = |slot: &mut Option<String>, name: &str| {
            if slot.is_none() {
                *slot = Some(format!("{dir}/{name}"));
            }
        };
        fill(&mut self.trace, "trace.json");
        fill(&mut self.json, "report.json");
        fill(&mut self.folded, "folded.txt");
        fill(&mut self.timeline, "timeline.json");
        fill(&mut self.record, "record.json");
    }

    /// A `--param K=V` override, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// A numeric `--param` override, falling back to `default`; exits
    /// with a usage message when the value does not parse.
    pub fn param_usize(&self, key: &str, default: usize) -> usize {
        match self.param(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--param {key}={v:?}: value must be a non-negative integer");
                std::process::exit(2);
            }),
        }
    }

    /// Whether the sharded (federated) world was requested. `--run-mode`
    /// alone implies it: an executor choice only makes sense on the
    /// sharded engine.
    pub fn sharding_active(&self) -> bool {
        self.shards.is_some() || self.run_mode.is_some()
    }

    /// The requested shard count (defaults to 1 when only `--run-mode`
    /// was given).
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(1)
    }

    /// The requested sharded-engine executor, if pinned on the command
    /// line; `None` = let the engine pick.
    pub fn engine_mode(&self) -> Option<simcore::shard::RunMode> {
        match self.run_mode.as_deref() {
            Some("seq") => Some(simcore::shard::RunMode::Sequential),
            Some("threaded") => Some(simcore::shard::RunMode::Threaded),
            _ => None,
        }
    }

    /// Whether an instrumented pass was requested.
    pub fn active(&self) -> bool {
        self.trace.is_some()
            || self.breakdown
            || self.json.is_some()
            || self.profile
            || self.folded.is_some()
            || self.critpath
            || self.whatif.is_some()
            || self.timeline_active()
            || self.record.is_some()
    }

    /// Whether per-config reports (rather than just one Chrome trace)
    /// were requested — decides how many configs the pass covers.
    pub fn wants_reports(&self) -> bool {
        self.breakdown || self.json.is_some() || self.profile || self.folded.is_some()
    }

    /// Whether the windowed timeline was requested.
    pub fn timeline_active(&self) -> bool {
        self.timeline.is_some() || self.slo || self.window_us.is_some()
    }

    /// The timeline configuration implied by the flags; `None` when no
    /// timeline flag is present.
    pub fn timeline_config(&self) -> Option<TimelineConfig> {
        if !self.timeline_active() {
            return None;
        }
        let mut cfg = TimelineConfig::default();
        if let Some(us) = self.window_us {
            cfg.window_ns = us.max(1) * 1_000;
        }
        if self.slo {
            cfg.slos = default_slo_rules();
        }
        Some(cfg)
    }

    /// The parsed `--whatif` knob list; exits with a usage message on an
    /// unknown knob spec.
    pub fn whatif_knobs(&self) -> Option<Vec<crate::whatif::Knob>> {
        self.whatif.as_deref().map(|spec| parse_knob_list("--whatif", spec))
    }

    /// The parsed `--knobs` dial list (knobs applied to the instrumented
    /// run itself); exits with a usage message on an unknown knob spec.
    pub fn dial_knobs(&self) -> Option<Vec<crate::whatif::Knob>> {
        self.knobs.as_deref().map(|spec| parse_knob_list("--knobs", spec))
    }

    /// Names of the dialed `--knobs`, for run-record metadata.
    pub fn dial_knob_names(&self) -> Vec<String> {
        self.dial_knobs().unwrap_or_default().iter().map(|k| k.name()).collect()
    }

    /// Apply the `--knobs` dials to one run's models; returns whether
    /// anything was dialed.
    pub fn apply_dials(
        &self,
        cfg: &mut parcelport::PpConfig,
        cost: &mut simcore::CostModel,
        wire: &mut netsim::WireModel,
    ) -> bool {
        let Some(knobs) = self.dial_knobs() else { return false };
        for k in &knobs {
            k.apply(cfg, cost, wire);
        }
        !knobs.is_empty()
    }
}

/// Parse a comma-separated knob spec (`all` = the default sweep set);
/// exits with a usage message on an unknown knob.
fn parse_knob_list(flag: &str, spec: &str) -> Vec<crate::whatif::Knob> {
    use crate::whatif::Knob;
    if spec == "all" {
        return vec![
            Knob::SerializeScale(0.0),
            Knob::WireLatencyScale(2.0),
            Knob::WireLatencyScale(0.5),
            Knob::WireBandwidthScale(2.0),
            Knob::LockHoldScale(0.0),
            Knob::TagMatchOff,
            Knob::ProgressPerOpOff,
            Knob::PollSkewOff,
            Knob::SendImmediate,
        ];
    }
    spec.split(',')
        .map(|s| {
            Knob::parse(s.trim()).unwrap_or_else(|| {
                eprintln!(
                    "unknown {flag} knob {s:?} (supported: serialize_xK, \
                     wire_latency_xK, wire_bw_xK, lock_hold_xK, tag_match_off, \
                     cq_per_op_off, poll_skew_off, send_immediate, all)"
                );
                std::process::exit(2);
            })
        })
        .collect()
}

/// The default `--slo` rules: end-to-end parcel latency and raw fabric
/// delivery latency, both at a 99% objective with a burn-rate threshold
/// of 1 (any window spending its error budget faster than allowed
/// alerts).
pub fn default_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "parcel-latency".into(),
            hist: "parcel.latency_ns".into(),
            objective_ns: 50_000,
            target: 0.99,
            burn_threshold: 1.0,
            min_samples: 16,
        },
        SloRule {
            name: "fabric-delivery".into(),
            hist: "fabric.delivery_ns".into(),
            objective_ns: 20_000,
            target: 0.99,
            burn_threshold: 1.0,
            min_samples: 16,
        },
    ]
}

/// Run `f` under a fresh telemetry collector configured per `args`
/// (windowed timeline attached when any timeline flag is present) and
/// return its result plus the collector.
pub fn instrumented_for<R>(args: &TraceArgs, f: impl FnOnce() -> R) -> (R, Rc<Telemetry>) {
    let tel = match args.timeline_config() {
        Some(cfg) => telemetry::enable_with(cfg),
        None => telemetry::enable(),
    };
    let r = f();
    telemetry::disable();
    (r, tel)
}

/// The shared harness dispatch: when any observability flag is present,
/// run the what-if pass (if `--whatif`) and/or the instrumented pass and
/// return `true` — the binary should then skip its full figure sweep.
/// Returns `false` when no flag was given.
pub fn dispatch(
    args: &TraceArgs,
    whatif_pass: impl FnOnce(),
    instrumented_pass: impl FnOnce(),
) -> bool {
    if !args.active() {
        return false;
    }
    if args.whatif.is_some() {
        whatif_pass();
    }
    if args.trace.is_some()
        || args.wants_reports()
        || args.critpath
        || args.timeline_active()
        || args.record.is_some()
    {
        instrumented_pass();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> TraceArgs {
        TraceArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--trace",
            "t.json",
            "--breakdown",
            "--json",
            "r.json",
            "--profile",
            "--folded",
            "f.txt",
            "--critpath",
            "--whatif",
            "all",
            "--timeline",
            "tl.json",
            "--slo",
            "--window-us",
            "250",
        ]);
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert!(a.breakdown && a.profile && a.critpath && a.slo);
        assert_eq!(a.timeline.as_deref(), Some("tl.json"));
        assert_eq!(a.window_us, Some(250));
        assert!(a.active() && a.wants_reports() && a.timeline_active());
        let cfg = a.timeline_config().unwrap();
        assert_eq!(cfg.window_ns, 250_000);
        assert_eq!(cfg.slos.len(), 2);
    }

    #[test]
    fn timeline_flags_activate_the_pass() {
        let a = parse(&["--slo"]);
        assert!(a.active() && a.timeline_active() && !a.wants_reports());
        let cfg = a.timeline_config().unwrap();
        assert_eq!(cfg.window_ns, telemetry::timeline::DEFAULT_WINDOW_NS);
        assert!(!cfg.slos.is_empty());
        let b = parse(&["--breakdown"]);
        assert!(b.timeline_config().is_none());
    }

    #[test]
    fn empty_args_are_inactive() {
        let a = parse(&[]);
        assert!(!a.active() && !a.timeline_active());
        assert!(a.timeline_config().is_none());
    }

    #[test]
    fn record_flag_activates_the_pass() {
        let a = parse(&["--record", "r.json"]);
        assert!(a.active() && !a.wants_reports() && !a.timeline_active());
        assert_eq!(a.record.as_deref(), Some("r.json"));
    }

    #[test]
    fn out_dir_fills_canonical_paths_without_clobbering() {
        let mut a = parse(&["--out", "artifacts", "--trace", "mine.json"]);
        a.resolve_out();
        assert_eq!(a.trace.as_deref(), Some("mine.json"));
        assert_eq!(a.json.as_deref(), Some("artifacts/report.json"));
        assert_eq!(a.folded.as_deref(), Some("artifacts/folded.txt"));
        assert_eq!(a.timeline.as_deref(), Some("artifacts/timeline.json"));
        assert_eq!(a.record.as_deref(), Some("artifacts/record.json"));
        assert!(a.active() && a.wants_reports() && a.timeline_active());
    }

    #[test]
    fn params_and_knobs_parse() {
        let a = parse(&[
            "--param",
            "window=8",
            "--param",
            "steps=50",
            "--knobs",
            "wire_latency_x2,send_immediate",
        ]);
        assert_eq!(a.param("window"), Some("8"));
        assert_eq!(a.param_usize("window", 64), 8);
        assert_eq!(a.param_usize("missing", 64), 64);
        assert_eq!(
            a.dial_knob_names(),
            vec!["wire_latency_x2".to_string(), "send_immediate".to_string()]
        );
        // --knobs alone dials models but does not request a pass.
        assert!(!a.active());
        let mut cfg: parcelport::PpConfig = "lci_psr_cq_pin_i".parse().unwrap();
        let mut cost = simcore::CostModel::default_model();
        let mut wire = netsim::WireModel::expanse();
        let before = wire.latency_ns;
        assert!(a.apply_dials(&mut cfg, &mut cost, &mut wire));
        assert_eq!(wire.latency_ns, before * 2);
        assert!(cfg.send_immediate);
    }

    #[test]
    fn repeated_params_last_wins() {
        let a = parse(&["--param", "window=8", "--param", "window=64"]);
        assert_eq!(a.param("window"), Some("64"));
    }
}
