//! Figure 2: achieved message rate of 8 B messages vs. injection rate —
//! the eight LCI variants (with send-immediate).
//!
//! Paper shape: all `mt_i` variants stick at a common low plateau
//! (progress-engine contention, ~285 K/s); `sr` trails `psr` by up to
//! 3.5x; a dedicated progress thread buys up to 2.6x.

use bench::report::{fmt_kps, Table};
use bench::{bench_scale, injection_grid_8b, sweep_injection, MsgRateParams};

fn main() {
    let scale = bench_scale();
    let configs = [
        "lci_psr_cq_pin_i",
        "lci_psr_cq_mt_i",
        "lci_psr_sy_pin_i",
        "lci_psr_sy_mt_i",
        "lci_sr_cq_pin_i",
        "lci_sr_cq_mt_i",
        "lci_sr_sy_pin_i",
        "lci_sr_sy_mt_i",
    ];
    println!("Figure 2: achieved message rate (K/s), 8B, LCI variants (send-immediate)");
    println!();
    let mut header = vec!["attempted".to_string()];
    header.extend(configs.iter().map(|c| c.to_string()));
    let mut t = Table::new(header);
    let grid = injection_grid_8b();
    let mut sweeps = Vec::new();
    for c in configs {
        let mut p = MsgRateParams::small(c.parse().unwrap());
        p.total_msgs = (100_000f64 * scale) as usize;
        sweeps.push(sweep_injection(&p, &grid));
    }
    for (i, &rate) in grid.iter().enumerate() {
        let mut row = vec![bench::fmt_rate(rate)];
        for s in &sweeps {
            let r = &s[i].1;
            row.push(format!("{}{}", fmt_kps(r.msg_rate), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: psr_cq_pin_i highest (~750K/s); all mt_i variants stuck at a common");
    println!("plateau (~285K/s); sr variants up to 3.5x below psr.");
}
