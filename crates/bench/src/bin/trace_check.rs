//! Validate a Chrome-trace JSON file produced by `--trace`: parse the
//! event array and check the invariants Perfetto relies on (complete
//! spans with durations, matched `s`/`f` flow-event pairs, numeric
//! timestamps, counter samples with values). Exits non-zero on any
//! violation — the CI trace smoke step runs this over a reduced `fig1`
//! export.
//!
//! Usage: `trace_check FILE [--require-flows]`

use telemetry::json::{parse, Value};

fn main() {
    let mut path = None;
    let mut require_flows = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--require-flows" => require_flows = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unexpected argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| {
        die("usage: trace_check FILE [--require-flows]");
    });
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    match validate(&src, require_flows) {
        Ok(summary) => println!("{path}: OK — {summary}"),
        Err(e) => die(&format!("{path}: INVALID — {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn validate(src: &str, require_flows: bool) -> Result<String, String> {
    let doc = parse(src)?;
    let events = doc.as_arr().ok_or("top level is not an array")?;
    if events.is_empty() {
        return Err("empty trace".into());
    }
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut starts: Vec<u64> = Vec::new();
    let mut finishes: Vec<u64> = Vec::new();
    let mut tracks = std::collections::BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        e.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: complete span without \"dur\""))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad dur {dur}"));
                }
                let tid = e
                    .get("tid")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: span without \"tid\""))?;
                tracks.insert(tid.to_string());
                spans += 1;
            }
            "s" | "f" => {
                let id = e
                    .get("id")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: flow event without \"id\""))?;
                if ph == "s" { &mut starts } else { &mut finishes }.push(id as u64);
            }
            "C" => {
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: counter without args.value"))?;
                counters += 1;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    starts.sort_unstable();
    finishes.sort_unstable();
    if starts != finishes {
        return Err(format!(
            "unmatched flow events: {} starts vs {} finishes",
            starts.len(),
            finishes.len()
        ));
    }
    if require_flows && starts.is_empty() {
        return Err("no flow events (expected at least one traced parcel)".into());
    }
    Ok(format!(
        "{} events: {spans} spans on {} tracks, {} flow arrows, {counters} counter samples",
        events.len(),
        tracks.len(),
        starts.len()
    ))
}
