//! Validate observability artifacts produced by the figure harnesses.
//!
//! Default mode checks a Chrome-trace JSON file produced by `--trace`:
//! parse the event array and check the invariants Perfetto relies on
//! (complete spans with durations, matched `s`/`f` flow-event pairs,
//! numeric timestamps, counter samples with values, counter tracks with
//! time-ordered samples). `--folded FILE` instead validates a
//! folded-stack file produced by `--folded` (the `inferno` /
//! `flamegraph.pl` input format). Exits non-zero on any violation — the
//! CI trace smoke step runs this over reduced `fig1` exports.
//!
//! `--require-critpath` additionally validates the causal critical-path
//! track written by `--critpath --trace`: highlighted spans exist on the
//! `critpath` track, they form one connected chain in time starting at
//! zero, and their durations sum to the `critpath.total_us` counter —
//! the same partition identity the analyzer asserts internally.
//!
//! Usage:
//!   `trace_check FILE [--require-flows] [--require-counters] [--require-critpath]`
//!   `trace_check --folded FILE`

use telemetry::json::{parse, Value};

fn main() {
    let mut path = None;
    let mut require_flows = false;
    let mut require_counters = false;
    let mut require_critpath = false;
    let mut folded = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-flows" => require_flows = true,
            "--require-counters" => require_counters = true,
            "--require-critpath" => require_critpath = true,
            "--folded" => {
                folded = true;
                path = Some(it.next().unwrap_or_else(|| die("--folded needs a file path")));
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unexpected argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| {
        die("usage: trace_check FILE [--require-flows] [--require-counters] \
             [--require-critpath] | --folded FILE");
    });
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let result = if folded {
        validate_folded(&src)
    } else {
        validate(&src, require_flows, require_counters, require_critpath)
    };
    match result {
        Ok(summary) => println!("{path}: OK — {summary}"),
        Err(e) => die(&format!("{path}: INVALID — {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn validate(
    src: &str,
    require_flows: bool,
    require_counters: bool,
    require_critpath: bool,
) -> Result<String, String> {
    let doc = parse(src)?;
    let events = doc.as_arr().ok_or("top level is not an array")?;
    if events.is_empty() {
        return Err("empty trace".into());
    }
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut crit_spans: Vec<(f64, f64)> = Vec::new();
    let mut crit_total_us: Option<f64> = None;
    let mut starts: Vec<u64> = Vec::new();
    let mut finishes: Vec<u64> = Vec::new();
    let mut tracks = std::collections::BTreeSet::new();
    // Counter tracks must be internally time-ordered or Perfetto draws
    // them as garbage; remember the last ts per counter name.
    let mut counter_last_ts: std::collections::BTreeMap<String, f64> =
        std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: complete span without \"dur\""))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad dur {dur}"));
                }
                let tid = e
                    .get("tid")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: span without \"tid\""))?;
                tracks.insert(tid.to_string());
                if tid == "critpath" {
                    crit_spans.push((ts, dur));
                }
                spans += 1;
            }
            "s" | "f" => {
                let id = e
                    .get("id")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: flow event without \"id\""))?;
                if ph == "s" { &mut starts } else { &mut finishes }.push(id as u64);
            }
            "C" => {
                let v = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: counter without args.value"))?;
                if !v.is_finite() {
                    return Err(format!("event {i}: non-finite counter value"));
                }
                if let Some(&prev) = counter_last_ts.get(name) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: counter track {name:?} goes backwards \
                             ({ts} after {prev})"
                        ));
                    }
                }
                counter_last_ts.insert(name.to_string(), ts);
                if name == "critpath.total_us" {
                    crit_total_us = Some(v);
                }
                counters += 1;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    starts.sort_unstable();
    finishes.sort_unstable();
    if starts != finishes {
        return Err(format!(
            "unmatched flow events: {} starts vs {} finishes",
            starts.len(),
            finishes.len()
        ));
    }
    if require_flows && starts.is_empty() {
        return Err("no flow events (expected at least one traced parcel)".into());
    }
    if require_counters && counter_last_ts.is_empty() {
        return Err("no counter tracks (expected at least one sampled series)".into());
    }
    if require_critpath {
        check_critpath(&mut crit_spans, crit_total_us)?;
    }
    Ok(format!(
        "{} events: {spans} spans on {} tracks, {} flow arrows, \
         {counters} counter samples on {} counter tracks",
        events.len(),
        tracks.len(),
        starts.len(),
        counter_last_ts.len()
    ))
}

/// Validate the highlighted critical-path track: spans exist, form one
/// connected chain in time starting at zero, and their durations sum to
/// the reported end-to-end total. Timestamps are microsecond floats
/// (exact nanosecond values / 1000), so comparisons allow a hundredth of
/// a microsecond of rounding.
fn check_critpath(spans: &mut Vec<(f64, f64)>, total_us: Option<f64>) -> Result<(), String> {
    const TOL_US: f64 = 0.01;
    if spans.is_empty() {
        return Err("no critical-path spans (expected a highlighted \"critpath\" track)".into());
    }
    let total =
        total_us.ok_or("critical-path spans present but no \"critpath.total_us\" counter")?;
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    if spans[0].0.abs() > TOL_US {
        return Err(format!("critical path starts at {}us, not 0", spans[0].0));
    }
    let mut cursor = 0.0f64;
    let mut sum = 0.0f64;
    for &(ts, dur) in spans.iter() {
        if (ts - cursor).abs() > TOL_US {
            return Err(format!(
                "critical path disconnected: span at {ts}us after chain ends at {cursor}us"
            ));
        }
        cursor = ts + dur;
        sum += dur;
    }
    if (sum - total).abs() > TOL_US.max(total * 1e-9) {
        return Err(format!(
            "on-path durations sum to {sum}us but reported end-to-end is {total}us"
        ));
    }
    Ok(())
}

/// Validate a folded-stack file: every line is `frame;frame;... WEIGHT`
/// with at least one non-empty `;`-separated frame and a non-negative
/// integer weight — exactly what `inferno-flamegraph` / `flamegraph.pl`
/// consume. Requires at least one stack.
fn validate_folded(src: &str) -> Result<String, String> {
    let mut lines = 0usize;
    let mut total: u64 = 0;
    let mut max_depth = 0usize;
    for (i, line) in src.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no space-separated weight", i + 1))?;
        let w: u64 = weight.parse().map_err(|_| {
            format!("line {}: weight {weight:?} is not a non-negative integer", i + 1)
        })?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        let frames: Vec<&str> = stack.split(';').collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("line {}: empty frame in {stack:?}", i + 1));
        }
        max_depth = max_depth.max(frames.len());
        total += w;
        lines += 1;
    }
    if lines == 0 {
        return Err("no stacks (empty folded file)".into());
    }
    Ok(format!("{lines} stacks, total weight {total}, max depth {max_depth}"))
}
