//! Validate observability artifacts produced by the figure harnesses.
//!
//! Default mode checks a Chrome-trace JSON file produced by `--trace`:
//! parse the event array and check the invariants Perfetto relies on
//! (complete spans with durations, matched `s`/`f` flow-event pairs,
//! numeric timestamps, counter samples with values, counter tracks with
//! time-ordered samples). `--folded FILE` instead validates a
//! folded-stack file produced by `--folded` (the `inferno` /
//! `flamegraph.pl` input format). Exits non-zero on any violation — the
//! CI trace smoke step runs this over reduced `fig1` exports.
//!
//! `--require-critpath` additionally validates the causal critical-path
//! track written by `--critpath --trace`: highlighted spans exist on the
//! `critpath` track, they form one connected chain in time starting at
//! zero, and their durations sum to the `critpath.total_us` counter —
//! the same partition identity the analyzer asserts internally.
//!
//! `--require-timeline FILE` instead validates a windowed-timeline JSON
//! document produced by `--timeline`: windows are non-empty, strictly
//! consecutive from index 0, and gap-free (`start_ns == index *
//! window_ns`, `end_ns == start_ns + window_ns`); per-window quantiles
//! are ordered; every histogram's per-window counts/sums/mins/maxes
//! merge exactly to the run totals; every counter's per-window deltas
//! sum to the run total; alerts land inside the covered horizon.
//!
//! `--require-record FILE` validates a run-record document produced by
//! `--record`: it parses (schema version, histogram bucket counts
//! consistent with declared counts — both enforced by the parser), the
//! critical-path component table sums exactly to the end-to-end total,
//! the segment list is a gap-free partition of `[0, total_ns]` whose
//! per-component sums reproduce the component table, delivered flows do
//! not exceed started flows, and any window digest merges back to the
//! run totals (per-key window counts/sums equal the full histogram,
//! per-key window deltas equal the counter) — the same identities the
//! diff engine relies on.
//!
//! Usage:
//!   `trace_check FILE [--require-flows] [--require-counters] [--require-critpath]`
//!   `trace_check --folded FILE`
//!   `trace_check --require-timeline FILE`
//!   `trace_check --require-record FILE`

use telemetry::json::{parse, Value};
use telemetry::record::RunRecord;

fn main() {
    let mut path = None;
    let mut require_flows = false;
    let mut require_counters = false;
    let mut require_critpath = false;
    let mut folded = false;
    let mut timeline = false;
    let mut record = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-flows" => require_flows = true,
            "--require-counters" => require_counters = true,
            "--require-critpath" => require_critpath = true,
            "--folded" => {
                folded = true;
                path = Some(it.next().unwrap_or_else(|| die("--folded needs a file path")));
            }
            "--require-timeline" => {
                timeline = true;
                path =
                    Some(it.next().unwrap_or_else(|| die("--require-timeline needs a file path")));
            }
            "--require-record" => {
                record = true;
                path = Some(it.next().unwrap_or_else(|| die("--require-record needs a file path")));
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unexpected argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| {
        die("usage: trace_check FILE [--require-flows] [--require-counters] \
             [--require-critpath] | --folded FILE | --require-timeline FILE | \
             --require-record FILE");
    });
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let result = if folded {
        validate_folded(&src)
    } else if timeline {
        validate_timeline(&src)
    } else if record {
        validate_record(&src)
    } else {
        validate(&src, require_flows, require_counters, require_critpath)
    };
    match result {
        Ok(summary) => println!("{path}: OK — {summary}"),
        Err(e) => die(&format!("{path}: INVALID — {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn validate(
    src: &str,
    require_flows: bool,
    require_counters: bool,
    require_critpath: bool,
) -> Result<String, String> {
    let doc = parse(src)?;
    let events = doc.as_arr().ok_or("top level is not an array")?;
    if events.is_empty() {
        return Err("empty trace".into());
    }
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut crit_spans: Vec<(f64, f64)> = Vec::new();
    let mut crit_total_us: Option<f64> = None;
    let mut starts: Vec<u64> = Vec::new();
    let mut finishes: Vec<u64> = Vec::new();
    let mut tracks = std::collections::BTreeSet::new();
    // Counter tracks must be internally time-ordered or Perfetto draws
    // them as garbage; remember the last ts per counter name.
    let mut counter_last_ts: std::collections::BTreeMap<String, f64> =
        std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: complete span without \"dur\""))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad dur {dur}"));
                }
                let tid = e
                    .get("tid")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: span without \"tid\""))?;
                tracks.insert(tid.to_string());
                if tid == "critpath" {
                    crit_spans.push((ts, dur));
                }
                spans += 1;
            }
            "s" | "f" => {
                let id = e
                    .get("id")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: flow event without \"id\""))?;
                if ph == "s" { &mut starts } else { &mut finishes }.push(id as u64);
            }
            "C" => {
                let v = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: counter without args.value"))?;
                if !v.is_finite() {
                    return Err(format!("event {i}: non-finite counter value"));
                }
                if let Some(&prev) = counter_last_ts.get(name) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: counter track {name:?} goes backwards \
                             ({ts} after {prev})"
                        ));
                    }
                }
                counter_last_ts.insert(name.to_string(), ts);
                if name == "critpath.total_us" {
                    crit_total_us = Some(v);
                }
                counters += 1;
            }
            // Metadata records (process/thread names); no invariants
            // beyond the name/ts checks above.
            "M" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    starts.sort_unstable();
    finishes.sort_unstable();
    if starts != finishes {
        return Err(format!(
            "unmatched flow events: {} starts vs {} finishes",
            starts.len(),
            finishes.len()
        ));
    }
    if require_flows && starts.is_empty() {
        return Err("no flow events (expected at least one traced parcel)".into());
    }
    if require_counters && counter_last_ts.is_empty() {
        return Err("no counter tracks (expected at least one sampled series)".into());
    }
    if require_critpath {
        check_critpath(&mut crit_spans, crit_total_us)?;
    }
    Ok(format!(
        "{} events: {spans} spans on {} tracks, {} flow arrows, \
         {counters} counter samples on {} counter tracks",
        events.len(),
        tracks.len(),
        starts.len(),
        counter_last_ts.len()
    ))
}

/// Validate the highlighted critical-path track: spans exist, form one
/// connected chain in time starting at zero, and their durations sum to
/// the reported end-to-end total. Timestamps are microsecond floats
/// (exact nanosecond values / 1000), so comparisons allow a hundredth of
/// a microsecond of rounding.
fn check_critpath(spans: &mut Vec<(f64, f64)>, total_us: Option<f64>) -> Result<(), String> {
    const TOL_US: f64 = 0.01;
    if spans.is_empty() {
        return Err("no critical-path spans (expected a highlighted \"critpath\" track)".into());
    }
    let total =
        total_us.ok_or("critical-path spans present but no \"critpath.total_us\" counter")?;
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    if spans[0].0.abs() > TOL_US {
        return Err(format!("critical path starts at {}us, not 0", spans[0].0));
    }
    let mut cursor = 0.0f64;
    let mut sum = 0.0f64;
    for &(ts, dur) in spans.iter() {
        if (ts - cursor).abs() > TOL_US {
            return Err(format!(
                "critical path disconnected: span at {ts}us after chain ends at {cursor}us"
            ));
        }
        cursor = ts + dur;
        sum += dur;
    }
    if (sum - total).abs() > TOL_US.max(total * 1e-9) {
        return Err(format!(
            "on-path durations sum to {sum}us but reported end-to-end is {total}us"
        ));
    }
    Ok(())
}

/// Validate a folded-stack file: every line is `frame;frame;... WEIGHT`
/// with at least one non-empty `;`-separated frame and a non-negative
/// integer weight — exactly what `inferno-flamegraph` / `flamegraph.pl`
/// consume. Requires at least one stack.
fn validate_folded(src: &str) -> Result<String, String> {
    let mut lines = 0usize;
    let mut total: u64 = 0;
    let mut max_depth = 0usize;
    for (i, line) in src.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no space-separated weight", i + 1))?;
        let w: u64 = weight.parse().map_err(|_| {
            format!("line {}: weight {weight:?} is not a non-negative integer", i + 1)
        })?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        let frames: Vec<&str> = stack.split(';').collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("line {}: empty frame in {stack:?}", i + 1));
        }
        max_depth = max_depth.max(frames.len());
        total += w;
        lines += 1;
    }
    if lines == 0 {
        return Err("no stacks (empty folded file)".into());
    }
    Ok(format!("{lines} stacks, total weight {total}, max depth {max_depth}"))
}

/// The fields of an object value; absent or non-object yields the empty
/// slice (timeline windows omit empty sections).
fn obj_fields(v: Option<&Value>) -> &[(String, Value)] {
    match v {
        Some(Value::Obj(fields)) => fields,
        _ => &[],
    }
}

/// Validate a windowed-timeline JSON document (see `--require-timeline`
/// in the module docs): monotone gap-free window coverage, ordered
/// per-window quantiles, and the merge identity — per-window histogram
/// and counter series recombine exactly to the run totals.
fn validate_timeline(src: &str) -> Result<String, String> {
    use std::collections::BTreeMap;
    let doc = parse(src)?;
    let tl = doc.get("timeline").ok_or("no top-level \"timeline\" object")?;
    let field = |v: &Value, key: &str, what: &str| -> Result<f64, String> {
        v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("{what}: missing {key:?}"))
    };
    let window_ns = field(tl, "window_ns", "timeline")?;
    if window_ns <= 0.0 || window_ns.fract() != 0.0 {
        return Err(format!("bad window_ns {window_ns}"));
    }
    let windows = tl.get("windows").and_then(Value::as_arr).ok_or("missing windows array")?;
    if windows.is_empty() {
        return Err("no windows".into());
    }
    // Per-key (count, sum, min, max) accumulated across windows, to hold
    // against the run totals; counters accumulate per-window deltas.
    let mut hist_acc: BTreeMap<&str, (f64, f64, f64, f64)> = BTreeMap::new();
    let mut counter_acc: BTreeMap<&str, f64> = BTreeMap::new();
    for (i, w) in windows.iter().enumerate() {
        let what = format!("window {i}");
        if field(w, "index", &what)? != i as f64 {
            return Err(format!("{what}: indices must be consecutive from 0"));
        }
        let start = field(w, "start_ns", &what)?;
        let end = field(w, "end_ns", &what)?;
        if start != i as f64 * window_ns || end != start + window_ns {
            return Err(format!(
                "{what}: covers [{start}, {end}) ns, expected [{}, {}) — gap or overlap",
                i as f64 * window_ns,
                (i + 1) as f64 * window_ns
            ));
        }
        for (key, h) in obj_fields(w.get("hists")) {
            let what = format!("window {i} hist {key:?}");
            let count = field(h, "count", &what)?;
            let sum = field(h, "sum", &what)?;
            let min = field(h, "min", &what)?;
            let max = field(h, "max", &what)?;
            let (p50, p90, p99, p999) = (
                field(h, "p50", &what)?,
                field(h, "p90", &what)?,
                field(h, "p99", &what)?,
                field(h, "p999", &what)?,
            );
            if !(p50 <= p90 && p90 <= p99 && p99 <= p999) {
                return Err(format!("{what}: quantiles out of order"));
            }
            if count > 0.0 && !(min <= p50 && p999 <= max) {
                return Err(format!("{what}: quantiles escape [min, max]"));
            }
            let e = hist_acc.entry(key).or_insert((0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY));
            e.0 += count;
            e.1 += sum;
            if count > 0.0 {
                e.2 = e.2.min(min);
                e.3 = e.3.max(max);
            }
        }
        for (key, v) in obj_fields(w.get("counters")) {
            let delta = v.as_f64().ok_or_else(|| format!("{what}: bad counter {key:?}"))?;
            *counter_acc.entry(key).or_insert(0.0) += delta;
        }
    }
    let totals = tl.get("totals").ok_or("missing totals object")?;
    let total_hists = obj_fields(totals.get("hists"));
    if total_hists.len() != hist_acc.len() {
        return Err(format!(
            "windows cover {} histogram keys but totals list {}",
            hist_acc.len(),
            total_hists.len()
        ));
    }
    for (key, h) in total_hists {
        let what = format!("totals hist {key:?}");
        let &(count, sum, min, max) =
            hist_acc.get(key.as_str()).ok_or_else(|| format!("{what}: in no window"))?;
        if field(h, "count", &what)? != count || field(h, "sum", &what)? != sum {
            return Err(format!("{what}: window counts/sums do not merge to the total"));
        }
        if count > 0.0 && (field(h, "min", &what)? != min || field(h, "max", &what)? != max) {
            return Err(format!("{what}: window min/max do not merge to the total"));
        }
    }
    let total_counters = obj_fields(totals.get("counters"));
    if total_counters.len() != counter_acc.len() {
        return Err(format!(
            "windows cover {} counters but totals list {}",
            counter_acc.len(),
            total_counters.len()
        ));
    }
    for (key, v) in total_counters {
        let total = v.as_f64().ok_or_else(|| format!("totals counter {key:?}: bad value"))?;
        if counter_acc.get(key.as_str()) != Some(&total) {
            return Err(format!("totals counter {key:?}: window deltas do not sum to {total}"));
        }
    }
    let alerts = tl.get("alerts").and_then(Value::as_arr).unwrap_or(&[]);
    for (i, a) in alerts.iter().enumerate() {
        let what = format!("alert {i}");
        let w = field(a, "window", &what)?;
        if w >= windows.len() as f64 {
            return Err(format!("{what}: window {w} outside the covered horizon"));
        }
        if field(a, "end_ns", &what)? != (w + 1.0) * window_ns {
            return Err(format!("{what}: end_ns disagrees with its window"));
        }
    }
    let dumps = tl.get("dumps").and_then(Value::as_arr).map(<[Value]>::len).unwrap_or(0);
    Ok(format!(
        "{} windows x {} ns, {} histograms and {} counters merge to totals, \
         {} alerts, {dumps} dumps",
        windows.len(),
        window_ns,
        hist_acc.len(),
        counter_acc.len(),
        alerts.len()
    ))
}

/// Validate a run-record document (see `--require-record` in the module
/// docs): the parser already enforces the schema version and per-hist
/// bucket/count consistency; on top of that, re-check every structural
/// identity the diff engine gates on.
fn validate_record(src: &str) -> Result<String, String> {
    let rec = RunRecord::from_json(src)?;
    if rec.flows_delivered > rec.flows_total {
        return Err(format!(
            "{} flows delivered out of {} started",
            rec.flows_delivered, rec.flows_total
        ));
    }
    let mut crit_summary = "no critical path".to_string();
    if let Some(cp) = &rec.critpath {
        if rec.end_to_end_ns != cp.total_ns {
            return Err(format!(
                "end_to_end_ns {} disagrees with critpath total {}",
                rec.end_to_end_ns, cp.total_ns
            ));
        }
        let comp_sum: u64 = cp.components.iter().map(|&(_, ns)| ns).sum();
        if comp_sum != cp.total_ns {
            return Err(format!(
                "critical-path components sum to {comp_sum} ns, not the {} ns total",
                cp.total_ns
            ));
        }
        // The segment list must partition [0, total_ns] with no gap and
        // reproduce the component table when re-aggregated.
        let mut cursor = 0u64;
        let mut seg_by_comp: std::collections::BTreeMap<&str, u64> = Default::default();
        for (i, (comp, start, end)) in cp.segments.iter().enumerate() {
            if *start != cursor {
                return Err(format!(
                    "segment {i} starts at {start} ns but the chain ends at {cursor} ns"
                ));
            }
            if end < start {
                return Err(format!("segment {i} ends before it starts"));
            }
            *seg_by_comp.entry(comp.as_str()).or_insert(0) += end - start;
            cursor = *end;
        }
        if cursor != cp.total_ns {
            return Err(format!(
                "segments cover [0, {cursor}] ns, not the full [0, {}] makespan",
                cp.total_ns
            ));
        }
        for (comp, ns) in &cp.components {
            if seg_by_comp.get(comp.as_str()).copied().unwrap_or(0) != *ns {
                return Err(format!(
                    "component {comp:?} claims {ns} ns on-path but its segments sum to {}",
                    seg_by_comp.get(comp.as_str()).copied().unwrap_or(0)
                ));
            }
        }
        crit_summary = format!(
            "critpath {} components / {} segments partition {} ns",
            cp.components.len(),
            cp.segments.len(),
            cp.total_ns
        );
    }
    // Window digests must merge back to the run totals for every key
    // they share with the record (the timeline merge invariant).
    let mut win_summary = "no window digest".to_string();
    if let Some(w) = &rec.windows {
        for (key, rows) in &w.hists {
            let Some(h) = rec.hists.get(key) else { continue };
            let count: u64 = rows.iter().map(|&(_, c, _)| c).sum();
            let sum: u64 = rows.iter().map(|&(_, _, s)| s).sum();
            if count != h.count() || sum != h.sum() {
                return Err(format!(
                    "window digest of hist {key:?} merges to count {count} / sum {sum}, \
                     but the run total is count {} / sum {}",
                    h.count(),
                    h.sum()
                ));
            }
        }
        for (key, rows) in &w.counters {
            let Some(&total) = rec.counters.get(key) else { continue };
            let merged: u64 = rows.iter().map(|&(_, d)| d).sum();
            if merged != total {
                return Err(format!(
                    "window digest of counter {key:?} merges to {merged}, \
                     but the run total is {total}"
                ));
            }
        }
        win_summary = format!("{} windows x {} ns merge to totals", w.num_windows, w.window_ns);
    }
    Ok(format!(
        "run record {} v{}: {} ns end-to-end, {} events, {} counters, {} hists, \
         {} cores, {} resources; {crit_summary}; {win_summary}",
        rec.label(),
        rec.version,
        rec.end_to_end_ns,
        rec.events,
        rec.counters.len(),
        rec.hists.len(),
        rec.profile.len(),
        rec.resources.len()
    ))
}
