//! Backend-generation comparison: the TCP parcelport (HPX's original
//! backend), the MPI parcelport, and the LCI parcelport on the same
//! workloads — the historical progression §1 of the paper describes.

use bench::report::{fmt_kps, fmt_us, Table};
use bench::{bench_scale, run_latency, run_msgrate, LatencyParams, MsgRateParams};

fn main() {
    let scale = bench_scale();
    println!("Backend generations: tcp -> mpi -> lci (same wire, same runtime)");
    println!();
    let mut t = Table::new(vec!["config", "8B K/s", "16K K/s", "lat 8B us", "lat 64K us"]);
    for cfg in ["tcp_i", "mpi_i", "lci_psr_cq_pin_i"] {
        let parsed = cfg.parse().unwrap();
        let mut p = MsgRateParams::small(parsed);
        p.total_msgs = (30_000f64 * scale) as usize;
        let r8 = run_msgrate(&p);
        let mut p = MsgRateParams::large(parsed);
        p.total_msgs = (6_000f64 * scale) as usize;
        let r16 = run_msgrate(&p);
        let mut lp = LatencyParams::new(parsed, 8);
        lp.steps = (300f64 * scale) as usize;
        let l8 = run_latency(&lp);
        let mut lp = LatencyParams::new(parsed, 64 * 1024);
        lp.steps = (300f64 * scale) as usize;
        let l64 = run_latency(&lp);
        t.row(vec![
            cfg.to_string(),
            format!("{}{}", fmt_kps(r8.msg_rate), if r8.completed { "" } else { "*" }),
            format!("{}{}", fmt_kps(r16.msg_rate), if r16.completed { "" } else { "*" }),
            fmt_us(l8.one_way_us),
            fmt_us(l64.one_way_us),
        ]);
    }
    t.print();
    println!();
    println!("expected ordering: tcp slowest for small messages and latency (syscalls,");
    println!("stream serialization, full copies); mpi in between; lci best. At 16KiB the");
    println!("collapsed MPI parcelport can fall below even TCP — which is the paper's");
    println!("point about MPI under many concurrent messages.");
}
