//! Figure 7: single-message ping-pong latency vs. message size, window 1,
//! all eleven paper configurations.
//!
//! Paper shape: the LCI baseline always has the lowest latency; `mpi_i`
//! is only ~1.3x worse below 1 KB but 3-5x worse for large messages
//! (MPI/UCX protocol switch); send-immediate always helps LCI; the
//! pin+cq variants form the fastest group.

use bench::report::{fmt_us, Table};
use bench::{bench_scale, run_latency, LatencyParams};
use parcelport::PpConfig;

fn main() {
    let scale = bench_scale();
    let sizes = [8usize, 64, 512, 1024, 4096, 8192, 16384, 65536];
    println!("Figure 7: one-way latency (us) vs message size, window 1");
    println!();
    let mut header = vec!["config".to_string()];
    header.extend(sizes.iter().map(|s| format!("{s}B")));
    let mut t = Table::new(header);
    for cfg in PpConfig::paper_set() {
        let mut row = vec![cfg.to_string()];
        for &size in &sizes {
            let mut p = LatencyParams::new(cfg, size);
            p.steps = ((600f64 * scale) as usize).max(50);
            let r = run_latency(&p);
            row.push(format!("{}{}", fmt_us(r.one_way_us), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: lci_psr_cq_pin(_i) lowest at every size; mpi_i ~1.3x worse < 1KB,");
    println!("3-5x worse above the zero-copy threshold; _i variants always at or below");
    println!("their non-immediate counterparts.");
}
