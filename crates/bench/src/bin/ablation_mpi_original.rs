//! §3.1 ablation: the original MPI parcelport (fixed 512 B stack header,
//! no transmission-chunk piggyback, tag-release protocol with a
//! lock-protected free-tag list) vs. the improved version.
//!
//! Paper: the two improvements buy ~20% of Octo-Tiger performance, with
//! the dynamic/piggybacking header being the bigger one.

use bench::bench_scale;
use bench::report::Table;
use octotiger_mini::{run_octotiger, OctoParams};

fn main() {
    let scale = bench_scale();
    let nodes = [4usize, 8, 16];
    println!("Ablation (sec 3.1): original vs improved MPI parcelport, Octo-Tiger mini");
    println!();
    let mut t = Table::new(vec!["nodes", "mpi_orig steps/s", "mpi steps/s", "improvement"]);
    for &n in &nodes {
        let mut vals = Vec::new();
        for cfg in ["mpi_orig", "mpi"] {
            let mut p = OctoParams::expanse(cfg.parse().unwrap(), n);
            if scale < 1.0 {
                p.level = 4;
                p.steps = 2;
            }
            let r = run_octotiger(&p);
            assert!(r.mass_ok);
            vals.push(if r.completed { r.steps_per_sec } else { 0.0 });
        }
        t.row(vec![
            n.to_string(),
            format!("{:.3}", vals[0]),
            format!("{:.3}", vals[1]),
            format!("{:.3}x", vals[1] / vals[0].max(1e-9)),
        ]);
    }
    t.print();
    println!();
    println!("paper: the improved version is ~1.2x faster on Octo-Tiger.");
}
