//! Figure 9: 16 KiB message latency vs. window size.
//!
//! Paper shape: the MPI-LCI gap widens with the window — the
//! mpi_i / lci_psr_cq_pin_i latency ratio grows from ~2x at window 1 to
//! ~9.6x at window 64 (MPI struggles with many concurrent messages).

use bench::report::{fmt_us, Table};
use bench::{bench_scale, run_latency, LatencyParams};
use parcelport::PpConfig;

fn main() {
    let scale = bench_scale();
    let windows = [1usize, 2, 4, 8, 16, 32, 64];
    println!("Figure 9: one-way latency (us) of 16KiB messages vs window size");
    println!();
    let mut header = vec!["config".to_string()];
    header.extend(windows.iter().map(|w| format!("w{w}")));
    let mut t = Table::new(header);
    let mut ratio_row: Vec<(f64, f64)> = vec![(0.0, 0.0); windows.len()];
    for cfg in PpConfig::paper_set() {
        let name = cfg.to_string();
        let mut row = vec![name.clone()];
        for (i, &w) in windows.iter().enumerate() {
            let mut p = LatencyParams::new(cfg, 16 * 1024);
            p.window = w;
            p.steps = ((300f64 * scale) as usize).max(30);
            let r = run_latency(&p);
            if name == "mpi_i" {
                ratio_row[i].0 = r.one_way_us;
            }
            if name == "lci_psr_cq_pin_i" {
                ratio_row[i].1 = r.one_way_us;
            }
            row.push(format!("{}{}", fmt_us(r.one_way_us), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    let mut ratio = vec!["mpi_i/lci_psr_cq_pin_i".to_string()];
    for (m, l) in &ratio_row {
        ratio.push(format!("{:.2}x", m / l.max(1e-9)));
    }
    t.row(ratio);
    t.print();
    println!();
    println!("paper: the mpi_i : lci_psr_cq_pin_i ratio grows from ~2x (w1) to ~9.6x (w64).");
}
