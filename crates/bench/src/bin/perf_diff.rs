//! Diff two run records and gate on the result — the cross-run
//! differential attribution tool.
//!
//! `perf_diff BASE HEAD` loads two `--record` documents and prints the
//! structural diff: end-to-end movement, the ranked critical-path delta
//! table (whose entries sum *exactly* to the end-to-end delta — the
//! partition identity carried across runs), per-bucket histogram
//! shifts, counter/gauge/resource movement, and the core-profile state
//! breakdown.
//!
//! As a CI gate it exits non-zero when the head run regressed past the
//! threshold:
//!
//! * exit 1 — *explained* regression: end-to-end grew by more than
//!   `--max-regress-pct` (default 1%), but the critical-path delta
//!   table localizes at least `--min-localize` percent (default 90) of
//!   the regression-direction movement to named components.
//! * exit 2 — **unexplained** regression, the loudest failure: the
//!   regression exceeds the threshold and attribution localizes *less*
//!   than `--min-localize` percent to named components — the slowdown
//!   hides in residual `cpu`/`startup` time, so the delta table cannot
//!   say which mechanism to blame.
//!
//! Because both records hold virtual-time quantities from the
//! deterministic simulator, every delta printed here is exact — there
//! is no run-to-run noise floor, which is why the default threshold can
//! be tight. `--max-events-pct` optionally also gates on the
//! wall-clock-independent event count.
//!
//! `--json FILE` writes the machine-readable report; `--overlay FILE`
//! writes a side-by-side Chrome trace of both records' critical-path
//! partitions (base = process 0, head = process 1) for visual A/B in
//! Perfetto.
//!
//! Usage:
//!   `perf_diff BASE HEAD [--json FILE] [--overlay FILE]`
//!   `          [--max-regress-pct P] [--min-localize PCT] [--max-events-pct P]`

use telemetry::record::RunRecord;
use telemetry::RecordDiff;

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut json_out: Option<String> = None;
    let mut overlay_out: Option<String> = None;
    let mut max_regress_pct = 1.0f64;
    let mut min_localize = 90.0f64;
    let mut max_events_pct: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_out = Some(need(&mut it, "--json")),
            "--overlay" => overlay_out = Some(need(&mut it, "--overlay")),
            "--max-regress-pct" => max_regress_pct = need_f64(&mut it, "--max-regress-pct"),
            "--min-localize" => min_localize = need_f64(&mut it, "--min-localize"),
            "--max-events-pct" => max_events_pct = Some(need_f64(&mut it, "--max-events-pct")),
            other if !other.starts_with("--") && paths.len() < 2 => paths.push(other.to_string()),
            other => die(&format!("unexpected argument {other:?}")),
        }
    }
    if paths.len() != 2 {
        die("usage: perf_diff BASE HEAD [--json FILE] [--overlay FILE] \
             [--max-regress-pct P] [--min-localize PCT] [--max-events-pct P]");
    }
    let base = load(&paths[0]);
    let head = load(&paths[1]);
    // Engine sharding (shards / run_mode) must not change simulated
    // results, so records differing only there stay comparable; a
    // workload mismatch gets a loud warning but still diffs (comparing
    // across workloads is sometimes deliberate).
    if !base.meta.comparable_to(&head.meta) {
        eprintln!(
            "perf_diff: WARNING — records describe different workloads \
             ({} vs {}); deltas attribute workload changes, not code changes",
            base.label(),
            head.label()
        );
    } else if base.meta.shards != head.meta.shards || base.meta.run_mode != head.meta.run_mode {
        println!(
            "note: runs differ only in engine sharding \
             (shards {:?} -> {:?}, mode {:?} -> {:?}); results must be identical \
             by the determinism contract",
            base.meta.shards, head.meta.shards, base.meta.run_mode, head.meta.run_mode
        );
    }
    let diff = RecordDiff::between(&base, &head);
    print!("{}", diff.to_text());

    if let Some(path) = &json_out {
        std::fs::write(path, diff.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("wrote diff report -> {path}");
    }
    if let Some(path) = &overlay_out {
        std::fs::write(path, overlay_trace(&base, &head))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("wrote critical-path overlay trace -> {path}");
    }

    // The gate. Regressions are growth in end-to-end virtual time; all
    // quantities are deterministic, so the comparison is exact.
    let regress_pct = diff.end_to_end.pct();
    let localize_pct = diff.localization() * 100.0;
    if let Some(limit) = max_events_pct {
        let ev_pct = diff.events.pct();
        if ev_pct.abs() > limit {
            eprintln!(
                "perf_diff: FAIL — event count moved {ev_pct:+.2}% \
                 (limit ±{limit}%): {} -> {}",
                diff.events.base, diff.events.head
            );
            std::process::exit(1);
        }
    }
    if regress_pct > max_regress_pct {
        if diff.critpath_exact && localize_pct < min_localize {
            eprintln!(
                "perf_diff: FAIL (UNEXPLAINED) — end-to-end regressed {regress_pct:+.2}% \
                 (limit {max_regress_pct}%) and only {localize_pct:.1}% of the movement \
                 lands on named components (need {min_localize}%) — the regression hides \
                 in residual cpu/startup attribution"
            );
            std::process::exit(2);
        }
        eprintln!(
            "perf_diff: FAIL — end-to-end regressed {regress_pct:+.2}% \
             (limit {max_regress_pct}%), localization {localize_pct:.1}%"
        );
        std::process::exit(1);
    }
    println!(
        "perf_diff: OK — end-to-end {regress_pct:+.2}% (limit {max_regress_pct}%), \
         localization {localize_pct:.1}%"
    );
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn need_f64(it: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    let v = need(it, flag);
    v.parse().unwrap_or_else(|_| die(&format!("{flag}: {v:?} is not a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("perf_diff: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> RunRecord {
    let src =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    RunRecord::from_json(&src).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// A side-by-side Chrome trace of both records' critical-path
/// partitions: the base run's segments under process 0, the head run's
/// under process 1, so Perfetto shows the two paths stacked for visual
/// comparison. Timestamps are microseconds (virtual ns / 1000).
fn overlay_trace(base: &RunRecord, head: &RunRecord) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, rec) in [(0u32, base), (1u32, head)] {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"ts\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            simcore::escape_json(&rec.label())
        ));
        if let Some(cp) = &rec.critpath {
            for (component, start, end) in &cp.segments {
                events.push(format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{pid},\"tid\":\"critpath\",\
                     \"ts\":{:.3},\"dur\":{:.3}}}",
                    simcore::escape_json(component),
                    *start as f64 / 1_000.0,
                    (end - start) as f64 / 1_000.0
                ));
            }
        }
    }
    format!("[{}]", events.join(","))
}
