//! §7.2 future-work ablation: replicating low-level network resources.
//!
//! "Currently, the LCI parcelport only uses one LCI device per process
//! which maps to one low-level network context per process. This causes
//! severe thread contention when the sender injects messages into the
//! network. Previous work has shown that replicating low-level network
//! resources could greatly increase message rates."
//!
//! This harness runs the 8 B message-rate benchmark with 1, 2, 4 and 8
//! LCI devices per process. The effect is strongest for the `mt`
//! variants, where each device's progress engine has its own try-lock —
//! several workers genuinely progress in parallel — and the per-device
//! TX contexts relieve injection contention.

use bench::report::{fmt_kps, Table};
use bench::{bench_scale, run_msgrate, MsgRateParams};

fn main() {
    let scale = bench_scale();
    println!("Ablation (sec 7.2): LCI devices per process vs 8B message rate (K/s)");
    println!();
    let mut t = Table::new(vec!["config", "1 dev", "2 dev", "4 dev", "8 dev"]);
    for cfg in ["lci_psr_cq_pin_i", "lci_psr_cq_mt_i"] {
        let mut row = vec![cfg.to_string()];
        for devices in [1usize, 2, 4, 8] {
            let mut p = MsgRateParams::small(cfg.parse().unwrap());
            p.total_msgs = (60_000f64 * scale) as usize;
            p.devices = devices;
            let r = run_msgrate(&p);
            row.push(format!("{}{}", fmt_kps(r.msg_rate), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("expected: rates grow with device count, most for the mt variant (parallel");
    println!("progress engines); the pin variant gains less (its single progress thread");
    println!("still serializes handling, but sender-side injection contention drops).");
}
