//! Calibration snapshot: the shape-defining numbers at reduced scale.
//!
//! Prints peak message rates (8 B and 16 KiB) and small/large latencies
//! for the key configurations, with the paper's expectations alongside,
//! so the cost model can be tuned quickly. Use `BENCH_SCALE` to shrink.

use bench::report::{fmt_kps, fmt_us, Table};
use bench::{bench_scale, run_latency, run_msgrate, LatencyParams, MsgRateParams};

fn main() {
    let scale = bench_scale();
    let configs = [
        "lci_psr_cq_pin_i",
        "lci_psr_cq_mt_i",
        "lci_sr_cq_pin_i",
        "lci_psr_sy_pin_i",
        "lci_sr_sy_mt_i",
        "lci_psr_cq_pin",
        "mpi",
        "mpi_i",
    ];

    let mut t = Table::new(vec!["config", "8B K/s", "16K K/s", "lat8B us", "lat64K us"]);
    for name in configs {
        let cfg = name.parse().unwrap();
        let mut p = MsgRateParams::small(cfg);
        p.total_msgs = (50_000_f64 * scale) as usize;
        let small = run_msgrate(&p);
        if std::env::var("CAL_STATS").as_deref() == Ok(name) {
            eprintln!("--- stats for {name} (8B run) ---\n{:?}", small);
        }

        let mut p = MsgRateParams::large(cfg);
        p.total_msgs = (10_000_f64 * scale) as usize;
        let large = run_msgrate(&p);

        let mut lp = LatencyParams::new(cfg, 8);
        lp.steps = (300_f64 * scale) as usize;
        let lat8 = run_latency(&lp);
        let mut lp = LatencyParams::new(cfg, 64 * 1024);
        lp.steps = (300_f64 * scale) as usize;
        let lat64 = run_latency(&lp);

        t.row(vec![
            name.to_string(),
            format!("{}{}", fmt_kps(small.msg_rate), if small.completed { "" } else { "*" }),
            format!("{}{}", fmt_kps(large.msg_rate), if large.completed { "" } else { "*" }),
            fmt_us(lat8.one_way_us),
            fmt_us(lat64.one_way_us),
        ]);
    }
    t.print();
    println!();
    println!("paper expectations (Expanse): lci_psr_cq_pin_i 8B ~750K/s;");
    println!("  mt_i variants ~285K/s (2.6x down); sr_cq_pin_i ~215K/s (3.5x down);");
    println!("  16K: cq_pin ~200K/s, sy ~25-30% below cq, mpi ~7-50x below lci;");
    println!("  lat 8B: lci ~2-3us, mpi_i ~1.3x worse; lat 64K: mpi_i 3-5x worse.");
    println!("  (* = run hit the safety deadline before completing)");
}
