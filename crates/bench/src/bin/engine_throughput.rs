//! Wall-clock throughput of the event engine hot path.
//!
//! Unlike every other harness in this crate — which measures *simulated*
//! time — this one measures how fast the simulator itself executes
//! events on the host. It drives a fig1-shaped event mix (self-re-arming
//! per-core ticks, one-shot packet deliveries, a progress timeout that
//! moves on every tick) through two engines:
//!
//! * **baseline** — a self-contained replica of the seed engine: a
//!   `BinaryHeap` of boxed closures, no cancellation, so every timeout
//!   re-arm schedules a fresh event and leaves the stale one to fire as
//!   a dead no-op (exactly what `ParcelLayer`/`Locality` did before the
//!   indexed heap landed);
//! * **engine** — the current `simcore::Sim`: typed handler events on
//!   the indexed four-ary heap, timeout re-arms via `reschedule`.
//!
//! It reports wall-clock events/sec, simulated-ns advanced per wall-ms,
//! allocation counts, and peak heap for both, writes
//! `BENCH_engine.json`, and *fails* (exit 1) unless the current engine
//! clears 1.5x the baseline's logical throughput and executes the
//! steady-state hot path with zero allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use simcore::{
    EventHandler, EventId, HandlerId, LaneCtx, LaneId, RunMode, ShardActor, ShardEventId,
    ShardedSim, Sim, SimTime,
};

// ---------------------------------------------------------------------
// Counting allocator: every heap alloc in the process goes through here.
// ---------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        let live =
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Workload shape (identical logical work on both engines).
// ---------------------------------------------------------------------

/// Simulated cores, each with a self-re-arming tick (fig1's per-core
/// scheduler loop).
const ACTORS: usize = 64;
/// Logical ticks to execute in the measured phase.
const TICKS: u64 = 2_000_000;
/// Warmup ticks (grows heaps/slabs to steady state before measuring).
const WARMUP: u64 = 100_000;
/// Throughput the current engine must clear vs. baseline.
const THRESHOLD: f64 = 1.5;

/// Per-actor deterministic LCG; both engines draw the same deltas.
#[derive(Clone)]
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Delay until this actor's next tick, ns in [200, 1224).
    fn tick_delta(&mut self) -> u64 {
        200 + (self.next() & 1023)
    }

    /// Delay until the delivery spawned by a tick, ns in [50, 178):
    /// always lands before the next tick, so at most one is in flight
    /// per actor and the steady state never grows the queue.
    fn deliver_delta(&mut self) -> u64 {
        50 + (self.next() & 127)
    }
}

/// How far ahead each tick pushes its progress timeout (~23 ticks),
/// mirroring the parcel layer's flush-window timer: re-armed on every
/// tick, it only fires once the actor goes quiet.
const TIMEOUT_AHEAD: u64 = 16 * 1024;

/// Conservative lookahead of the sharded runs: the expanse wire's one-way
/// propagation latency (`netsim::WireModel::expanse().latency_ns`) — the
/// minimum distance any cross-locality delivery keeps from `now`.
const SHARD_LOOKAHEAD: u64 = 1_000;

// ---------------------------------------------------------------------
// Baseline: replica of the seed engine (BinaryHeap + boxed closures).
// ---------------------------------------------------------------------

struct OldEntry {
    at: u64,
    seq: u64,
    f: Box<dyn FnOnce(&mut OldSim)>,
}

impl PartialEq for OldEntry {
    fn eq(&self, o: &Self) -> bool {
        (self.at, self.seq) == (o.at, o.seq)
    }
}
impl Eq for OldEntry {}
impl PartialOrd for OldEntry {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for OldEntry {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(o.at, o.seq))
    }
}

/// The seed engine's scheduling core, reproduced verbatim in miniature:
/// one boxed closure per event, min-order via `Reverse`, no cancel.
struct OldSim {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<OldEntry>>,
    executed: u64,
}

impl OldSim {
    fn new() -> Self {
        OldSim { now: 0, seq: 0, queue: BinaryHeap::new(), executed: 0 }
    }

    fn schedule_at<F: FnOnce(&mut OldSim) + 'static>(&mut self, at: u64, f: F) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(OldEntry { at, seq, f: Box::new(f) }));
    }

    fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(e)) => {
                self.now = e.at;
                self.executed += 1;
                (e.f)(self);
                true
            }
            None => false,
        }
    }
}

/// Shared per-actor state for the baseline run. `timeout_gen` implements
/// the seed's dedup-by-staleness: each re-arm bumps the generation and
/// schedules a fresh closure; stale generations fire as no-ops.
struct OldActor {
    rng: Lcg,
    ticks_done: u64,
    timeout_gen: u64,
    deliveries: u64,
    dead_events: u64,
}

fn run_baseline(ticks: u64) -> (u64, u64, u64, u64) {
    let actors: Rc<RefCell<Vec<OldActor>>> = Rc::new(RefCell::new(
        (0..ACTORS)
            .map(|i| OldActor {
                rng: Lcg(0x9E37_79B9_7F4A_7C15 ^ ((i as u64) << 17)),
                ticks_done: 0,
                timeout_gen: 0,
                deliveries: 0,
                dead_events: 0,
            })
            .collect(),
    ));
    let mut sim = OldSim::new();
    let budget = Rc::new(RefCell::new(ticks));
    for i in 0..ACTORS {
        let a = actors.clone();
        let b = budget.clone();
        sim.schedule_at(i as u64, move |s| old_tick(s, a, b, i));
    }
    while sim.step() {}
    let a = actors.borrow();
    let deliveries: u64 = a.iter().map(|x| x.deliveries).sum();
    let dead: u64 = a.iter().map(|x| x.dead_events).sum();
    (sim.executed, sim.now, deliveries, dead)
}

fn old_tick(
    sim: &mut OldSim,
    actors: Rc<RefCell<Vec<OldActor>>>,
    budget: Rc<RefCell<u64>>,
    i: usize,
) {
    {
        let mut b = budget.borrow_mut();
        if *b == 0 {
            return;
        }
        *b -= 1;
    }
    let (tick_d, deliver_d, gen) = {
        let mut a = actors.borrow_mut();
        let act = &mut a[i];
        act.ticks_done += 1;
        act.timeout_gen += 1;
        (act.rng.tick_delta(), act.rng.deliver_delta(), act.timeout_gen)
    };
    // Delivery: a fresh boxed one-shot per tick.
    let a2 = actors.clone();
    sim.schedule_at(sim.now + deliver_d, move |_s| {
        a2.borrow_mut()[i].deliveries += 1;
    });
    // Timeout re-arm, seed style: schedule a new boxed event and let the
    // stale one from the previous tick fire as a dead no-op.
    let a3 = actors.clone();
    sim.schedule_at(sim.now + TIMEOUT_AHEAD, move |_s| {
        let mut a = a3.borrow_mut();
        if a[i].timeout_gen != gen {
            a[i].dead_events += 1; // stale — the seed engine's waste
        }
    });
    // Next tick.
    let a4 = actors.clone();
    let b4 = budget.clone();
    sim.schedule_at(sim.now + tick_d, move |s| old_tick(s, a4, b4, i));
}

// ---------------------------------------------------------------------
// Current engine: typed handler events + reschedule on the 4-ary heap.
// ---------------------------------------------------------------------

const EV_TICK: u64 = 0;
const EV_DELIVER: u64 = 1;
const EV_TIMEOUT: u64 = 2;

struct NewActorState {
    rng: Lcg,
    ticks_done: u64,
    deliveries: u64,
    timeout: Option<EventId>,
    timeouts_fired: u64,
}

/// The whole workload as one `EventHandler`; the arg word encodes
/// `(actor << 2) | kind`, mirroring how `amt::Locality` tags its events.
struct NewWorkload {
    actors: RefCell<Vec<NewActorState>>,
    budget: RefCell<u64>,
    me: RefCell<Option<HandlerId>>,
}

impl NewWorkload {
    fn arg(actor: usize, kind: u64) -> u64 {
        ((actor as u64) << 2) | kind
    }
}

impl EventHandler for NewWorkload {
    fn on_event(&self, sim: &mut Sim, arg: u64) {
        let kind = arg & 0b11;
        let i = (arg >> 2) as usize;
        match kind {
            EV_TICK => {
                {
                    let mut b = self.budget.borrow_mut();
                    if *b == 0 {
                        return;
                    }
                    *b -= 1;
                }
                let h = self.me.borrow().expect("registered");
                let now = sim.now();
                let mut actors = self.actors.borrow_mut();
                let act = &mut actors[i];
                act.ticks_done += 1;
                let tick_d = act.rng.tick_delta();
                let deliver_d = act.rng.deliver_delta();
                let timeout = act.timeout;
                drop(actors);
                sim.schedule_event_at(now + deliver_d, h, Self::arg(i, EV_DELIVER));
                // Timeout re-arm: move the single live event instead of
                // abandoning a stale one.
                let moved = timeout.map(|ev| sim.reschedule(ev, now + TIMEOUT_AHEAD));
                if moved != Some(true) {
                    let ev =
                        sim.schedule_event_at(now + TIMEOUT_AHEAD, h, Self::arg(i, EV_TIMEOUT));
                    self.actors.borrow_mut()[i].timeout = Some(ev);
                }
                sim.schedule_event_at(now + tick_d, h, Self::arg(i, EV_TICK));
            }
            EV_DELIVER => {
                self.actors.borrow_mut()[i].deliveries += 1;
            }
            EV_TIMEOUT => {
                let mut actors = self.actors.borrow_mut();
                actors[i].timeout = None;
                actors[i].timeouts_fired += 1;
            }
            _ => unreachable!("unknown event tag"),
        }
    }
}

fn run_engine(ticks: u64) -> (Rc<NewWorkload>, Sim) {
    let wl = Rc::new(NewWorkload {
        actors: RefCell::new(
            (0..ACTORS)
                .map(|i| NewActorState {
                    rng: Lcg(0x9E37_79B9_7F4A_7C15 ^ ((i as u64) << 17)),
                    ticks_done: 0,
                    deliveries: 0,
                    timeout: None,
                    timeouts_fired: 0,
                })
                .collect(),
        ),
        budget: RefCell::new(ticks),
        me: RefCell::new(None),
    });
    let mut sim = Sim::new(1);
    let h = sim.register_handler(wl.clone());
    *wl.me.borrow_mut() = Some(h);
    for i in 0..ACTORS {
        sim.schedule_event_at(SimTime::from_nanos(i as u64), h, NewWorkload::arg(i, EV_TICK));
    }
    (wl, sim)
}

// ---------------------------------------------------------------------
// Sharded engine: the same fig1-shaped mix on `simcore::ShardedSim`,
// one lane per actor, deliveries crossing lanes through the wire (and so
// through the cross-shard mailboxes whenever the lanes live apart).
// ---------------------------------------------------------------------

struct ShardTick {
    rng: Lcg,
    /// Deliveries go to the next lane in the ring — cross-shard for every
    /// round-robin placement with more than one shard.
    peer: LaneId,
    budget: u64,
    ticks_done: u64,
    deliveries: u64,
    timeout: Option<ShardEventId>,
    timeouts_fired: u64,
}

impl ShardActor for ShardTick {
    fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64) {
        match arg & 0b11 {
            EV_TICK => {
                if self.budget == 0 {
                    return;
                }
                self.budget -= 1;
                self.ticks_done += 1;
                let tick_d = self.rng.tick_delta();
                let deliver_d = self.rng.deliver_delta();
                let now = ctx.now();
                // The delivery rides the wire: one propagation latency
                // (the lookahead) plus the jitter the 1-engine run uses.
                ctx.send(self.peer, now + SHARD_LOOKAHEAD + deliver_d, EV_DELIVER);
                let moved = self.timeout.map(|ev| ctx.reschedule(ev, now + TIMEOUT_AHEAD));
                if moved != Some(true) {
                    self.timeout = Some(ctx.schedule_at(now + TIMEOUT_AHEAD, EV_TIMEOUT));
                }
                ctx.schedule_at(now + tick_d, EV_TICK);
            }
            EV_DELIVER => self.deliveries += 1,
            EV_TIMEOUT => {
                self.timeout = None;
                self.timeouts_fired += 1;
            }
            _ => unreachable!("unknown event tag"),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Build the 64-lane workload on `shards` shards (round-robin placement),
/// `ticks_per_lane` ticks each, seeded identically to the 1-engine run.
fn build_sharded(shards: usize, ticks_per_lane: u64, capture: bool) -> ShardedSim {
    let mut sim = ShardedSim::new(shards, SHARD_LOOKAHEAD);
    if capture {
        sim.set_exec_capture(true);
    }
    for i in 0..ACTORS {
        let lane = sim.add_actor(
            i % shards,
            Box::new(ShardTick {
                rng: Lcg(0x9E37_79B9_7F4A_7C15 ^ ((i as u64) << 17)),
                peer: LaneId(((i + 1) % ACTORS) as u32),
                budget: ticks_per_lane,
                ticks_done: 0,
                deliveries: 0,
                timeout: None,
                timeouts_fired: 0,
            }),
        );
        assert_eq!(lane.0 as usize, i);
    }
    for i in 0..ACTORS {
        sim.seed(LaneId(i as u32), SimTime::from_nanos(i as u64), EV_TICK);
    }
    sim
}

/// Workload self-check: every tick ran, every delivery landed, every
/// armed timeout fired exactly once.
fn check_sharded(sim: &ShardedSim, ticks_per_lane: u64) {
    let mut ticks = 0u64;
    let mut deliveries = 0u64;
    let mut timeouts = 0u64;
    for i in 0..ACTORS {
        let a = sim.actor::<ShardTick>(LaneId(i as u32)).expect("actor present");
        ticks += a.ticks_done;
        deliveries += a.deliveries;
        timeouts += a.timeouts_fired;
    }
    assert_eq!(ticks, ticks_per_lane * ACTORS as u64, "sharded workload self-check: ticks");
    assert_eq!(deliveries, ticks, "sharded workload self-check: deliveries");
    assert_eq!(timeouts, ACTORS as u64, "each lane's single timeout fires once");
}

struct ShardedRun {
    shards: usize,
    mode: RunMode,
    m: Measured,
}

/// One measured sharded run. The executor is `ShardedSim::run`'s own
/// choice (threads when the host has them, sequential otherwise) — the
/// numbers describe what a user of the engine actually gets on this host.
fn run_sharded_perf(shards: usize, total_ticks: u64) -> ShardedRun {
    let ticks_per_lane = total_ticks / ACTORS as u64;
    let mut sim = build_sharded(shards, ticks_per_lane, false);
    let mut mode = RunMode::Sequential;
    let m = measure(ticks_per_lane * ACTORS as u64, || {
        let report = sim.run();
        mode = report.mode;
        (report.executed, report.end.as_nanos())
    });
    check_sharded(&sim, ticks_per_lane);
    ShardedRun { shards, mode, m }
}

/// Hard determinism gate: the canonical digest of the sharded workload
/// must be identical at every shard count (the 1-shard run is the
/// reference semantics). Uses a smaller tick budget — capture allocates —
/// and, when the host has threads, checks the threaded executor too.
fn check_sharded_determinism() -> bool {
    const DET_TICKS_PER_LANE: u64 = 1_000;
    let mut reference = build_sharded(1, DET_TICKS_PER_LANE, true);
    reference.run_sequential();
    let want = reference.digest();
    let mut ok = true;
    for &shards in &[2usize, 4, 8] {
        let mut seq = build_sharded(shards, DET_TICKS_PER_LANE, true);
        seq.run_sequential();
        if seq.digest() != want {
            eprintln!("DETERMINISM VIOLATION: {shards} shards (sequential) diverged from 1 shard");
            ok = false;
        }
        let mut thr = build_sharded(shards, DET_TICKS_PER_LANE, true);
        thr.run_threaded();
        if thr.digest() != want {
            eprintln!("DETERMINISM VIOLATION: {shards} shards (threaded) diverged from 1 shard");
            ok = false;
        }
    }
    ok
}

/// Steady-state allocation check for the sharded engine, O(1)-style:
/// doubling the event count must not grow the allocation count beyond a
/// small constant slack (slab/mailbox/scratch reuse means the extra
/// events recycle storage). Returns `(allocs_1x, growth)`.
fn sharded_alloc_growth(shards: usize) -> (u64, i64) {
    const BASE_TICKS_PER_LANE: u64 = 2_000;
    let run = |ticks: u64| -> u64 {
        let mut sim = build_sharded(shards, ticks, false);
        let a0 = allocs();
        sim.run();
        allocs() - a0
    };
    // Warm the allocator's size classes so neither measured run pays
    // one-time global growth.
    run(BASE_TICKS_PER_LANE);
    let one = run(BASE_TICKS_PER_LANE);
    let two = run(2 * BASE_TICKS_PER_LANE);
    (one, two as i64 - one as i64)
}

// ---------------------------------------------------------------------
// Sharded world: the real parcelport workloads on the federated engine
// (one lane per locality over N shards), wall-clock vs. the 1-shard run.
// ---------------------------------------------------------------------

/// One scenario point on the federated world's scaling curve.
struct WorldPoint {
    scenario: &'static str,
    shards: usize,
    m: Measured,
}

/// Fig1-shaped message-rate run (2 localities) on the sharded world.
/// Asserts the virtual-time result matches the legacy single-heap run —
/// the determinism contract, enforced here so a perf regression hunt can
/// never chase a semantically different workload.
fn run_world_fig1(shards: usize, legacy_done: SimTime) -> Measured {
    measure_workload(|| {
        let mut p = bench::MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
        p.total_msgs = 20_000;
        let r = bench::run_msgrate_sharded(&p, shards, None);
        assert!(r.completed, "sharded fig1 workload must complete");
        assert_eq!(r.comm_done, legacy_done, "sharded fig1 diverged from the single-heap run");
        (r.events_executed, r.comm_done.as_nanos())
    })
}

/// Octotiger level-4 run (4 localities) on the sharded world; same
/// equality contract against the legacy run.
fn run_world_octo(shards: usize, legacy_total: SimTime) -> Measured {
    measure_workload(|| {
        let mut p = octotiger_mini::OctoParams::expanse("lci_psr_cq_pin_i".parse().unwrap(), 4);
        p.level = 4;
        p.steps = 2;
        p.cores = 8;
        let r = octotiger_mini::run_octotiger_sharded(&p, shards, None);
        assert!(r.completed, "sharded octotiger workload must complete");
        assert!(r.mass_ok, "sharded octotiger invariant violated");
        assert_eq!(r.total, legacy_total, "sharded octotiger diverged from the single-heap run");
        (r.events_executed, r.total.as_nanos())
    })
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

struct Measured {
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    ticks_per_sec: f64,
    sim_ns_per_wall_ms: f64,
    allocations: u64,
    alloc_bytes: u64,
}

fn measure<F: FnOnce() -> (u64, u64)>(ticks: u64, f: F) -> Measured {
    let a0 = allocs();
    let b0 = alloc_bytes();
    let t0 = Instant::now();
    let (events, sim_ns) = f();
    let wall = t0.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    Measured {
        events,
        wall_ms,
        events_per_sec: events as f64 / wall.as_secs_f64(),
        ticks_per_sec: ticks as f64 / wall.as_secs_f64(),
        sim_ns_per_wall_ms: sim_ns as f64 / wall_ms,
        allocations: allocs() - a0,
        alloc_bytes: alloc_bytes() - b0,
    }
}

/// Measure one real workload (current engine only): wall-clock events/sec
/// and simulated-ns per wall-ms — the perf-trajectory numbers future
/// engine changes are compared against.
fn measure_workload<F: FnOnce() -> (u64, u64)>(f: F) -> Measured {
    measure(0, f)
}

fn json_workload_block(m: &Measured, alloc_ceiling: u64) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"events_executed\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"events_per_sec\": {:.0},\n",
            "    \"sim_ns_per_wall_ms\": {:.0},\n",
            "    \"allocations\": {},\n",
            "    \"alloc_ceiling\": {},\n",
            "    \"alloc_bytes\": {}\n",
            "  }}"
        ),
        m.events,
        m.wall_ms,
        m.events_per_sec,
        m.sim_ns_per_wall_ms,
        m.allocations,
        alloc_ceiling,
        m.alloc_bytes,
    )
}

fn json_block(m: &Measured) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"events_executed\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"events_per_sec\": {:.0},\n",
            "    \"logical_ticks_per_sec\": {:.0},\n",
            "    \"sim_ns_per_wall_ms\": {:.0},\n",
            "    \"allocations\": {},\n",
            "    \"alloc_bytes\": {}\n",
            "  }}"
        ),
        m.events,
        m.wall_ms,
        m.events_per_sec,
        m.ticks_per_sec,
        m.sim_ns_per_wall_ms,
        m.allocations,
        m.alloc_bytes,
    )
}

fn main() {
    println!("engine_throughput: {ACTORS} actors, {TICKS} logical ticks (+{WARMUP} warmup)");
    println!();

    // --- baseline (seed engine replica) ---
    run_baseline(WARMUP); // warm the allocator's size classes
    let base = measure(TICKS, || {
        let (events, now, deliveries, dead) = run_baseline(TICKS);
        assert_eq!(deliveries, TICKS, "baseline workload self-check");
        assert!(dead > 0, "baseline must exhibit stale timeout events");
        (events, now)
    });

    // --- current engine ---
    // Warmup on the sim we will measure: grows the heap Vec, slot slab
    // and free list to steady state, so the measured phase reuses
    // storage instead of allocating. The budget is oversized so the
    // measured window stays in steady state (no end-of-run drain); the
    // drain happens after, unmeasured.
    let (wl, mut sim) = run_engine(WARMUP + TICKS + 8 * ACTORS as u64);
    while wl.actors.borrow().iter().map(|a| a.ticks_done).sum::<u64>() < WARMUP {
        sim.step();
    }
    let ticks_before: u64 = wl.actors.borrow().iter().map(|a| a.ticks_done).sum();
    let sim_ref = &mut sim;
    let hot_alloc_start = allocs();
    let mut eng = measure(TICKS, || {
        let start = sim_ref.events_executed();
        let t0 = sim_ref.now().as_nanos();
        // Steady state: exactly two events per logical tick (the tick
        // itself and the delivery it spawned; timeouts only move).
        for _ in 0..2 * TICKS {
            sim_ref.step();
        }
        (sim_ref.events_executed() - start, sim_ref.now().as_nanos() - t0)
    });
    let hot_allocs = allocs() - hot_alloc_start;
    let ticks_measured: u64 =
        wl.actors.borrow().iter().map(|a| a.ticks_done).sum::<u64>() - ticks_before;
    eng.ticks_per_sec = ticks_measured as f64 / (eng.wall_ms / 1e3);
    // Drain the tail (unmeasured) and self-check the workload.
    *wl.budget.borrow_mut() = 0;
    while sim.step() {}
    {
        let actors = wl.actors.borrow();
        let ticks: u64 = actors.iter().map(|a| a.ticks_done).sum();
        let deliveries: u64 = actors.iter().map(|a| a.deliveries).sum();
        let timeouts: u64 = actors.iter().map(|a| a.timeouts_fired).sum();
        assert_eq!(deliveries, ticks, "engine workload self-check");
        assert_eq!(timeouts, ACTORS as u64, "each actor's single timeout fires once");
        assert!(ticks_measured >= TICKS - ACTORS as u64 && ticks_measured <= TICKS + ACTORS as u64);
    }

    // --- real-workload trajectory points (current engine only) ---
    let mut fig1_done = SimTime::ZERO;
    let fig1 = measure_workload(|| {
        let mut p = bench::MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
        p.total_msgs = 20_000;
        let r = bench::run_msgrate(&p);
        assert!(r.completed, "fig1-style workload must complete");
        fig1_done = r.comm_done;
        (r.events_executed, r.comm_done.as_nanos())
    });
    let mut octo_total = SimTime::ZERO;
    let octo = measure_workload(|| {
        let mut p = octotiger_mini::OctoParams::expanse("lci_psr_cq_pin_i".parse().unwrap(), 4);
        p.level = 4;
        p.steps = 2;
        p.cores = 8;
        let r = octotiger_mini::run_octotiger(&p);
        assert!(r.completed, "octotiger workload must complete");
        octo_total = r.total;
        (r.events_executed, r.total.as_nanos())
    });

    // --- sharded engine: scaling curve + determinism + O(1) allocs ---
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sharded_deterministic = check_sharded_determinism();
    let sharded: Vec<ShardedRun> =
        [1usize, 2, 4, 8].iter().map(|&s| run_sharded_perf(s, TICKS)).collect();
    let ticks_1shard = sharded[0].m.ticks_per_sec;
    let speedup_4shard = sharded[2].m.ticks_per_sec / ticks_1shard;
    let (alloc_1x_1s, alloc_growth_1s) = sharded_alloc_growth(1);
    let (alloc_1x_4s, alloc_growth_4s) = sharded_alloc_growth(4);
    /// Doubling the workload may add at most this many allocations
    /// (thread spawns and one-time growth are constant; events recycle).
    const ALLOC_GROWTH_SLACK: i64 = 512;
    let sharded_allocs_ok =
        alloc_growth_1s <= ALLOC_GROWTH_SLACK && alloc_growth_4s <= ALLOC_GROWTH_SLACK;
    // The wall-clock speedup gate only means something when the host can
    // actually run shards in parallel; on a single-CPU host the engine
    // (correctly) picks the sequential executor, so only determinism and
    // allocation behaviour are gated there. Floors: >= 2x at 4 shards on
    // a >= 4-CPU host, >= 1x on any multi-CPU host.
    let sharded_speedup_ok = if host_cpus >= 4 {
        speedup_4shard >= 2.0
    } else if host_cpus > 1 {
        speedup_4shard >= 1.0
    } else {
        true
    };

    // --- sharded world: real workloads on the federated engine ---
    // fig1 has 2 localities (so 2 lanes max), octotiger-L4 has 4; each
    // point re-runs the full build + run and must reproduce the legacy
    // virtual-time result exactly (asserted inside the runners).
    let mut world: Vec<WorldPoint> = Vec::new();
    for &s in &[1usize, 2] {
        world.push(WorldPoint {
            scenario: "fig1_msgrate_8b",
            shards: s,
            m: run_world_fig1(s, fig1_done),
        });
    }
    for &s in &[1usize, 2, 4] {
        world.push(WorldPoint {
            scenario: "octotiger_level4",
            shards: s,
            m: run_world_octo(s, octo_total),
        });
    }
    let world_base = |scenario: &str| {
        world
            .iter()
            .find(|p| p.scenario == scenario && p.shards == 1)
            .map(|p| p.m.wall_ms)
            .unwrap_or(f64::NAN)
    };
    let world_speedup = |p: &WorldPoint| world_base(p.scenario) / p.m.wall_ms;
    let world_octo_4shard_speedup = world
        .iter()
        .find(|p| p.scenario == "octotiger_level4" && p.shards == 4)
        .map(world_speedup)
        .unwrap_or(f64::NAN);
    // Same host-conditionality as the engine gate: wall-clock speedup of
    // the federated world only means something when the host can run the
    // lanes in parallel.
    let world_speedup_ok = if host_cpus >= 4 { world_octo_4shard_speedup >= 2.0 } else { true };
    // Sharded-world allocation ceilings. fig1's sharded count matches the
    // legacy run (~161k): the steady-state per-message path is identical
    // and the federated build overhead is noise. octotiger pays ~4x the
    // legacy build (each of the 4 lanes rebuilds the full tree, SFC
    // partition and app states — per-lane replication is the federation
    // design, there is no shared heap to point into); measured 1.42M at
    // every shard count. Headroom ~25-30% over measured.
    const FIG1_SHARDED_ALLOC_CEILING: u64 = 210_000;
    const OCTO_SHARDED_ALLOC_CEILING: u64 = 1_800_000;
    let world_allocs_ok = world.iter().all(|p| {
        p.m.allocations
            <= if p.scenario == "fig1_msgrate_8b" {
                FIG1_SHARDED_ALLOC_CEILING
            } else {
                OCTO_SHARDED_ALLOC_CEILING
            }
    });

    // Per-scenario allocation ceilings, pinned from the audited counts
    // (fig1: ~8 allocations/message after the zero-copy decode work —
    // args vec, encode writer+handle, header writer+handle, decode vecs,
    // one task box; octotiger: dominated by intrinsic per-leaf payload
    // encodes and task spawns). Headroom is ~25% over the measured value;
    // the pre-audit counts (281k / 434k) fail these ceilings.
    const FIG1_ALLOC_CEILING: u64 = 200_000;
    const OCTO_ALLOC_CEILING: u64 = 500_000;
    let workload_allocs_ok =
        fig1.allocations <= FIG1_ALLOC_CEILING && octo.allocations <= OCTO_ALLOC_CEILING;

    let speedup = eng.ticks_per_sec / base.ticks_per_sec;
    let zero_hot_allocs = hot_allocs == 0;
    let pass = speedup >= THRESHOLD
        && zero_hot_allocs
        && sharded_deterministic
        && sharded_allocs_ok
        && sharded_speedup_ok
        && workload_allocs_ok
        && world_speedup_ok
        && world_allocs_ok;

    println!("baseline (BinaryHeap + boxed closures, stale timeouts):");
    println!("  events executed   {:>12}", base.events);
    println!("  wall              {:>12.1} ms", base.wall_ms);
    println!("  events/sec        {:>12.0}", base.events_per_sec);
    println!("  logical ticks/sec {:>12.0}", base.ticks_per_sec);
    println!("  allocations       {:>12}", base.allocations);
    println!();
    println!("engine (typed events + indexed 4-ary heap + reschedule):");
    println!("  events executed   {:>12}", eng.events);
    println!("  wall              {:>12.1} ms", eng.wall_ms);
    println!("  events/sec        {:>12.0}", eng.events_per_sec);
    println!("  logical ticks/sec {:>12.0}", eng.ticks_per_sec);
    println!("  allocations       {:>12}  (hot path: {hot_allocs})", eng.allocations);
    println!();
    println!("real workloads (current engine, trajectory):");
    println!(
        "  fig1-style 8B msgrate  {:>10.0} events/sec  {:>9.0} sim-ns/wall-ms  \
         {} allocs (ceiling {FIG1_ALLOC_CEILING})",
        fig1.events_per_sec, fig1.sim_ns_per_wall_ms, fig1.allocations
    );
    println!(
        "  octotiger-mini level 4 {:>10.0} events/sec  {:>9.0} sim-ns/wall-ms  \
         {} allocs (ceiling {OCTO_ALLOC_CEILING})",
        octo.events_per_sec, octo.sim_ns_per_wall_ms, octo.allocations
    );
    println!();
    println!(
        "sharded engine ({ACTORS} lanes, lookahead {SHARD_LOOKAHEAD} ns, host CPUs: {host_cpus}):"
    );
    for r in &sharded {
        println!(
            "  {} shard{} [{}]: {:>11.0} ticks/sec  {:>11.0} events/sec  speedup {:>5.2}x",
            r.shards,
            if r.shards == 1 { " " } else { "s" },
            match r.mode {
                RunMode::Sequential => "seq",
                RunMode::Threaded => "thr",
            },
            r.m.ticks_per_sec,
            r.m.events_per_sec,
            r.m.ticks_per_sec / ticks_1shard,
        );
    }
    println!(
        "  determinism (digest, 1 vs 2/4/8 shards, seq+thr): {}",
        if sharded_deterministic { "ok" } else { "VIOLATED" }
    );
    println!(
        "  alloc growth on 2x events: 1-shard {alloc_growth_1s:+} (of {alloc_1x_1s}), \
         4-shard {alloc_growth_4s:+} (of {alloc_1x_4s})  [slack {ALLOC_GROWTH_SLACK}]"
    );
    if host_cpus == 1 {
        println!("  speedup gate skipped: single-CPU host (sequential executor selected)");
    }
    println!();
    println!("sharded world (one lane per locality, real parcelport workloads):");
    for p in &world {
        println!(
            "  {:<18} {} shard{}: {:>8.1} ms wall  {:>11.0} events/sec  speedup {:>5.2}x  \
             {} allocs",
            p.scenario,
            p.shards,
            if p.shards == 1 { " " } else { "s" },
            p.m.wall_ms,
            p.m.events_per_sec,
            world_speedup(p),
            p.m.allocations,
        );
    }
    println!(
        "  octotiger 4-shard speedup: {world_octo_4shard_speedup:.2}x{}  world allocs: {}",
        if host_cpus >= 4 { " (gate: >= 2x)" } else { " (gate skipped: < 4 host CPUs)" },
        if world_allocs_ok { "ok" } else { "CEILING EXCEEDED" },
    );
    println!();
    println!("speedup (logical ticks/sec): {speedup:.2}x  (threshold {THRESHOLD}x)");
    println!("hot-path allocations: {hot_allocs} (must be 0)");
    println!(
        "workload allocation ceilings: {}",
        if workload_allocs_ok { "ok" } else { "EXCEEDED" }
    );
    println!("peak heap: {} bytes", peak_bytes());
    println!("result: {}", if pass { "PASS" } else { "FAIL" });

    let sharded_configs: String = sharded
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "      {{\n",
                    "        \"shards\": {},\n",
                    "        \"mode\": \"{}\",\n",
                    "        \"events_executed\": {},\n",
                    "        \"wall_ms\": {:.3},\n",
                    "        \"events_per_sec\": {:.0},\n",
                    "        \"logical_ticks_per_sec\": {:.0},\n",
                    "        \"speedup_vs_1shard\": {:.3}\n",
                    "      }}"
                ),
                r.shards,
                match r.mode {
                    RunMode::Sequential => "sequential",
                    RunMode::Threaded => "threaded",
                },
                r.m.events,
                r.m.wall_ms,
                r.m.events_per_sec,
                r.m.ticks_per_sec,
                r.m.ticks_per_sec / ticks_1shard,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let world_configs: String = world
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "      {{\n",
                    "        \"scenario\": \"{}\",\n",
                    "        \"shards\": {},\n",
                    "        \"events_executed\": {},\n",
                    "        \"wall_ms\": {:.3},\n",
                    "        \"events_per_sec\": {:.0},\n",
                    "        \"allocations\": {},\n",
                    "        \"speedup_vs_1shard\": {:.3}\n",
                    "      }}"
                ),
                p.scenario,
                p.shards,
                p.m.events,
                p.m.wall_ms,
                p.m.events_per_sec,
                p.m.allocations,
                world_speedup(p),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"engine_throughput\",\n",
            "  \"actors\": {},\n",
            "  \"logical_ticks\": {},\n",
            "  \"baseline\": {},\n",
            "  \"engine\": {},\n",
            "  \"fig1_msgrate_8b\": {},\n",
            "  \"octotiger_level4\": {},\n",
            "  \"sharded\": {{\n",
            "    \"host_cpus\": {},\n",
            "    \"lookahead_ns\": {},\n",
            "    \"deterministic\": {},\n",
            "    \"alloc_growth_2x_1shard\": {},\n",
            "    \"alloc_growth_2x_4shard\": {},\n",
            "    \"speedup_4shard_vs_1shard\": {:.3},\n",
            "    \"configs\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"world_sharded\": {{\n",
            "    \"fig1_alloc_ceiling\": {},\n",
            "    \"octo_alloc_ceiling\": {},\n",
            "    \"octo_speedup_4shard_vs_1shard\": {:.3},\n",
            "    \"speedup_ok\": {},\n",
            "    \"allocs_ok\": {},\n",
            "    \"configs\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"speedup_ticks_per_sec\": {:.3},\n",
            "  \"threshold\": {},\n",
            "  \"hot_path_allocations\": {},\n",
            "  \"peak_heap_bytes\": {},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        ACTORS,
        TICKS,
        json_block(&base),
        json_block(&eng),
        json_workload_block(&fig1, FIG1_ALLOC_CEILING),
        json_workload_block(&octo, OCTO_ALLOC_CEILING),
        host_cpus,
        SHARD_LOOKAHEAD,
        sharded_deterministic,
        alloc_growth_1s,
        alloc_growth_4s,
        speedup_4shard,
        sharded_configs,
        FIG1_SHARDED_ALLOC_CEILING,
        OCTO_SHARDED_ALLOC_CEILING,
        world_octo_4shard_speedup,
        world_speedup_ok,
        world_allocs_ok,
        world_configs,
        speedup,
        THRESHOLD,
        hot_allocs,
        peak_bytes(),
        pass,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!();
    println!("wrote BENCH_engine.json");

    if !pass {
        std::process::exit(1);
    }
}
