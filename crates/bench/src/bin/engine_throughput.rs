//! Wall-clock throughput of the event engine hot path.
//!
//! Unlike every other harness in this crate — which measures *simulated*
//! time — this one measures how fast the simulator itself executes
//! events on the host. It drives a fig1-shaped event mix (self-re-arming
//! per-core ticks, one-shot packet deliveries, a progress timeout that
//! moves on every tick) through two engines:
//!
//! * **baseline** — a self-contained replica of the seed engine: a
//!   `BinaryHeap` of boxed closures, no cancellation, so every timeout
//!   re-arm schedules a fresh event and leaves the stale one to fire as
//!   a dead no-op (exactly what `ParcelLayer`/`Locality` did before the
//!   indexed heap landed);
//! * **engine** — the current `simcore::Sim`: typed handler events on
//!   the indexed four-ary heap, timeout re-arms via `reschedule`.
//!
//! It reports wall-clock events/sec, simulated-ns advanced per wall-ms,
//! allocation counts, and peak heap for both, writes
//! `BENCH_engine.json`, and *fails* (exit 1) unless the current engine
//! clears 1.5x the baseline's logical throughput and executes the
//! steady-state hot path with zero allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use simcore::{EventHandler, EventId, HandlerId, Sim, SimTime};

// ---------------------------------------------------------------------
// Counting allocator: every heap alloc in the process goes through here.
// ---------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        let live =
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Workload shape (identical logical work on both engines).
// ---------------------------------------------------------------------

/// Simulated cores, each with a self-re-arming tick (fig1's per-core
/// scheduler loop).
const ACTORS: usize = 64;
/// Logical ticks to execute in the measured phase.
const TICKS: u64 = 2_000_000;
/// Warmup ticks (grows heaps/slabs to steady state before measuring).
const WARMUP: u64 = 100_000;
/// Throughput the current engine must clear vs. baseline.
const THRESHOLD: f64 = 1.5;

/// Per-actor deterministic LCG; both engines draw the same deltas.
#[derive(Clone)]
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Delay until this actor's next tick, ns in [200, 1224).
    fn tick_delta(&mut self) -> u64 {
        200 + (self.next() & 1023)
    }

    /// Delay until the delivery spawned by a tick, ns in [50, 178):
    /// always lands before the next tick, so at most one is in flight
    /// per actor and the steady state never grows the queue.
    fn deliver_delta(&mut self) -> u64 {
        50 + (self.next() & 127)
    }
}

/// How far ahead each tick pushes its progress timeout (~23 ticks),
/// mirroring the parcel layer's flush-window timer: re-armed on every
/// tick, it only fires once the actor goes quiet.
const TIMEOUT_AHEAD: u64 = 16 * 1024;

// ---------------------------------------------------------------------
// Baseline: replica of the seed engine (BinaryHeap + boxed closures).
// ---------------------------------------------------------------------

struct OldEntry {
    at: u64,
    seq: u64,
    f: Box<dyn FnOnce(&mut OldSim)>,
}

impl PartialEq for OldEntry {
    fn eq(&self, o: &Self) -> bool {
        (self.at, self.seq) == (o.at, o.seq)
    }
}
impl Eq for OldEntry {}
impl PartialOrd for OldEntry {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for OldEntry {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(o.at, o.seq))
    }
}

/// The seed engine's scheduling core, reproduced verbatim in miniature:
/// one boxed closure per event, min-order via `Reverse`, no cancel.
struct OldSim {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<OldEntry>>,
    executed: u64,
}

impl OldSim {
    fn new() -> Self {
        OldSim { now: 0, seq: 0, queue: BinaryHeap::new(), executed: 0 }
    }

    fn schedule_at<F: FnOnce(&mut OldSim) + 'static>(&mut self, at: u64, f: F) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(OldEntry { at, seq, f: Box::new(f) }));
    }

    fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(e)) => {
                self.now = e.at;
                self.executed += 1;
                (e.f)(self);
                true
            }
            None => false,
        }
    }
}

/// Shared per-actor state for the baseline run. `timeout_gen` implements
/// the seed's dedup-by-staleness: each re-arm bumps the generation and
/// schedules a fresh closure; stale generations fire as no-ops.
struct OldActor {
    rng: Lcg,
    ticks_done: u64,
    timeout_gen: u64,
    deliveries: u64,
    dead_events: u64,
}

fn run_baseline(ticks: u64) -> (u64, u64, u64, u64) {
    let actors: Rc<RefCell<Vec<OldActor>>> = Rc::new(RefCell::new(
        (0..ACTORS)
            .map(|i| OldActor {
                rng: Lcg(0x9E37_79B9_7F4A_7C15 ^ ((i as u64) << 17)),
                ticks_done: 0,
                timeout_gen: 0,
                deliveries: 0,
                dead_events: 0,
            })
            .collect(),
    ));
    let mut sim = OldSim::new();
    let budget = Rc::new(RefCell::new(ticks));
    for i in 0..ACTORS {
        let a = actors.clone();
        let b = budget.clone();
        sim.schedule_at(i as u64, move |s| old_tick(s, a, b, i));
    }
    while sim.step() {}
    let a = actors.borrow();
    let deliveries: u64 = a.iter().map(|x| x.deliveries).sum();
    let dead: u64 = a.iter().map(|x| x.dead_events).sum();
    (sim.executed, sim.now, deliveries, dead)
}

fn old_tick(
    sim: &mut OldSim,
    actors: Rc<RefCell<Vec<OldActor>>>,
    budget: Rc<RefCell<u64>>,
    i: usize,
) {
    {
        let mut b = budget.borrow_mut();
        if *b == 0 {
            return;
        }
        *b -= 1;
    }
    let (tick_d, deliver_d, gen) = {
        let mut a = actors.borrow_mut();
        let act = &mut a[i];
        act.ticks_done += 1;
        act.timeout_gen += 1;
        (act.rng.tick_delta(), act.rng.deliver_delta(), act.timeout_gen)
    };
    // Delivery: a fresh boxed one-shot per tick.
    let a2 = actors.clone();
    sim.schedule_at(sim.now + deliver_d, move |_s| {
        a2.borrow_mut()[i].deliveries += 1;
    });
    // Timeout re-arm, seed style: schedule a new boxed event and let the
    // stale one from the previous tick fire as a dead no-op.
    let a3 = actors.clone();
    sim.schedule_at(sim.now + TIMEOUT_AHEAD, move |_s| {
        let mut a = a3.borrow_mut();
        if a[i].timeout_gen != gen {
            a[i].dead_events += 1; // stale — the seed engine's waste
        }
    });
    // Next tick.
    let a4 = actors.clone();
    let b4 = budget.clone();
    sim.schedule_at(sim.now + tick_d, move |s| old_tick(s, a4, b4, i));
}

// ---------------------------------------------------------------------
// Current engine: typed handler events + reschedule on the 4-ary heap.
// ---------------------------------------------------------------------

const EV_TICK: u64 = 0;
const EV_DELIVER: u64 = 1;
const EV_TIMEOUT: u64 = 2;

struct NewActorState {
    rng: Lcg,
    ticks_done: u64,
    deliveries: u64,
    timeout: Option<EventId>,
    timeouts_fired: u64,
}

/// The whole workload as one `EventHandler`; the arg word encodes
/// `(actor << 2) | kind`, mirroring how `amt::Locality` tags its events.
struct NewWorkload {
    actors: RefCell<Vec<NewActorState>>,
    budget: RefCell<u64>,
    me: RefCell<Option<HandlerId>>,
}

impl NewWorkload {
    fn arg(actor: usize, kind: u64) -> u64 {
        ((actor as u64) << 2) | kind
    }
}

impl EventHandler for NewWorkload {
    fn on_event(&self, sim: &mut Sim, arg: u64) {
        let kind = arg & 0b11;
        let i = (arg >> 2) as usize;
        match kind {
            EV_TICK => {
                {
                    let mut b = self.budget.borrow_mut();
                    if *b == 0 {
                        return;
                    }
                    *b -= 1;
                }
                let h = self.me.borrow().expect("registered");
                let now = sim.now();
                let mut actors = self.actors.borrow_mut();
                let act = &mut actors[i];
                act.ticks_done += 1;
                let tick_d = act.rng.tick_delta();
                let deliver_d = act.rng.deliver_delta();
                let timeout = act.timeout;
                drop(actors);
                sim.schedule_event_at(now + deliver_d, h, Self::arg(i, EV_DELIVER));
                // Timeout re-arm: move the single live event instead of
                // abandoning a stale one.
                let moved = timeout.map(|ev| sim.reschedule(ev, now + TIMEOUT_AHEAD));
                if moved != Some(true) {
                    let ev =
                        sim.schedule_event_at(now + TIMEOUT_AHEAD, h, Self::arg(i, EV_TIMEOUT));
                    self.actors.borrow_mut()[i].timeout = Some(ev);
                }
                sim.schedule_event_at(now + tick_d, h, Self::arg(i, EV_TICK));
            }
            EV_DELIVER => {
                self.actors.borrow_mut()[i].deliveries += 1;
            }
            EV_TIMEOUT => {
                let mut actors = self.actors.borrow_mut();
                actors[i].timeout = None;
                actors[i].timeouts_fired += 1;
            }
            _ => unreachable!("unknown event tag"),
        }
    }
}

fn run_engine(ticks: u64) -> (Rc<NewWorkload>, Sim) {
    let wl = Rc::new(NewWorkload {
        actors: RefCell::new(
            (0..ACTORS)
                .map(|i| NewActorState {
                    rng: Lcg(0x9E37_79B9_7F4A_7C15 ^ ((i as u64) << 17)),
                    ticks_done: 0,
                    deliveries: 0,
                    timeout: None,
                    timeouts_fired: 0,
                })
                .collect(),
        ),
        budget: RefCell::new(ticks),
        me: RefCell::new(None),
    });
    let mut sim = Sim::new(1);
    let h = sim.register_handler(wl.clone());
    *wl.me.borrow_mut() = Some(h);
    for i in 0..ACTORS {
        sim.schedule_event_at(SimTime::from_nanos(i as u64), h, NewWorkload::arg(i, EV_TICK));
    }
    (wl, sim)
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

struct Measured {
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    ticks_per_sec: f64,
    sim_ns_per_wall_ms: f64,
    allocations: u64,
    alloc_bytes: u64,
}

fn measure<F: FnOnce() -> (u64, u64)>(ticks: u64, f: F) -> Measured {
    let a0 = allocs();
    let b0 = alloc_bytes();
    let t0 = Instant::now();
    let (events, sim_ns) = f();
    let wall = t0.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    Measured {
        events,
        wall_ms,
        events_per_sec: events as f64 / wall.as_secs_f64(),
        ticks_per_sec: ticks as f64 / wall.as_secs_f64(),
        sim_ns_per_wall_ms: sim_ns as f64 / wall_ms,
        allocations: allocs() - a0,
        alloc_bytes: alloc_bytes() - b0,
    }
}

/// Measure one real workload (current engine only): wall-clock events/sec
/// and simulated-ns per wall-ms — the perf-trajectory numbers future
/// engine changes are compared against.
fn measure_workload<F: FnOnce() -> (u64, u64)>(f: F) -> Measured {
    measure(0, f)
}

fn json_workload_block(m: &Measured) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"events_executed\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"events_per_sec\": {:.0},\n",
            "    \"sim_ns_per_wall_ms\": {:.0},\n",
            "    \"allocations\": {},\n",
            "    \"alloc_bytes\": {}\n",
            "  }}"
        ),
        m.events, m.wall_ms, m.events_per_sec, m.sim_ns_per_wall_ms, m.allocations, m.alloc_bytes,
    )
}

fn json_block(m: &Measured) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"events_executed\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"events_per_sec\": {:.0},\n",
            "    \"logical_ticks_per_sec\": {:.0},\n",
            "    \"sim_ns_per_wall_ms\": {:.0},\n",
            "    \"allocations\": {},\n",
            "    \"alloc_bytes\": {}\n",
            "  }}"
        ),
        m.events,
        m.wall_ms,
        m.events_per_sec,
        m.ticks_per_sec,
        m.sim_ns_per_wall_ms,
        m.allocations,
        m.alloc_bytes,
    )
}

fn main() {
    println!("engine_throughput: {ACTORS} actors, {TICKS} logical ticks (+{WARMUP} warmup)");
    println!();

    // --- baseline (seed engine replica) ---
    run_baseline(WARMUP); // warm the allocator's size classes
    let base = measure(TICKS, || {
        let (events, now, deliveries, dead) = run_baseline(TICKS);
        assert_eq!(deliveries, TICKS, "baseline workload self-check");
        assert!(dead > 0, "baseline must exhibit stale timeout events");
        (events, now)
    });

    // --- current engine ---
    // Warmup on the sim we will measure: grows the heap Vec, slot slab
    // and free list to steady state, so the measured phase reuses
    // storage instead of allocating. The budget is oversized so the
    // measured window stays in steady state (no end-of-run drain); the
    // drain happens after, unmeasured.
    let (wl, mut sim) = run_engine(WARMUP + TICKS + 8 * ACTORS as u64);
    while wl.actors.borrow().iter().map(|a| a.ticks_done).sum::<u64>() < WARMUP {
        sim.step();
    }
    let ticks_before: u64 = wl.actors.borrow().iter().map(|a| a.ticks_done).sum();
    let sim_ref = &mut sim;
    let hot_alloc_start = allocs();
    let mut eng = measure(TICKS, || {
        let start = sim_ref.events_executed();
        let t0 = sim_ref.now().as_nanos();
        // Steady state: exactly two events per logical tick (the tick
        // itself and the delivery it spawned; timeouts only move).
        for _ in 0..2 * TICKS {
            sim_ref.step();
        }
        (sim_ref.events_executed() - start, sim_ref.now().as_nanos() - t0)
    });
    let hot_allocs = allocs() - hot_alloc_start;
    let ticks_measured: u64 =
        wl.actors.borrow().iter().map(|a| a.ticks_done).sum::<u64>() - ticks_before;
    eng.ticks_per_sec = ticks_measured as f64 / (eng.wall_ms / 1e3);
    // Drain the tail (unmeasured) and self-check the workload.
    *wl.budget.borrow_mut() = 0;
    while sim.step() {}
    {
        let actors = wl.actors.borrow();
        let ticks: u64 = actors.iter().map(|a| a.ticks_done).sum();
        let deliveries: u64 = actors.iter().map(|a| a.deliveries).sum();
        let timeouts: u64 = actors.iter().map(|a| a.timeouts_fired).sum();
        assert_eq!(deliveries, ticks, "engine workload self-check");
        assert_eq!(timeouts, ACTORS as u64, "each actor's single timeout fires once");
        assert!(ticks_measured >= TICKS - ACTORS as u64 && ticks_measured <= TICKS + ACTORS as u64);
    }

    // --- real-workload trajectory points (current engine only) ---
    let fig1 = measure_workload(|| {
        let mut p = bench::MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
        p.total_msgs = 20_000;
        let r = bench::run_msgrate(&p);
        assert!(r.completed, "fig1-style workload must complete");
        (r.events_executed, r.comm_done.as_nanos())
    });
    let octo = measure_workload(|| {
        let mut p = octotiger_mini::OctoParams::expanse("lci_psr_cq_pin_i".parse().unwrap(), 4);
        p.level = 4;
        p.steps = 2;
        p.cores = 8;
        let r = octotiger_mini::run_octotiger(&p);
        assert!(r.completed, "octotiger workload must complete");
        (r.events_executed, r.total.as_nanos())
    });

    let speedup = eng.ticks_per_sec / base.ticks_per_sec;
    let zero_hot_allocs = hot_allocs == 0;
    let pass = speedup >= THRESHOLD && zero_hot_allocs;

    println!("baseline (BinaryHeap + boxed closures, stale timeouts):");
    println!("  events executed   {:>12}", base.events);
    println!("  wall              {:>12.1} ms", base.wall_ms);
    println!("  events/sec        {:>12.0}", base.events_per_sec);
    println!("  logical ticks/sec {:>12.0}", base.ticks_per_sec);
    println!("  allocations       {:>12}", base.allocations);
    println!();
    println!("engine (typed events + indexed 4-ary heap + reschedule):");
    println!("  events executed   {:>12}", eng.events);
    println!("  wall              {:>12.1} ms", eng.wall_ms);
    println!("  events/sec        {:>12.0}", eng.events_per_sec);
    println!("  logical ticks/sec {:>12.0}", eng.ticks_per_sec);
    println!("  allocations       {:>12}  (hot path: {hot_allocs})", eng.allocations);
    println!();
    println!("real workloads (current engine, trajectory):");
    println!(
        "  fig1-style 8B msgrate  {:>10.0} events/sec  {:>9.0} sim-ns/wall-ms",
        fig1.events_per_sec, fig1.sim_ns_per_wall_ms
    );
    println!(
        "  octotiger-mini level 4 {:>10.0} events/sec  {:>9.0} sim-ns/wall-ms",
        octo.events_per_sec, octo.sim_ns_per_wall_ms
    );
    println!();
    println!("speedup (logical ticks/sec): {speedup:.2}x  (threshold {THRESHOLD}x)");
    println!("hot-path allocations: {hot_allocs} (must be 0)");
    println!("peak heap: {} bytes", peak_bytes());
    println!("result: {}", if pass { "PASS" } else { "FAIL" });

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"engine_throughput\",\n",
            "  \"actors\": {},\n",
            "  \"logical_ticks\": {},\n",
            "  \"baseline\": {},\n",
            "  \"engine\": {},\n",
            "  \"fig1_msgrate_8b\": {},\n",
            "  \"octotiger_level4\": {},\n",
            "  \"speedup_ticks_per_sec\": {:.3},\n",
            "  \"threshold\": {},\n",
            "  \"hot_path_allocations\": {},\n",
            "  \"peak_heap_bytes\": {},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        ACTORS,
        TICKS,
        json_block(&base),
        json_block(&eng),
        json_workload_block(&fig1),
        json_workload_block(&octo),
        speedup,
        THRESHOLD,
        hot_allocs,
        peak_bytes(),
        pass,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!();
    println!("wrote BENCH_engine.json");

    if !pass {
        std::process::exit(1);
    }
}
