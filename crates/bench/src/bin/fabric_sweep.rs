//! Fabric-scale congestion sweeps: 64/256/1024 localities over the
//! switched topologies (fat-tree and dragonfly).
//!
//! Two experiment shapes per `(topology, scale)` pair, both fig-1/fig-8
//! flavoured but driven at the fabric layer so the sweep reaches 1024
//! NICs without instantiating 32k simulated cores:
//!
//! * **uniform** — every host injects 8 B packets at a fixed per-node
//!   rate to uniformly random peers; the sweep walks the rate grid until
//!   achieved throughput falls off offered load (the congestion knee,
//!   fig-1's saturation shape at cluster scale);
//! * **hot-spot** — a quarter of all traffic targets host 0; the victim
//!   edge downlink saturates long before any NIC does, and the p50/p99/
//!   p999 latency spread (fig-8's window shape) shows the incast tail.
//!   The hot-spot pass runs under both static (D-mod-k) and adaptive
//!   least-loaded routing.
//!
//! One hot-spot run per pair is re-run instrumented: the contention
//! report must attribute the knee to *named switch ports* (`fab.*` rows
//! with non-zero wait) — that attribution lands in `BENCH_fabric.json`
//! as `knee_port`, and the run nominated by `--trace` writes a Chrome
//! trace whose per-port counter tracks `trace_check --require-counters`
//! validates in CI.
//!
//! Exit code 1 if any sweep fails to show a measurable knee or the
//! contention report fails to attribute it to a switch port.

use bench::cli::{instrumented_for, TraceArgs};
use bench::trace::TraceSink;
use bench::{bench_scale, fmt_rate};
use bytes::Bytes;
use netsim::{Fabric, Packet, RoutingPolicy, Topology, WireModel};
use simcore::{Sim, SimTime};
use telemetry::Histogram;

/// Per-node attempted injection rates (msgs/s). The expanse NIC tops out
/// near 7 M msg/s per node, so the tail of the grid is firmly past the
/// knee on every topology.
const RATE_GRID: [f64; 7] = [100e3, 400e3, 1.6e6, 3.2e6, 6.4e6, 9.6e6, 12.8e6];

/// Hot-spot per-node rate: far below any NIC limit, so the only queueing
/// is inside the fabric, on the victim's downlink.
const HOTSPOT_RATE: f64 = 800e3;
/// Fraction of hot-spot traffic aimed at the victim (host 0).
const HOTSPOT_FRACTION: f64 = 0.25;

/// Achieved/offered ratio below which a grid point counts as saturated.
const KNEE_RATIO: f64 = 0.9;

/// Deterministic per-run LCG (same constants as the other harnesses).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Latency distribution and achieved throughput of one open-loop run.
struct RunResult {
    hist: Histogram,
    achieved_total: f64,
    fabric: Fabric,
}

/// Inject `msgs_per_node` 8 B packets from every host at `rate` msgs/s
/// per node and record post-to-delivery latency. `hotspot` routes a
/// fraction of the traffic at host 0; otherwise destinations are
/// uniformly random. Injection is open-loop: the intended post instants
/// never move, so overload shows up as latency, not as back-pressure.
fn run_load(
    topology: &Topology,
    hosts: usize,
    rate: f64,
    msgs_per_node: usize,
    hotspot: bool,
    seed: u64,
) -> RunResult {
    let model = WireModel::expanse();
    let mut fabric = Fabric::with_topology(hosts, model, topology);
    let mut sim = Sim::new(seed);
    let mut rng = Lcg(seed | 1);
    let mut hist = Histogram::new();
    let period = 1e9 / rate;
    let mut first_inject = u64::MAX;
    let mut last_deliver = 0u64;
    let mut sent = 0u64;
    for k in 0..msgs_per_node {
        for src in 0..hosts {
            // Small per-source stagger (< one period at every grid rate)
            // keeps the whole machine from injecting in lock-step while
            // preserving the global time-sorted send order.
            let at = (k as f64 * period) as u64 + (src as u64 % 13);
            let r = rng.next();
            let dst = if hotspot && src != 0 && (r & 1023) < (HOTSPOT_FRACTION * 1024.0) as u64 {
                0
            } else {
                let d = (r >> 10) as usize % (hosts - 1);
                if d >= src {
                    d + 1
                } else {
                    d
                }
            };
            let pkt = Packet {
                src,
                dst,
                ctx: 0,
                kind: 0,
                tag: sent,
                imm: 0,
                data: Bytes::from_static(b"fab-load"),
            };
            let out = fabric.send(&mut sim, 0, SimTime::from_nanos(at), pkt);
            hist.record(out.deliver_at.as_nanos() - at);
            telemetry::hist_record_at(
                "fabric.delivery_ns",
                out.deliver_at.as_nanos() - at,
                out.deliver_at,
            );
            first_inject = first_inject.min(at);
            last_deliver = last_deliver.max(out.deliver_at.as_nanos());
            sent += 1;
        }
    }
    let span_ns = (last_deliver - first_inject).max(1);
    RunResult { hist, achieved_total: sent as f64 * 1e9 / span_ns as f64, fabric }
}

/// Swap the routing policy of a topology description.
fn with_routing(t: &Topology, routing: RoutingPolicy) -> Topology {
    match t.clone() {
        Topology::FatTree(mut p) => {
            p.routing = routing;
            Topology::FatTree(p)
        }
        Topology::Dragonfly(mut p) => {
            p.routing = routing;
            Topology::Dragonfly(p)
        }
        direct => direct,
    }
}

fn hist_json(h: &Histogram) -> String {
    format!(
        "{{\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"mean_ns\":{:.1},\"max_ns\":{}}}",
        h.p50(),
        h.p99(),
        h.p999(),
        h.mean(),
        h.max()
    )
}

struct SweepDoc {
    json: String,
    has_knee: bool,
    knee_port: Option<String>,
}

/// Run the full uniform sweep + hot-spot passes for one (topology,
/// scale) pair. `nominate_trace` marks this pair's instrumented run as
/// the one that writes the `--trace` Chrome file.
fn run_sweep(
    topology: &Topology,
    hosts: usize,
    msgs_per_node: usize,
    seed: u64,
    targs: &TraceArgs,
    sink: &mut TraceSink,
    nominate_trace: bool,
) -> SweepDoc {
    let label = topology.label();
    let (switches, lookahead) = {
        let fab = topology.build(hosts).expect("sweeps run on switched topologies");
        (fab.graph().switches(), fab.min_first_hop_latency())
    };
    println!("== {label} x {hosts} localities ({switches} switches, lookahead {lookahead} ns) ==");

    // Uniform rate sweep: walk the grid until achieved falls off offered.
    let mut points = Vec::new();
    let mut knee: Option<(usize, f64)> = None;
    for (i, &rate) in RATE_GRID.iter().enumerate() {
        let r = run_load(topology, hosts, rate, msgs_per_node, false, seed + i as u64);
        let offered_total = rate * hosts as f64;
        if knee.is_none() && r.achieved_total < KNEE_RATIO * offered_total {
            knee = Some((i, offered_total));
        }
        println!(
            "  uniform {:>10}/node: achieved {:>7.2} M/s of {:>7.2} M/s offered, \
             p50 {} ns p99 {} ns p999 {} ns",
            fmt_rate(Some(rate)),
            r.achieved_total / 1e6,
            offered_total / 1e6,
            r.hist.p50(),
            r.hist.p99(),
            r.hist.p999(),
        );
        points.push(format!(
            "{{\"offered_per_node\":{rate},\"offered_total\":{offered_total},\
             \"achieved_total\":{:.1},\"latency\":{}}}",
            r.achieved_total,
            hist_json(&r.hist)
        ));
    }

    // Hot-spot tails under both routing policies.
    let mut hot = Vec::new();
    for routing in [RoutingPolicy::Static, RoutingPolicy::Adaptive] {
        let topo = with_routing(topology, routing);
        let r = run_load(&topo, hosts, HOTSPOT_RATE, msgs_per_node, true, seed + 97);
        let name = match routing {
            RoutingPolicy::Static => "static",
            RoutingPolicy::Adaptive => "adaptive",
        };
        println!(
            "  hotspot ({name:>8}): p50 {} ns p99 {} ns p999 {} ns",
            r.hist.p50(),
            r.hist.p99(),
            r.hist.p999(),
        );
        hot.push(format!("\"{name}\":{}", hist_json(&r.hist)));
    }

    // Instrumented hot-spot run: the contention report must attribute
    // the queueing to named switch ports, and the nominated run writes
    // the Chrome trace with per-port counter tracks.
    let config = format!("fabric-{label}-{hosts}-hotspot");
    let (r, tel) = instrumented_for(targs, || {
        run_load(topology, hosts, HOTSPOT_RATE, msgs_per_node, true, seed + 97)
    });
    if nominate_trace {
        sink.set_params(&[
            ("topology", label.to_string()),
            ("hosts", hosts.to_string()),
            ("msgs_per_node", msgs_per_node.to_string()),
        ]);
    }
    sink.emit(&tel, &config, nominate_trace);
    let report = tel.contention_report(&config);
    let knee_port = report
        .rows
        .iter()
        .filter(|(name, _)| name.starts_with("fab."))
        .max_by_key(|(_, s)| s.total_wait_ns)
        .filter(|(_, s)| s.total_wait_ns > 0)
        .map(|(name, s)| (name.to_string(), s.total_wait_ns));
    match &knee_port {
        Some((name, wait)) => {
            println!("  congestion attributed to {name} ({wait} ns total port wait)")
        }
        None => println!("  !! contention report has no fab.* rows with wait"),
    }

    // Busiest ports of the instrumented run, by queueing.
    let top_ports: Vec<String> = {
        let topo = r.fabric.topology().expect("instrumented run used a switched fabric");
        topo.ranked_ports()
            .iter()
            .take(5)
            .map(|(name, c)| {
                format!(
                    "{{\"name\":\"{name}\",\"xmit_pkts\":{},\"xmit_bytes\":{},\
                     \"xmit_wait_ns\":{}}}",
                    c.xmit_pkts, c.xmit_bytes, c.xmit_wait_ns
                )
            })
            .collect()
    };

    let knee_json = match knee {
        Some((i, offered)) => format!("{{\"index\":{i},\"offered_total\":{offered}}}"),
        None => "null".to_string(),
    };
    let knee_port_json = match &knee_port {
        Some((name, wait)) => format!("{{\"name\":\"{name}\",\"total_wait_ns\":{wait}}}"),
        None => "null".to_string(),
    };
    SweepDoc {
        json: format!(
            "{{\"topology\":\"{label}\",\"hosts\":{hosts},\"switches\":{switches},\
             \"min_lookahead_ns\":{lookahead},\"msgs_per_node\":{msgs_per_node},\
             \"uniform\":{{\"points\":[{}],\"knee\":{knee_json}}},\
             \"hotspot\":{{\"victim\":0,\"fraction\":{HOTSPOT_FRACTION},\
             \"rate_per_node\":{HOTSPOT_RATE},{}}},\
             \"knee_port\":{knee_port_json},\"top_ports\":[{}]}}",
            points.join(","),
            hot.join(","),
            top_ports.join(",")
        ),
        has_knee: knee.is_some(),
        knee_port: knee_port.map(|(n, _)| n),
    }
}

fn main() {
    let targs = TraceArgs::parse();
    if targs.sharding_active() {
        // The sweep drives the netsim switch model directly — there is no
        // World/Locality layer to federate, so the engine flags are
        // accepted (shared parser) but the run stays single-lane.
        println!(
            "note: --shards/--run-mode accepted but fabric_sweep has no world to shard; \
             running single-lane"
        );
    }
    let mut sink = TraceSink::new(&targs, "fabric_sweep");
    let scale = bench_scale();
    let msgs_per_node = ((200.0 * scale) as usize).max(10);
    // Quick runs (CI smoke) keep the 64-locality pair only; the full
    // sweep covers the 64 -> 1024 scaling story of both topologies.
    let scales: Vec<usize> = if scale < 0.5 { vec![64] } else { vec![64, 256, 1024] };

    let mut docs = Vec::new();
    let mut ok = true;
    let mut first = true;
    for &hosts in &scales {
        for topology in [Topology::fat_tree_for(hosts), Topology::dragonfly_for(hosts)] {
            let doc =
                run_sweep(&topology, hosts, msgs_per_node, 0xFAB5_0001, &targs, &mut sink, first);
            first = false;
            if !doc.has_knee {
                eprintln!("FAIL: {} x {hosts} shows no congestion knee", topology.label());
                ok = false;
            }
            if doc.knee_port.is_none() {
                eprintln!(
                    "FAIL: {} x {hosts}: knee not attributed to a switch port",
                    topology.label()
                );
                ok = false;
            }
            docs.push(doc.json);
            println!();
        }
    }
    sink.finish();

    let json = format!(
        "{{\"benchmark\":\"fabric_sweep\",\"scale\":{scale},\"wire\":\"expanse-hdr\",\
         \"msgs_per_node\":{msgs_per_node},\"hotspot_fraction\":{HOTSPOT_FRACTION},\
         \"sweeps\":[{}]}}",
        docs.join(",")
    );
    std::fs::write("BENCH_fabric.json", &json).expect("write BENCH_fabric.json");
    println!("wrote BENCH_fabric.json ({} sweeps)", docs.len());
    if !ok {
        std::process::exit(1);
    }
}
