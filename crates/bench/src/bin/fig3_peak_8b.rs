//! Figure 3: highest achieved 8 B message rate across all injection rates
//! (the bar chart summarizing Figs. 1 and 2).

use bench::report::{fmt_kps, Table};
use bench::{bench_scale, injection_grid_8b, sweep_injection, MsgRateParams};
use parcelport::PpConfig;

fn main() {
    let scale = bench_scale();
    println!("Figure 3: peak 8B message rate across injection rates (K/s)");
    println!();
    let mut t = Table::new(vec!["config", "peak K/s"]);
    for cfg in PpConfig::paper_set() {
        let mut p = MsgRateParams::small(cfg);
        p.total_msgs = (100_000f64 * scale) as usize;
        let sweep = sweep_injection(&p, &injection_grid_8b());
        let peak = sweep.iter().map(|(_, r)| r.msg_rate).fold(0.0f64, f64::max);
        t.row(vec![cfg.to_string(), fmt_kps(peak)]);
    }
    t.print();
    println!();
    println!("paper: lci_psr_cq_pin_i ~750K; mt_i variants ~285K; sr_* 215-400K;");
    println!("lci_psr_cq_pin ~420K; mpi ~410K; mpi_i ~490K.");
}
