//! Figure 8: 8 B message latency vs. window size (1-64 concurrent
//! ping-pong chains).
//!
//! Paper shape: latency grows with window everywhere; `mpi_i` starts much
//! better than `mpi` but crosses over around window 8;
//! `lci_psr_cq_pin_i` is best at almost every window.
//!
//! With `--trace FILE` / `--breakdown` / `--json FILE` / `--profile` /
//! `--folded FILE` the harness runs a reduced instrumented pass at
//! window 64 instead of the full sweep: a per-stage latency breakdown,
//! a contention report, and (with `--profile`) the per-core
//! virtual-time state table for every Table-1 configuration (see
//! `bench::trace`). The `--profile` contrast to look for: `mpi` worker
//! cores burn a large share in progress + lock-wait, while `lci_psr`
//! variants concentrate progress on the pinned core 0.

use bench::report::{fmt_us, Table};
use bench::trace::{instrumented, TraceArgs, TraceSink};
use bench::{bench_scale, run_latency, LatencyParams};
use parcelport::PpConfig;

/// The configuration nominated for the `--trace` Chrome export.
const TRACE_CONFIG: &str = "lci_psr_cq_pin_i";

fn instrumented_pass(targs: &TraceArgs, scale: f64) {
    let mut sink = TraceSink::new(targs);
    let traced: Vec<PpConfig> = if targs.wants_reports() {
        PpConfig::paper_set()
    } else {
        vec![TRACE_CONFIG.parse().unwrap()]
    };
    println!("instrumented pass: window 64, telemetry enabled");
    for cfg in traced {
        let (r, tel) = instrumented(|| {
            let mut p = LatencyParams::new(cfg, 8);
            p.window = 64;
            p.steps = ((100f64 * scale) as usize).max(25);
            run_latency(&p)
        });
        let name = cfg.to_string();
        println!("{name}: one-way {} flows {}", fmt_us(r.one_way_us), tel.flow_count());
        sink.emit(&tel, &name, name == TRACE_CONFIG);
    }
    sink.finish();
}

fn main() {
    let scale = bench_scale();
    let windows = [1usize, 2, 4, 8, 16, 32, 64];
    let targs = TraceArgs::parse();
    if targs.active() {
        instrumented_pass(&targs, scale);
        return;
    }
    println!("Figure 8: one-way latency (us) of 8B messages vs window size");
    println!();
    let mut header = vec!["config".to_string()];
    header.extend(windows.iter().map(|w| format!("w{w}")));
    let mut t = Table::new(header);
    for cfg in PpConfig::paper_set() {
        let mut row = vec![cfg.to_string()];
        for &w in &windows {
            let mut p = LatencyParams::new(cfg, 8);
            p.window = w;
            p.steps = ((400f64 * scale) as usize).max(40);
            let r = run_latency(&p);
            row.push(format!("{}{}", fmt_us(r.one_way_us), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: latency increases with window; mpi_i beats mpi at small windows but");
    println!("crosses over near window 8; lci_psr_cq_pin_i best almost everywhere.");
}
