//! Figure 8: 8 B message latency vs. window size (1-64 concurrent
//! ping-pong chains).
//!
//! Paper shape: latency grows with window everywhere; `mpi_i` starts much
//! better than `mpi` but crosses over around window 8;
//! `lci_psr_cq_pin_i` is best at almost every window.
//!
//! With `--trace FILE` / `--breakdown` / `--json FILE` / `--profile` /
//! `--folded FILE` the harness runs a reduced instrumented pass at
//! window 64 instead of the full sweep: a per-stage latency breakdown,
//! a contention report, and (with `--profile`) the per-core
//! virtual-time state table for every Table-1 configuration (see
//! `bench::trace`). The `--profile` contrast to look for: `mpi` worker
//! cores burn a large share in progress + lock-wait, while `lci_psr`
//! variants concentrate progress on the pinned core 0.
//!
//! `--critpath` prints the causal critical-path report per configuration
//! (and highlights the path in the `--trace` export); `--whatif KNOBS`
//! runs the predicted-vs-measured speedup sweep plus the five-mechanism
//! attribution of the window-64 MPI-vs-LCI gap, writing
//! `BENCH_whatif.json`.

use bench::cli::{dispatch, instrumented_for, TraceArgs};
use bench::report::{fmt_us, Table};
use bench::trace::TraceSink;
use bench::{
    bench_scale, five_mechanism_attribution, run_latency, run_latency_sharded, whatif_json,
    whatif_latency, whatif_text, LatencyParams, LatencyResult,
};
use parcelport::PpConfig;

/// Route one run through the engine the command line asked for:
/// `--shards`/`--run-mode` select the sharded world, anything else the
/// legacy single-heap world (identical results by the determinism
/// contract).
fn run_one(targs: &TraceArgs, p: &LatencyParams) -> LatencyResult {
    if targs.sharding_active() {
        run_latency_sharded(p, targs.shard_count(), targs.engine_mode())
    } else {
        run_latency(p)
    }
}

/// The configuration nominated for the `--trace` Chrome export.
const TRACE_CONFIG: &str = "lci_psr_cq_pin_i";

fn instrumented_pass(targs: &TraceArgs, scale: f64) {
    let mut sink = TraceSink::new(targs, "fig8_latency_window_8b");
    let traced: Vec<PpConfig> = if targs.wants_reports() {
        PpConfig::paper_set()
    } else {
        vec![TRACE_CONFIG.parse().unwrap()]
    };
    let window = targs.param_usize("window", 64);
    let steps = targs.param_usize("steps", ((100f64 * scale) as usize).max(25));
    sink.set_params(&[("window", window.to_string()), ("steps", steps.to_string())]);
    println!("instrumented pass: window {window}, telemetry enabled");
    for cfg in traced {
        let (r, tel) = instrumented_for(targs, || {
            let mut p = LatencyParams::new(cfg, 8);
            p.window = window;
            p.steps = steps;
            let mut cost = simcore::CostModel::default_model();
            if targs.apply_dials(&mut p.config, &mut cost, &mut p.wire) {
                p.cost = Some(cost);
            }
            run_one(targs, &p)
        });
        let name = cfg.to_string();
        println!("{name}: one-way {} flows {}", fmt_us(r.one_way_us), tel.flow_count());
        sink.emit(&tel, &name, name == TRACE_CONFIG);
    }
    sink.finish();
}

/// What-if pass (`--whatif KNOBS`): predicted-vs-measured speedups on
/// the window-64 scenario, plus the five-mechanism attribution of the
/// MPI-vs-LCI gap; writes `BENCH_whatif.json`.
fn whatif_pass(targs: &TraceArgs, scale: f64) {
    let knobs = targs.whatif_knobs().expect("--whatif parsed");
    let mut p = LatencyParams::new(TRACE_CONFIG.parse().unwrap(), 8);
    p.window = 64;
    p.steps = ((100f64 * scale) as usize).max(25);
    println!("what-if pass: window 64, {} knobs on {TRACE_CONFIG}", knobs.len());
    let (cp, rows) = whatif_latency(&p, &knobs);
    let (t_mpi, t_lci, mech) = five_mechanism_attribution(64, p.steps, p.cores);
    print!("{}", whatif_text(TRACE_CONFIG, &rows, Some((t_mpi, t_lci, &mech))));
    let json = whatif_json(TRACE_CONFIG, &cp, &rows, Some((t_mpi, t_lci, &mech)));
    std::fs::write("BENCH_whatif.json", json).expect("write BENCH_whatif.json");
    println!("wrote BENCH_whatif.json");
}

fn main() {
    let scale = bench_scale();
    let windows = [1usize, 2, 4, 8, 16, 32, 64];
    let targs = TraceArgs::parse();
    if dispatch(&targs, || whatif_pass(&targs, scale), || instrumented_pass(&targs, scale)) {
        return;
    }
    println!("Figure 8: one-way latency (us) of 8B messages vs window size");
    if targs.sharding_active() {
        println!(
            "engine: sharded world, {} shard(s){}",
            targs.shard_count(),
            targs.run_mode.as_deref().map(|m| format!(", {m} executor")).unwrap_or_default()
        );
    }
    println!();
    let mut header = vec!["config".to_string()];
    header.extend(windows.iter().map(|w| format!("w{w}")));
    let mut t = Table::new(header);
    for cfg in PpConfig::paper_set() {
        let mut row = vec![cfg.to_string()];
        for &w in &windows {
            let mut p = LatencyParams::new(cfg, 8);
            p.window = w;
            p.steps = ((400f64 * scale) as usize).max(40);
            let r = run_one(&targs, &p);
            row.push(format!("{}{}", fmt_us(r.one_way_us), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: latency increases with window; mpi_i beats mpi at small windows but");
    println!("crosses over near window 8; lci_psr_cq_pin_i best almost everywhere.");
}
