//! Figure 8: 8 B message latency vs. window size (1-64 concurrent
//! ping-pong chains).
//!
//! Paper shape: latency grows with window everywhere; `mpi_i` starts much
//! better than `mpi` but crosses over around window 8;
//! `lci_psr_cq_pin_i` is best at almost every window.

use bench::report::{fmt_us, Table};
use bench::{bench_scale, run_latency, LatencyParams};
use parcelport::PpConfig;

fn main() {
    let scale = bench_scale();
    let windows = [1usize, 2, 4, 8, 16, 32, 64];
    println!("Figure 8: one-way latency (us) of 8B messages vs window size");
    println!();
    let mut header = vec!["config".to_string()];
    header.extend(windows.iter().map(|w| format!("w{w}")));
    let mut t = Table::new(header);
    for cfg in PpConfig::paper_set() {
        let mut row = vec![cfg.to_string()];
        for &w in &windows {
            let mut p = LatencyParams::new(cfg, 8);
            p.window = w;
            p.steps = ((400f64 * scale) as usize).max(40);
            let r = run_latency(&p);
            row.push(format!("{}{}", fmt_us(r.one_way_us), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: latency increases with window; mpi_i beats mpi at small windows but");
    println!("crosses over near window 8; lci_psr_cq_pin_i best almost everywhere.");
}
