//! Figure 5: achieved message rate of 16 KiB messages — LCI variants.
//!
//! Paper shape: `cq` variants hold a stable plateau; `sy` variants reach
//! a 25-30% lower peak and oscillate; `pin` beats `mt` by 17-50%.

use bench::report::{fmt_kps, Table};
use bench::{bench_scale, injection_grid_16k, sweep_injection, MsgRateParams};

fn main() {
    let scale = bench_scale();
    let configs = [
        "lci_psr_cq_pin_i",
        "lci_psr_cq_mt_i",
        "lci_psr_sy_pin_i",
        "lci_psr_sy_mt_i",
        "lci_sr_cq_pin_i",
        "lci_sr_cq_mt_i",
        "lci_sr_sy_pin_i",
        "lci_sr_sy_mt_i",
    ];
    println!("Figure 5: achieved message rate (K/s), 16KiB, LCI variants (send-immediate)");
    println!();
    let mut header = vec!["attempted".to_string()];
    header.extend(configs.iter().map(|c| c.to_string()));
    let mut t = Table::new(header);
    let grid = injection_grid_16k();
    let mut sweeps = Vec::new();
    for c in configs {
        let mut p = MsgRateParams::large(c.parse().unwrap());
        p.total_msgs = (20_000f64 * scale) as usize;
        sweeps.push(sweep_injection(&p, &grid));
    }
    for (i, &rate) in grid.iter().enumerate() {
        let mut row = vec![bench::fmt_rate(rate)];
        for s in &sweeps {
            let r = &s[i].1;
            row.push(format!("{}{}", fmt_kps(r.msg_rate), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: cq plateaus stable (~150-200K/s); sy peaks 25-30% lower; pin > mt.");
}
