//! Figure 6: highest achieved 16 KiB message rate across injection rates.

use bench::report::{fmt_kps, Table};
use bench::{bench_scale, injection_grid_16k, sweep_injection, MsgRateParams};
use parcelport::PpConfig;

fn main() {
    let scale = bench_scale();
    println!("Figure 6: peak 16KiB message rate across injection rates (K/s)");
    println!();
    let mut t = Table::new(vec!["config", "peak K/s"]);
    for cfg in PpConfig::paper_set() {
        let mut p = MsgRateParams::large(cfg);
        p.total_msgs = (20_000f64 * scale) as usize;
        let sweep = sweep_injection(&p, &injection_grid_16k());
        let peak = sweep.iter().map(|(_, r)| r.msg_rate).fold(0.0f64, f64::max);
        t.row(vec![cfg.to_string(), fmt_kps(peak)]);
    }
    t.print();
    println!();
    println!("paper: cq_pin ~200K; sy 25-30% below cq; pin 17-50% above mt;");
    println!("non-immediate ~40-50K; mpi ~48K peak.");
}
