//! Figure 10: Octo-Tiger strong scaling on SDSC Expanse.
//!
//! Paper: step count per second for `mpi`, `mpi_i`, and `lci`
//! (= `lci_psr_cq_rp_i`) over node counts up to 32; LCI wins by up to
//! 1.175x over `mpi` and up to 13.6x over `mpi_i` (which collapses on the
//! high-core-count nodes: profiling shows it spinning on the blocking
//! `ucp_progress` lock inside `MPI_Test`).

use bench::bench_scale;
use bench::cli::{dispatch, instrumented_for, TraceArgs};
use bench::report::Table;
use bench::trace::TraceSink;
use bench::{whatif_json, whatif_sweep, whatif_text};
use octotiger_mini::{run_octotiger, run_octotiger_sharded, OctoParams, OctoResult};

/// The configuration nominated for the `--trace` Chrome export.
const TRACE_CONFIG: &str = "lci_psr_cq_pin_i";

/// Route one run through the engine the command line asked for:
/// `--shards`/`--run-mode` select the sharded world (one engine lane per
/// locality), anything else the legacy single-heap world — identical
/// results by the determinism contract.
fn run_one(targs: &TraceArgs, p: &OctoParams) -> OctoResult {
    if targs.sharding_active() {
        run_octotiger_sharded(p, targs.shard_count(), targs.engine_mode())
    } else {
        run_octotiger(p)
    }
}

/// Instrumented pass (`--trace` / `--breakdown` / `--json` /
/// `--profile` / `--folded`): a reduced 2-node application run per
/// configuration with telemetry enabled; the Chrome export shows one
/// track per core with parcel flow arrows crossing the two localities,
/// and `--profile` prints each core's virtual-time state shares.
fn instrumented_pass(targs: &TraceArgs, scale: f64, configs: &[&str]) {
    let mut sink = TraceSink::new(targs, "fig10_octotiger_expanse");
    let traced: Vec<&str> =
        if targs.wants_reports() { configs.to_vec() } else { vec![TRACE_CONFIG] };
    let level = targs.param_usize("level", 4) as u32;
    let steps = targs.param_usize("steps", if scale < 1.0 { 2 } else { 3 }) as u32;
    sink.set_params(&[
        ("localities", "2".to_string()),
        ("level", level.to_string()),
        ("steps", steps.to_string()),
    ]);
    println!("instrumented pass: 2 nodes, telemetry enabled");
    for c in &traced {
        let (r, tel) = instrumented_for(targs, || {
            let mut p = OctoParams::expanse(c.parse().unwrap(), 2);
            p.level = level;
            p.steps = steps;
            let mut cost = simcore::CostModel::default_model();
            if targs.apply_dials(&mut p.config, &mut cost, &mut p.wire) {
                p.cost = Some(cost);
            }
            run_one(targs, &p)
        });
        assert!(r.mass_ok, "{c}: invariant violated");
        println!("{c}: {:.3} steps/s, flows {}", r.steps_per_sec, tel.flow_count());
        sink.emit(&tel, c, *c == TRACE_CONFIG);
    }
    sink.finish();
}

/// What-if pass (`--whatif KNOBS`): predicted-vs-measured speedups on a
/// reduced 2-node application run; writes `BENCH_whatif.json`.
fn whatif_pass(targs: &TraceArgs, scale: f64) {
    let knobs = targs.whatif_knobs().expect("--whatif parsed");
    let base = OctoParams::expanse(TRACE_CONFIG.parse().unwrap(), 2);
    println!("what-if pass: 2 nodes, {} knobs on {TRACE_CONFIG}", knobs.len());
    let (cp, rows) = whatif_sweep(
        base.config,
        base.cost.clone(),
        base.wire.clone(),
        &knobs,
        |cfg, cost, wire| {
            let mut p = base.clone();
            p.config = cfg;
            p.cost = cost;
            p.wire = wire;
            p.level = 4;
            p.steps = if scale < 1.0 { 2 } else { 3 };
            let r = run_octotiger(&p);
            assert!(r.mass_ok, "{cfg}: invariant violated");
        },
    );
    print!("{}", whatif_text(TRACE_CONFIG, &rows, None));
    let json = whatif_json(TRACE_CONFIG, &cp, &rows, None);
    std::fs::write("BENCH_whatif.json", json).expect("write BENCH_whatif.json");
    println!("wrote BENCH_whatif.json");
}

fn main() {
    let scale = bench_scale();
    let nodes = [2usize, 4, 8, 16, 32];
    let configs = ["mpi", "mpi_i", "lci_psr_cq_pin_i"];
    let targs = TraceArgs::parse();
    if dispatch(
        &targs,
        || whatif_pass(&targs, scale),
        || instrumented_pass(&targs, scale, &configs),
    ) {
        return;
    }

    println!("Figure 10: Octo-Tiger steps/s on (simulated) SDSC Expanse");
    println!("(level 5 tree, 5 steps, 32-core nodes, HDR wire; cores scaled 128->32)");
    if targs.sharding_active() {
        println!(
            "engine: sharded world, {} shard(s){}",
            targs.shard_count(),
            targs.run_mode.as_deref().map(|m| format!(", {m} executor")).unwrap_or_default()
        );
    }
    println!();
    let mut t = Table::new(vec![
        "nodes",
        "mpi steps/s",
        "mpi_i steps/s",
        "lci steps/s",
        "lci/mpi",
        "lci/mpi_i",
    ]);
    for &n in &nodes {
        let mut row = vec![n.to_string()];
        let mut vals = Vec::new();
        for cfg in configs {
            let mut p = OctoParams::expanse(cfg.parse().unwrap(), n);
            if scale < 1.0 {
                p.level = 4;
                p.steps = 2;
            }
            let r = run_one(&targs, &p);
            assert!(r.mass_ok, "{cfg}@{n}: invariant violated");
            vals.push(if r.completed { r.steps_per_sec } else { 0.0 });
            row.push(if r.completed {
                format!("{:.3}", r.steps_per_sec)
            } else {
                "DNF".to_string()
            });
        }
        row.push(format!("{:.3}", vals[2] / vals[0].max(1e-9)));
        row.push(format!("{:.3}", vals[2] / vals[1].max(1e-9)));
        t.row(row);
    }
    t.print();
    println!();
    println!("paper shape: lci >= mpi >= mpi_i at every node count; the lci/mpi");
    println!("gap grows with nodes (paper: up to 1.175x); mpi_i collapses on the");
    println!("high-core-count platform (paper: up to 13.6x).");
}
