//! Figure 11: Octo-Tiger strong scaling on LSU Rostam (FDR InfiniBand,
//! 40-core Skylake nodes -> scaled to 10 cores, level 5 tree -> scaled 4).
//!
//! Paper shape: the LCI parcelport wins modestly on this smaller, older
//! platform — up to 1.08x vs mpi_i and 1.04x vs mpi — and the gap grows
//! with node count; no catastrophic mpi_i collapse (fewer cores).

use bench::bench_scale;
use bench::report::Table;
use octotiger_mini::{run_octotiger, OctoParams};

fn main() {
    let scale = bench_scale();
    let nodes = [2usize, 4, 8, 16];
    let configs = ["mpi", "mpi_i", "lci_psr_cq_pin_i"];
    println!("Figure 11: Octo-Tiger steps/s on (simulated) Rostam");
    println!("(level 4 tree, 5 steps, 10-core nodes, FDR wire)");
    println!();
    let mut t = Table::new(vec![
        "nodes",
        "mpi steps/s",
        "mpi_i steps/s",
        "lci steps/s",
        "lci/mpi",
        "lci/mpi_i",
    ]);
    for &n in &nodes {
        let mut row = vec![n.to_string()];
        let mut vals = Vec::new();
        for cfg in configs {
            let mut p = OctoParams::rostam(cfg.parse().unwrap(), n);
            if scale < 1.0 {
                p.level = 3;
                p.steps = 2;
            }
            let r = run_octotiger(&p);
            assert!(r.mass_ok, "{cfg}@{n}: invariant violated");
            vals.push(if r.completed { r.steps_per_sec } else { 0.0 });
            row.push(if r.completed {
                format!("{:.3}", r.steps_per_sec)
            } else {
                "DNF".to_string()
            });
        }
        row.push(format!("{:.3}", vals[2] / vals[0].max(1e-9)));
        row.push(format!("{:.3}", vals[2] / vals[1].max(1e-9)));
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: modest lci advantage growing with node count (up to 1.04x vs mpi,");
    println!("1.08x vs mpi_i); no mpi_i collapse on this lower-core-count platform.");
}
