//! Tables 2 and 3: the two evaluation platforms and how this
//! reproduction models them.

use bench::report::Table;
use netsim::WireModel;

fn main() {
    println!("Tables 2 & 3: platform configurations (paper) -> wire models (this repo)");
    println!();
    let mut t = Table::new(vec!["parameter", "SDSC Expanse (T2)", "Rostam (T3)"]);
    t.row(vec!["CPU", "2x AMD EPYC 7742 (128 cores)", "2x Xeon Gold 6148 (40 cores)"]);
    t.row(vec!["NIC", "Mellanox ConnectX-6", "Mellanox ConnectX-3"]);
    t.row(vec!["Interconnect", "HDR InfiniBand (2x50Gbps)", "FDR InfiniBand (4x14Gbps)"]);
    t.row(vec!["Max nodes/job", "32", "16"]);
    t.print();
    println!();
    let mut m = Table::new(vec!["model parameter", "expanse-hdr", "rostam-fdr"]);
    let (e, r) = (WireModel::expanse(), WireModel::rostam());
    m.row(vec!["latency (ns)".to_string(), e.latency_ns.to_string(), r.latency_ns.to_string()]);
    m.row(vec![
        "per-byte (milli-ns)".to_string(),
        e.byte_ns_milli.to_string(),
        r.byte_ns_milli.to_string(),
    ]);
    m.row(vec!["msg gap (ns)".to_string(), e.msg_gap_ns.to_string(), r.msg_gap_ns.to_string()]);
    m.row(vec!["cores modeled".to_string(), "32 (128/4)".to_string(), "10 (40/4)".to_string()]);
    m.print();
}
