//! Trace a short two-node workload and write a Chrome-tracing JSON
//! timeline (`open chrome://tracing` or https://ui.perfetto.dev and load
//! the file) — per-core visibility into what the simulated runtime did.
//!
//! Usage: `cargo run --release -p bench --bin trace_demo [config] [out.json]`

use std::cell::Cell;
use std::rc::Rc;

use amt::action::ActionRegistry;
use bytes::Bytes;
use parcelport::{build_world, WorldConfig};
use simcore::Tracer;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let config = argv.first().map(|s| s.as_str()).unwrap_or("lci_psr_cq_pin_i");
    let out = argv.get(1).map(|s| s.as_str()).unwrap_or("trace.json");

    let mut registry = ActionRegistry::new();
    let got = Rc::new(Cell::new(0usize));
    let g = got.clone();
    registry.register("sink", move |sim, _l, _c, _p| {
        g.set(g.get() + 1);
        sim.now() + 2_000
    });
    let sink = registry.id_of("sink").unwrap();

    let cfg = WorldConfig::two_nodes(config.parse().expect("config name"), 8);
    let mut world = build_world(&cfg, registry);
    for loc in &world.runtime.localities {
        loc.set_tracer(Tracer::new());
    }

    let n = 500usize;
    for _ in 0..n / 50 {
        let loc0 = world.locality(0).clone();
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let mut t = sim.now();
                for _ in 0..50 {
                    t = loc.send_action(sim, core, 1, sink, vec![Bytes::from(vec![9u8; 512])]);
                }
                t
            }),
        );
    }
    let g = got.clone();
    world.run_while(10_000_000_000, move |_| g.get() < n);

    // Merge the per-locality tracers into one timeline.
    let mut merged = Tracer::new();
    for loc in &world.runtime.localities {
        if let Some(tr) = loc.take_tracer() {
            for s in tr.spans() {
                merged.span(s.track.clone(), s.label, s.start, s.end);
            }
        }
    }
    std::fs::write(out, merged.to_chrome_json()).expect("write trace");
    println!("{config}: {n} messages in {}; {} spans -> {out}", world.sim.now(), merged.len());
    println!("virtual time by activity:");
    for (label, ns) in merged.totals_by_label() {
        println!("  {label:<12} {:.1}us", ns as f64 / 1e3);
    }
}
