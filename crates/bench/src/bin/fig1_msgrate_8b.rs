//! Figure 1: achieved message rate of 8 B messages vs. injection rate —
//! MPI vs. LCI with/without the send-immediate optimization.
//!
//! Paper shape: every configuration first tracks the attempted injection
//! rate, then plateaus — except `mpi`, whose achieved rate rises and then
//! *falls* under pressure; `lci_psr_cq_pin_i` plateaus highest.
//!
//! With `--trace FILE` / `--breakdown` / `--json FILE` / `--profile` /
//! `--folded FILE` the harness runs a reduced instrumented pass instead
//! of the full sweep (see `bench::trace`). `--profile` prints the
//! per-core virtual-time state table; `--folded` writes flamegraph
//! input.

use bench::cli::{dispatch, instrumented_for, TraceArgs};
use bench::report::{fmt_kps, Table};
use bench::trace::TraceSink;
use bench::{
    bench_scale, injection_grid_8b, run_msgrate, run_msgrate_sharded, sweep_injection_with,
    whatif_json, whatif_sweep, whatif_text, MsgRateParams, MsgRateResult,
};

/// Route one run through the engine the command line asked for:
/// `--shards`/`--run-mode` select the sharded world, anything else the
/// legacy single-heap world (byte-identical results either way — that's
/// the determinism contract the golden tests pin).
fn run_one(targs: &TraceArgs, p: &MsgRateParams) -> MsgRateResult {
    if targs.sharding_active() {
        run_msgrate_sharded(p, targs.shard_count(), targs.engine_mode())
    } else {
        run_msgrate(p)
    }
}

/// The configuration nominated for the `--trace` Chrome export (the
/// paper's best performer).
const TRACE_CONFIG: &str = "lci_psr_cq_pin_i";

fn instrumented_pass(targs: &TraceArgs, scale: f64, configs: &[&str]) {
    let mut sink = TraceSink::new(targs, "fig1_msgrate_8b");
    let traced: Vec<&str> =
        if targs.wants_reports() { configs.to_vec() } else { vec![TRACE_CONFIG] };
    let total_msgs = targs.param_usize("total_msgs", ((10_000f64 * scale) as usize).max(1_000));
    sink.set_params(&[("total_msgs", total_msgs.to_string())]);
    println!("instrumented pass: unlimited injection, telemetry enabled");
    for c in &traced {
        let (r, tel) = instrumented_for(targs, || {
            let mut p = MsgRateParams::small(c.parse().unwrap());
            p.total_msgs = total_msgs;
            let mut cost = simcore::CostModel::default_model();
            if targs.apply_dials(&mut p.config, &mut cost, &mut p.wire) {
                p.cost = Some(cost);
            }
            run_one(targs, &p)
        });
        println!("{c}: rate {} flows {}", fmt_kps(r.msg_rate), tel.flow_count());
        sink.emit(&tel, c, *c == TRACE_CONFIG);
    }
    sink.finish();
}

/// What-if pass (`--whatif KNOBS`): predicted-vs-measured speedups on
/// the unlimited-injection message-rate scenario; writes
/// `BENCH_whatif.json`.
fn whatif_pass(targs: &TraceArgs, scale: f64) {
    let knobs = targs.whatif_knobs().expect("--whatif parsed");
    let total_msgs = ((10_000f64 * scale) as usize).max(1_000);
    println!("what-if pass: unlimited injection, {} knobs on {TRACE_CONFIG}", knobs.len());
    let base = MsgRateParams::small(TRACE_CONFIG.parse().unwrap());
    let (cp, rows) = whatif_sweep(
        base.config,
        base.cost.clone(),
        base.wire.clone(),
        &knobs,
        |cfg, cost, wire| {
            let mut p = base.clone();
            p.config = cfg;
            p.cost = cost;
            p.wire = wire;
            p.total_msgs = total_msgs;
            run_msgrate(&p);
        },
    );
    print!("{}", whatif_text(TRACE_CONFIG, &rows, None));
    let json = whatif_json(TRACE_CONFIG, &cp, &rows, None);
    std::fs::write("BENCH_whatif.json", json).expect("write BENCH_whatif.json");
    println!("wrote BENCH_whatif.json");
}

fn main() {
    let scale = bench_scale();
    let configs = ["lci_psr_cq_pin", "lci_psr_cq_pin_i", "mpi", "mpi_i"];
    let targs = TraceArgs::parse();
    if dispatch(
        &targs,
        || whatif_pass(&targs, scale),
        || instrumented_pass(&targs, scale, &configs),
    ) {
        return;
    }
    println!("Figure 1: achieved message rate (K/s), 8B messages, batch 100");
    println!("(rows: attempted injection rate; columns: achieved injection / message rate)");
    if targs.sharding_active() {
        println!(
            "engine: sharded world, {} shard(s){}",
            targs.shard_count(),
            targs.run_mode.as_deref().map(|m| format!(", {m} executor")).unwrap_or_default()
        );
    }
    println!();
    let mut header = vec!["attempted".to_string()];
    for c in configs {
        header.push(format!("{c} inj"));
        header.push(format!("{c} rate"));
    }
    let mut t = Table::new(header);
    let grid = injection_grid_8b();
    let mut sweeps = Vec::new();
    for c in configs {
        let mut p = MsgRateParams::small(c.parse().unwrap());
        p.total_msgs = (100_000f64 * scale) as usize;
        sweeps.push(sweep_injection_with(&p, &grid, |p| run_one(&targs, p)));
    }
    for (i, &rate) in grid.iter().enumerate() {
        let mut row = vec![bench::fmt_rate(rate)];
        for s in &sweeps {
            let r = &s[i].1;
            row.push(fmt_kps(r.achieved_injection_rate));
            row.push(format!("{}{}", fmt_kps(r.msg_rate), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: all plateau except mpi (rises then falls); lci_psr_cq_pin_i peaks ~750K/s,");
    println!("lci_psr_cq_pin and mpi ~400-420K/s, mpi_i ~490K/s. (* = hit safety deadline)");
}
