//! Figure 4: achieved message rate of 16 KiB messages vs. injection rate
//! — MPI vs. LCI with/without the send-immediate optimization.
//!
//! Paper shape: the LCI parcelport reaches up to 30x more throughput than
//! MPI; both MPI variants *decrease* as the injection rate rises (MPI
//! cannot receive many concurrent messages with different tags); the
//! non-immediate LCI variants sit at a common 40-50 K/s plateau (cannot
//! aggregate zero-copy chunks, still pay the aggregation overhead).

use bench::report::{fmt_kps, Table};
use bench::{bench_scale, injection_grid_16k, sweep_injection, MsgRateParams};

fn main() {
    let scale = bench_scale();
    let configs = ["lci_psr_cq_pin", "lci_psr_cq_pin_i", "mpi", "mpi_i"];
    println!("Figure 4: achieved message rate (K/s), 16KiB messages, batch 10");
    println!();
    let mut header = vec!["attempted".to_string()];
    for c in configs {
        header.push(format!("{c} inj"));
        header.push(format!("{c} rate"));
    }
    let mut t = Table::new(header);
    let grid = injection_grid_16k();
    let mut sweeps = Vec::new();
    for c in configs {
        let mut p = MsgRateParams::large(c.parse().unwrap());
        p.total_msgs = (20_000f64 * scale) as usize;
        sweeps.push(sweep_injection(&p, &grid));
    }
    for (i, &rate) in grid.iter().enumerate() {
        let mut row = vec![bench::fmt_rate(rate)];
        for s in &sweeps {
            let r = &s[i].1;
            row.push(fmt_kps(r.achieved_injection_rate));
            row.push(format!("{}{}", fmt_kps(r.msg_rate), if r.completed { "" } else { "*" }));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: lci_psr_cq_pin_i plateaus ~200K/s; mpi/mpi_i decline to ~6-7K/s at");
    println!("high injection; lci_psr_cq_pin ~40-50K/s.");
}
