//! Generic experiment runner: one command to run any microbenchmark
//! point or sweep without writing code.
//!
//! ```text
//! sweep rate  --config lci_psr_cq_pin_i --size 8 --msgs 50000 [--rate 400000] [--cores 32] [--devices 1] [--wire expanse|rostam]
//! sweep lat   --config mpi_i --size 16384 --window 8 --steps 300
//! sweep octo  --config lci_psr_cq_pin_i --nodes 16 --level 5 --steps 5 [--wire expanse|rostam]
//! ```

use bench::{run_latency, run_msgrate, LatencyParams, MsgRateParams};
use netsim::WireModel;
use octotiger_mini::{run_octotiger, OctoParams};

fn usage() -> ! {
    eprintln!(
        "usage:\n  sweep rate --config <name> [--size N] [--msgs N] [--rate R] \
         [--cores N] [--devices N] [--wire expanse|rostam]\n  sweep lat  --config <name> \
         [--size N] [--window N] [--steps N] [--cores N]\n  sweep octo --config <name> \
         [--nodes N] [--level N] [--steps N] [--cores N] [--wire expanse|rostam]"
    );
    std::process::exit(2);
}

struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().position(|a| a == key).and_then(|i| self.0.get(i + 1)).map(|s| s.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {key}: {v}");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    fn wire(&self) -> WireModel {
        match self.get("--wire") {
            Some("rostam") => WireModel::rostam(),
            Some("ideal") => WireModel::ideal(),
            _ => WireModel::expanse(),
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = argv.first().cloned() else { usage() };
    let args = Args(argv);
    let config = args.get("--config").unwrap_or("lci_psr_cq_pin_i");
    let cfg = config.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    match mode.as_str() {
        "rate" => {
            let mut p = MsgRateParams::small(cfg);
            p.msg_size = args.num("--size", 8usize);
            p.total_msgs = args.num("--msgs", 50_000usize);
            p.batch = args.num("--batch", if p.msg_size > 4096 { 10 } else { 100 });
            p.cores = args.num("--cores", 32usize);
            p.devices = args.num("--devices", 1usize);
            p.inject_rate = args.get("--rate").map(|r| r.parse().expect("rate"));
            p.wire = args.wire();
            let r = run_msgrate(&p);
            println!(
                "config={config} size={} msgs={} attempted={:?} achieved_injection={:.1}K/s \
                 msg_rate={:.1}K/s completed={}",
                p.msg_size,
                p.total_msgs,
                p.inject_rate,
                r.achieved_injection_rate / 1e3,
                r.msg_rate / 1e3,
                r.completed
            );
        }
        "lat" => {
            let mut p = LatencyParams::new(cfg, args.num("--size", 8usize));
            p.window = args.num("--window", 1usize);
            p.steps = args.num("--steps", 500usize);
            p.cores = args.num("--cores", 32usize);
            p.wire = args.wire();
            let r = run_latency(&p);
            println!(
                "config={config} size={} window={} one_way={:.2}us completed={}",
                p.msg_size, p.window, r.one_way_us, r.completed
            );
        }
        "octo" => {
            let mut p = OctoParams::expanse(cfg, args.num("--nodes", 8usize));
            p.level = args.num("--level", 5u32);
            p.steps = args.num("--steps", 5u32);
            p.cores = args.num("--cores", 32usize);
            p.wire = args.wire();
            let r = run_octotiger(&p);
            println!(
                "config={config} nodes={} level={} steps/s={:.3} leaves={} mass_ok={} completed={}",
                p.localities, p.level, r.steps_per_sec, r.leaves, r.mass_ok, r.completed
            );
        }
        _ => usage(),
    }
}
