//! The multi-message ping-pong latency microbenchmark (§4.2; Figs. 7–9).
//!
//! `window` chains of tasks alternate between the two localities for
//! `steps` iterations; every "ping" and every "pong" is performed by a
//! different HPX task (the receiving action spawns the reply). One-way
//! latency = total time / (2 × steps).

use std::cell::Cell;
use std::rc::Rc;

use amt::action::ActionRegistry;
use bytes::Bytes;
use netsim::WireModel;
use parcelport::{build_world, PpConfig, WorldConfig};
use simcore::SimTime;

/// Parameters of one latency run.
#[derive(Debug, Clone)]
pub struct LatencyParams {
    /// Parcelport configuration.
    pub config: PpConfig,
    /// Cores per locality.
    pub cores: usize,
    /// Wire model.
    pub wire: WireModel,
    /// Message size in bytes.
    pub msg_size: usize,
    /// Number of concurrent ping-pong chains.
    pub window: usize,
    /// Ping-pong iterations per chain.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cost-model override (what-if re-runs); `None` = defaults.
    pub cost: Option<simcore::CostModel>,
}

impl LatencyParams {
    /// Paper-style defaults: window 1, 1000 steps on Expanse.
    pub fn new(config: PpConfig, msg_size: usize) -> Self {
        LatencyParams {
            config,
            cores: 32,
            wire: WireModel::expanse(),
            msg_size,
            window: 1,
            steps: 1_000,
            seed: 1,
            cost: None,
        }
    }
}

/// Result of one latency run.
#[derive(Debug, Clone, Copy)]
pub struct LatencyResult {
    /// One-way latency in microseconds.
    pub one_way_us: f64,
    /// Total virtual time of the run.
    pub total: SimTime,
    /// Whether all chains finished before the safety deadline.
    pub completed: bool,
}

/// Run the latency benchmark once.
pub fn run_latency(p: &LatencyParams) -> LatencyResult {
    let mut registry = ActionRegistry::new();
    let chains_done = Rc::new(Cell::new(0usize));
    let finish_at = Rc::new(Cell::new(SimTime::ZERO));
    let steps = p.steps;
    let window = p.window;

    // Each message carries its chain id and remaining hop count in the
    // first 16 bytes of the payload (the rest is filler to reach
    // msg_size). The "ping" action decodes, and spawns the reply task.
    let payload_size = p.msg_size.max(16);
    {
        let chains_done = chains_done.clone();
        let finish_at = finish_at.clone();
        registry.register("ping", move |sim, loc, core, parcel| {
            let data = &parcel.args[0];
            let chain = u64::from_le_bytes(data[0..8].try_into().expect("chain id"));
            let hops = u64::from_le_bytes(data[8..16].try_into().expect("hops"));
            let t = sim.now() + 100; // minimal handler work
            if hops == 0 {
                chains_done.set(chains_done.get() + 1);
                if finish_at.get() < t {
                    finish_at.set(t);
                }
                return t;
            }
            // Reply from a fresh task, as in the paper's benchmark.
            let me = loc.id;
            let peer = 1 - me;
            let size = data.len();
            let ping = loc.with_registry(|r| r.id_of("ping").expect("registered"));
            loc.spawn(
                sim,
                core,
                Box::new(move |sim, loc, core| {
                    let mut payload = vec![0u8; size];
                    payload[0..8].copy_from_slice(&chain.to_le_bytes());
                    payload[8..16].copy_from_slice(&(hops - 1).to_le_bytes());
                    loc.send_action(sim, core, peer, ping, vec![Bytes::from(payload)])
                }),
            );
            t
        });
    }
    let ping = registry.id_of("ping").expect("registered");

    let mut wcfg = WorldConfig::two_nodes(p.config, p.cores);
    wcfg.wire = p.wire.clone();
    wcfg.seed = p.seed;
    wcfg.cost = p.cost.clone();
    let mut world = build_world(&wcfg, registry);

    // Kick off the chains: total hops per chain = 2*steps (there and back
    // counts as two), ending back at the sender.
    let loc0 = world.locality(0).clone();
    for chain in 0..window as u64 {
        let size = payload_size;
        let hops = (2 * steps - 1) as u64;
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let mut payload = vec![0u8; size];
                payload[0..8].copy_from_slice(&chain.to_le_bytes());
                payload[8..16].copy_from_slice(&hops.to_le_bytes());
                loc.send_action(sim, core, 1, ping, vec![Bytes::from(payload)])
            }),
        );
    }

    let done = chains_done.clone();
    let completed = world.run_while(120_000_000_000, move |_| done.get() < window);
    let total = finish_at.get();
    let one_way_us = total.as_micros_f64() / (2.0 * steps as f64);
    LatencyResult { one_way_us, total, completed }
}

/// Run the latency benchmark on the sharded engine: one lane per
/// locality over `shards` engine shards. The workload is identical to
/// [`run_latency`]; chain-completion counters live in atomics because
/// the two lanes may execute on different threads, and the engine runs
/// to quiescence (the hop count is the termination condition).
pub fn run_latency_sharded(
    p: &LatencyParams,
    shards: usize,
    mode: Option<simcore::shard::RunMode>,
) -> LatencyResult {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    let chains_done = Arc::new(AtomicUsize::new(0));
    let finish_at = Arc::new(AtomicU64::new(0));
    let steps = p.steps;
    let window = p.window;
    let payload_size = p.msg_size.max(16);

    let mut wcfg = WorldConfig::two_nodes(p.config, p.cores);
    wcfg.wire = p.wire.clone();
    wcfg.seed = p.seed;
    wcfg.cost = p.cost.clone();

    let setup_done = chains_done.clone();
    let setup_finish = finish_at.clone();
    let mut world = parcelport::build_sharded_world(
        &wcfg,
        shards,
        move |_rank| {
            let mut registry = ActionRegistry::new();
            let chains_done = setup_done.clone();
            let finish_at = setup_finish.clone();
            registry.register("ping", move |sim, loc, core, parcel| {
                let data = &parcel.args[0];
                let chain = u64::from_le_bytes(data[0..8].try_into().expect("chain id"));
                let hops = u64::from_le_bytes(data[8..16].try_into().expect("hops"));
                let t = sim.now() + 100; // minimal handler work
                if hops == 0 {
                    chains_done.fetch_add(1, Ordering::Relaxed);
                    finish_at.fetch_max(t.as_nanos(), Ordering::Relaxed);
                    return t;
                }
                let me = loc.id;
                let peer = 1 - me;
                let size = data.len();
                let ping = loc.with_registry(|r| r.id_of("ping").expect("registered"));
                loc.spawn(
                    sim,
                    core,
                    Box::new(move |sim, loc, core| {
                        let mut payload = vec![0u8; size];
                        payload[0..8].copy_from_slice(&chain.to_le_bytes());
                        payload[8..16].copy_from_slice(&(hops - 1).to_le_bytes());
                        loc.send_action(sim, core, peer, ping, vec![Bytes::from(payload)])
                    }),
                );
                t
            });
            registry.into()
        },
        move |rank, sim, loc| {
            if rank != 0 {
                return;
            }
            let ping = loc.with_registry(|r| r.id_of("ping").expect("registered"));
            for chain in 0..window as u64 {
                let size = payload_size;
                let hops = (2 * steps - 1) as u64;
                loc.spawn(
                    sim,
                    0,
                    Box::new(move |sim, loc, core| {
                        let mut payload = vec![0u8; size];
                        payload[0..8].copy_from_slice(&chain.to_le_bytes());
                        payload[8..16].copy_from_slice(&hops.to_le_bytes());
                        loc.send_action(sim, core, 1, ping, vec![Bytes::from(payload)])
                    }),
                );
            }
        },
    );
    world.run(mode);

    let completed = chains_done.load(Ordering::Relaxed) >= window;
    let total = SimTime::from_nanos(finish_at.load(Ordering::Relaxed));
    let one_way_us = total.as_micros_f64() / (2.0 * steps as f64);
    LatencyResult { one_way_us, total, completed }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(config: &str, size: usize, window: usize) -> LatencyResult {
        let mut p = LatencyParams::new(config.parse().unwrap(), size);
        p.steps = 50;
        p.window = window;
        p.cores = 8;
        run_latency(&p)
    }

    #[test]
    fn small_message_latency_is_physical() {
        let r = quick("lci_psr_cq_pin_i", 8, 1);
        assert!(r.completed, "{r:?}");
        // Must be at least the wire latency (1us) and within software reach.
        assert!(r.one_way_us >= 1.0, "one-way {}us below wire latency", r.one_way_us);
        assert!(r.one_way_us < 100.0, "one-way {}us implausibly slow", r.one_way_us);
    }

    #[test]
    fn mpi_latency_completes() {
        let r = quick("mpi_i", 8, 1);
        assert!(r.completed, "{r:?}");
        assert!(r.one_way_us >= 1.0);
    }

    #[test]
    fn larger_messages_take_longer() {
        let small = quick("lci_psr_cq_pin_i", 8, 1);
        let big = quick("lci_psr_cq_pin_i", 64 * 1024, 1);
        assert!(big.one_way_us > small.one_way_us, "{} !> {}", big.one_way_us, small.one_way_us);
    }

    #[test]
    fn windowed_run_completes_all_chains() {
        let r = quick("lci_psr_cq_pin_i", 8, 8);
        assert!(r.completed, "{r:?}");
    }

    #[test]
    fn sharded_matches_single_heap_results() {
        use simcore::shard::RunMode;
        let mut p = LatencyParams::new("lci_psr_cq_pin_i".parse().unwrap(), 8);
        p.steps = 50;
        p.window = 8;
        p.cores = 8;
        let legacy = run_latency(&p);
        assert!(legacy.completed);
        for (shards, mode) in
            [(1, RunMode::Sequential), (2, RunMode::Sequential), (2, RunMode::Threaded)]
        {
            let r = run_latency_sharded(&p, shards, Some(mode));
            assert!(r.completed, "shards={shards} {mode:?}: {r:?}");
            assert_eq!(
                r.total, legacy.total,
                "shards={shards} {mode:?}: finish time diverged from single-heap world"
            );
        }
    }
}
