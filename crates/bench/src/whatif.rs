//! The causal what-if (virtual-speedup) engine.
//!
//! A Coz-style causal profiler answers "how much faster would the run be
//! if component X were k× cheaper?" On real hardware that needs virtual
//! speedup through sampling; in a deterministic DES both sides are exact:
//!
//! * **predicted** speedup comes from the critical path — scaling a
//!   component shrinks the path by its on-path time times `(1 − k)`;
//! * **measured** speedup comes from deterministically re-running the
//!   same scenario with the cost knob actually dialed.
//!
//! Agreement of the two validates that the causal graph attributes time
//! to the mechanism that really carries it. Disagreement is itself
//! informative: it means shrinking the component moved the critical path
//! onto a different resource (contention shifted), which only the re-run
//! can see.

use std::fmt::Write as _;

use netsim::WireModel;
use parcelport::PpConfig;
use simcore::CostModel;
use telemetry::CritPath;

use crate::latency::{run_latency, LatencyParams};
use crate::trace::instrumented;

/// One cost knob the engine can dial, mirroring the paper's five
/// mechanisms plus the generic wire/serialization scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Knob {
    /// Scale serialization costs (per-byte + per-parcel encode) by `k`.
    SerializeScale(f64),
    /// Scale the wire propagation latency by `k`.
    WireLatencyScale(f64),
    /// Scale wire bandwidth by `k` (per-byte time by `1/k`).
    WireBandwidthScale(f64),
    /// Scale the `ucp_progress` critical-section length by `k`
    /// (emulates MPI/UCX adopting LCI's fine-grained synchronization).
    LockHoldScale(f64),
    /// Remove tag matching + unexpected-queue scanning (emulates LCI's
    /// dynamic put, which needs no posted receive to match).
    TagMatchOff,
    /// Remove the per-in-flight-op progress cost (emulates completion
    /// queues: completion notification independent of outstanding ops).
    ProgressPerOpOff,
    /// Remove the worker poll skew (emulates a dedicated pinned progress
    /// thread spinning on the NIC).
    PollSkewOff,
    /// Turn on send-immediate (bypass aggregation queues).
    SendImmediate,
}

fn scale_u64(v: u64, k: f64) -> u64 {
    (v as f64 * k).round() as u64
}

impl Knob {
    /// Stable display/CLI name, e.g. `serialize_x0.5`, `tag_match_off`.
    pub fn name(&self) -> String {
        match self {
            Knob::SerializeScale(k) => format!("serialize_x{k}"),
            Knob::WireLatencyScale(k) => format!("wire_latency_x{k}"),
            Knob::WireBandwidthScale(k) => format!("wire_bw_x{k}"),
            Knob::LockHoldScale(k) => format!("lock_hold_x{k}"),
            Knob::TagMatchOff => "tag_match_off".into(),
            Knob::ProgressPerOpOff => "cq_per_op_off".into(),
            Knob::PollSkewOff => "poll_skew_off".into(),
            Knob::SendImmediate => "send_immediate".into(),
        }
    }

    /// Parse a CLI knob spec (the inverse of [`Knob::name`]).
    pub fn parse(s: &str) -> Option<Knob> {
        if let Some(k) = s.strip_prefix("serialize_x") {
            return k.parse().ok().map(Knob::SerializeScale);
        }
        if let Some(k) = s.strip_prefix("wire_latency_x") {
            return k.parse().ok().map(Knob::WireLatencyScale);
        }
        if let Some(k) = s.strip_prefix("wire_bw_x") {
            return k.parse().ok().map(Knob::WireBandwidthScale);
        }
        if let Some(k) = s.strip_prefix("lock_hold_x") {
            return k.parse().ok().map(Knob::LockHoldScale);
        }
        match s {
            "tag_match_off" => Some(Knob::TagMatchOff),
            "cq_per_op_off" => Some(Knob::ProgressPerOpOff),
            "poll_skew_off" => Some(Knob::PollSkewOff),
            "send_immediate" => Some(Knob::SendImmediate),
            _ => None,
        }
    }

    /// Dial this knob into a scenario's configuration, cost model and
    /// wire model.
    pub fn apply(&self, cfg: &mut PpConfig, cost: &mut CostModel, wire: &mut WireModel) {
        match *self {
            Knob::SerializeScale(k) => {
                cost.serialize_per_byte_milli = scale_u64(cost.serialize_per_byte_milli, k);
                cost.amt_encode_base = scale_u64(cost.amt_encode_base, k);
                cost.amt_encode_per_parcel = scale_u64(cost.amt_encode_per_parcel, k);
            }
            Knob::WireLatencyScale(k) => {
                wire.latency_ns = scale_u64(wire.latency_ns, k);
            }
            Knob::WireBandwidthScale(k) => {
                wire.byte_ns_milli = scale_u64(wire.byte_ns_milli, 1.0 / k);
            }
            Knob::LockHoldScale(k) => {
                cost.mpi_lock_hold_scale_milli = scale_u64(1000, k);
            }
            Knob::TagMatchOff => {
                cost.mpi_match = 0;
                cost.mpi_unexp_scan = 0;
                cost.mpi_unexpected = 0;
            }
            Knob::ProgressPerOpOff => {
                cost.mpi_progress_per_op = 0;
            }
            Knob::PollSkewOff => {
                cost.worker_poll_skew = 0;
            }
            Knob::SendImmediate => {
                cfg.send_immediate = true;
            }
        }
    }

    /// Predicted makespan under this knob, from the base run's critical
    /// path: `total − on_path(component) × (1 − k)`. `None` when the
    /// knob's effect is not a single on-path component (those are
    /// validated by measurement only).
    pub fn predicted_total_ns(&self, cp: &CritPath) -> Option<u64> {
        let total = cp.total_ns as i64;
        let delta = match *self {
            Knob::SerializeScale(k) => {
                (cp.component_ns("amt.serialize") as f64 * (1.0 - k)).round() as i64
            }
            Knob::WireLatencyScale(k) => (cp.wire_fixed_ns as f64 * (1.0 - k)).round() as i64,
            Knob::WireBandwidthScale(k) => {
                let variable = cp.component_ns("net.wire").saturating_sub(cp.wire_fixed_ns);
                (variable as f64 * (1.0 - 1.0 / k)).round() as i64
            }
            Knob::LockHoldScale(k) => {
                (cp.component_ns("ucp_progress") as f64 * (1.0 - k)).round() as i64
            }
            Knob::PollSkewOff => cp.component_ns("worker.poll_skew.wait") as i64,
            Knob::TagMatchOff | Knob::ProgressPerOpOff | Knob::SendImmediate => return None,
        };
        Some((total - delta).max(0) as u64)
    }
}

/// Predicted-vs-measured outcome of one knob on one scenario.
#[derive(Debug, Clone)]
pub struct WhatIfRow {
    /// Knob name.
    pub knob: String,
    /// Base makespan (virtual ns, last executed event of the base run).
    pub base_ns: u64,
    /// Makespan predicted from the base run's critical path.
    pub predicted_ns: Option<u64>,
    /// Makespan measured by deterministically re-running with the knob.
    pub measured_ns: u64,
}

impl WhatIfRow {
    /// Predicted speedup (base / predicted), when predictable.
    pub fn predicted_speedup(&self) -> Option<f64> {
        self.predicted_ns.map(|p| self.base_ns as f64 / p.max(1) as f64)
    }

    /// Measured speedup (base / measured).
    pub fn measured_speedup(&self) -> f64 {
        self.base_ns as f64 / self.measured_ns.max(1) as f64
    }

    /// Relative error of the prediction against the measurement.
    pub fn prediction_error(&self) -> Option<f64> {
        self.predicted_ns
            .map(|p| (p as f64 - self.measured_ns as f64).abs() / self.measured_ns.max(1) as f64)
    }
}

fn knobbed(base: &LatencyParams, knob: Knob) -> LatencyParams {
    let mut p = base.clone();
    let mut cfg = p.config;
    let mut cost = p.cost.clone().unwrap_or_default();
    let mut wire = p.wire.clone();
    knob.apply(&mut cfg, &mut cost, &mut wire);
    p.config = cfg;
    p.cost = Some(cost);
    p.wire = wire;
    p
}

/// Run the what-if engine on an arbitrary scenario: one instrumented
/// base run (returning its critical path), then one deterministic re-run
/// per knob, each dialed through `run(config, cost, wire)`. Makespans
/// are virtual-time instants of each run's last executed event, so the
/// predicted and measured sides use the same clock.
pub fn whatif_sweep(
    config: PpConfig,
    cost: Option<CostModel>,
    wire: WireModel,
    knobs: &[Knob],
    run: impl Fn(PpConfig, Option<CostModel>, WireModel),
) -> (CritPath, Vec<WhatIfRow>) {
    let name = config.to_string();
    let ((), tel) = instrumented(|| run(config, cost.clone(), wire.clone()));
    let cp = tel.critpath(&name).expect("base run records a causal log");
    let rows = knobs
        .iter()
        .map(|&k| {
            let mut cfg = config;
            let mut c = cost.clone().unwrap_or_default();
            let mut w = wire.clone();
            k.apply(&mut cfg, &mut c, &mut w);
            let ((), tel2) = instrumented(|| run(cfg, Some(c), w));
            let cp2 = tel2.critpath(&cfg.to_string()).expect("re-run records a causal log");
            WhatIfRow {
                knob: k.name(),
                base_ns: cp.total_ns,
                predicted_ns: k.predicted_total_ns(&cp),
                measured_ns: cp2.total_ns,
            }
        })
        .collect();
    (cp, rows)
}

/// [`whatif_sweep`] over the ping-pong latency benchmark.
pub fn whatif_latency(base: &LatencyParams, knobs: &[Knob]) -> (CritPath, Vec<WhatIfRow>) {
    whatif_sweep(base.config, base.cost.clone(), base.wire.clone(), knobs, |cfg, cost, wire| {
        let mut p = base.clone();
        p.config = cfg;
        p.cost = cost;
        p.wire = wire;
        run_latency(&p);
    })
}

/// One mechanism's contribution to the MPI-vs-LCI gap.
#[derive(Debug, Clone)]
pub struct MechanismRow {
    /// Paper mechanism name.
    pub mechanism: &'static str,
    /// Knob used to emulate it inside the MPI stack.
    pub knob: String,
    /// MPI makespan with the knob dialed, ns.
    pub t_knob_ns: u64,
    /// Fraction of the MPI−LCI gap this mechanism explains.
    pub share_of_gap: f64,
}

/// Attribution of the fig8-style MPI-vs-LCI latency gap to the paper's
/// five mechanisms, by measured re-runs: each mechanism is emulated
/// inside the MPI stack with its knob, and its share of the gap is
/// `(T_mpi − T_mpi+knob) / (T_mpi − T_lci)`.
///
/// Returns `(t_mpi_ns, t_lci_ns, rows)`. Shares need not sum to 1 —
/// mechanisms overlap (removing one lengthens another's residual path).
pub fn five_mechanism_attribution(
    window: usize,
    steps: usize,
    cores: usize,
) -> (u64, u64, Vec<MechanismRow>) {
    let mk = |cfg: &str| {
        let mut p = LatencyParams::new(cfg.parse().expect("valid config"), 8);
        p.window = window;
        p.steps = steps;
        p.cores = cores;
        p
    };
    let mpi = mk("mpi");
    let t_mpi = run_latency(&mpi).total.as_nanos();
    let t_lci = run_latency(&mk("lci_psr_cq_pin_i")).total.as_nanos();
    let gap = t_mpi.saturating_sub(t_lci).max(1);

    let mechanisms: [(&'static str, Knob); 5] = [
        ("fine-grained sync", Knob::LockHoldScale(0.0)),
        ("dynamic put", Knob::TagMatchOff),
        ("completion queues", Knob::ProgressPerOpOff),
        ("pinned progress thread", Knob::PollSkewOff),
        ("send-immediate", Knob::SendImmediate),
    ];
    let mut rows: Vec<MechanismRow> = mechanisms
        .iter()
        .map(|&(mechanism, knob)| {
            let t_knob = run_latency(&knobbed(&mpi, knob)).total.as_nanos();
            MechanismRow {
                mechanism,
                knob: knob.name(),
                t_knob_ns: t_knob,
                share_of_gap: t_mpi.saturating_sub(t_knob) as f64 / gap as f64,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.share_of_gap.total_cmp(&a.share_of_gap));

    // All five together: mechanisms overlap, so the combined effect is
    // the honest upper line of what this family of knobs explains.
    let mut all = mpi.clone();
    {
        let mut cfg = all.config;
        let mut cost = all.cost.clone().unwrap_or_default();
        let mut wire = all.wire.clone();
        for (_, knob) in &mechanisms {
            knob.apply(&mut cfg, &mut cost, &mut wire);
        }
        all.config = cfg;
        all.cost = Some(cost);
        all.wire = wire;
    }
    let t_all = run_latency(&all).total.as_nanos();
    rows.push(MechanismRow {
        mechanism: "all five combined",
        knob: "all".into(),
        t_knob_ns: t_all,
        share_of_gap: t_mpi.saturating_sub(t_all) as f64 / gap as f64,
    });
    (t_mpi, t_lci, rows)
}

/// Render the machine-readable `BENCH_whatif.json` document.
pub fn whatif_json(
    config: &str,
    cp: &CritPath,
    rows: &[WhatIfRow],
    attribution: Option<(u64, u64, &[MechanismRow])>,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"config\":\"{}\",\"base_ns\":{},\"critpath\":{},\"knobs\":[",
        simcore::escape_json(config),
        cp.total_ns,
        cp.to_json(),
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"knob\":\"{}\",\"base_ns\":{},\"measured_ns\":{},\"measured_speedup\":{:.6}",
            simcore::escape_json(&r.knob),
            r.base_ns,
            r.measured_ns,
            r.measured_speedup(),
        );
        if let (Some(p), Some(s), Some(e)) =
            (r.predicted_ns, r.predicted_speedup(), r.prediction_error())
        {
            let _ = write!(
                out,
                ",\"predicted_ns\":{p},\"predicted_speedup\":{s:.6},\"prediction_error\":{e:.6}"
            );
        }
        out.push('}');
    }
    out.push(']');
    if let Some((t_mpi, t_lci, mech)) = attribution {
        let _ = write!(
            out,
            ",\"attribution\":{{\"t_mpi_ns\":{t_mpi},\"t_lci_ns\":{t_lci},\"mechanisms\":["
        );
        for (i, m) in mech.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"mechanism\":\"{}\",\"knob\":\"{}\",\"t_knob_ns\":{},\"share_of_gap\":{:.6}}}",
                simcore::escape_json(m.mechanism),
                simcore::escape_json(&m.knob),
                m.t_knob_ns,
                m.share_of_gap,
            );
        }
        out.push_str("]}");
    }
    out.push('}');
    out
}

/// Render the human-readable what-if table.
pub fn whatif_text(
    config: &str,
    rows: &[WhatIfRow],
    attribution: Option<(u64, u64, &[MechanismRow])>,
) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "what-if [{config}]: predicted (from critical path) vs measured (re-run)");
    let _ = writeln!(
        out,
        "  {:<18} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "knob", "base us", "predicted us", "measured us", "pred x", "meas x"
    );
    for r in rows {
        let pred_us =
            r.predicted_ns.map(|p| format!("{:.3}", p as f64 / 1e3)).unwrap_or_else(|| "-".into());
        let pred_x = r.predicted_speedup().map(|s| format!("{s:.3}")).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  {:<18} {:>12.3} {:>12} {:>12.3} {:>9} {:>9.3}",
            r.knob,
            r.base_ns as f64 / 1e3,
            pred_us,
            r.measured_ns as f64 / 1e3,
            pred_x,
            r.measured_speedup(),
        );
    }
    if let Some((t_mpi, t_lci, mech)) = attribution {
        let _ = writeln!(
            out,
            "causal attribution of the MPI-vs-LCI gap \
             (T_mpi {:.3} us, T_lci {:.3} us, gap {:.3} us):",
            t_mpi as f64 / 1e3,
            t_lci as f64 / 1e3,
            t_mpi.saturating_sub(t_lci) as f64 / 1e3,
        );
        let _ = writeln!(
            out,
            "  {:<24} {:<16} {:>12} {:>12}",
            "mechanism", "knob", "T+knob us", "gap share"
        );
        for m in mech {
            let _ = writeln!(
                out,
                "  {:<24} {:<16} {:>12.3} {:>11.1}%",
                m.mechanism,
                m.knob,
                m.t_knob_ns as f64 / 1e3,
                m.share_of_gap * 100.0,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_names_roundtrip_through_parse() {
        for k in [
            Knob::SerializeScale(0.5),
            Knob::WireLatencyScale(2.0),
            Knob::WireBandwidthScale(4.0),
            Knob::LockHoldScale(0.25),
            Knob::TagMatchOff,
            Knob::ProgressPerOpOff,
            Knob::PollSkewOff,
            Knob::SendImmediate,
        ] {
            assert_eq!(Knob::parse(&k.name()), Some(k), "{}", k.name());
        }
        assert_eq!(Knob::parse("bogus"), None);
    }

    #[test]
    fn apply_dials_the_right_fields() {
        let mut cfg: PpConfig = "mpi".parse().unwrap();
        let mut cost = CostModel::default_model();
        let mut wire = WireModel::expanse();
        Knob::WireLatencyScale(2.0).apply(&mut cfg, &mut cost, &mut wire);
        assert_eq!(wire.latency_ns, 2_000);
        Knob::LockHoldScale(0.5).apply(&mut cfg, &mut cost, &mut wire);
        assert_eq!(cost.mpi_lock_hold_scale_milli, 500);
        assert_eq!(cost.scale_lock_hold(1000), 500);
        Knob::TagMatchOff.apply(&mut cfg, &mut cost, &mut wire);
        assert_eq!(cost.mpi_match + cost.mpi_unexp_scan + cost.mpi_unexpected, 0);
        assert!(!cfg.send_immediate);
        Knob::SendImmediate.apply(&mut cfg, &mut cost, &mut wire);
        assert!(cfg.send_immediate);
    }
}
