//! Tabular output helpers: print figures as aligned text tables (the
//! same rows/series the paper plots).

/// A simple column-aligned table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a rate in K/s with sensible precision.
pub fn fmt_kps(rate_per_sec: f64) -> String {
    format!("{:.1}", rate_per_sec / 1e3)
}

/// Format a latency in microseconds.
pub fn fmt_us(us: f64) -> String {
    format!("{us:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["config", "rate"]);
        t.row(vec!["mpi", "1.0"]);
        t.row(vec!["lci_psr_cq_pin_i", "750.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("config"));
        assert!(lines[3].contains("750.0"));
        // All data lines are equally wide.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_kps(750_000.0), "750.0");
        assert_eq!(fmt_us(3.456), "3.46");
    }
}
