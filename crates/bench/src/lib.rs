//! # bench — harnesses that regenerate every figure and table of the paper
//!
//! Two microbenchmarks (§4) plus the Octo-Tiger application benchmark
//! (§5, in the `octotiger-mini` crate):
//!
//! * **Message rate** ([`msgrate`]): a sender locality creates tasks at a
//!   fixed attempted rate; each task injects a batch of fixed-size
//!   messages; the receiver counts arrivals and signals back with one
//!   short message when everything landed. Reported: *achieved injection
//!   rate* (messages / time to get every message handed to the
//!   parcelport) and *message rate* (messages / time until the receiver
//!   saw them all). The two diverge when the network software stack
//!   cannot keep up. (Figs. 1–6.)
//! * **Latency** ([`latency`]): multi-message ping-pong — `window`
//!   chains of tasks alternating between the two localities for `steps`
//!   iterations; one-way latency = total time / (2 × steps). (Figs. 7–9.)
//!
//! Binaries under `src/bin/` print one figure each, in the same
//! rows/series layout the paper plots.

pub mod cli;
pub mod latency;
pub mod msgrate;
pub mod report;
pub mod trace;
pub mod whatif;

pub use latency::{run_latency, run_latency_sharded, LatencyParams, LatencyResult};
pub use msgrate::{run_msgrate, run_msgrate_sharded, MsgRateParams, MsgRateResult};
pub use whatif::{
    five_mechanism_attribution, whatif_json, whatif_latency, whatif_sweep, whatif_text, Knob,
    MechanismRow, WhatIfRow,
};

/// Scale factor for quick runs: set `BENCH_SCALE` (e.g. `0.1`) to shrink
/// message counts; defaults to 1.0.
pub fn bench_scale() -> f64 {
    std::env::var("BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// The attempted injection-rate grid of the 8 B experiments (Figs. 1–3):
/// 100 K/s to 1.6 M/s plus unlimited (`None`).
pub fn injection_grid_8b() -> Vec<Option<f64>> {
    vec![Some(100e3), Some(200e3), Some(400e3), Some(800e3), Some(1_600e3), None]
}

/// The attempted injection-rate grid of the 16 KiB experiments
/// (Figs. 4–6): 10 K/s to 640 K/s plus unlimited.
pub fn injection_grid_16k() -> Vec<Option<f64>> {
    vec![
        Some(10e3),
        Some(20e3),
        Some(40e3),
        Some(80e3),
        Some(160e3),
        Some(320e3),
        Some(640e3),
        None,
    ]
}

/// Run a full injection-rate sweep for one configuration.
pub fn sweep_injection(
    base: &MsgRateParams,
    grid: &[Option<f64>],
) -> Vec<(Option<f64>, MsgRateResult)> {
    grid.iter()
        .map(|&rate| {
            let mut p = base.clone();
            p.inject_rate = rate;
            (rate, run_msgrate(&p))
        })
        .collect()
}

/// Like [`sweep_injection`] but with a caller-chosen runner — the hook
/// the figure harnesses use to route the sweep through the sharded
/// engine when `--shards`/`--run-mode` are on the command line.
pub fn sweep_injection_with(
    base: &MsgRateParams,
    grid: &[Option<f64>],
    mut run: impl FnMut(&MsgRateParams) -> MsgRateResult,
) -> Vec<(Option<f64>, MsgRateResult)> {
    grid.iter()
        .map(|&rate| {
            let mut p = base.clone();
            p.inject_rate = rate;
            (rate, run(&p))
        })
        .collect()
}

/// Format an attempted rate for table headers.
pub fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.0}K/s", r / 1e3),
        None => "unlimited".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_the_paper() {
        let g8 = injection_grid_8b();
        assert_eq!(g8.first(), Some(&Some(100e3)));
        assert_eq!(g8.last(), Some(&None), "ends with unlimited");
        let g16 = injection_grid_16k();
        assert_eq!(g16.first(), Some(&Some(10e3)));
        assert_eq!(g16.len(), 8);
        // Rates double along the grid (the paper's log-spaced sweep).
        for w in g8.windows(2) {
            if let (Some(a), Some(b)) = (w[0], w[1]) {
                assert!((b / a - 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(Some(400e3)), "400K/s");
        assert_eq!(fmt_rate(None), "unlimited");
    }

    #[test]
    fn scale_defaults_to_one() {
        std::env::remove_var("BENCH_SCALE");
        assert_eq!(bench_scale(), 1.0);
    }
}
