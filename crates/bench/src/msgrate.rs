//! The message-rate microbenchmark (§4.1; Figs. 1–6).

use std::cell::Cell;
use std::rc::Rc;

use amt::action::ActionRegistry;
use bytes::Bytes;
use netsim::WireModel;
use parcelport::{build_world, PpConfig, WorldConfig};
use simcore::SimTime;

/// Parameters of one message-rate run.
#[derive(Debug, Clone)]
pub struct MsgRateParams {
    /// Parcelport configuration (Table-1 name).
    pub config: PpConfig,
    /// Cores per locality.
    pub cores: usize,
    /// Wire model.
    pub wire: WireModel,
    /// Message (action payload) size in bytes.
    pub msg_size: usize,
    /// Messages injected by one task.
    pub batch: usize,
    /// Total messages for the run.
    pub total_msgs: usize,
    /// Attempted injection rate in messages/second; `None` = unlimited.
    pub inject_rate: Option<f64>,
    /// RNG seed.
    pub seed: u64,
    /// LCI devices per locality (1 = the paper's configuration).
    pub devices: usize,
    /// Cost-model override (what-if re-runs); `None` = defaults.
    pub cost: Option<simcore::CostModel>,
}

impl MsgRateParams {
    /// Paper defaults for the 8-byte experiment (batch 100, 500 K msgs).
    pub fn small(config: PpConfig) -> Self {
        MsgRateParams {
            config,
            cores: 32,
            wire: WireModel::expanse(),
            msg_size: 8,
            batch: 100,
            total_msgs: 500_000,
            inject_rate: None,
            seed: 1,
            devices: 1,
            cost: None,
        }
    }

    /// Paper defaults for the 16-KiB experiment (batch 10, 100 K msgs).
    pub fn large(config: PpConfig) -> Self {
        MsgRateParams {
            config,
            cores: 32,
            wire: WireModel::expanse(),
            msg_size: 16 * 1024,
            batch: 10,
            total_msgs: 100_000,
            inject_rate: None,
            seed: 1,
            devices: 1,
            cost: None,
        }
    }
}

/// Result of one message-rate run.
#[derive(Debug, Clone, Copy)]
pub struct MsgRateResult {
    /// Messages handed to the parcelport per second.
    pub achieved_injection_rate: f64,
    /// Messages fully received per second.
    pub msg_rate: f64,
    /// Virtual time when injection finished.
    pub injection_done: SimTime,
    /// Virtual time when the receiver saw the last message.
    pub comm_done: SimTime,
    /// Whether the run completed before the safety deadline.
    pub completed: bool,
    /// Engine events executed during the run — paired with wall-clock
    /// measurement by `engine_throughput` for the perf trajectory.
    pub events_executed: u64,
}

/// Run the message-rate benchmark once.
pub fn run_msgrate(p: &MsgRateParams) -> MsgRateResult {
    let mut registry = ActionRegistry::new();
    let received = Rc::new(Cell::new(0usize));
    let recv_done_at = Rc::new(Cell::new(SimTime::ZERO));
    let expect = p.total_msgs;
    let dispatch = 150u64; // per-message receiver work, ns

    {
        let received = received.clone();
        let recv_done_at = recv_done_at.clone();
        registry.register("sink", move |sim, loc, core, _parcel| {
            let n = received.get() + 1;
            received.set(n);
            let t = sim.now() + dispatch;
            if n == expect {
                recv_done_at.set(t);
                // Signal back to the sender with one short message.
                let done = loc.with_registry(|r| r.id_of("done").expect("registered"));
                loc.send_action(sim, core, 0, done, vec![Bytes::from_static(b"!")]);
            }
            t
        });
    }
    let sender_saw_done = Rc::new(Cell::new(false));
    {
        let f = sender_saw_done.clone();
        registry.register("done", move |sim, _loc, _core, _p| {
            f.set(true);
            sim.now()
        });
    }
    let sink = registry.id_of("sink").expect("registered");

    let mut wcfg = WorldConfig::two_nodes(p.config, p.cores);
    wcfg.wire = p.wire.clone();
    wcfg.seed = p.seed;
    wcfg.lci_devices = p.devices;
    wcfg.cost = p.cost.clone();
    let mut world = build_world(&wcfg, registry);

    // Injector: one task per batch, created at the attempted rate.
    let tasks = p.total_msgs / p.batch;
    let interval_ns = p.inject_rate.map(|r| (p.batch as f64 / r * 1e9) as u64);
    let injected_done_at = Rc::new(Cell::new(SimTime::ZERO));
    let injected = Rc::new(Cell::new(0usize));
    let loc0 = world.locality(0).clone();
    // One payload allocation for the whole run: every message clones the
    // handle (a refcount bump), exactly like a real sender reusing a
    // registered buffer. Keeps the steady-state injector allocation-light.
    let payload = Bytes::from(vec![0u8; p.msg_size]);
    for i in 0..tasks {
        let at = interval_ns.map_or(SimTime::ZERO, |iv| SimTime::from_nanos(iv * i as u64));
        let loc = loc0.clone();
        let injected = injected.clone();
        let injected_done_at = injected_done_at.clone();
        let batch = p.batch;
        let payload = payload.clone();
        world.sim.schedule_at(at, move |sim| {
            let injected = injected.clone();
            let injected_done_at = injected_done_at.clone();
            let loc2 = loc.clone();
            let payload = payload.clone();
            loc2.spawn(
                sim,
                0,
                Box::new(move |sim, loc, core| {
                    let mut t = sim.now();
                    for _ in 0..batch {
                        t = loc.send_action(sim, core, 1, sink, vec![payload.clone()]);
                    }
                    let n = injected.get() + batch;
                    injected.set(n);
                    if injected_done_at.get() < t {
                        injected_done_at.set(t);
                    }
                    t
                }),
            );
        });
    }

    // Safety deadline: generous multiple of the ideal time.
    let ideal_ns = interval_ns.map_or(0, |iv| iv * tasks as u64);
    let deadline = 60_000_000_000u64.max(ideal_ns * 4);
    let recv = received.clone();
    let done = world.run_while(deadline, move |_s| recv.get() < expect);

    let inj_t = injected_done_at.get();
    let comm_t = recv_done_at.get().max(inj_t);
    let inj_rate =
        if inj_t > SimTime::ZERO { p.total_msgs as f64 / inj_t.as_secs_f64() } else { 0.0 };
    let msg_rate = if done && comm_t > SimTime::ZERO {
        p.total_msgs as f64 / comm_t.as_secs_f64()
    } else if comm_t > SimTime::ZERO {
        received.get() as f64 / world.sim.now().as_secs_f64()
    } else {
        0.0
    };
    if std::env::var("MSGRATE_DUMP").is_ok() {
        eprintln!("--- sim stats ({}) ---", p.config);
        eprintln!("{}", world.sim.stats);
    }
    MsgRateResult {
        achieved_injection_rate: inj_rate,
        msg_rate,
        injection_done: inj_t,
        comm_done: comm_t,
        completed: done,
        events_executed: world.sim.events_executed(),
    }
}

/// Run the message-rate benchmark on the sharded engine: one lane per
/// locality over `shards` engine shards (`mode` pins the executor,
/// `None` lets the engine pick). The workload is identical to
/// [`run_msgrate`]; completion counters live in atomics because lanes
/// may execute on different threads. The engine runs to quiescence — the
/// benchmark's own message count is the termination condition, so no
/// safety deadline is needed.
pub fn run_msgrate_sharded(
    p: &MsgRateParams,
    shards: usize,
    mode: Option<simcore::shard::RunMode>,
) -> MsgRateResult {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    let received = Arc::new(AtomicUsize::new(0));
    let recv_done_at = Arc::new(AtomicU64::new(0));
    let injected = Arc::new(AtomicUsize::new(0));
    let injected_done_at = Arc::new(AtomicU64::new(0));
    let expect = p.total_msgs;
    let dispatch = 150u64; // per-message receiver work, ns

    let mut wcfg = WorldConfig::two_nodes(p.config, p.cores);
    wcfg.wire = p.wire.clone();
    wcfg.seed = p.seed;
    wcfg.lci_devices = p.devices;
    wcfg.cost = p.cost.clone();

    let tasks = p.total_msgs / p.batch;
    let interval_ns = p.inject_rate.map(|r| (p.batch as f64 / r * 1e9) as u64);
    let batch = p.batch;
    let msg_size = p.msg_size;

    let setup_received = received.clone();
    let setup_recv_done = recv_done_at.clone();
    let seed_injected = injected.clone();
    let seed_injected_done = injected_done_at.clone();
    let mut world = parcelport::build_sharded_world(
        &wcfg,
        shards,
        move |_rank| {
            let mut registry = ActionRegistry::new();
            let received = setup_received.clone();
            let recv_done_at = setup_recv_done.clone();
            registry.register("sink", move |sim, loc, core, _parcel| {
                let n = received.fetch_add(1, Ordering::Relaxed) + 1;
                let t = sim.now() + dispatch;
                if n == expect {
                    recv_done_at.fetch_max(t.as_nanos(), Ordering::Relaxed);
                    // Signal back to the sender with one short message.
                    let done = loc.with_registry(|r| r.id_of("done").expect("registered"));
                    loc.send_action(sim, core, 0, done, vec![Bytes::from_static(b"!")]);
                }
                t
            });
            registry.register("done", move |sim, _loc, _core, _p| sim.now());
            registry.into()
        },
        move |rank, sim, loc| {
            // Injector lives on locality 0's lane, same pacing as the
            // single-heap runner.
            if rank != 0 {
                return;
            }
            let sink = loc.with_registry(|r| r.id_of("sink").expect("registered"));
            let payload = Bytes::from(vec![0u8; msg_size]);
            for i in 0..tasks {
                let at = interval_ns.map_or(SimTime::ZERO, |iv| SimTime::from_nanos(iv * i as u64));
                let loc = loc.clone();
                let injected = seed_injected.clone();
                let injected_done_at = seed_injected_done.clone();
                let payload = payload.clone();
                sim.schedule_at(at, move |sim| {
                    let injected = injected.clone();
                    let injected_done_at = injected_done_at.clone();
                    let loc2 = loc.clone();
                    let payload = payload.clone();
                    loc2.spawn(
                        sim,
                        0,
                        Box::new(move |sim, loc, core| {
                            let mut t = sim.now();
                            for _ in 0..batch {
                                t = loc.send_action(sim, core, 1, sink, vec![payload.clone()]);
                            }
                            injected.fetch_add(batch, Ordering::Relaxed);
                            injected_done_at.fetch_max(t.as_nanos(), Ordering::Relaxed);
                            t
                        }),
                    );
                });
            }
        },
    );
    world.run(mode);

    let done = received.load(Ordering::Relaxed) >= expect;
    let inj_t = SimTime::from_nanos(injected_done_at.load(Ordering::Relaxed));
    let comm_t = SimTime::from_nanos(recv_done_at.load(Ordering::Relaxed)).max(inj_t);
    let inj_rate =
        if inj_t > SimTime::ZERO { p.total_msgs as f64 / inj_t.as_secs_f64() } else { 0.0 };
    let msg_rate = if done && comm_t > SimTime::ZERO {
        p.total_msgs as f64 / comm_t.as_secs_f64()
    } else if comm_t > SimTime::ZERO {
        received.load(Ordering::Relaxed) as f64 / world.now().as_secs_f64()
    } else {
        0.0
    };
    MsgRateResult {
        achieved_injection_rate: inj_rate,
        msg_rate,
        injection_done: inj_t,
        comm_done: comm_t,
        completed: done,
        events_executed: world.events_executed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(config: &str, size: usize) -> MsgRateResult {
        let mut p = if size <= 64 {
            MsgRateParams::small(config.parse().unwrap())
        } else {
            MsgRateParams::large(config.parse().unwrap())
        };
        p.total_msgs = 2_000;
        p.batch = 50;
        p.cores = 8;
        run_msgrate(&p)
    }

    #[test]
    fn lci_baseline_completes_and_reports_rates() {
        let r = quick("lci_psr_cq_pin_i", 8);
        assert!(r.completed, "run must finish: {r:?}");
        assert!(r.msg_rate > 0.0);
        assert!(r.achieved_injection_rate >= r.msg_rate * 0.5);
    }

    #[test]
    fn mpi_completes() {
        let r = quick("mpi_i", 8);
        assert!(r.completed, "{r:?}");
        assert!(r.msg_rate > 0.0);
    }

    #[test]
    fn sharded_matches_single_heap_results() {
        use simcore::shard::RunMode;
        let mut p = MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
        p.total_msgs = 2_000;
        p.batch = 50;
        p.cores = 8;
        let legacy = run_msgrate(&p);
        assert!(legacy.completed);
        for (shards, mode) in
            [(1, RunMode::Sequential), (2, RunMode::Sequential), (2, RunMode::Threaded)]
        {
            let r = run_msgrate_sharded(&p, shards, Some(mode));
            assert!(r.completed, "shards={shards} {mode:?}: {r:?}");
            assert_eq!(
                r.comm_done, legacy.comm_done,
                "shards={shards} {mode:?}: comm-done time diverged from single-heap world"
            );
            assert_eq!(r.injection_done, legacy.injection_done);
        }
    }

    #[test]
    fn rate_limited_injection_tracks_attempted_rate() {
        let mut p = MsgRateParams::small("lci_psr_cq_pin_i".parse().unwrap());
        p.total_msgs = 5_000;
        p.batch = 50;
        p.cores = 8;
        p.inject_rate = Some(50_000.0); // well below capacity
        let r = run_msgrate(&p);
        assert!(r.completed);
        let ratio = r.achieved_injection_rate / 50_000.0;
        assert!(
            (0.8..1.3).contains(&ratio),
            "achieved {} vs attempted 50K",
            r.achieved_injection_rate
        );
    }

    #[test]
    fn large_messages_complete() {
        let r = quick("lci_psr_cq_pin_i", 16 * 1024);
        assert!(r.completed, "{r:?}");
        assert!(r.msg_rate > 0.0);
    }
}
