//! Observability report plumbing shared by the figure harnesses.
//!
//! The flags themselves are parsed by [`crate::cli`] (one shared parser;
//! unknown flags are a hard error) — this module owns what happens with
//! an instrumented run once it finishes: [`TraceSink`] renders the text
//! reports, writes the Chrome trace / JSON / folded-stack / timeline
//! files, and prints SLO alerts and flight-recorder dump locations.
//!
//! When any flag is present the harness runs a reduced *instrumented
//! pass* instead of the full figure sweep: telemetry accumulates per
//! collector, so each traced configuration gets a fresh one (see
//! [`instrumented`] / [`crate::cli::instrumented_for`]).

use std::rc::Rc;

pub use crate::cli::TraceArgs;
use telemetry::{RunMeta, RunRecord, Telemetry};

/// Run `f` under a fresh telemetry collector and return its result plus
/// the collector. Worlds built inside `f` get per-locality span tracers
/// and deposit their spans when dropped, so the collector is complete by
/// the time this returns.
pub fn instrumented<R>(f: impl FnOnce() -> R) -> (R, Rc<Telemetry>) {
    let tel = telemetry::enable();
    let r = f();
    telemetry::disable();
    (r, tel)
}

/// Accumulates per-configuration reports and writes the files requested
/// on the command line.
pub struct TraceSink {
    args: TraceArgs,
    scenario: String,
    params: Vec<(String, String)>,
    json_docs: Vec<String>,
    folded_docs: Vec<String>,
}

impl TraceSink {
    /// A sink honoring `args`. `scenario` is the harness name stamped
    /// into run records (e.g. `fig8_latency_window_8b`).
    pub fn new(args: &TraceArgs, scenario: &str) -> TraceSink {
        TraceSink {
            args: args.clone(),
            scenario: scenario.to_string(),
            params: args.params.clone(),
            json_docs: Vec::new(),
            folded_docs: Vec::new(),
        }
    }

    /// Add workload parameters to the run-record metadata (on top of any
    /// `--param` overrides already captured from the command line).
    pub fn set_params(&mut self, params: &[(&str, String)]) {
        for (k, v) in params {
            if !self.params.iter().any(|(pk, _)| pk == k) {
                self.params.push((k.to_string(), v.clone()));
            }
        }
    }

    /// Emit the reports of one instrumented run. The Chrome trace and
    /// timeline files are written only when `write_trace` is set — the
    /// harness nominates one run so `--trace`/`--timeline` yield a
    /// single document each.
    pub fn emit(&mut self, tel: &Telemetry, config: &str, write_trace: bool) {
        let cp = if self.args.critpath { tel.critpath(config) } else { None };
        if let Some(cp) = &cp {
            print!("{}", cp.to_text());
            println!();
        }
        if self.args.breakdown {
            print!("{}", tel.breakdown(config).to_text());
            print!("{}", tel.contention_report(config).to_text());
            println!();
        }
        if self.args.profile {
            print!("{}", tel.core_report(config).to_text());
            print!("{}", track_sparklines(tel));
            println!();
        }
        if self.args.folded.is_some() {
            self.folded_docs.push(tel.folded_stacks(config));
        }
        if self.args.timeline_active() {
            self.emit_timeline(tel, config, write_trace);
        }
        if self.args.json.is_some() {
            let critpath_field =
                cp.as_ref().map(|cp| format!(",\"critpath\":{}", cp.to_json())).unwrap_or_default();
            self.json_docs.push(format!(
                "{{\"breakdown\":{},\"contention\":{},\"core_profile\":{}{}}}",
                tel.breakdown(config).to_json(),
                tel.contention_report(config).to_json(),
                tel.core_report(config).to_json(),
                critpath_field
            ));
        }
        if write_trace {
            if let Some(path) = &self.args.trace {
                let doc = match &cp {
                    Some(cp) => tel.chrome_trace_with_critpath(cp),
                    None => tel.chrome_trace_collected(),
                };
                std::fs::write(path, doc).expect("write trace file");
                println!(
                    "wrote Chrome trace of {config} ({} spans, {} flows) -> {path}",
                    tel.span_count(),
                    tel.flow_count()
                );
            }
            if let Some(path) = &self.args.record {
                let rec = RunRecord::capture(
                    tel,
                    RunMeta {
                        scenario: self.scenario.clone(),
                        config: config.to_string(),
                        params: self.params.clone(),
                        knobs: self.args.dial_knob_names(),
                        // Engine placement, not workload: absent on legacy
                        // runs so pre-sharding records stay byte-identical;
                        // `RunMeta::comparable_to` ignores both fields.
                        shards: self.args.sharding_active().then(|| self.args.shard_count() as u64),
                        run_mode: self.args.run_mode.clone(),
                    },
                );
                std::fs::write(path, rec.to_json()).expect("write run record");
                println!(
                    "wrote run record of {config} ({} ns end-to-end, {} events) -> {path}",
                    rec.end_to_end_ns, rec.events
                );
            }
        }
    }

    /// Timeline reports of one instrumented run: an alert/dump summary on
    /// stdout, plus (for the nominated run) the `--timeline FILE` JSON
    /// document, `FILE.om` OpenMetrics exposition, and one
    /// `FILE.dumpN.json` Chrome trace per flight-recorder dump.
    fn emit_timeline(&self, tel: &Telemetry, config: &str, write_trace: bool) {
        tel.timeline_finalize();
        let (nwin, window_ns, late) = tel
            .with_timeline(|tl| (tl.num_windows(), tl.window_ns(), tl.late_samples()))
            .expect("timeline pass runs with a timeline-enabled collector");
        let alerts = tel.timeline_alerts();
        let dumps = tel.timeline_dumps();
        println!(
            "timeline[{config}]: {nwin} windows x {} us, {} alerts, {} dumps, {late} late samples",
            window_ns / 1_000,
            alerts.len(),
            dumps.len()
        );
        for a in &alerts {
            println!(
                "  slo alert: {} window {} (ends {} us) burn {:.2} ({}/{} over objective)",
                a.rule,
                a.window,
                a.end_ns / 1_000,
                a.burn,
                a.bad,
                a.total
            );
        }
        for d in &dumps {
            println!(
                "  flight dump: {} at window {} ({} records, {} causal marks)",
                d.reason,
                d.window,
                d.records.len(),
                d.marks.len()
            );
        }
        if !write_trace {
            return;
        }
        if let Some(path) = &self.args.timeline {
            let doc = tel.timeline_json(config).expect("timeline document");
            std::fs::write(path, doc).expect("write timeline file");
            let om = tel.timeline_text(config).expect("timeline exposition");
            std::fs::write(format!("{path}.om"), om).expect("write timeline exposition");
            for (i, d) in dumps.iter().enumerate() {
                let dump_path = format!("{path}.dump{i}.json");
                std::fs::write(&dump_path, d.to_chrome_json()).expect("write flight dump");
                println!("wrote flight-recorder dump ({}) -> {dump_path}", d.reason);
            }
            println!("wrote timeline of {config} ({nwin} windows) -> {path} (+ {path}.om)");
        }
    }

    /// Write the machine-readable report and folded-stack files, if
    /// requested.
    pub fn finish(self) {
        if let Some(path) = &self.args.json {
            std::fs::write(path, format!("[{}]", self.json_docs.join(",")))
                .expect("write json report");
            println!("wrote machine-readable reports -> {path}");
        }
        if let Some(path) = &self.args.folded {
            let doc = self.folded_docs.concat();
            std::fs::write(path, &doc).expect("write folded stacks");
            println!(
                "wrote {} folded stacks -> {path} (render: inferno-flamegraph < {path})",
                doc.lines().count()
            );
        }
    }
}

/// Render every counter track the run produced as a terminal sparkline —
/// queue depths, in-flight parcels, and per-link busy time at a glance.
fn track_sparklines(tel: &Telemetry) -> String {
    use telemetry::profile::{resample, sparkline};
    tel.with_metrics(|m| {
        let horizon = m.tracks().flat_map(|(_, s)| s.iter().map(|&(t, _)| t)).max().unwrap_or(0);
        let mut out = String::new();
        for (name, series) in m.tracks() {
            let buckets = resample(series, horizon, 48);
            let peak = series.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
            out.push_str(&format!("  {name:<24} {} peak {peak:.1}\n", sparkline(&buckets)));
        }
        if !out.is_empty() {
            out.insert_str(0, "counter tracks (full horizon, 48 buckets):\n");
        }
        out
    })
}
