//! `--trace` / `--breakdown` support shared by the figure harnesses.
//!
//! Flags understood by the instrumented harnesses (`fig1_msgrate_8b`,
//! `fig8_latency_window_8b`, `fig10_octotiger_expanse`):
//!
//! * `--trace FILE` — write a combined Chrome-trace JSON (core spans +
//!   parcel flow arrows + counter tracks) of one instrumented run; load
//!   it at <https://ui.perfetto.dev> or `chrome://tracing`.
//! * `--breakdown` — print the per-stage latency breakdown and the
//!   contention attribution ("top resources by wait time") of every
//!   instrumented configuration.
//! * `--json FILE` — write the same reports machine-readable.
//! * `--profile` — print the virtual-time core profile: a ranked
//!   per-core state table (working / progress / lock-wait / serialize /
//!   idle shares) plus counter-track sparklines (run queues, in-flight
//!   parcels, link busy time).
//! * `--folded FILE` — write folded stacks (`config;core;state;leaf N`
//!   lines) for `inferno` / `flamegraph.pl`.
//! * `--critpath` — print the causal critical-path report (per-component
//!   on-path time vs slack) of every instrumented configuration; with
//!   `--trace` the Chrome trace gets a highlighted critical-path track
//!   and on-path parcel flows are renamed `parcel (critical)`.
//! * `--whatif KNOBS` — run the what-if engine: a comma-separated knob
//!   list (e.g. `serialize_x0,wire_latency_x2,lock_hold_x0.5`, or `all`
//!   for the default sweep) is dialed into deterministic re-runs and
//!   predicted-vs-measured speedups are reported (see [`crate::whatif`]).
//!
//! When any flag is present the harness runs a reduced *instrumented
//! pass* instead of the full figure sweep: telemetry accumulates per
//! collector, so each traced configuration gets a fresh one (see
//! [`instrumented`]).

use std::rc::Rc;

use telemetry::Telemetry;

/// Parsed observability flags.
#[derive(Debug, Default, Clone)]
pub struct TraceArgs {
    /// Chrome-trace output path (`--trace FILE`).
    pub trace: Option<String>,
    /// Print text breakdown + contention reports (`--breakdown`).
    pub breakdown: bool,
    /// Machine-readable report path (`--json FILE`).
    pub json: Option<String>,
    /// Print the per-core virtual-time profile (`--profile`).
    pub profile: bool,
    /// Folded-stack (flamegraph) output path (`--folded FILE`).
    pub folded: Option<String>,
    /// Print critical-path reports; highlight the path in `--trace`
    /// output (`--critpath`).
    pub critpath: bool,
    /// What-if knob sweep spec (`--whatif KNOBS`, `all` = default sweep).
    pub whatif: Option<String>,
}

impl TraceArgs {
    /// Parse the harness command line; exits with a usage message on an
    /// unknown argument.
    pub fn parse() -> TraceArgs {
        let mut out = TraceArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => out.trace = Some(it.next().expect("--trace needs a file path")),
                "--breakdown" => out.breakdown = true,
                "--json" => out.json = Some(it.next().expect("--json needs a file path")),
                "--profile" => out.profile = true,
                "--folded" => out.folded = Some(it.next().expect("--folded needs a file path")),
                "--critpath" => out.critpath = true,
                "--whatif" => out.whatif = Some(it.next().expect("--whatif needs a knob list")),
                other => {
                    eprintln!(
                        "unknown argument {other:?} \
                         (supported: --trace FILE, --breakdown, --json FILE, \
                         --profile, --folded FILE, --critpath, --whatif KNOBS)"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Whether an instrumented pass was requested.
    pub fn active(&self) -> bool {
        self.trace.is_some()
            || self.breakdown
            || self.json.is_some()
            || self.profile
            || self.folded.is_some()
            || self.critpath
            || self.whatif.is_some()
    }

    /// Whether per-config reports (rather than just one Chrome trace)
    /// were requested — decides how many configs the pass covers.
    pub fn wants_reports(&self) -> bool {
        self.breakdown || self.json.is_some() || self.profile || self.folded.is_some()
    }

    /// The parsed `--whatif` knob list; exits with a usage message on an
    /// unknown knob spec.
    pub fn whatif_knobs(&self) -> Option<Vec<crate::whatif::Knob>> {
        use crate::whatif::Knob;
        let spec = self.whatif.as_deref()?;
        if spec == "all" {
            return Some(vec![
                Knob::SerializeScale(0.0),
                Knob::WireLatencyScale(2.0),
                Knob::WireLatencyScale(0.5),
                Knob::WireBandwidthScale(2.0),
                Knob::LockHoldScale(0.0),
                Knob::TagMatchOff,
                Knob::ProgressPerOpOff,
                Knob::PollSkewOff,
                Knob::SendImmediate,
            ]);
        }
        Some(
            spec.split(',')
                .map(|s| {
                    Knob::parse(s.trim()).unwrap_or_else(|| {
                        eprintln!(
                            "unknown --whatif knob {s:?} (supported: serialize_xK, \
                             wire_latency_xK, wire_bw_xK, lock_hold_xK, tag_match_off, \
                             cq_per_op_off, poll_skew_off, send_immediate, all)"
                        );
                        std::process::exit(2);
                    })
                })
                .collect(),
        )
    }
}

/// Run `f` under a fresh telemetry collector and return its result plus
/// the collector. Worlds built inside `f` get per-locality span tracers
/// and deposit their spans when dropped, so the collector is complete by
/// the time this returns.
pub fn instrumented<R>(f: impl FnOnce() -> R) -> (R, Rc<Telemetry>) {
    let tel = telemetry::enable();
    let r = f();
    telemetry::disable();
    (r, tel)
}

/// Accumulates per-configuration reports and writes the files requested
/// on the command line.
pub struct TraceSink {
    args: TraceArgs,
    json_docs: Vec<String>,
    folded_docs: Vec<String>,
}

impl TraceSink {
    /// A sink honoring `args`.
    pub fn new(args: &TraceArgs) -> TraceSink {
        TraceSink { args: args.clone(), json_docs: Vec::new(), folded_docs: Vec::new() }
    }

    /// Emit the reports of one instrumented run. The Chrome trace file is
    /// written only when `write_trace` is set — the harness nominates one
    /// run so `--trace` yields a single file.
    pub fn emit(&mut self, tel: &Telemetry, config: &str, write_trace: bool) {
        let cp = if self.args.critpath { tel.critpath(config) } else { None };
        if let Some(cp) = &cp {
            print!("{}", cp.to_text());
            println!();
        }
        if self.args.breakdown {
            print!("{}", tel.breakdown(config).to_text());
            print!("{}", tel.contention_report(config).to_text());
            println!();
        }
        if self.args.profile {
            print!("{}", tel.core_report(config).to_text());
            print!("{}", track_sparklines(tel));
            println!();
        }
        if self.args.folded.is_some() {
            self.folded_docs.push(tel.folded_stacks(config));
        }
        if self.args.json.is_some() {
            let critpath_field =
                cp.as_ref().map(|cp| format!(",\"critpath\":{}", cp.to_json())).unwrap_or_default();
            self.json_docs.push(format!(
                "{{\"breakdown\":{},\"contention\":{},\"core_profile\":{}{}}}",
                tel.breakdown(config).to_json(),
                tel.contention_report(config).to_json(),
                tel.core_report(config).to_json(),
                critpath_field
            ));
        }
        if write_trace {
            if let Some(path) = &self.args.trace {
                let doc = match &cp {
                    Some(cp) => tel.chrome_trace_with_critpath(cp),
                    None => tel.chrome_trace_collected(),
                };
                std::fs::write(path, doc).expect("write trace file");
                println!(
                    "wrote Chrome trace of {config} ({} spans, {} flows) -> {path}",
                    tel.span_count(),
                    tel.flow_count()
                );
            }
        }
    }

    /// Write the machine-readable report and folded-stack files, if
    /// requested.
    pub fn finish(self) {
        if let Some(path) = &self.args.json {
            std::fs::write(path, format!("[{}]", self.json_docs.join(",")))
                .expect("write json report");
            println!("wrote machine-readable reports -> {path}");
        }
        if let Some(path) = &self.args.folded {
            let doc = self.folded_docs.concat();
            std::fs::write(path, &doc).expect("write folded stacks");
            println!(
                "wrote {} folded stacks -> {path} (render: inferno-flamegraph < {path})",
                doc.lines().count()
            );
        }
    }
}

/// Render every counter track the run produced as a terminal sparkline —
/// queue depths, in-flight parcels, and per-link busy time at a glance.
fn track_sparklines(tel: &Telemetry) -> String {
    use telemetry::profile::{resample, sparkline};
    tel.with_metrics(|m| {
        let horizon = m.tracks().flat_map(|(_, s)| s.iter().map(|&(t, _)| t)).max().unwrap_or(0);
        let mut out = String::new();
        for (name, series) in m.tracks() {
            let buckets = resample(series, horizon, 48);
            let peak = series.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
            out.push_str(&format!("  {name:<24} {} peak {peak:.1}\n", sparkline(&buckets)));
        }
        if !out.is_empty() {
            out.insert_str(0, "counter tracks (full horizon, 48 buckets):\n");
        }
        out
    })
}
