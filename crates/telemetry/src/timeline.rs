//! Windowed telemetry timelines, SLO monitors, and the fault flight
//! recorder.
//!
//! Every report the collector produces elsewhere is an end-of-run
//! aggregate; this module slices the same instrumentation by fixed-width
//! virtual-time **windows** (default 100 µs) so transient phenomena — a
//! congestion knee forming, a retry storm after a link failure, a
//! straggler phase — stay visible instead of being averaged away:
//!
//! * **windowed histograms** — every timed `hist_record_at` lands in the
//!   sub-[`Histogram`] of window `t / window_ns`. The hard invariant is
//!   that merging all per-window sub-histograms reproduces the run-total
//!   histogram *bucket-identically* (same counts, sum, min, max, and
//!   therefore identical quantiles) — asserted by
//!   `tests/timeline_props.rs` and the integration tests;
//! * **windowed counters** — per-window deltas whose sum equals the
//!   run-total counter;
//! * **per-port windows** — `fab.*` egress-port wait/packets/bytes per
//!   window, fed by the switch fabric's port accesses;
//! * **SLO monitors** ([`SloRule`]) — latency-objective burn-rate rules
//!   evaluated per window as the run advances, emitting deterministic
//!   [`SloAlert`] events (also rendered as zero-duration spans on
//!   `slo/<rule>` tracks in the Chrome export);
//! * the **flight recorder** — a bounded ring of recent flow / probe /
//!   fault records. The first SLO alert or injected fault *arms* it; a
//!   short post-roll later (so the consequences — rerouted parcels, retry
//!   traffic — are on tape too) the ring plus the tail of the causal
//!   mark log is snapshotted into a self-contained Chrome-trace
//!   [`FlightDump`].
//!
//! Evaluation is **online**: the timeline keeps a monotone time cursor
//! (the high-water mark of every timed record it sees — flow marks,
//! counter-track samples, profiler intervals, probe events). A window is
//! evaluated once the cursor has moved one full window past its end;
//! samples that land in an already-evaluated window still count in the
//! windowed series (the merge==total invariant is unconditional) and are
//! tallied in `late_samples`. Everything here is pure observation: fed
//! only from existing instrumentation points, it never schedules events
//! or charges virtual time, so golden traces are unchanged.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::critpath::CritPath;
use crate::hist::Histogram;
use crate::json::escape_json;
use crate::metrics::Metrics;
use crate::profile::{CoreAccount, CoreState, N_STATES, STATES};

/// Default window width: 100 µs of virtual time.
pub const DEFAULT_WINDOW_NS: u64 = 100_000;

/// Timeline configuration: window width, SLO rules, recorder sizing.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Window width in virtual ns (must be > 0).
    pub window_ns: u64,
    /// SLO burn-rate rules evaluated per window.
    pub slos: Vec<SloRule>,
    /// Flight-recorder ring capacity (records retained).
    pub recorder_cap: usize,
    /// Windows of post-roll between a trigger and its dump, so the
    /// consequences of the triggering event are on tape.
    pub post_roll_windows: u64,
    /// Maximum flight-recorder dumps per run.
    pub max_dumps: usize,
    /// Causal marks copied from the tail of the provenance log into each
    /// dump.
    pub dump_marks: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            window_ns: DEFAULT_WINDOW_NS,
            slos: Vec::new(),
            recorder_cap: 4096,
            post_roll_windows: 8,
            max_dumps: 4,
            dump_marks: 256,
        }
    }
}

/// One latency-objective burn-rate rule.
///
/// Per window: `bad` = samples of `hist` above `objective_ns`; the burn
/// rate is `(bad/total) / (1 - target)` — how many times faster than
/// budget the window consumes its error allowance. The rule fires when
/// the window holds at least `min_samples` samples and the burn rate
/// reaches `burn_threshold`.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Rule name (alert/track label).
    pub name: String,
    /// Windowed histogram key the rule watches (e.g. `parcel.latency_ns`).
    pub hist: String,
    /// Latency objective in ns: samples above it are "bad".
    pub objective_ns: u64,
    /// SLO target fraction (e.g. 0.99 ⇒ 1% error budget).
    pub target: f64,
    /// Burn-rate threshold at which the rule fires (1.0 = exactly on
    /// budget).
    pub burn_threshold: f64,
    /// Minimum samples in a window before the rule is evaluated.
    pub min_samples: u64,
}

impl SloRule {
    /// Per-window error budget fraction.
    fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }
}

/// One deterministic SLO alert: rule × window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Which rule fired.
    pub rule: String,
    /// Window index it fired in.
    pub window: u64,
    /// Window end instant, ns.
    pub end_ns: u64,
    /// Burn rate observed in the window.
    pub burn: f64,
    /// Samples above the objective.
    pub bad: u64,
    /// Total samples in the window.
    pub total: u64,
}

/// One record on the flight-recorder ring.
#[derive(Debug, Clone)]
pub enum FlightRec {
    /// A delivered parcel flow.
    Flow {
        /// Flow id.
        id: u64,
        /// Source locality.
        src: usize,
        /// Destination locality.
        dst: usize,
        /// PUT instant, ns.
        put_ns: u64,
        /// DELIVER instant, ns.
        deliver_ns: u64,
    },
    /// A contention-probe event (lock wait / resource queueing).
    Probe {
        /// Resource name.
        name: &'static str,
        /// Probe kind label (`lock` / `trylock` / `resource`).
        kind: &'static str,
        /// Event instant, ns.
        t_ns: u64,
        /// Wait portion, ns.
        wait_ns: u64,
        /// Service/hold portion, ns.
        service_ns: u64,
    },
    /// An injected-fault event (link failure, retransmit, duplicate).
    Fault {
        /// Fault label (e.g. `link_down`, `net.retransmit`).
        label: &'static str,
        /// Event instant, ns.
        t_ns: u64,
    },
    /// An SLO alert (also listed in [`Timeline::alerts`]).
    Alert {
        /// Rule name.
        rule: String,
        /// Window index.
        window: u64,
        /// Window end, ns.
        t_ns: u64,
    },
}

impl FlightRec {
    /// The record's primary instant, ns (delivery time for flows).
    pub fn t_ns(&self) -> u64 {
        match self {
            FlightRec::Flow { deliver_ns, .. } => *deliver_ns,
            FlightRec::Probe { t_ns, .. }
            | FlightRec::Fault { t_ns, .. }
            | FlightRec::Alert { t_ns, .. } => *t_ns,
        }
    }
}

/// One causal mark copied into a dump: `(label, kind, start_ns, end_ns)`.
pub type DumpMark = (&'static str, &'static str, u64, u64);

/// A flight-recorder snapshot: the ring at `trigger + post_roll`.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the recorder was armed (`slo:<rule>` or `fault:<label>`).
    pub reason: String,
    /// Trigger instant, ns.
    pub trigger_ns: u64,
    /// Window the trigger fell in.
    pub window: u64,
    /// Snapshot instant, ns (trigger + post-roll, or run end).
    pub taken_ns: u64,
    /// Ring contents, oldest first.
    pub records: Vec<FlightRec>,
    /// Tail of the causal mark log at snapshot time.
    pub marks: Vec<DumpMark>,
}

impl FlightDump {
    /// Render the dump as a self-contained Chrome-trace JSON document:
    /// the trigger as a zero-duration span, flows/probes/marks as
    /// complete spans on `flight.*` tracks — loadable standalone in
    /// Perfetto and valid under `trace_check`'s structural rules.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        let push = |out: &mut String, name: &str, tid: &str, ts: u64, dur: u64| {
            if out.len() > 1 {
                out.push(',');
            }
            write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":\"{}\"}}",
                escape_json(name),
                ts as f64 / 1e3,
                dur as f64 / 1e3,
                escape_json(tid)
            )
            .expect("write to string");
        };
        push(&mut out, &format!("TRIGGER {}", self.reason), "flight.trigger", self.trigger_ns, 0);
        for r in &self.records {
            match r {
                FlightRec::Flow { id, src, dst, put_ns, deliver_ns } => push(
                    &mut out,
                    &format!("parcel#{id} {src}->{dst}"),
                    "flight.flows",
                    *put_ns,
                    deliver_ns.saturating_sub(*put_ns),
                ),
                FlightRec::Probe { name, kind, t_ns, wait_ns, service_ns } => push(
                    &mut out,
                    &format!("{name} ({kind})"),
                    "flight.probes",
                    *t_ns,
                    wait_ns + service_ns,
                ),
                FlightRec::Fault { label, t_ns } => {
                    push(&mut out, &format!("FAULT {label}"), "flight.faults", *t_ns, 0)
                }
                FlightRec::Alert { rule, window, t_ns } => {
                    push(&mut out, &format!("ALERT {rule} w{window}"), "flight.alerts", *t_ns, 0)
                }
            }
        }
        for &(label, kind, start, end) in &self.marks {
            push(
                &mut out,
                &format!("{label} [{kind}]"),
                "flight.causal",
                start,
                end.saturating_sub(start),
            );
        }
        out.push(']');
        out
    }
}

/// Per-window egress-port accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortWindow {
    /// Queueing wait accumulated in the window, ns.
    pub wait_ns: u64,
    /// Packets transmitted in the window.
    pub pkts: u64,
    /// Bytes transmitted in the window.
    pub bytes: u64,
}

/// Pending dump state: armed, waiting for the post-roll to elapse.
#[derive(Debug, Clone)]
struct ArmedDump {
    reason: String,
    trigger_ns: u64,
    window: u64,
    dump_at_ns: u64,
}

/// The windowed time-series layer. Owned by the active `Telemetry`
/// collector when timelines are enabled; fed from the same
/// instrumentation points as the aggregate registries.
#[derive(Debug)]
pub struct Timeline {
    cfg: TimelineConfig,
    /// High-water mark of every timed record observed, ns.
    cursor_ns: u64,
    /// Per-key windowed sub-histograms (sparse; empty windows implied).
    hists: BTreeMap<&'static str, BTreeMap<u64, Histogram>>,
    /// Per-key per-window counter deltas.
    counters: BTreeMap<&'static str, BTreeMap<u64, u64>>,
    /// Per-port per-window accounting (keyed by interned port name).
    ports: BTreeMap<&'static str, BTreeMap<u64, PortWindow>>,
    /// Next window index awaiting SLO evaluation.
    eval_cursor: u64,
    /// Samples that landed in an already-evaluated window.
    late_samples: u64,
    /// (rule index, window) pairs that already fired — late samples
    /// re-evaluate their window, so each pair must alert at most once.
    alerted: BTreeSet<(usize, u64)>,
    alerts: Vec<SloAlert>,
    ring: VecDeque<FlightRec>,
    armed: Option<ArmedDump>,
    dumps: Vec<FlightDump>,
    finalized: bool,
}

impl Timeline {
    /// A fresh timeline under `cfg`.
    pub fn new(cfg: TimelineConfig) -> Timeline {
        assert!(cfg.window_ns > 0, "window width must be positive");
        Timeline {
            cfg,
            cursor_ns: 0,
            hists: BTreeMap::new(),
            counters: BTreeMap::new(),
            ports: BTreeMap::new(),
            eval_cursor: 0,
            late_samples: 0,
            alerted: BTreeSet::new(),
            alerts: Vec::new(),
            ring: VecDeque::new(),
            armed: None,
            dumps: Vec::new(),
            finalized: false,
        }
    }

    /// Window width in ns.
    pub fn window_ns(&self) -> u64 {
        self.cfg.window_ns
    }

    /// The configuration this timeline was built with (used to clone
    /// per-lane timelines in the sharded world).
    pub fn config(&self) -> TimelineConfig {
        self.cfg.clone()
    }

    /// Causal marks to copy into each flight-recorder dump.
    pub fn dump_marks_cap(&self) -> usize {
        self.cfg.dump_marks
    }

    /// The window index instant `t_ns` falls in (boundary instants start
    /// the next window: `t == k·W` lands in window `k`).
    pub fn window_of(&self, t_ns: u64) -> u64 {
        t_ns / self.cfg.window_ns
    }

    /// Current time cursor (high-water mark of observed instants), ns.
    pub fn cursor_ns(&self) -> u64 {
        self.cursor_ns
    }

    /// Number of windows covering `[0, cursor]`, empty windows included.
    pub fn num_windows(&self) -> u64 {
        self.window_of(self.cursor_ns) + 1
    }

    /// Add an SLO rule mid-run (monitors are hot-pluggable; the rule only
    /// sees windows evaluated after it was added).
    pub fn add_rule(&mut self, rule: SloRule) {
        self.cfg.slos.push(rule);
    }

    /// Advance the time cursor and evaluate any windows that closed. A
    /// window is evaluated once the cursor clears the *following* window
    /// (one window of slack for out-of-order instrumentation).
    pub fn observe(&mut self, t_ns: u64) {
        if t_ns > self.cursor_ns {
            self.cursor_ns = t_ns;
            let settled = self.window_of(self.cursor_ns).saturating_sub(1);
            while self.eval_cursor < settled {
                let w = self.eval_cursor;
                self.evaluate_window(w);
                self.eval_cursor += 1;
            }
        }
    }

    /// Record `v` into windowed histogram `key` at instant `t_ns`. A
    /// sample landing in an already-settled window (deliveries are timed
    /// analytically, so interleaved flows arrive out of order by more
    /// than the one-window slack under congestion) re-evaluates that
    /// window's rules — an alert always names the true breach window,
    /// however late its evidence arrived.
    pub fn hist_at(&mut self, key: &'static str, v: u64, t_ns: u64) {
        let w = t_ns / self.cfg.window_ns;
        let late = w < self.eval_cursor;
        if late {
            self.late_samples += 1;
        }
        self.hists.entry(key).or_default().entry(w).or_default().record(v);
        if late {
            self.evaluate_window(w);
        }
        self.observe(t_ns);
    }

    /// Add `n` to windowed counter `key` at instant `t_ns`.
    pub fn counter_at(&mut self, key: &'static str, n: u64, t_ns: u64) {
        let w = t_ns / self.cfg.window_ns;
        if w < self.eval_cursor {
            self.late_samples += 1;
        }
        *self.counters.entry(key).or_default().entry(w).or_default() += n;
        self.observe(t_ns);
    }

    /// Record one egress-port access at instant `t_ns`. Port grants are
    /// scheduled analytically at injection time, so `t_ns` routinely lies
    /// in the future — the access is attributed to its window but does
    /// NOT advance the cursor, else congested runs would settle (and
    /// SLO-evaluate) windows whose delivery samples are still in flight.
    pub fn port_at(&mut self, name: &'static str, t_ns: u64, wait_ns: u64, bytes: u64) {
        let w = t_ns / self.cfg.window_ns;
        let pw = self.ports.entry(name).or_default().entry(w).or_default();
        pw.wait_ns += wait_ns;
        pw.pkts += 1;
        pw.bytes += bytes;
    }

    /// Record a delivered flow on the ring (and the `parcel.latency_ns`
    /// windowed histogram, keyed by delivery instant).
    pub fn flow_delivered(
        &mut self,
        id: u64,
        src: usize,
        dst: usize,
        put_ns: u64,
        deliver_ns: u64,
    ) {
        self.hist_at("parcel.latency_ns", deliver_ns.saturating_sub(put_ns), deliver_ns);
        self.push_rec(FlightRec::Flow { id, src, dst, put_ns, deliver_ns });
    }

    /// Record a contention-probe event on the ring.
    pub fn probe_event(
        &mut self,
        name: &'static str,
        kind: &'static str,
        t_ns: u64,
        wait_ns: u64,
        service_ns: u64,
    ) {
        self.push_rec(FlightRec::Probe { name, kind, t_ns, wait_ns, service_ns });
        // Observe the probe's *start* instant only: the wait/service span
        // extends into the future, and advancing the cursor past `t_ns`
        // would settle windows whose samples have not arrived yet.
        self.observe(t_ns);
    }

    /// Record an injected fault at `t_ns` (pass the cursor when the fault
    /// site has no virtual clock in hand) and arm the flight recorder.
    pub fn fault_event(&mut self, label: &'static str, t_ns: u64) {
        self.push_rec(FlightRec::Fault { label, t_ns });
        self.observe(t_ns);
        self.arm(format!("fault:{label}"), t_ns);
    }

    fn push_rec(&mut self, rec: FlightRec) {
        self.ring.push_back(rec);
        while self.ring.len() > self.cfg.recorder_cap {
            self.ring.pop_front();
        }
    }

    /// Evaluate the SLO rules over one closed window.
    fn evaluate_window(&mut self, w: u64) {
        if self.cfg.slos.is_empty() {
            return;
        }
        let end_ns = (w + 1) * self.cfg.window_ns;
        let mut fired: Vec<(usize, SloAlert)> = Vec::new();
        for (i, rule) in self.cfg.slos.iter().enumerate() {
            if self.alerted.contains(&(i, w)) {
                continue;
            }
            let Some(h) = self.hists.get(rule.hist.as_str()).and_then(|ws| ws.get(&w)) else {
                continue;
            };
            let total = h.count();
            if total < rule.min_samples.max(1) {
                continue;
            }
            // Bad fraction via the histogram's own buckets: count samples
            // strictly above the objective. Quantile inversion would lose
            // the sub-bucket resolution; a direct scan keeps it exact at
            // bucket granularity.
            let bad = total - h.count_at_most(rule.objective_ns);
            let burn = (bad as f64 / total as f64) / rule.budget();
            if burn >= rule.burn_threshold {
                fired.push((
                    i,
                    SloAlert { rule: rule.name.clone(), window: w, end_ns, burn, bad, total },
                ));
            }
        }
        for (i, a) in fired {
            self.alerted.insert((i, w));
            self.push_rec(FlightRec::Alert {
                rule: a.rule.clone(),
                window: a.window,
                t_ns: a.end_ns,
            });
            self.arm(format!("slo:{}", a.rule), a.end_ns);
            self.alerts.push(a);
        }
    }

    /// Arm the recorder: first trigger wins until its dump is taken.
    fn arm(&mut self, reason: String, t_ns: u64) {
        if self.armed.is_none() && self.dumps.len() < self.cfg.max_dumps {
            self.armed = Some(ArmedDump {
                reason,
                trigger_ns: t_ns,
                window: self.window_of(t_ns),
                dump_at_ns: t_ns + self.cfg.post_roll_windows * self.cfg.window_ns,
            });
        }
    }

    /// Whether an armed dump's post-roll has elapsed.
    pub fn dump_due(&self) -> bool {
        self.armed.as_ref().is_some_and(|a| self.cursor_ns >= a.dump_at_ns)
    }

    /// Snapshot the ring into a dump (the caller supplies the causal-mark
    /// tail — the provenance log lives outside the timeline).
    pub fn take_dump(&mut self, marks: Vec<DumpMark>) {
        let Some(armed) = self.armed.take() else { return };
        self.dumps.push(FlightDump {
            reason: armed.reason,
            trigger_ns: armed.trigger_ns,
            window: armed.window,
            taken_ns: self.cursor_ns,
            records: self.ring.iter().cloned().collect(),
            marks,
        });
    }

    /// Fold another timeline's windowed data into this one — the
    /// sharded-world merge. Windowed histograms merge per window
    /// (preserving the merge==total invariant against the merged
    /// aggregate registry), counter deltas and port windows sum, the
    /// cursor takes the maximum, late samples add, per-lane alerts and
    /// dumps concatenate (re-sorted by window at finalize; dumps capped),
    /// and the flight-recorder rings interleave by instant. Windows no
    /// lane evaluated yet are SLO-evaluated over the *merged* series at
    /// finalize; windows a lane already settled keep that lane's alerts.
    pub fn absorb(&mut self, other: Timeline) {
        self.cursor_ns = self.cursor_ns.max(other.cursor_ns);
        for (k, ws) in other.hists {
            let dst = self.hists.entry(k).or_default();
            for (w, h) in ws {
                dst.entry(w).or_default().merge(&h);
            }
        }
        for (k, ws) in other.counters {
            let dst = self.counters.entry(k).or_default();
            for (w, n) in ws {
                *dst.entry(w).or_default() += n;
            }
        }
        for (k, ws) in other.ports {
            let dst = self.ports.entry(k).or_default();
            for (w, p) in ws {
                let slot = dst.entry(w).or_default();
                slot.wait_ns += p.wait_ns;
                slot.pkts += p.pkts;
                slot.bytes += p.bytes;
            }
        }
        self.eval_cursor = self.eval_cursor.max(other.eval_cursor);
        self.late_samples += other.late_samples;
        self.alerted.extend(other.alerted);
        self.alerts.extend(other.alerts);
        for d in other.dumps {
            if self.dumps.len() < self.cfg.max_dumps {
                self.dumps.push(d);
            }
        }
        if self.armed.is_none() {
            self.armed = other.armed;
        }
        let mut ring: Vec<FlightRec> = self.ring.drain(..).chain(other.ring).collect();
        ring.sort_by_key(|r| r.t_ns());
        self.ring = ring.into();
        while self.ring.len() > self.cfg.recorder_cap {
            self.ring.pop_front();
        }
    }

    /// Close out the run: evaluate every remaining window. An armed dump
    /// whose post-roll never elapsed is taken by the caller (which holds
    /// the causal log) via [`Timeline::dump_due`]/[`Timeline::take_dump`]
    /// — `finalize` forces `dump_due` to report true.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        let last = self.window_of(self.cursor_ns);
        while self.eval_cursor <= last {
            let w = self.eval_cursor;
            self.evaluate_window(w);
            self.eval_cursor += 1;
        }
        // Late samples re-evaluate settled windows, so alerts can be
        // pushed out of window order; reporting order is by window.
        self.alerts.sort_by(|a, b| (a.window, &a.rule).cmp(&(b.window, &b.rule)));
        if let Some(a) = &mut self.armed {
            a.dump_at_ns = a.dump_at_ns.min(self.cursor_ns);
        }
        self.finalized = true;
    }

    /// Whether [`Timeline::finalize`] ran.
    pub fn finalized(&self) -> bool {
        self.finalized
    }

    /// The deterministic alert list — evaluation order while the run is
    /// live, window order once finalized.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Flight-recorder dumps taken so far.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Samples that landed in already-evaluated windows.
    pub fn late_samples(&self) -> u64 {
        self.late_samples
    }

    /// The sub-histogram of `key` in window `w`, if any sample landed.
    pub fn hist_window(&self, key: &str, w: u64) -> Option<&Histogram> {
        self.hists.get(key).and_then(|ws| ws.get(&w))
    }

    /// All non-empty windows of `key`, keyed by window index.
    pub fn hist_windows(&self, key: &str) -> Option<&BTreeMap<u64, Histogram>> {
        self.hists.get(key)
    }

    /// Merge of all per-window sub-histograms of `key` — by the window
    /// partition invariant, bucket-identical to the run-total histogram.
    pub fn merged_hist(&self, key: &str) -> Option<Histogram> {
        let ws = self.hists.get(key)?;
        let mut out = Histogram::new();
        for h in ws.values() {
            out.merge(h);
        }
        Some(out)
    }

    /// Windowed-histogram keys in order.
    pub fn hist_keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.hists.keys().copied()
    }

    /// Counter keys that took at least one delta, in order.
    pub fn counter_keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.counters.keys().copied()
    }

    /// Per-window deltas of counter `key` (sparse).
    pub fn counter_windows(&self, key: &str) -> Option<&BTreeMap<u64, u64>> {
        self.counters.get(key)
    }

    /// Sum of all per-window deltas of counter `key`.
    pub fn counter_total(&self, key: &str) -> u64 {
        self.counters.get(key).map(|ws| ws.values().sum()).unwrap_or(0)
    }

    /// Per-window accounting of port `name` (sparse).
    pub fn port_windows(&self, name: &str) -> Option<&BTreeMap<u64, PortWindow>> {
        self.ports.get(name)
    }

    /// Port names that carried traffic, in order.
    pub fn port_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.ports.keys().copied()
    }

    /// Sum of per-window wait of port `name`, ns.
    pub fn port_total_wait(&self, name: &str) -> u64 {
        self.ports.get(name).map(|ws| ws.values().map(|p| p.wait_ns).sum()).unwrap_or(0)
    }

    /// Counter-track series for the Perfetto export: per-window rates for
    /// every windowed counter (`tl.<key>.per_window`), per-window p99 for
    /// every windowed histogram (`tl.<key>.p99_us`), per-window wait for
    /// every port (`tl.<port>.wait_us`), and the burn rate of every SLO
    /// rule (`slo.<rule>.burn`). Samples sit at window start instants.
    pub fn counter_tracks(&self) -> Vec<(String, Vec<(u64, f64)>)> {
        let w_ns = self.cfg.window_ns;
        let nwin = self.num_windows();
        let mut out = Vec::new();
        for (key, ws) in &self.counters {
            let series = (0..nwin).map(|w| (w * w_ns, *ws.get(&w).unwrap_or(&0) as f64)).collect();
            out.push((format!("tl.{key}.per_window"), series));
        }
        for (key, ws) in &self.hists {
            let series = (0..nwin)
                .map(|w| (w * w_ns, ws.get(&w).map(|h| h.p99() as f64 / 1e3).unwrap_or(0.0)))
                .collect();
            out.push((format!("tl.{key}.p99_us"), series));
        }
        for (name, ws) in &self.ports {
            let series = (0..nwin)
                .map(|w| (w * w_ns, ws.get(&w).map(|p| p.wait_ns as f64 / 1e3).unwrap_or(0.0)))
                .collect();
            out.push((format!("tl.{name}.wait_us"), series));
        }
        for rule in &self.cfg.slos {
            let Some(ws) = self.hists.get(rule.hist.as_str()) else { continue };
            let series = (0..nwin)
                .map(|w| {
                    let burn = ws
                        .get(&w)
                        .filter(|h| h.count() >= rule.min_samples.max(1))
                        .map(|h| {
                            let bad = h.count() - h.count_at_most(rule.objective_ns);
                            (bad as f64 / h.count() as f64) / rule.budget()
                        })
                        .unwrap_or(0.0);
                    (w * w_ns, burn)
                })
                .collect();
            out.push((format!("slo.{}.burn", rule.name), series));
        }
        out
    }

    /// The machine-readable timeline document (see `trace_check
    /// --require-timeline` for the invariants it carries): gap-free
    /// window array (empty windows explicit), per-window counters /
    /// histogram summaries / port windows / optional state occupancy and
    /// critical-path slices, run totals from the aggregate registry for
    /// the merge==total cross-check, alerts, and dump manifests.
    pub fn to_json(
        &self,
        config: &str,
        totals: &Metrics,
        occupancy: Option<&WindowOccupancy>,
        crit: Option<&[BTreeMap<String, u64>]>,
    ) -> String {
        let w_ns = self.cfg.window_ns;
        let nwin = self.num_windows();
        let mut windows = Vec::with_capacity(nwin as usize);
        for w in 0..nwin {
            let mut fields =
                format!("{{\"index\":{w},\"start_ns\":{},\"end_ns\":{}", w * w_ns, (w + 1) * w_ns);
            let counters: Vec<String> = self
                .counters
                .iter()
                .filter_map(|(k, ws)| ws.get(&w).map(|n| format!("\"{}\":{n}", escape_json(k))))
                .collect();
            write!(fields, ",\"counters\":{{{}}}", counters.join(",")).expect("write");
            let hists: Vec<String> = self
                .hists
                .iter()
                .filter_map(|(k, ws)| {
                    ws.get(&w).map(|h| format!("\"{}\":{}", escape_json(k), hist_summary_json(h)))
                })
                .collect();
            write!(fields, ",\"hists\":{{{}}}", hists.join(",")).expect("write");
            let ports: Vec<String> = self
                .ports
                .iter()
                .filter_map(|(k, ws)| {
                    ws.get(&w).map(|p| {
                        format!(
                            "\"{}\":{{\"wait_ns\":{},\"pkts\":{},\"bytes\":{}}}",
                            escape_json(k),
                            p.wait_ns,
                            p.pkts,
                            p.bytes
                        )
                    })
                })
                .collect();
            if !ports.is_empty() {
                write!(fields, ",\"ports\":{{{}}}", ports.join(",")).expect("write");
            }
            if let Some(occ) = occupancy {
                if let Some(states) = occ.per_window.get(w as usize) {
                    let body: Vec<String> = STATES
                        .iter()
                        .zip(states.iter())
                        .map(|(s, ns)| format!("\"{}\":{ns}", s.label()))
                        .collect();
                    write!(fields, ",\"occupancy\":{{{}}}", body.join(",")).expect("write");
                }
            }
            if let Some(crit) = crit {
                if let Some(comps) = crit.get(w as usize) {
                    if !comps.is_empty() {
                        let body: Vec<String> = comps
                            .iter()
                            .map(|(c, ns)| format!("\"{}\":{ns}", escape_json(c)))
                            .collect();
                        write!(fields, ",\"critpath\":{{{}}}", body.join(",")).expect("write");
                    }
                }
            }
            fields.push('}');
            windows.push(fields);
        }

        // Run totals for the merge==total cross-check: only keys the
        // timeline saw (the aggregate registry may hold untimed extras).
        let tot_counters: Vec<String> = self
            .counters
            .keys()
            .map(|k| format!("\"{}\":{}", escape_json(k), totals.counter(k)))
            .collect();
        let tot_hists: Vec<String> = self
            .hists
            .keys()
            .filter_map(|k| {
                totals.hist(k).map(|h| format!("\"{}\":{}", escape_json(k), hist_summary_json(h)))
            })
            .collect();
        let alerts: Vec<String> = self
            .alerts
            .iter()
            .map(|a| {
                format!(
                    "{{\"rule\":\"{}\",\"window\":{},\"end_ns\":{},\"burn\":{:.4},\
                     \"bad\":{},\"total\":{}}}",
                    escape_json(&a.rule),
                    a.window,
                    a.end_ns,
                    a.burn,
                    a.bad,
                    a.total
                )
            })
            .collect();
        let dumps: Vec<String> = self
            .dumps
            .iter()
            .map(|d| {
                format!(
                    "{{\"reason\":\"{}\",\"trigger_ns\":{},\"window\":{},\"taken_ns\":{},\
                     \"records\":{},\"marks\":{}}}",
                    escape_json(&d.reason),
                    d.trigger_ns,
                    d.window,
                    d.taken_ns,
                    d.records.len(),
                    d.marks.len()
                )
            })
            .collect();
        let occupancy_totals = occupancy
            .map(|occ| {
                let body: Vec<String> = STATES
                    .iter()
                    .zip(occ.totals.iter())
                    .map(|(s, ns)| format!("\"{}\":{ns}", s.label()))
                    .collect();
                format!(",\"occupancy_totals\":{{{}}}", body.join(","))
            })
            .unwrap_or_default();
        format!(
            "{{\"timeline\":{{\"config\":\"{}\",\"window_ns\":{w_ns},\"horizon_ns\":{},\
             \"late_samples\":{},\"windows\":[{}],\
             \"totals\":{{\"counters\":{{{}}},\"hists\":{{{}}}}}{}\
             ,\"alerts\":[{}],\"dumps\":[{}]}}}}",
            escape_json(config),
            self.cursor_ns,
            self.late_samples,
            windows.join(","),
            tot_counters.join(","),
            tot_hists.join(","),
            occupancy_totals,
            alerts.join(","),
            dumps.join(",")
        )
    }

    /// OpenMetrics-style text exposition of the windowed series: every
    /// counter as `<name>_total{window="w"}`, every histogram as a
    /// summary (quantile gauges + `_count`/`_sum`), port wait as a
    /// counter, alerts as an info-style gauge. Names are sanitized to the
    /// OpenMetrics charset; virtual-time window labels replace wall-clock
    /// scrape timestamps.
    pub fn to_openmetrics(&self, config: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Timeline exposition for {config}");
        let _ = writeln!(out, "# TYPE tl_window_ns gauge\ntl_window_ns {}", self.cfg.window_ns);
        let _ = writeln!(out, "# TYPE tl_windows gauge\ntl_windows {}", self.num_windows());
        for (key, ws) in &self.counters {
            let name = sanitize_metric(key);
            let _ = writeln!(out, "# TYPE {name} counter");
            for (w, n) in ws {
                let _ = writeln!(out, "{name}_total{{window=\"{w}\"}} {n}");
            }
        }
        for (key, ws) in &self.hists {
            let name = sanitize_metric(key);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (w, h) in ws {
                for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99()), (0.999, h.p999())] {
                    let _ = writeln!(out, "{name}{{window=\"{w}\",quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{name}_count{{window=\"{w}\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum{{window=\"{w}\"}} {}", h.sum());
            }
        }
        for (port, ws) in &self.ports {
            let name = format!("{}_wait_ns", sanitize_metric(port));
            let _ = writeln!(out, "# TYPE {name} counter");
            for (w, p) in ws {
                let _ = writeln!(out, "{name}_total{{window=\"{w}\"}} {}", p.wait_ns);
            }
        }
        if !self.alerts.is_empty() {
            let _ = writeln!(out, "# TYPE slo_alert gauge");
            for a in &self.alerts {
                let _ = writeln!(
                    out,
                    "slo_alert{{rule=\"{}\",window=\"{}\"}} {:.4}",
                    a.rule, a.window, a.burn
                );
            }
        }
        out
    }
}

/// Per-window histogram summary (counts + bounds + quantiles).
fn hist_summary_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\
         \"p99\":{},\"p999\":{}}}",
        h.count(),
        h.sum(),
        if h.count() == 0 { 0 } else { h.min() },
        h.max(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999()
    )
}

/// OpenMetrics name charset: `[a-zA-Z0-9_]`, dots and dashes folded to
/// underscores.
fn sanitize_metric(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Per-window core-state occupancy, aggregated over all cores.
#[derive(Debug, Clone, Default)]
pub struct WindowOccupancy {
    /// `per_window[w][state]` = ns spent in `STATES[state]` across all
    /// cores during window `w`.
    pub per_window: Vec<[u64; N_STATES]>,
    /// Run totals per state (sum over windows — equals the profiler's own
    /// state totals by the exact-partition invariant).
    pub totals: [u64; N_STATES],
}

/// Slice finalized core accounts into per-window state occupancy. Each
/// account's segment timeline partitions `[0, cursor]` exactly, and this
/// slicing preserves that: summing a state over all windows reproduces
/// the account's `state_ns` totals (asserted in the timeline tests).
pub fn slice_occupancy<'a>(
    accounts: impl IntoIterator<Item = &'a CoreAccount>,
    window_ns: u64,
    nwin: u64,
) -> WindowOccupancy {
    let mut occ =
        WindowOccupancy { per_window: vec![[0; N_STATES]; nwin as usize], totals: [0; N_STATES] };
    for acc in accounts {
        for (start, end, state) in acc.segments() {
            spread(&mut occ, start, end, state, window_ns);
        }
    }
    occ
}

fn spread(occ: &mut WindowOccupancy, start: u64, end: u64, state: CoreState, window_ns: u64) {
    let si = state as usize;
    let mut t = start;
    while t < end {
        let w = t / window_ns;
        let wend = (w + 1) * window_ns;
        let chunk = end.min(wend) - t;
        if let Some(row) = occ.per_window.get_mut(w as usize) {
            row[si] += chunk;
        } else if let Some(last) = occ.per_window.last_mut() {
            // Segment tails past the timeline horizon fold into the last
            // window so the partition stays exact.
            last[si] += chunk;
        }
        occ.totals[si] += chunk;
        t = end.min(wend);
    }
}

/// Slice a critical path into per-window per-component shares: "what
/// dominated *this* window". Summing a component over all windows equals
/// its run-total on-path time exactly (segments partition `[0, total]`).
pub fn critpath_slices(cp: &CritPath, window_ns: u64, nwin: u64) -> Vec<BTreeMap<String, u64>> {
    let mut out: Vec<BTreeMap<String, u64>> = vec![BTreeMap::new(); nwin as usize];
    for seg in &cp.segments {
        let mut t = seg.start;
        while t < seg.end {
            let w = t / window_ns;
            let wend = (w + 1) * window_ns;
            let chunk = seg.end.min(wend) - t;
            let idx = (w as usize).min(out.len().saturating_sub(1));
            if let Some(row) = out.get_mut(idx) {
                *row.entry(seg.component.clone()).or_insert(0) += chunk;
            }
            t = seg.end.min(wend);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(w: u64) -> TimelineConfig {
        TimelineConfig { window_ns: w, ..TimelineConfig::default() }
    }

    #[test]
    fn windows_partition_and_merge_exactly() {
        let mut tl = Timeline::new(cfg(100));
        let mut total = Histogram::new();
        for (t, v) in [(5u64, 10u64), (99, 20), (100, 30), (250, 40), (995, 50)] {
            tl.hist_at("lat", v, t);
            total.record(v);
        }
        // Boundary instant 100 lands in window 1, not window 0.
        assert_eq!(tl.hist_window("lat", 0).unwrap().count(), 2);
        assert_eq!(tl.hist_window("lat", 1).unwrap().count(), 1);
        assert!(tl.hist_window("lat", 3).is_none(), "empty windows stay sparse");
        assert_eq!(tl.num_windows(), 10, "coverage spans [0, cursor]");
        assert_eq!(tl.merged_hist("lat").unwrap(), total, "merge == total, bucket-identical");
    }

    #[test]
    fn counter_windows_sum_to_total() {
        let mut tl = Timeline::new(cfg(1000));
        tl.counter_at("msgs", 2, 10);
        tl.counter_at("msgs", 3, 999);
        tl.counter_at("msgs", 5, 1000);
        tl.counter_at("msgs", 7, 5500);
        assert_eq!(tl.counter_windows("msgs").unwrap().get(&0), Some(&5));
        assert_eq!(tl.counter_windows("msgs").unwrap().get(&1), Some(&5));
        assert_eq!(tl.counter_total("msgs"), 17);
    }

    #[test]
    fn slo_alert_fires_deterministically_and_arms_recorder() {
        let mut tl = Timeline::new(TimelineConfig {
            window_ns: 100,
            slos: vec![SloRule {
                name: "lat-p99".into(),
                hist: "lat".into(),
                objective_ns: 50,
                target: 0.99,
                burn_threshold: 1.0,
                min_samples: 1,
            }],
            post_roll_windows: 2,
            ..TimelineConfig::default()
        });
        // Window 0: all good. Window 1: one sample blows the objective.
        tl.hist_at("lat", 10, 5);
        tl.hist_at("lat", 10, 50);
        tl.hist_at("lat", 500, 150);
        assert!(tl.alerts().is_empty(), "window 1 not settled yet");
        tl.observe(399); // settles window 1 (cursor clears window 2)
        assert_eq!(tl.alerts().len(), 1);
        let a = &tl.alerts()[0];
        assert_eq!((a.window, a.bad, a.total), (1, 1, 1));
        assert!(a.burn >= 1.0);
        assert!(!tl.dump_due(), "post-roll not elapsed");
        tl.observe(450);
        assert!(tl.dump_due(), "dump due after post-roll");
        tl.take_dump(vec![("net.wire", "wire", 0, 10)]);
        assert_eq!(tl.dumps().len(), 1);
        let d = &tl.dumps()[0];
        assert!(d.reason.starts_with("slo:"));
        assert!(d.records.iter().any(|r| matches!(r, FlightRec::Alert { .. })));
        let json = d.to_chrome_json();
        assert!(json.contains("TRIGGER slo:lat-p99"), "json: {json}");
        assert!(json.contains("flight.causal"));
    }

    #[test]
    fn fault_event_arms_and_finalize_forces_dump() {
        let mut tl = Timeline::new(cfg(100));
        tl.hist_at("lat", 10, 50);
        tl.fault_event("link_down", 120);
        assert!(!tl.dump_due());
        tl.finalize();
        assert!(tl.dump_due(), "finalize clamps the post-roll to the horizon");
        tl.take_dump(Vec::new());
        assert_eq!(tl.dumps()[0].reason, "fault:link_down");
        assert!(tl.dumps()[0].records.iter().any(|r| matches!(r, FlightRec::Fault { .. })));
    }

    #[test]
    fn ring_is_bounded() {
        let mut tl = Timeline::new(TimelineConfig {
            window_ns: 100,
            recorder_cap: 4,
            ..TimelineConfig::default()
        });
        for i in 0..10u64 {
            tl.flow_delivered(i, 0, 1, i * 10, i * 10 + 5);
        }
        tl.fault_event("x", 200);
        tl.finalize();
        tl.take_dump(Vec::new());
        assert!(tl.dumps()[0].records.len() <= 4);
        // Newest records survive.
        assert!(tl.dumps()[0].records.iter().any(|r| r.t_ns() >= 95));
    }

    #[test]
    fn json_doc_is_valid_and_gap_free() {
        let mut tl = Timeline::new(cfg(100));
        tl.hist_at("lat", 10, 50);
        tl.counter_at("msgs", 1, 50);
        tl.hist_at("lat", 20, 450);
        tl.port_at("fab.e0.p1", 120, 30, 64);
        tl.finalize();
        let mut m = Metrics::new();
        m.hist_record("lat", 10);
        m.hist_record("lat", 20);
        m.counter_add("msgs", 1);
        let doc = tl.to_json("test", &m, None, None);
        let v = crate::json::parse(&doc).expect("valid json");
        let t = v.get("timeline").unwrap();
        let windows = t.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 5, "gap-free coverage includes empty windows");
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.get("index").unwrap().as_f64(), Some(i as f64));
        }
        assert!(doc.contains("\"fab.e0.p1\""));
        let om = tl.to_openmetrics("test");
        assert!(om.contains("lat_count{window=\"0\"} 1"), "exposition: {om}");
        assert!(om.contains("fab_e0_p1_wait_ns_total{window=\"1\"} 30"));
    }

    #[test]
    fn occupancy_slicing_preserves_partition() {
        use crate::profile::CoreProfile;
        let mut p = CoreProfile::new();
        p.record_base(0, 0, CoreState::Working, "task", 0, 250);
        p.record_base(0, 0, CoreState::Progress, "poll", 250, 420);
        let snap = p.snapshot();
        let occ = slice_occupancy(snap.values(), 100, 5);
        let total: u64 = occ.totals.iter().sum();
        assert_eq!(total, 420, "slices partition the accounted time");
        assert_eq!(occ.per_window[0][CoreState::Working as usize], 100);
        assert_eq!(occ.per_window[2][CoreState::Working as usize], 50);
        assert_eq!(occ.per_window[2][CoreState::Progress as usize], 50);
        let per_window_sum: u64 = occ.per_window.iter().flat_map(|w| w.iter()).sum();
        assert_eq!(per_window_sum, total);
    }
}
