//! Critical-path extraction from the causal provenance log.
//!
//! The causal log (see [`simcore::causal`]) gives every executed event a
//! parent — the event that scheduled it — so the *makespan critical path*
//! is simply the parent chain of the last executed event: by induction,
//! each event on the chain could not have fired earlier without its parent
//! firing earlier. Walking that chain backwards and carving each
//! inter-event interval with the time marks owned by the earlier event
//! (lock wait/hold, resource service, wire transit) partitions the entire
//! run duration into labeled components with **no gaps and no double
//! counting**: the sum of per-component on-path time equals the makespan
//! exactly. Unmarked residue is attributed to `cpu` (plain event work) and
//! the span before the first on-path event to `startup`.
//!
//! Per-parcel critical paths come from the flow tracer instead: each
//! delivered parcel's stage timestamps telescope into a component
//! partition of its end-to-end latency.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use simcore::causal::{CausalLog, MarkKind, MarkRec};
use simcore::escape_json;

use crate::flow::{stage, FlowRec, UNSET};

/// One labeled interval on a critical path. Segments are contiguous:
/// each starts where the previous one ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Component label (`"ucp_progress"`, `"ucp_progress.wait"`,
    /// `"net.wire"`, `"cpu"`, `"startup"`, ...).
    pub component: String,
    /// Interval start, ns.
    pub start: u64,
    /// Interval end, ns.
    pub end: u64,
}

impl PathSegment {
    /// Interval length, ns.
    pub fn len_ns(&self) -> u64 {
        self.end - self.start
    }
}

/// Aggregated time one component spends on the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentShare {
    /// Component label.
    pub component: String,
    /// Total on-path time, ns.
    pub on_path_ns: u64,
}

/// The makespan critical path of one instrumented run.
#[derive(Debug, Clone)]
pub struct CritPath {
    /// Configuration name the run was made under (for reports).
    pub config: String,
    /// Makespan: virtual time of the last executed event, ns. The segment
    /// lengths sum to exactly this value.
    pub total_ns: u64,
    /// The path, as contiguous labeled intervals covering `[0, total_ns]`.
    pub segments: Vec<PathSegment>,
    /// Per-component on-path time, ranked descending (ties by name).
    pub components: Vec<ComponentShare>,
    /// Causal node ids on the path, root first.
    pub path_nodes: Vec<u64>,
    /// Sum of the bandwidth-independent (pure latency) portion of on-path
    /// wire segments — what a wire-latency what-if knob scales.
    pub wire_fixed_ns: u64,
    /// Number of events on the path.
    pub events_on_path: usize,
    /// Whether the causal log hit its memory guard (path may be partial).
    pub truncated: bool,
}

fn push_segment(segments: &mut Vec<PathSegment>, component: &str, start: u64, end: u64) {
    if end <= start {
        return;
    }
    // Coalesce with a contiguous predecessor of the same component.
    if let Some(last) = segments.last_mut() {
        if last.end == start && last.component == component {
            last.end = end;
            return;
        }
    }
    segments.push(PathSegment { component: component.to_string(), start, end });
}

/// Carve `[t_p, t_c]` using `marks` (owned by the earlier event), first
/// mark wins on overlap, residue attributed to `cpu`.
fn carve(
    segments: &mut Vec<PathSegment>,
    wire_fixed: &mut u64,
    marks: &[&MarkRec],
    t_p: u64,
    t_c: u64,
) {
    if t_c <= t_p {
        return;
    }
    let mut ms: Vec<&MarkRec> =
        marks.iter().copied().filter(|m| m.end > t_p && m.start < t_c).collect();
    // Stable: equal starts keep emission order (e.g. a resource's wait
    // mark sorts before a later, wider serialize mark at the same start).
    ms.sort_by_key(|m| m.start);
    let mut cursor = t_p;
    for m in ms {
        let s = m.start.max(cursor);
        let e = m.end.min(t_c);
        if e <= s {
            continue;
        }
        push_segment(segments, "cpu", cursor, s);
        match m.kind {
            MarkKind::Wait => {
                push_segment(segments, &format!("{}.wait", m.label), s, e);
            }
            MarkKind::Wire => {
                push_segment(segments, m.label, s, e);
                *wire_fixed += m.fixed.min(e - s);
            }
            MarkKind::Hold | MarkKind::Work => {
                push_segment(segments, m.label, s, e);
            }
        }
        cursor = e;
    }
    push_segment(segments, "cpu", cursor, t_c);
}

impl CritPath {
    /// Extract the makespan critical path from `log`. An empty log yields
    /// a `CritPath` with `total_ns == 0`.
    pub fn from_log(config: &str, log: &CausalLog) -> CritPath {
        log.with_data(|base, nodes, marks| {
            let mut cp = CritPath {
                config: config.to_string(),
                total_ns: 0,
                segments: Vec::new(),
                components: Vec::new(),
                path_nodes: Vec::new(),
                wire_fixed_ns: 0,
                events_on_path: 0,
                truncated: log.truncated(),
            };
            if nodes.is_empty() {
                return cp;
            }
            let last_id = base + nodes.len() as u64 - 1;
            cp.total_ns = nodes[nodes.len() - 1].at;

            // Parent-chain walk; parents below `base` (recording started
            // mid-run) or non-decreasing ids (corruption guard) stop it.
            let mut path = vec![last_id];
            let mut cur = last_id;
            loop {
                let parent = nodes[(cur - base) as usize].parent;
                if parent < base || parent >= cur {
                    break;
                }
                path.push(parent);
                cur = parent;
            }
            path.reverse();
            cp.events_on_path = path.len();

            let on_path: HashSet<u64> = path.iter().copied().collect();
            let mut by_owner: HashMap<u64, Vec<&MarkRec>> = HashMap::new();
            for m in marks {
                if on_path.contains(&m.owner) {
                    by_owner.entry(m.owner).or_default().push(m);
                }
            }

            let t_root = nodes[(path[0] - base) as usize].at;
            push_segment(&mut cp.segments, "startup", 0, t_root);
            for w in path.windows(2) {
                let (p, c) = (w[0], w[1]);
                let t_p = nodes[(p - base) as usize].at;
                let t_c = nodes[(c - base) as usize].at;
                let empty = Vec::new();
                let owned = by_owner.get(&p).unwrap_or(&empty);
                carve(&mut cp.segments, &mut cp.wire_fixed_ns, owned, t_p, t_c);
            }
            cp.path_nodes = path;

            debug_assert_eq!(
                cp.segments.iter().map(PathSegment::len_ns).sum::<u64>(),
                cp.total_ns,
                "critical-path segments must partition the makespan",
            );

            let mut agg: HashMap<&str, u64> = HashMap::new();
            for s in &cp.segments {
                *agg.entry(s.component.as_str()).or_default() += s.len_ns();
            }
            let mut components: Vec<ComponentShare> = agg
                .into_iter()
                .map(|(c, ns)| ComponentShare { component: c.to_string(), on_path_ns: ns })
                .collect();
            components.sort_by(|a, b| {
                b.on_path_ns.cmp(&a.on_path_ns).then_with(|| a.component.cmp(&b.component))
            });
            cp.components = components;
            cp
        })
    }

    /// On-path time of `component`, ns (0 when absent).
    pub fn component_ns(&self, component: &str) -> u64 {
        self.components.iter().find(|c| c.component == component).map(|c| c.on_path_ns).unwrap_or(0)
    }

    /// Sum of on-path time over every component whose label satisfies
    /// `pred` — e.g. all `.wait` components, or one lock plus its waits.
    pub fn component_ns_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.components.iter().filter(|c| pred(&c.component)).map(|c| c.on_path_ns).sum()
    }

    /// Ranked human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path [{}]: {:.3} us over {} events ({} segments{})",
            self.config,
            self.total_ns as f64 / 1e3,
            self.events_on_path,
            self.segments.len(),
            if self.truncated { ", TRUNCATED" } else { "" },
        );
        let _ = writeln!(out, "  {:<28} {:>12} {:>8}", "component", "on-path us", "share");
        for c in &self.components {
            let share =
                if self.total_ns == 0 { 0.0 } else { c.on_path_ns as f64 / self.total_ns as f64 };
            let _ = writeln!(
                out,
                "  {:<28} {:>12.3} {:>7.1}%",
                c.component,
                c.on_path_ns as f64 / 1e3,
                share * 100.0,
            );
        }
        out
    }

    /// Machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"config\":\"{}\",\"total_ns\":{},\"events_on_path\":{},\
             \"segments\":{},\"wire_fixed_ns\":{},\"truncated\":{},\"components\":[",
            escape_json(&self.config),
            self.total_ns,
            self.events_on_path,
            self.segments.len(),
            self.wire_fixed_ns,
            self.truncated,
        );
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"component\":\"{}\",\"on_path_ns\":{}}}",
                escape_json(&c.component),
                c.on_path_ns,
            );
        }
        out.push_str("]}");
        out
    }
}

/// One delivered parcel's critical path: its stage timeline telescoped
/// into a partition of its end-to-end latency.
#[derive(Debug, Clone)]
pub struct ParcelPath {
    /// Index of the flow in the tracer's record order.
    pub flow: usize,
    /// Source locality.
    pub src: usize,
    /// Destination locality.
    pub dst: usize,
    /// End-to-end latency (deliver − put), ns. Segment lengths sum to
    /// exactly this value.
    pub total_ns: u64,
    /// Contiguous per-stage intervals covering `[put, deliver]`, each
    /// named after the stage it *enters* (`"queue"`, `"serialize"`,
    /// `"inject"`, `"wire"`, `"match"`, `"deliver"`).
    pub segments: Vec<PathSegment>,
}

/// Build per-parcel critical paths for every delivered flow.
///
/// Stage timestamps are clipped to `[put, deliver]` and made monotone, so
/// the telescoped segments always partition the end-to-end latency even
/// if a stage was stamped out of order.
pub fn parcel_paths(flows: &[FlowRec]) -> Vec<ParcelPath> {
    let mut out = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        let (Some(put), Some(deliver)) = (f.at(stage::PUT), f.at(stage::DELIVER)) else {
            continue;
        };
        let mut segments = Vec::new();
        let mut prev = put;
        for s in (stage::PUT + 1)..=stage::DELIVER {
            if f.stages[s] == UNSET && s != stage::DELIVER {
                continue;
            }
            let t = f.stages[s].clamp(put, deliver).max(prev);
            push_segment(&mut segments, crate::flow::STAGE_NAMES[s], prev, t);
            prev = t;
        }
        out.push(ParcelPath { flow: i, src: f.src, dst: f.dst, total_ns: deliver - put, segments });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::causal;
    use simcore::SimTime;

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    /// Build a small synthetic run:
    ///   node 1 @100 (root, startup before it)
    ///   node 2 @300, parent 1; node 1 owns lock wait [120,180] + hold
    ///   [180,260] in the gap
    ///   node 3 @1000, parent 2; node 2 owns a wire mark [400,900] fixed 450
    ///   node 4 @1200, parent 1 (off-path side branch)
    fn synthetic_log() -> std::rc::Rc<CausalLog> {
        let log = CausalLog::new();
        causal::install(log.clone());
        causal::on_execute(1, 100, 0);
        causal::mark("ucp", MarkKind::Wait, ns(120), ns(180), 0);
        causal::mark("ucp", MarkKind::Hold, ns(180), ns(260), 0);
        causal::on_execute(2, 300, 1);
        causal::mark("net.wire", MarkKind::Wire, ns(400), ns(900), 450);
        causal::on_execute(3, 1000, 2);
        causal::end_execute();
        causal::uninstall();
        log
    }

    #[test]
    fn segments_partition_makespan_exactly() {
        let cp = CritPath::from_log("test", &synthetic_log());
        assert_eq!(cp.total_ns, 1000);
        assert_eq!(cp.path_nodes, vec![1, 2, 3]);
        let sum: u64 = cp.segments.iter().map(PathSegment::len_ns).sum();
        assert_eq!(sum, cp.total_ns);
        // Contiguity from 0 to the makespan.
        let mut cursor = 0;
        for s in &cp.segments {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, 1000);
        // Component attribution: startup 100, ucp.wait 60, ucp 80,
        // net.wire 500, cpu = rest (40 + 100 + 120? -> 1000-740=260).
        assert_eq!(cp.component_ns("startup"), 100);
        assert_eq!(cp.component_ns("ucp.wait"), 60);
        assert_eq!(cp.component_ns("ucp"), 80);
        assert_eq!(cp.component_ns("net.wire"), 500);
        assert_eq!(cp.component_ns("cpu"), 260);
        assert_eq!(cp.wire_fixed_ns, 450);
        // Ranked descending.
        assert_eq!(cp.components[0].component, "net.wire");
    }

    #[test]
    fn overlapping_marks_first_wins() {
        let log = CausalLog::new();
        causal::install(log.clone());
        causal::on_execute(1, 0, 0);
        // Wait emitted first at the same start, then a wider work mark:
        // the wait keeps its prefix, the work claims only the rest.
        causal::mark("q", MarkKind::Wait, ns(0), ns(40), 0);
        causal::mark("serialize", MarkKind::Work, ns(0), ns(100), 0);
        causal::on_execute(2, 100, 1);
        causal::end_execute();
        causal::uninstall();
        let cp = CritPath::from_log("t", &log);
        assert_eq!(cp.component_ns("q.wait"), 40);
        assert_eq!(cp.component_ns("serialize"), 60);
        assert_eq!(cp.total_ns, 100);
    }

    #[test]
    fn marks_are_clipped_to_the_edge_interval() {
        let log = CausalLog::new();
        causal::install(log.clone());
        causal::on_execute(1, 0, 0);
        // Hold extends past the child's start: only the on-path part counts.
        causal::mark("lock", MarkKind::Hold, ns(10), ns(500), 0);
        causal::on_execute(2, 50, 1);
        causal::end_execute();
        causal::uninstall();
        let cp = CritPath::from_log("t", &log);
        assert_eq!(cp.component_ns("lock"), 40);
        assert_eq!(cp.component_ns("cpu"), 10);
    }

    #[test]
    fn empty_log_is_zero_total() {
        let cp = CritPath::from_log("t", &CausalLog::new());
        assert_eq!(cp.total_ns, 0);
        assert!(cp.segments.is_empty());
    }

    #[test]
    fn to_json_is_valid_and_to_text_ranks() {
        let cp = CritPath::from_log("fig8", &synthetic_log());
        let parsed = crate::json::parse(&cp.to_json()).expect("valid json");
        assert_eq!(parsed.get("total_ns").unwrap().as_f64().unwrap() as u64, 1000);
        let text = cp.to_text();
        assert!(text.contains("net.wire"));
        assert!(text.contains("fig8"));
    }

    #[test]
    fn parcel_paths_telescope_exactly() {
        let mut tracer = crate::flow::FlowTracer::new();
        let id = tracer.begin(0, 1, 0, ns(100));
        tracer.mark(id, stage::SERIALIZE, ns(150));
        tracer.mark(id, stage::INJECT, ns(200));
        tracer.mark(id, stage::WIRE, ns(700));
        tracer.mark(id, stage::DELIVER, ns(900));
        // An undelivered flow is skipped.
        tracer.begin(0, 1, 0, ns(100));
        let paths = parcel_paths(tracer.flows());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.total_ns, 800);
        let sum: u64 = p.segments.iter().map(PathSegment::len_ns).sum();
        assert_eq!(sum, p.total_ns);
        let mut cursor = 100;
        for s in &p.segments {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, 900);
        let names: Vec<&str> = p.segments.iter().map(|s| s.component.as_str()).collect();
        assert_eq!(names, ["serialize", "inject", "wire", "deliver"]);
    }

    #[test]
    fn out_of_order_stage_timestamps_still_partition() {
        let mut tracer = crate::flow::FlowTracer::new();
        let id = tracer.begin(0, 1, 0, ns(100));
        tracer.mark(id, stage::SERIALIZE, ns(400));
        tracer.mark(id, stage::INJECT, ns(300)); // stamped before serialize
        tracer.mark(id, stage::DELIVER, ns(500));
        let p = &parcel_paths(tracer.flows())[0];
        let sum: u64 = p.segments.iter().map(PathSegment::len_ns).sum();
        assert_eq!(sum, p.total_ns);
    }
}
