//! Structural diff of two [`RunRecord`]s — the cross-run differential
//! attribution engine.
//!
//! The central object is the **critical-path delta table**: both records
//! carry an exact per-component partition of their end-to-end time, so
//! the per-component differences sum to the end-to-end delta as a
//! *structural identity* (mirroring the PR-4 partition invariant — no
//! gaps, no double counting, now across runs). A regression is
//! *localized* when the regression-direction movement concentrates on
//! named components (wire, locks, resources, serialize) rather than the
//! residual `cpu`/`startup` labels; [`RecordDiff::localization`]
//! quantifies that, and `perf_diff` treats an unexplained regression as
//! the loudest failure.
//!
//! Around the delta table the diff carries histogram shift detection at
//! **exact bucket granularity** (possible because records serialize full
//! bucket counts, not quantiles), counter/gauge deltas, per-core profile
//! state movement, per-resource wait deltas, window-count changes, and
//! new/vanished keys and resources. Deterministic simulation makes every
//! quantity here virtual-time exact: a diff of two identical runs is
//! empty, and `diff(A, A⊎B)` attributes exactly `B` (see
//! `tests/diff_props.rs`).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use simcore::escape_json;

use crate::profile::STATES;
use crate::record::RunRecord;

/// Components whose on-path time is residual attribution rather than a
/// named mechanism — a regression that moves *here* is unexplained.
pub const RESIDUAL_COMPONENTS: [&str; 2] = ["cpu", "startup"];

/// A `base -> head` pair of u64 quantities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Delta {
    /// Value in the base record.
    pub base: u64,
    /// Value in the head record.
    pub head: u64,
}

impl Delta {
    /// Signed head − base.
    pub fn delta(&self) -> i64 {
        self.head as i64 - self.base as i64
    }

    /// Relative change in percent (0 when the base is 0).
    pub fn pct(&self) -> f64 {
        if self.base == 0 {
            0.0
        } else {
            self.delta() as f64 * 100.0 / self.base as f64
        }
    }
}

/// One critical-path component's on-path time in both runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDelta {
    /// Component label.
    pub component: String,
    /// On-path ns in the base run (0 when absent).
    pub base_ns: u64,
    /// On-path ns in the head run (0 when absent).
    pub head_ns: u64,
}

impl ComponentDelta {
    /// Signed on-path movement.
    pub fn delta_ns(&self) -> i64 {
        self.head_ns as i64 - self.base_ns as i64
    }

    /// Whether this is residual (`cpu`/`startup`) attribution.
    pub fn residual(&self) -> bool {
        RESIDUAL_COMPONENTS.contains(&self.component.as_str())
    }
}

/// A changed counter (or any keyed u64); `None` marks a side where the
/// key does not exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyDelta {
    /// Counter key.
    pub key: String,
    /// Base value; `None` = key new in head.
    pub base: Option<u64>,
    /// Head value; `None` = key vanished.
    pub head: Option<u64>,
}

impl KeyDelta {
    /// Signed head − base, absent sides counting as 0.
    pub fn delta(&self) -> i64 {
        self.head.unwrap_or(0) as i64 - self.base.unwrap_or(0) as i64
    }
}

/// A changed gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeDelta {
    /// Gauge key.
    pub key: String,
    /// Base value; `None` = new in head.
    pub base: Option<i64>,
    /// Head value; `None` = vanished.
    pub head: Option<i64>,
}

/// One histogram's shift between the runs, at bucket granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDelta {
    /// Histogram key.
    pub key: String,
    /// Sample counts.
    pub count: Delta,
    /// Bucket-approximated medians.
    pub p50: Delta,
    /// Bucket-approximated 99th percentiles.
    pub p99: Delta,
    /// Mean shift, ns (head − base).
    pub mean_shift_ns: f64,
    /// Per-bucket count movement: `(bucket_index, bucket_upper_ns,
    /// head_count − base_count)`, non-zero entries only.
    pub bucket_deltas: Vec<(usize, u64, i64)>,
    /// Samples that moved buckets: `Σ max(0, Δ)` over buckets — a lower
    /// bound on how many samples shifted.
    pub moved: u64,
    /// Key exists only in head.
    pub appeared: bool,
    /// Key exists only in base.
    pub vanished: bool,
}

/// One resource's contention movement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceDelta {
    /// Resource name.
    pub name: String,
    /// Total wait ns.
    pub wait_ns: Delta,
    /// Events.
    pub events: Delta,
    /// Resource exists only in head.
    pub appeared: bool,
    /// Resource exists only in base.
    pub vanished: bool,
}

/// The structural diff of two run records.
#[derive(Debug, Clone, Default)]
pub struct RecordDiff {
    /// `scenario/config[+knobs]` of the base record.
    pub base_label: String,
    /// `scenario/config[+knobs]` of the head record.
    pub head_label: String,
    /// End-to-end virtual time.
    pub end_to_end: Delta,
    /// Events executed.
    pub events: Delta,
    /// Flows started.
    pub flows: Delta,
    /// Per-component critical-path movement, ranked by |delta| descending
    /// (ties by name). When [`RecordDiff::critpath_exact`] is set the
    /// deltas sum to exactly `end_to_end.delta()`.
    pub critpath: Vec<ComponentDelta>,
    /// Both records carried a critical-path partition.
    pub critpath_exact: bool,
    /// Changed counters only (including new/vanished keys).
    pub counters: Vec<KeyDelta>,
    /// Changed gauges only.
    pub gauges: Vec<GaugeDelta>,
    /// Shifted histograms only (any bucket-level movement).
    pub hists: Vec<HistDelta>,
    /// Aggregate per-state profile movement, in [`STATES`] order:
    /// `(state label, base_ns, head_ns)`.
    pub profile_states: Vec<(String, u64, u64)>,
    /// Changed resources only (by wait/events; including new/vanished).
    pub resources: Vec<ResourceDelta>,
    /// Window counts when both records carried timelines.
    pub windows: Option<Delta>,
}

impl RecordDiff {
    /// Diff `head` against `base`.
    pub fn between(base: &RunRecord, head: &RunRecord) -> RecordDiff {
        let mut d = RecordDiff {
            base_label: base.label(),
            head_label: head.label(),
            end_to_end: Delta { base: base.end_to_end_ns, head: head.end_to_end_ns },
            events: Delta { base: base.events, head: head.events },
            flows: Delta { base: base.flows_total, head: head.flows_total },
            ..RecordDiff::default()
        };

        // Critical-path component table over the union of components.
        let (b_comps, h_comps) = (
            base.critpath.as_ref().map(|c| &c.components),
            head.critpath.as_ref().map(|c| &c.components),
        );
        d.critpath_exact = b_comps.is_some() && h_comps.is_some();
        let names: BTreeSet<&str> = b_comps
            .into_iter()
            .flatten()
            .chain(h_comps.into_iter().flatten())
            .map(|(c, _)| c.as_str())
            .collect();
        let lookup = |comps: Option<&Vec<(String, u64)>>, name: &str| {
            comps.into_iter().flatten().find(|(c, _)| c == name).map(|&(_, ns)| ns).unwrap_or(0)
        };
        for name in names {
            d.critpath.push(ComponentDelta {
                component: name.to_string(),
                base_ns: lookup(b_comps, name),
                head_ns: lookup(h_comps, name),
            });
        }
        d.critpath.sort_by(|a, b| {
            b.delta_ns().abs().cmp(&a.delta_ns().abs()).then_with(|| a.component.cmp(&b.component))
        });

        // Counters / gauges: changed keys only, union of key sets.
        let counter_keys: BTreeSet<&String> =
            base.counters.keys().chain(head.counters.keys()).collect();
        for k in counter_keys {
            let (b, h) = (base.counters.get(k).copied(), head.counters.get(k).copied());
            if b != h {
                d.counters.push(KeyDelta { key: k.clone(), base: b, head: h });
            }
        }
        let gauge_keys: BTreeSet<&String> = base.gauges.keys().chain(head.gauges.keys()).collect();
        for k in gauge_keys {
            let (b, h) = (base.gauges.get(k).copied(), head.gauges.get(k).copied());
            if b != h {
                d.gauges.push(GaugeDelta { key: k.clone(), base: b, head: h });
            }
        }

        // Histograms: exact per-bucket movement.
        let hist_keys: BTreeSet<&String> = base.hists.keys().chain(head.hists.keys()).collect();
        for k in hist_keys {
            let (b, h) = (base.hists.get(k), head.hists.get(k));
            let empty = crate::Histogram::new();
            let (bh, hh) = (b.unwrap_or(&empty), h.unwrap_or(&empty));
            let mut buckets: Vec<(usize, u64, i64)> = Vec::new();
            let mut b_it: std::collections::BTreeMap<usize, (u64, i64)> = Default::default();
            for (idx, upper, c) in bh.buckets() {
                b_it.insert(idx, (upper, -(c as i64)));
            }
            for (idx, upper, c) in hh.buckets() {
                let e = b_it.entry(idx).or_insert((upper, 0));
                e.1 += c as i64;
            }
            let mut moved = 0u64;
            for (idx, (upper, delta)) in b_it {
                if delta != 0 {
                    if delta > 0 {
                        moved += delta as u64;
                    }
                    buckets.push((idx, upper, delta));
                }
            }
            if buckets.is_empty() && b.is_some() == h.is_some() {
                continue;
            }
            d.hists.push(HistDelta {
                key: k.clone(),
                count: Delta { base: bh.count(), head: hh.count() },
                p50: Delta { base: bh.p50(), head: hh.p50() },
                p99: Delta { base: bh.p99(), head: hh.p99() },
                mean_shift_ns: hh.mean() - bh.mean(),
                bucket_deltas: buckets,
                moved,
                appeared: b.is_none(),
                vanished: h.is_none(),
            });
        }

        // Aggregate per-state profile movement.
        let state_total =
            |rec: &RunRecord, s: usize| -> u64 { rec.profile.iter().map(|c| c.states[s]).sum() };
        for &s in &STATES {
            let (b, h) = (state_total(base, s as usize), state_total(head, s as usize));
            d.profile_states.push((s.label().to_string(), b, h));
        }

        // Resources: changed rows only, union of names.
        let res_names: BTreeSet<&String> = base
            .resources
            .iter()
            .map(|r| &r.name)
            .chain(head.resources.iter().map(|r| &r.name))
            .collect();
        for name in res_names {
            let b = base.resources.iter().find(|r| &r.name == name);
            let h = head.resources.iter().find(|r| &r.name == name);
            let wait = Delta {
                base: b.map(|r| r.wait_ns).unwrap_or(0),
                head: h.map(|r| r.wait_ns).unwrap_or(0),
            };
            let events = Delta {
                base: b.map(|r| r.events).unwrap_or(0),
                head: h.map(|r| r.events).unwrap_or(0),
            };
            if wait.delta() != 0 || events.delta() != 0 || b.is_none() != h.is_none() {
                d.resources.push(ResourceDelta {
                    name: name.clone(),
                    wait_ns: wait,
                    events,
                    appeared: b.is_none(),
                    vanished: h.is_none(),
                });
            }
        }
        d.resources.sort_by(|a, b| {
            b.wait_ns.delta().abs().cmp(&a.wait_ns.delta().abs()).then_with(|| a.name.cmp(&b.name))
        });

        if let (Some(bw), Some(hw)) = (&base.windows, &head.windows) {
            d.windows = Some(Delta { base: bw.num_windows, head: hw.num_windows });
        }
        d
    }

    /// Signed end-to-end movement, ns.
    pub fn end_delta(&self) -> i64 {
        self.end_to_end.delta()
    }

    /// Sum of the critical-path component deltas. Equal to
    /// [`RecordDiff::end_delta`] whenever both records carried a
    /// critical path — the structural identity the delta table inherits
    /// from the per-run partition invariant.
    pub fn critpath_delta_sum(&self) -> i64 {
        self.critpath.iter().map(|c| c.delta_ns()).sum()
    }

    /// Fraction (0..=1) of the regression-direction on-path movement
    /// that lands on *named* components rather than residual
    /// `cpu`/`startup` attribution. 1.0 when there is no movement in the
    /// regression direction (including a zero delta).
    pub fn localization(&self) -> f64 {
        let dir = self.end_delta().signum();
        if dir == 0 {
            return 1.0;
        }
        let mut total = 0i64;
        let mut named = 0i64;
        for c in &self.critpath {
            let d = c.delta_ns();
            if d.signum() == dir {
                total += d.abs();
                if !c.residual() {
                    named += d.abs();
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            named as f64 / total as f64
        }
    }

    /// Whether the two records are observationally identical: same
    /// end-to-end time, events, flows, critical path, counters, gauges,
    /// histogram buckets, profile partition, resources and windows.
    pub fn is_empty(&self) -> bool {
        self.end_delta() == 0
            && self.events.delta() == 0
            && self.flows.delta() == 0
            && self.critpath.iter().all(|c| c.delta_ns() == 0)
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.profile_states.iter().all(|(_, b, h)| b == h)
            && self.resources.is_empty()
            && self.windows.map(|w| w.delta() == 0).unwrap_or(true)
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "perf diff");
        let _ = writeln!(out, "  base: {}", self.base_label);
        let _ = writeln!(out, "  head: {}", self.head_label);
        let _ = writeln!(
            out,
            "  end-to-end: {} -> {} ns  ({:+} ns, {:+.2}%)",
            self.end_to_end.base,
            self.end_to_end.head,
            self.end_delta(),
            self.end_to_end.pct()
        );
        let _ = writeln!(
            out,
            "  events: {} -> {} ({:+})   flows: {} -> {} ({:+})",
            self.events.base,
            self.events.head,
            self.events.delta(),
            self.flows.base,
            self.flows.head,
            self.flows.delta()
        );
        if self.is_empty() {
            let _ = writeln!(out, "  records are identical");
            return out;
        }
        if !self.critpath.is_empty() {
            let _ = writeln!(
                out,
                "  critical-path delta attribution ({}; localization {:.1}%):",
                if self.critpath_exact {
                    "sums exactly to the end-to-end delta"
                } else {
                    "partial: one record lacks a critical path"
                },
                self.localization() * 100.0
            );
            for c in self.critpath.iter().filter(|c| c.delta_ns() != 0) {
                let _ = writeln!(
                    out,
                    "    {:<24} {:>+12} ns   ({} -> {})",
                    c.component,
                    c.delta_ns(),
                    c.base_ns,
                    c.head_ns
                );
            }
            let _ = writeln!(
                out,
                "    {:<24} {:>+12} ns   (identity: end-to-end delta {})",
                "= sum",
                self.critpath_delta_sum(),
                self.end_delta()
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters ({} changed):", self.counters.len());
            for c in &self.counters {
                let tag = match (c.base, c.head) {
                    (None, _) => "  [new]",
                    (_, None) => "  [vanished]",
                    _ => "",
                };
                let _ = writeln!(
                    out,
                    "    {:<28} {} -> {} ({:+}){tag}",
                    c.key,
                    c.base.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
                    c.head.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
                    c.delta()
                );
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "  histograms ({} shifted):", self.hists.len());
            for h in &self.hists {
                let tag = if h.appeared {
                    "  [new]"
                } else if h.vanished {
                    "  [vanished]"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "    {:<28} count {} -> {}, p50 {} -> {} ns, p99 {} -> {} ns, \
                     {} buckets moved ({} samples){tag}",
                    h.key,
                    h.count.base,
                    h.count.head,
                    h.p50.base,
                    h.p50.head,
                    h.p99.base,
                    h.p99.head,
                    h.bucket_deltas.len(),
                    h.moved
                );
            }
        }
        let moved_states: Vec<&(String, u64, u64)> =
            self.profile_states.iter().filter(|(_, b, h)| b != h).collect();
        if !moved_states.is_empty() {
            let _ = writeln!(out, "  core-profile state movement:");
            for (label, b, h) in moved_states {
                let _ = writeln!(
                    out,
                    "    {:<12} {:>+12} ns   ({b} -> {h})",
                    label,
                    *h as i64 - *b as i64
                );
            }
        }
        if !self.resources.is_empty() {
            let _ = writeln!(out, "  resources ({} changed):", self.resources.len());
            for r in &self.resources {
                let tag = if r.appeared {
                    "  [new]"
                } else if r.vanished {
                    "  [vanished]"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "    {:<24} wait {:+} ns ({} -> {}), events {:+}{tag}",
                    r.name,
                    r.wait_ns.delta(),
                    r.wait_ns.base,
                    r.wait_ns.head,
                    r.events.delta()
                );
            }
        }
        if let Some(w) = self.windows {
            let _ = writeln!(out, "  timeline windows: {} -> {} ({:+})", w.base, w.head, w.delta());
        }
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> String {
        let critpath: Vec<String> = self
            .critpath
            .iter()
            .map(|c| {
                format!(
                    "{{\"component\":\"{}\",\"base_ns\":{},\"head_ns\":{},\"delta_ns\":{},\
                     \"residual\":{}}}",
                    escape_json(&c.component),
                    c.base_ns,
                    c.head_ns,
                    c.delta_ns(),
                    c.residual()
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| {
                format!(
                    "{{\"key\":\"{}\",\"base\":{},\"head\":{},\"delta\":{}}}",
                    escape_json(&c.key),
                    c.base.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
                    c.head.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
                    c.delta()
                )
            })
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|g| {
                format!(
                    "{{\"key\":\"{}\",\"base\":{},\"head\":{}}}",
                    escape_json(&g.key),
                    g.base.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
                    g.head.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
                )
            })
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|h| {
                let buckets: Vec<String> = h
                    .bucket_deltas
                    .iter()
                    .map(|(idx, upper, d)| format!("[{idx},{upper},{d}]"))
                    .collect();
                format!(
                    "{{\"key\":\"{}\",\"base_count\":{},\"head_count\":{},\
                     \"base_p50\":{},\"head_p50\":{},\"base_p99\":{},\"head_p99\":{},\
                     \"mean_shift_ns\":{:.3},\"moved\":{},\"appeared\":{},\"vanished\":{},\
                     \"bucket_deltas\":[{}]}}",
                    escape_json(&h.key),
                    h.count.base,
                    h.count.head,
                    h.p50.base,
                    h.p50.head,
                    h.p99.base,
                    h.p99.head,
                    h.mean_shift_ns,
                    h.moved,
                    h.appeared,
                    h.vanished,
                    buckets.join(",")
                )
            })
            .collect();
        let states: Vec<String> = self
            .profile_states
            .iter()
            .map(|(label, b, h)| {
                format!("{{\"state\":\"{}\",\"base_ns\":{b},\"head_ns\":{h}}}", escape_json(label))
            })
            .collect();
        let resources: Vec<String> = self
            .resources
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"base_wait_ns\":{},\"head_wait_ns\":{},\
                     \"base_events\":{},\"head_events\":{},\"appeared\":{},\"vanished\":{}}}",
                    escape_json(&r.name),
                    r.wait_ns.base,
                    r.wait_ns.head,
                    r.events.base,
                    r.events.head,
                    r.appeared,
                    r.vanished
                )
            })
            .collect();
        let windows = match self.windows {
            Some(w) => format!("{{\"base\":{},\"head\":{}}}", w.base, w.head),
            None => "null".to_string(),
        };
        format!(
            "{{\"perf_diff\":{{\"base\":\"{}\",\"head\":\"{}\",\
             \"end_to_end\":{{\"base_ns\":{},\"head_ns\":{},\"delta_ns\":{}}},\
             \"events\":{{\"base\":{},\"head\":{}}},\"flows\":{{\"base\":{},\"head\":{}}},\
             \"identical\":{},\"critpath_exact\":{},\"critpath_delta_sum_ns\":{},\
             \"localization\":{:.4},\"critpath\":[{}],\"counters\":[{}],\"gauges\":[{}],\
             \"hists\":[{}],\"profile_states\":[{}],\"resources\":[{}],\"windows\":{}}}}}",
            escape_json(&self.base_label),
            escape_json(&self.head_label),
            self.end_to_end.base,
            self.end_to_end.head,
            self.end_delta(),
            self.events.base,
            self.events.head,
            self.flows.base,
            self.flows.head,
            self.is_empty(),
            self.critpath_exact,
            self.critpath_delta_sum(),
            self.localization(),
            critpath.join(","),
            counters.join(","),
            gauges.join(","),
            hists.join(","),
            states.join(","),
            resources.join(","),
            windows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CritSummary, RunMeta, RunRecord};
    use crate::Histogram;

    fn record(total: u64, wire: u64, latencies: &[u64]) -> RunRecord {
        let mut rec = RunRecord {
            version: crate::record::SCHEMA_VERSION,
            meta: RunMeta { scenario: "unit".into(), config: "cfg".into(), ..Default::default() },
            end_to_end_ns: total,
            events: 100,
            ..RunRecord::default()
        };
        let mut h = Histogram::new();
        for &v in latencies {
            h.record(v);
        }
        rec.hists.insert("parcel.latency_ns".into(), h);
        rec.counters.insert("parcels.sent".into(), latencies.len() as u64);
        rec.critpath = Some(CritSummary {
            total_ns: total,
            components: vec![("net.wire".into(), wire), ("cpu".into(), total - wire)],
            ..CritSummary::default()
        });
        rec
    }

    #[test]
    fn identical_records_diff_empty() {
        let a = record(10_000, 6_000, &[100, 200, 300]);
        let d = RecordDiff::between(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.end_delta(), 0);
        assert_eq!(d.localization(), 1.0);
        assert!(d.to_text().contains("records are identical"));
    }

    #[test]
    fn critpath_delta_table_sums_to_end_delta() {
        let base = record(10_000, 6_000, &[100]);
        let head = record(14_000, 9_500, &[100]);
        let d = RecordDiff::between(&base, &head);
        assert!(d.critpath_exact);
        assert_eq!(d.critpath_delta_sum(), d.end_delta());
        assert_eq!(d.end_delta(), 4_000);
        // 3500 of the 4000 regression-direction ns land on net.wire.
        assert!((d.localization() - 3_500.0 / 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_shifts_are_exact() {
        let base = record(10_000, 6_000, &[100, 100, 5_000]);
        let head = record(10_000, 6_000, &[100, 9_000, 9_000]);
        let d = RecordDiff::between(&base, &head);
        let h = d.hists.iter().find(|h| h.key == "parcel.latency_ns").unwrap();
        assert_eq!(h.count.delta(), 0);
        // One sample left the 100-bucket, one left 5000, two landed at 9000.
        let total_move: i64 = h.bucket_deltas.iter().map(|&(_, _, d)| d).sum();
        assert_eq!(total_move, 0);
        assert_eq!(h.moved, 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn new_and_vanished_keys_are_flagged() {
        let base = record(10_000, 6_000, &[100]);
        let mut head = record(10_000, 6_000, &[100]);
        head.counters.insert("retries".into(), 3);
        head.counters.remove("parcels.sent");
        let d = RecordDiff::between(&base, &head);
        let new = d.counters.iter().find(|c| c.key == "retries").unwrap();
        assert!(new.base.is_none());
        let gone = d.counters.iter().find(|c| c.key == "parcels.sent").unwrap();
        assert!(gone.head.is_none());
    }

    #[test]
    fn unexplained_regression_has_low_localization() {
        let base = record(10_000, 6_000, &[100]);
        // All 4000 ns of regression lands on residual cpu time.
        let mut head = record(14_000, 6_000, &[100]);
        head.critpath.as_mut().unwrap().components =
            vec![("net.wire".into(), 6_000), ("cpu".into(), 8_000)];
        let d = RecordDiff::between(&base, &head);
        assert_eq!(d.critpath_delta_sum(), d.end_delta());
        assert_eq!(d.localization(), 0.0);
    }

    #[test]
    fn json_report_carries_the_identity() {
        let base = record(10_000, 6_000, &[100]);
        let head = record(14_000, 9_500, &[100]);
        let j = RecordDiff::between(&base, &head).to_json();
        let doc = crate::json::parse(&j).unwrap();
        let root = doc.get("perf_diff").unwrap();
        assert_eq!(root.get("critpath_delta_sum_ns").unwrap().as_f64(), Some(4_000.0));
        assert_eq!(
            root.get("end_to_end").unwrap().get("delta_ns").unwrap().as_f64(),
            Some(4_000.0)
        );
    }
}
