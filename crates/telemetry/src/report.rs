//! Human- and machine-readable reports: latency breakdown per lifecycle
//! stage, and contention attribution ranked by wait time.

use std::fmt::Write as _;

use simcore::{escape_json, Summary};

use crate::flow::{stage, FlowRec, STAGE_NAMES, UNSET};
use crate::hist::Histogram;
use crate::metrics::ContentionStat;

/// Aggregated durations for one lifecycle stage: the time from entering
/// the stage until the next recorded stage.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Stage name (see [`STAGE_NAMES`]), or `"total"`.
    pub stage: &'static str,
    /// Mean/stddev/min/max accumulator.
    pub summary: Summary,
    /// Quantile accumulator.
    pub hist: Histogram,
}

impl StageStat {
    fn new(stage: &'static str) -> Self {
        StageStat { stage, summary: Summary::new(), hist: Histogram::new() }
    }

    fn record(&mut self, ns: u64) {
        self.summary.record(ns as f64);
        self.hist.record(ns);
    }
}

/// Per-stage latency breakdown for one configuration.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Configuration label (e.g. `lci_psr_cq_pin_i`).
    pub config: String,
    /// One row per lifecycle stage that had samples, in causal order.
    pub stages: Vec<StageStat>,
    /// End-to-end (first recorded stage → last recorded stage).
    pub total: StageStat,
    /// Flows started.
    pub flows: u64,
    /// Flows that reached delivery.
    pub delivered: u64,
}

impl Breakdown {
    /// Build a breakdown from recorded flows.
    pub fn from_flows(config: &str, flows: &[FlowRec]) -> Breakdown {
        let mut stages: Vec<StageStat> = STAGE_NAMES.iter().map(|s| StageStat::new(s)).collect();
        let mut total = StageStat::new("total");
        let mut delivered = 0u64;
        for f in flows {
            delivered += f.delivered() as u64;
            let mut prev: Option<(usize, u64)> = None;
            for (idx, &t) in f.stages.iter().enumerate() {
                if t == UNSET {
                    continue;
                }
                if let Some((pidx, pt)) = prev {
                    stages[pidx].record(t.saturating_sub(pt));
                }
                prev = Some((idx, t));
            }
            if let (Some(first), Some((_, last))) = (f.at(stage::PUT), prev) {
                if last > first {
                    total.record(last - first);
                }
            }
        }
        stages.retain(|s| s.summary.count > 0);
        Breakdown {
            config: config.to_string(),
            stages,
            total,
            flows: flows.len() as u64,
            delivered,
        }
    }

    /// The stage with the largest total time (where the latency went).
    pub fn dominant_stage(&self) -> Option<&'static str> {
        self.stages
            .iter()
            .max_by(|a, b| a.summary.sum.partial_cmp(&b.summary.sum).expect("finite sums"))
            .map(|s| s.stage)
    }

    /// Render an aligned text table (times in µs).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "latency breakdown [{}]  flows={} delivered={}",
            self.config, self.flows, self.delivered
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "mean_us", "stddev_us", "p50_us", "p90_us", "p99_us"
        );
        for s in self.stages.iter().chain(std::iter::once(&self.total)) {
            let _ = writeln!(
                out,
                "  {:<10} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                s.stage,
                s.summary.count,
                s.summary.mean() / 1e3,
                s.summary.stddev() / 1e3,
                s.hist.p50() as f64 / 1e3,
                s.hist.p90() as f64 / 1e3,
                s.hist.p99() as f64 / 1e3,
            );
        }
        if let Some(dom) = self.dominant_stage() {
            let _ = writeln!(out, "  dominant stage: {dom}");
        }
        out
    }

    /// Render as machine-readable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"config\":\"{}\",\"flows\":{},\"delivered\":{},\"stages\":[",
            escape_json(&self.config),
            self.flows,
            self.delivered
        );
        for (i, s) in self.stages.iter().chain(std::iter::once(&self.total)).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"count\":{},\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\
                 \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                s.stage,
                s.summary.count,
                s.summary.mean(),
                s.summary.stddev(),
                s.hist.p50(),
                s.hist.p90(),
                s.hist.p99(),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Contention attribution for one configuration: resources ranked by the
/// total time cores spent waiting on them.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    /// Configuration label.
    pub config: String,
    /// `(resource name, stats)` ranked by total wait, descending.
    pub rows: Vec<(&'static str, ContentionStat)>,
}

impl ContentionReport {
    /// Render an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "top resources by wait time [{}]", self.config);
        let _ = writeln!(
            out,
            "  {:<24} {:<9} {:>10} {:>10} {:>12} {:>10} {:>12}",
            "resource", "kind", "events", "contended", "wait_us", "wait/ev_ns", "service_us"
        );
        for (name, s) in &self.rows {
            let _ = writeln!(
                out,
                "  {:<24} {:<9} {:>10} {:>10} {:>12.1} {:>10.1} {:>12.1}",
                name,
                s.kind.label(),
                s.events,
                s.contended,
                s.total_wait_ns as f64 / 1e3,
                s.mean_wait_ns(),
                s.total_service_ns as f64 / 1e3,
            );
        }
        out
    }

    /// Render as machine-readable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"config\":\"{}\",\"resources\":[", escape_json(&self.config));
        for (i, (name, s)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"events\":{},\"contended\":{},\
                 \"total_wait_ns\":{},\"mean_wait_ns\":{:.1},\"total_service_ns\":{}}}",
                escape_json(name),
                s.kind.label(),
                s.events,
                s.contended,
                s.total_wait_ns,
                s.mean_wait_ns(),
                s.total_service_ns,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTracer;
    use crate::metrics::{ContentionTable, ResourceKind};
    use simcore::SimTime;

    fn sample_flows() -> FlowTracer {
        let mut f = FlowTracer::new();
        for i in 0..4u64 {
            let id = f.begin(0, 1, 0, SimTime::from_nanos(100 * i));
            f.mark(id, stage::SERIALIZE, SimTime::from_nanos(100 * i + 50));
            f.mark(id, stage::INJECT, SimTime::from_nanos(100 * i + 80));
            f.mark(id, stage::WIRE, SimTime::from_nanos(100 * i + 2000));
            f.mark(id, stage::MATCH, SimTime::from_nanos(100 * i + 2300));
            f.mark(id, stage::DELIVER, SimTime::from_nanos(100 * i + 2500));
            f.mark(id, stage::SPAWN, SimTime::from_nanos(100 * i + 2600));
        }
        f
    }

    #[test]
    fn breakdown_attributes_stage_durations() {
        let f = sample_flows();
        let b = Breakdown::from_flows("test", f.flows());
        assert_eq!(b.flows, 4);
        assert_eq!(b.delivered, 4);
        let put = b.stages.iter().find(|s| s.stage == "put").unwrap();
        assert_eq!(put.summary.mean(), 50.0);
        let inject = b.stages.iter().find(|s| s.stage == "inject").unwrap();
        assert_eq!(inject.summary.mean(), 1920.0); // inject → wire
        assert_eq!(b.dominant_stage(), Some("inject"));
        assert_eq!(b.total.summary.mean(), 2600.0);
        // Unrecorded stage (queue) is dropped.
        assert!(b.stages.iter().all(|s| s.stage != "queue"));
        let text = b.to_text();
        assert!(text.contains("dominant stage: inject"));
    }

    #[test]
    fn reports_render_as_valid_json() {
        let f = sample_flows();
        let b = Breakdown::from_flows("cfg\"quoted", f.flows());
        let parsed = crate::json::parse(&b.to_json()).expect("breakdown json parses");
        assert_eq!(parsed.get("config").unwrap().as_str(), Some("cfg\"quoted"));
        assert!(parsed.get("stages").unwrap().as_arr().unwrap().len() > 2);

        let mut t = ContentionTable::new();
        t.record("ucp_progress", ResourceKind::Lock, 5000, 100, true);
        t.record("lci.progress", ResourceKind::TryLock, 0, 50, false);
        let report = ContentionReport { config: "mpi".into(), rows: t.ranking() };
        let parsed = crate::json::parse(&report.to_json()).expect("contention json parses");
        let rows = parsed.get("resources").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("ucp_progress"));
        assert!(report.to_text().contains("ucp_progress"));
    }
}
