//! Canonical per-run artifact: the **RunRecord**.
//!
//! One self-describing JSON document per instrumented run, capturing
//! everything the cross-run differential engine ([`crate::diff`]) needs
//! to attribute a performance delta between two runs:
//!
//! * run identity — scenario, configuration, workload parameters, and
//!   any dialed cost-model knobs;
//! * every counter, gauge and histogram — histograms with their **exact
//!   bucket counts** (see [`Histogram::to_json`]), not just derived
//!   quantiles, so records stay mergeable and bucket-diffable;
//! * the exact critical-path partition (per-component on-path time plus
//!   the contiguous segment list — the PR-4 invariant that segments sum
//!   to the makespan carries over to record diffs);
//! * the per-core profile partition (five states per core);
//! * per-resource contention totals (including `fab.*` switch ports);
//! * fabric per-port counters and timeline window digests, when the run
//!   had a windowed timeline attached.
//!
//! Everything captured is **virtual-time** data from the deterministic
//! simulation — re-running the same binary on the same inputs reproduces
//! the record byte-for-byte, which is what lets CI gate tightly on run
//! records (`perf_diff` vs `results/baselines/`). Capture happens after
//! the simulated run has finished, reading the collector only: enabling
//! `--record` cannot perturb the event stream (pinned by the golden
//! purity tests).

use std::collections::BTreeMap;

use simcore::escape_json;

use crate::hist::Histogram;
use crate::json::{self, Value};
use crate::profile::{CoreState, N_STATES, STATES};
use crate::Telemetry;

/// Schema version stamped into every record.
pub const SCHEMA_VERSION: u64 = 1;

/// Run identity, provided by the harness at capture time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Harness name, e.g. `fig8_latency_window_8b`.
    pub scenario: String,
    /// Configuration name, e.g. `lci_psr_cq_pin_i`.
    pub config: String,
    /// Workload parameters as ordered key/value pairs (window, steps,
    /// hosts, ...), stringified by the harness.
    pub params: Vec<(String, String)>,
    /// Cost-model knobs dialed for this run (`--knobs`), by name.
    pub knobs: Vec<String>,
    /// Engine shard count for sharded-world runs (`--shards N`); `None`
    /// for legacy single-engine runs, keeping their serialized records
    /// byte-identical to pre-sharding baselines.
    pub shards: Option<u64>,
    /// Engine run mode for sharded-world runs (`seq` / `threaded`);
    /// `None` for legacy runs.
    pub run_mode: Option<String>,
}

impl RunMeta {
    /// `scenario/config[+knob,...]` display label.
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}", self.scenario, self.config);
        if !self.knobs.is_empty() {
            s.push('+');
            s.push_str(&self.knobs.join(","));
        }
        s
    }

    /// Whether two runs describe the same workload for diffing purposes:
    /// identical except possibly in engine sharding (`shards` /
    /// `run_mode`), which by the determinism contract must not change
    /// simulated results. `perf_diff` warns rather than refuses when only
    /// these differ.
    pub fn comparable_to(&self, other: &RunMeta) -> bool {
        self.scenario == other.scenario
            && self.config == other.config
            && self.params == other.params
            && self.knobs == other.knobs
    }
}

/// The critical-path partition of one run, flattened for serialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritSummary {
    /// Makespan, ns; component shares and segment lengths both sum to
    /// exactly this.
    pub total_ns: u64,
    /// Bandwidth-independent portion of on-path wire time.
    pub wire_fixed_ns: u64,
    /// Events on the path.
    pub events_on_path: u64,
    /// Whether the causal log hit its memory guard.
    pub truncated: bool,
    /// Per-component on-path time, ranked descending (ties by name).
    pub components: Vec<(String, u64)>,
    /// The contiguous `(component, start, end)` partition of
    /// `[0, total_ns]`.
    pub segments: Vec<(String, u64, u64)>,
}

/// One core's five-state virtual-time partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreRecord {
    /// Locality index.
    pub loc: usize,
    /// Core index within the locality.
    pub core: usize,
    /// Attributed ns per state, in [`STATES`] order; sums to the core's
    /// elapsed time.
    pub states: [u64; N_STATES],
}

impl CoreRecord {
    /// Total attributed time of this core.
    pub fn total_ns(&self) -> u64 {
        self.states.iter().sum()
    }
}

/// One contended resource's totals (locks, resources, switch ports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Resource name (e.g. `ucp_progress`, `fab.s2.p3`).
    pub name: String,
    /// Resource kind label (`lock` / `resource`).
    pub kind: String,
    /// Acquire/use events.
    pub events: u64,
    /// Events that had to wait.
    pub contended: u64,
    /// Total queueing/spinning wait, ns.
    pub wait_ns: u64,
    /// Total hold/service time, ns.
    pub service_ns: u64,
}

/// Per-port fabric totals (from the timeline's port accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortRecord {
    /// Port name (`fab.<switch>.p<idx>`).
    pub name: String,
    /// Packets transmitted.
    pub pkts: u64,
    /// Bytes transmitted.
    pub bytes: u64,
    /// Queueing wait, ns.
    pub wait_ns: u64,
}

/// Windowed digests: per-window sample counts/sums per histogram key and
/// per-window deltas per counter key. Per-key window sums equal the run
/// totals (the timeline merge invariant), which `trace_check
/// --require-record` re-checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowDigest {
    /// Window width, ns.
    pub window_ns: u64,
    /// Number of windows covering the run.
    pub num_windows: u64,
    /// Per histogram key: `(window, count, sum)` for non-empty windows.
    pub hists: BTreeMap<String, Vec<(u64, u64, u64)>>,
    /// Per counter key: `(window, delta)` for non-zero windows.
    pub counters: BTreeMap<String, Vec<(u64, u64)>>,
}

/// The canonical cross-run artifact: one instrumented run, fully
/// described. See the module docs for the capture/diff contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u64,
    /// Run identity.
    pub meta: RunMeta,
    /// End-to-end virtual time, ns (the critical-path makespan; falls
    /// back to the profiler horizon when no causal log was installed).
    pub end_to_end_ns: u64,
    /// Events executed (causal-log node count; wall-clock independent).
    pub events: u64,
    /// Flows started.
    pub flows_total: u64,
    /// Flows that reached delivery.
    pub flows_delivered: u64,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Full histograms with exact bucket counts.
    pub hists: BTreeMap<String, Histogram>,
    /// The critical-path partition, when a causal log was installed.
    pub critpath: Option<CritSummary>,
    /// Per-core profile partitions, ordered by `(loc, core)`.
    pub profile: Vec<CoreRecord>,
    /// Per-resource contention totals, ranked by total wait.
    pub resources: Vec<ResourceRecord>,
    /// Fabric per-port totals (empty when no timeline / no ports).
    pub ports: Vec<PortRecord>,
    /// Timeline window digests, when a timeline was attached.
    pub windows: Option<WindowDigest>,
}

impl RunRecord {
    /// Capture a record from a finished instrumented run. Read-only on
    /// the collector (finalizes the timeline, which is idempotent and
    /// happens after the simulated run ends); `meta` comes from the
    /// harness.
    pub fn capture(tel: &Telemetry, meta: RunMeta) -> RunRecord {
        tel.timeline_finalize();
        let mut rec = RunRecord { version: SCHEMA_VERSION, meta, ..RunRecord::default() };

        rec.critpath = tel.critpath(&rec.meta.config).map(|cp| CritSummary {
            total_ns: cp.total_ns,
            wire_fixed_ns: cp.wire_fixed_ns,
            events_on_path: cp.events_on_path as u64,
            truncated: cp.truncated,
            components: cp.components.iter().map(|c| (c.component.clone(), c.on_path_ns)).collect(),
            segments: cp.segments.iter().map(|s| (s.component.clone(), s.start, s.end)).collect(),
        });
        rec.events = tel.causal_log().map(|log| log.node_count() as u64).unwrap_or(0);

        tel.with_metrics(|m| {
            for (k, v) in m.counters() {
                rec.counters.insert(k.to_string(), v);
            }
            for (k, v) in m.gauges() {
                rec.gauges.insert(k.to_string(), v);
            }
            for (k, h) in m.hists() {
                rec.hists.insert(k.to_string(), h.clone());
            }
        });

        let (total, delivered) = tel.with_flows(|flows| {
            (flows.len() as u64, flows.iter().filter(|f| f.delivered()).count() as u64)
        });
        rec.flows_total = total;
        rec.flows_delivered = delivered;

        tel.with_profile(|p| {
            for ((loc, core), acct) in p.snapshot() {
                rec.profile.push(CoreRecord { loc, core, states: acct.state_table() });
            }
        });

        tel.with_contention(|t| {
            for (name, s) in t.ranking() {
                rec.resources.push(ResourceRecord {
                    name: name.to_string(),
                    kind: s.kind.label().to_string(),
                    events: s.events,
                    contended: s.contended,
                    wait_ns: s.total_wait_ns,
                    service_ns: s.total_service_ns,
                });
            }
        });

        if let Some((ports, windows)) = tel.with_timeline(|tl| {
            let mut ports = Vec::new();
            for name in tl.port_names() {
                let (mut pkts, mut bytes, mut wait) = (0u64, 0u64, 0u64);
                if let Some(ws) = tl.port_windows(name) {
                    for pw in ws.values() {
                        pkts += pw.pkts;
                        bytes += pw.bytes;
                        wait += pw.wait_ns;
                    }
                }
                ports.push(PortRecord { name: name.to_string(), pkts, bytes, wait_ns: wait });
            }
            let mut digest = WindowDigest {
                window_ns: tl.window_ns(),
                num_windows: tl.num_windows(),
                ..WindowDigest::default()
            };
            for key in tl.hist_keys() {
                let rows: Vec<(u64, u64, u64)> = tl
                    .hist_windows(key)
                    .map(|ws| ws.iter().map(|(&w, h)| (w, h.count(), h.sum())).collect())
                    .unwrap_or_default();
                digest.hists.insert(key.to_string(), rows);
            }
            for key in tl.counter_keys() {
                let rows: Vec<(u64, u64)> = tl
                    .counter_windows(key)
                    .map(|ws| ws.iter().map(|(&w, &d)| (w, d)).collect())
                    .unwrap_or_default();
                digest.counters.insert(key.to_string(), rows);
            }
            (ports, digest)
        }) {
            rec.ports = ports;
            rec.windows = Some(windows);
        }

        rec.end_to_end_ns = match &rec.critpath {
            Some(cp) => cp.total_ns,
            None => tel.with_profile(|p| p.horizon_ns()),
        };
        rec
    }

    /// `scenario/config[+knobs]` display label.
    pub fn label(&self) -> String {
        self.meta.label()
    }

    /// Serialize to the canonical JSON document. Deterministic: all maps
    /// are ordered, all vectors preserve their (deterministic) capture
    /// order, and no wall-clock data is included — identical runs yield
    /// byte-identical documents.
    pub fn to_json(&self) -> String {
        let params: Vec<String> = self
            .meta
            .params
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
            .collect();
        let knobs: Vec<String> =
            self.meta.knobs.iter().map(|k| format!("\"{}\"", escape_json(k))).collect();
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("\"{}\":{v}", escape_json(k))).collect();
        let gauges: Vec<String> =
            self.gauges.iter().map(|(k, v)| format!("\"{}\":{v}", escape_json(k))).collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(k, h)| format!("\"{}\":{}", escape_json(k), h.to_json()))
            .collect();

        let critpath = match &self.critpath {
            None => "null".to_string(),
            Some(cp) => {
                let comps: Vec<String> = cp
                    .components
                    .iter()
                    .map(|(c, ns)| {
                        format!("{{\"component\":\"{}\",\"on_path_ns\":{ns}}}", escape_json(c))
                    })
                    .collect();
                let segs: Vec<String> = cp
                    .segments
                    .iter()
                    .map(|(c, s, e)| format!("[\"{}\",{s},{e}]", escape_json(c)))
                    .collect();
                format!(
                    "{{\"total_ns\":{},\"wire_fixed_ns\":{},\"events_on_path\":{},\
                     \"truncated\":{},\"components\":[{}],\"segments\":[{}]}}",
                    cp.total_ns,
                    cp.wire_fixed_ns,
                    cp.events_on_path,
                    cp.truncated,
                    comps.join(","),
                    segs.join(",")
                )
            }
        };

        let profile: Vec<String> = self
            .profile
            .iter()
            .map(|c| {
                let states: Vec<String> = STATES
                    .iter()
                    .map(|&s| format!("\"{}\":{}", state_key(s), c.states[s as usize]))
                    .collect();
                format!("{{\"loc\":{},\"core\":{},{}}}", c.loc, c.core, states.join(","))
            })
            .collect();

        let resources: Vec<String> = self
            .resources
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"kind\":\"{}\",\"events\":{},\"contended\":{},\
                     \"wait_ns\":{},\"service_ns\":{}}}",
                    escape_json(&r.name),
                    escape_json(&r.kind),
                    r.events,
                    r.contended,
                    r.wait_ns,
                    r.service_ns
                )
            })
            .collect();

        let ports: Vec<String> = self
            .ports
            .iter()
            .map(|p| {
                format!(
                    "{{\"name\":\"{}\",\"pkts\":{},\"bytes\":{},\"wait_ns\":{}}}",
                    escape_json(&p.name),
                    p.pkts,
                    p.bytes,
                    p.wait_ns
                )
            })
            .collect();

        let windows = match &self.windows {
            None => "null".to_string(),
            Some(w) => {
                let hists: Vec<String> = w
                    .hists
                    .iter()
                    .map(|(k, rows)| {
                        let rs: Vec<String> =
                            rows.iter().map(|(w, c, s)| format!("[{w},{c},{s}]")).collect();
                        format!("\"{}\":[{}]", escape_json(k), rs.join(","))
                    })
                    .collect();
                let counters: Vec<String> = w
                    .counters
                    .iter()
                    .map(|(k, rows)| {
                        let rs: Vec<String> =
                            rows.iter().map(|(w, d)| format!("[{w},{d}]")).collect();
                        format!("\"{}\":[{}]", escape_json(k), rs.join(","))
                    })
                    .collect();
                format!(
                    "{{\"window_ns\":{},\"num_windows\":{},\"hists\":{{{}}},\
                     \"counters\":{{{}}}}}",
                    w.window_ns,
                    w.num_windows,
                    hists.join(","),
                    counters.join(",")
                )
            }
        };

        // Sharding fields are emitted only when set, so legacy records
        // stay byte-identical to pre-sharding baselines.
        let mut sharding = String::new();
        if let Some(s) = self.meta.shards {
            sharding.push_str(&format!(",\"shards\":{s}"));
        }
        if let Some(m) = &self.meta.run_mode {
            sharding.push_str(&format!(",\"run_mode\":\"{}\"", escape_json(m)));
        }

        format!(
            "{{\"run_record\":{{\"version\":{},\"scenario\":\"{}\",\"config\":\"{}\",\
             \"params\":{{{}}},\"knobs\":[{}]{},\"end_to_end_ns\":{},\"events\":{},\
             \"flows\":{{\"total\":{},\"delivered\":{}}},\"counters\":{{{}}},\
             \"gauges\":{{{}}},\"hists\":{{{}}},\"critpath\":{},\"profile\":[{}],\
             \"resources\":[{}],\"ports\":[{}],\"windows\":{}}}}}",
            self.version,
            escape_json(&self.meta.scenario),
            escape_json(&self.meta.config),
            params.join(","),
            knobs.join(","),
            sharding,
            self.end_to_end_ns,
            self.events,
            self.flows_total,
            self.flows_delivered,
            counters.join(","),
            gauges.join(","),
            hists.join(","),
            critpath,
            profile.join(","),
            resources.join(","),
            ports.join(","),
            windows
        )
    }

    /// Parse a serialized record. Inverse of [`RunRecord::to_json`] for
    /// every field the diff engine reads.
    pub fn from_json(src: &str) -> Result<RunRecord, String> {
        let doc = json::parse(src)?;
        let root = doc.get("run_record").ok_or("missing run_record object")?;
        let mut rec = RunRecord { version: get_u64(root, "version")?, ..RunRecord::default() };
        if rec.version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported run_record version {} (expected {SCHEMA_VERSION})",
                rec.version
            ));
        }
        rec.meta.scenario = get_str(root, "scenario")?.to_string();
        rec.meta.config = get_str(root, "config")?.to_string();
        if let Some(Value::Obj(fields)) = root.get("params") {
            for (k, v) in fields {
                rec.meta
                    .params
                    .push((k.clone(), v.as_str().ok_or("param value must be a string")?.into()));
            }
        }
        if let Some(arr) = root.get("knobs").and_then(|v| v.as_arr()) {
            for k in arr {
                rec.meta.knobs.push(k.as_str().ok_or("knob must be a string")?.to_string());
            }
        }
        match root.get("shards") {
            None | Some(Value::Null) => {}
            Some(v) => rec.meta.shards = Some(as_u64(v).map_err(|e| format!("shards: {e}"))?),
        }
        match root.get("run_mode") {
            None | Some(Value::Null) => {}
            Some(v) => {
                rec.meta.run_mode =
                    Some(v.as_str().ok_or("run_mode must be a string")?.to_string());
            }
        }
        rec.end_to_end_ns = get_u64(root, "end_to_end_ns")?;
        rec.events = get_u64(root, "events")?;
        if let Some(f) = root.get("flows") {
            rec.flows_total = get_u64(f, "total")?;
            rec.flows_delivered = get_u64(f, "delivered")?;
        }
        if let Some(Value::Obj(fields)) = root.get("counters") {
            for (k, v) in fields {
                rec.counters.insert(k.clone(), as_u64(v)?);
            }
        }
        if let Some(Value::Obj(fields)) = root.get("gauges") {
            for (k, v) in fields {
                rec.gauges.insert(k.clone(), v.as_f64().ok_or("gauge must be a number")? as i64);
            }
        }
        if let Some(Value::Obj(fields)) = root.get("hists") {
            for (k, v) in fields {
                rec.hists.insert(k.clone(), hist_from_json(v)?);
            }
        }
        match root.get("critpath") {
            None | Some(Value::Null) => {}
            Some(cp) => {
                let mut out = CritSummary {
                    total_ns: get_u64(cp, "total_ns")?,
                    wire_fixed_ns: get_u64(cp, "wire_fixed_ns")?,
                    events_on_path: get_u64(cp, "events_on_path")?,
                    truncated: matches!(cp.get("truncated"), Some(Value::Bool(true))),
                    ..CritSummary::default()
                };
                for c in cp.get("components").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                    out.components
                        .push((get_str(c, "component")?.to_string(), get_u64(c, "on_path_ns")?));
                }
                for s in cp.get("segments").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                    let row = s.as_arr().ok_or("segment must be an array")?;
                    if row.len() != 3 {
                        return Err("segment must be [component, start, end]".into());
                    }
                    out.segments.push((
                        row[0].as_str().ok_or("segment component must be a string")?.to_string(),
                        as_u64(&row[1])?,
                        as_u64(&row[2])?,
                    ));
                }
                rec.critpath = Some(out);
            }
        }
        for c in root.get("profile").and_then(|v| v.as_arr()).unwrap_or(&[]) {
            let mut states = [0u64; N_STATES];
            for &s in &STATES {
                states[s as usize] = get_u64(c, state_key(s))?;
            }
            rec.profile.push(CoreRecord {
                loc: get_u64(c, "loc")? as usize,
                core: get_u64(c, "core")? as usize,
                states,
            });
        }
        for r in root.get("resources").and_then(|v| v.as_arr()).unwrap_or(&[]) {
            rec.resources.push(ResourceRecord {
                name: get_str(r, "name")?.to_string(),
                kind: get_str(r, "kind")?.to_string(),
                events: get_u64(r, "events")?,
                contended: get_u64(r, "contended")?,
                wait_ns: get_u64(r, "wait_ns")?,
                service_ns: get_u64(r, "service_ns")?,
            });
        }
        for p in root.get("ports").and_then(|v| v.as_arr()).unwrap_or(&[]) {
            rec.ports.push(PortRecord {
                name: get_str(p, "name")?.to_string(),
                pkts: get_u64(p, "pkts")?,
                bytes: get_u64(p, "bytes")?,
                wait_ns: get_u64(p, "wait_ns")?,
            });
        }
        match root.get("windows") {
            None | Some(Value::Null) => {}
            Some(w) => {
                let mut digest = WindowDigest {
                    window_ns: get_u64(w, "window_ns")?,
                    num_windows: get_u64(w, "num_windows")?,
                    ..WindowDigest::default()
                };
                if let Some(Value::Obj(fields)) = w.get("hists") {
                    for (k, v) in fields {
                        let mut rows = Vec::new();
                        for row in v.as_arr().ok_or("window hist rows must be an array")? {
                            let r = row.as_arr().ok_or("window hist row must be an array")?;
                            if r.len() != 3 {
                                return Err("window hist row must be [w, count, sum]".into());
                            }
                            rows.push((as_u64(&r[0])?, as_u64(&r[1])?, as_u64(&r[2])?));
                        }
                        digest.hists.insert(k.clone(), rows);
                    }
                }
                if let Some(Value::Obj(fields)) = w.get("counters") {
                    for (k, v) in fields {
                        let mut rows = Vec::new();
                        for row in v.as_arr().ok_or("window counter rows must be an array")? {
                            let r = row.as_arr().ok_or("window counter row must be an array")?;
                            if r.len() != 2 {
                                return Err("window counter row must be [w, delta]".into());
                            }
                            rows.push((as_u64(&r[0])?, as_u64(&r[1])?));
                        }
                        digest.counters.insert(k.clone(), rows);
                    }
                }
                rec.windows = Some(digest);
            }
        }
        Ok(rec)
    }
}

/// JSON field name of a profiler state (`lock-wait` → `lock_wait`).
fn state_key(s: CoreState) -> &'static str {
    match s {
        CoreState::Working => "working",
        CoreState::Progress => "progress",
        CoreState::LockWait => "lock_wait",
        CoreState::Serialize => "serialize",
        CoreState::Idle => "idle",
    }
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    as_u64(v.get(key).ok_or_else(|| format!("missing field {key:?}"))?)
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn as_u64(v: &Value) -> Result<u64, String> {
    let f = v.as_f64().ok_or("expected a number")?;
    if f < 0.0 {
        return Err(format!("expected a non-negative number, got {f}"));
    }
    Ok(f as u64)
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key).and_then(|v| v.as_str()).ok_or_else(|| format!("missing string field {key:?}"))
}

/// Rebuild a [`Histogram`] from the exact-bucket JSON emitted by
/// [`Histogram::to_json`].
fn hist_from_json(v: &Value) -> Result<Histogram, String> {
    let sum = get_u64(v, "sum")?;
    let min = get_u64(v, "min")?;
    let max = get_u64(v, "max")?;
    let mut buckets = Vec::new();
    for row in v.get("buckets").and_then(|b| b.as_arr()).ok_or("hist missing buckets")? {
        let r = row.as_arr().ok_or("hist bucket must be an array")?;
        if r.len() != 2 {
            return Err("hist bucket must be [index, count]".into());
        }
        buckets.push((as_u64(&r[0])? as usize, as_u64(&r[1])?));
    }
    let h = Histogram::from_buckets(buckets, sum, min, max)?;
    let declared = get_u64(v, "count")?;
    if h.count() != declared {
        return Err(format!("hist bucket counts sum to {} but count says {declared}", h.count()));
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        let mut h = Histogram::new();
        for v in [120u64, 450, 450, 9_800] {
            h.record(v);
        }
        let mut rec = RunRecord {
            version: SCHEMA_VERSION,
            meta: RunMeta {
                scenario: "fig8_latency_window_8b".into(),
                config: "lci_psr_cq_pin_i".into(),
                params: vec![("window".into(), "64".into()), ("steps".into(), "25".into())],
                knobs: vec!["wire_latency_x2".into()],
                ..RunMeta::default()
            },
            end_to_end_ns: 10_000,
            events: 321,
            flows_total: 40,
            flows_delivered: 40,
            ..RunRecord::default()
        };
        rec.counters.insert("parcels.sent".into(), 40);
        rec.gauges.insert("inflight.peak".into(), 7);
        rec.hists.insert("parcel.latency_ns".into(), h);
        rec.critpath = Some(CritSummary {
            total_ns: 10_000,
            wire_fixed_ns: 1_000,
            events_on_path: 12,
            truncated: false,
            components: vec![("net.wire".into(), 6_000), ("cpu".into(), 4_000)],
            segments: vec![("cpu".into(), 0, 4_000), ("net.wire".into(), 4_000, 10_000)],
        });
        rec.profile.push(CoreRecord { loc: 0, core: 0, states: [5_000, 2_000, 0, 1_000, 2_000] });
        rec.resources.push(ResourceRecord {
            name: "ucp_progress".into(),
            kind: "lock".into(),
            events: 10,
            contended: 3,
            wait_ns: 900,
            service_ns: 2_000,
        });
        rec.ports.push(PortRecord { name: "fab.s0.p1".into(), pkts: 8, bytes: 64, wait_ns: 30 });
        let mut digest = WindowDigest { window_ns: 100_000, num_windows: 1, ..Default::default() };
        digest.hists.insert("parcel.latency_ns".into(), vec![(0, 4, 10_820)]);
        digest.counters.insert("parcels.sent".into(), vec![(0, 40)]);
        rec.windows = Some(digest);
        rec
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let rec = sample_record();
        let json = rec.to_json();
        let back = RunRecord::from_json(&json).unwrap();
        assert_eq!(back, rec);
        // Serialization is deterministic.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn labels_show_knobs() {
        let rec = sample_record();
        assert_eq!(rec.label(), "fig8_latency_window_8b/lci_psr_cq_pin_i+wire_latency_x2");
    }

    #[test]
    fn sharding_meta_roundtrips_and_stays_absent_for_legacy_runs() {
        let legacy = sample_record();
        assert!(
            !legacy.to_json().contains("shards") && !legacy.to_json().contains("run_mode"),
            "legacy records must not grow new fields"
        );
        let mut sharded = sample_record();
        sharded.meta.shards = Some(4);
        sharded.meta.run_mode = Some("threaded".into());
        let back = RunRecord::from_json(&sharded.to_json()).unwrap();
        assert_eq!(back, sharded);
        assert_eq!(back.meta.shards, Some(4));
        assert_eq!(back.meta.run_mode.as_deref(), Some("threaded"));
        // Differing only in sharding keeps runs comparable; differing in
        // workload does not.
        assert!(legacy.meta.comparable_to(&sharded.meta));
        let mut other = sample_record();
        other.meta.params.push(("window".into(), "128".into()));
        assert!(!legacy.meta.comparable_to(&other.meta));
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(RunRecord::from_json("{}").is_err());
        assert!(RunRecord::from_json("{\"run_record\":{\"version\":99}}").is_err());
        // Declared count inconsistent with bucket counts.
        let bad = sample_record().to_json().replace("\"count\":4", "\"count\":5");
        assert!(RunRecord::from_json(&bad).is_err());
    }

    #[test]
    fn capture_from_live_collector() {
        let tel = crate::enable();
        tel.counter_add("parcels.sent", 3);
        tel.hist_record("parcel.latency_ns", 1_500);
        tel.hist_record("parcel.latency_ns", 2_500);
        crate::disable();
        let meta = RunMeta { scenario: "unit".into(), config: "cfg".into(), ..Default::default() };
        let rec = RunRecord::capture(&tel, meta);
        assert_eq!(rec.version, SCHEMA_VERSION);
        assert_eq!(rec.counters.get("parcels.sent"), Some(&3));
        assert_eq!(rec.hists["parcel.latency_ns"].count(), 2);
        let back = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
    }
}
