//! Log-bucketed histogram of `u64` samples (virtual nanoseconds).
//!
//! Buckets are power-of-two octaves split into 8 linear sub-buckets, so
//! the relative quantile error is bounded at 12.5% while `record` stays a
//! couple of shifts and one array increment — no allocation after
//! construction, which keeps histogram updates legal on simulation hot
//! paths.

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Values `0..SUBS` get exact buckets; above that, one bucket per
/// (octave, sub-bucket) pair up to `u64::MAX`.
const NBUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Fixed-size log-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + (exp - SUB_BITS) as usize * SUBS + sub
}

/// Largest value that maps to bucket `idx` (saturating at `u64::MAX`).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let k = idx - SUBS;
    let exp = (k / SUBS) as u32 + SUB_BITS;
    let sub = (k % SUBS) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (SUBS as u64 + sub) << (exp - SUB_BITS);
    lower.saturating_add(width - 1)
}

/// Smallest value that maps to bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let k = idx - SUBS;
    let exp = (k / SUBS) as u32 + SUB_BITS;
    let sub = (k % SUBS) as u64;
    (SUBS as u64 + sub) << (exp - SUB_BITS)
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; NBUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket holding the sample of that rank, clamped to the true
    /// `[min, max]` range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile shorthand.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shorthand (tail latency).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Number of samples in buckets entirely at or below `v` — a
    /// bucket-granularity count of "samples ≤ v". Samples in a bucket
    /// straddling `v` count as above it, so `count() - count_at_most(v)`
    /// is a deterministic, slightly conservative bad-sample count for
    /// SLO evaluation.
    ///
    /// **Boundary guarantee**: when `v` is the exact upper bound of a
    /// bucket (any value returned by [`Histogram::bucket_bounds`] or
    /// [`Histogram::quantile`]), no bucket straddles `v` and the result
    /// is the *exact* number of samples ≤ `v` — not an approximation.
    pub fn count_at_most(&self, v: u64) -> u64 {
        // The highest bucket wholly ≤ v: the bucket holding v when v is
        // its exact upper bound, its predecessor otherwise.
        let idx = bucket_index(v);
        let limit = if bucket_upper(idx) == v { idx + 1 } else { idx };
        self.counts[..limit].iter().sum()
    }

    /// Fold `other` into `self`; equivalent to having recorded the union
    /// of both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets, in value order: `(index, upper_bound,
    /// count)`. Together with `sum`/`min`/`max` this is the histogram's
    /// exact state — [`Histogram::from_buckets`] reconstructs a
    /// bit-identical histogram from it, which is what makes run records
    /// diffable at bucket granularity instead of quantile granularity.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (idx, bucket_upper(idx), c))
    }

    /// `[lower, upper]` value range of bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        (bucket_lower(idx), bucket_upper(idx))
    }

    /// Number of buckets (the fixed `counts` length).
    pub fn num_buckets() -> usize {
        NBUCKETS
    }

    /// Reconstruct a histogram from exact per-bucket counts plus the
    /// tracked `sum`/`min`/`max` (as serialized by
    /// [`Histogram::to_json`]). Returns an error on an out-of-range
    /// bucket index; `count` is derived from the bucket counts.
    pub fn from_buckets(
        buckets: impl IntoIterator<Item = (usize, u64)>,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        for (idx, c) in buckets {
            if idx >= NBUCKETS {
                return Err(format!("bucket index {idx} out of range (max {})", NBUCKETS - 1));
            }
            h.counts[idx] += c;
            h.count += c;
        }
        h.sum = sum;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = max;
        Ok(h)
    }

    /// Exact JSON export: summary statistics, derived quantiles *and*
    /// the full bucket counts (`"buckets":[[index,count],...]`), so two
    /// serialized histograms can be diffed or merged without loss.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> =
            self.buckets().map(|(idx, _, c)| format!("[{idx},{c}]")).collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            if self.count == 0 { 0 } else { self.min },
            self.max,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper({idx}) = {upper} < {v}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "v {v} should not fit bucket {}", idx - 1);
            }
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 5000, 100_000] {
            h.record(v);
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= h.min() && p99 <= h.max());
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn merge_matches_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for v in [5u64, 50, 500] {
            a.record(v);
            u.record(v);
        }
        for v in [7u64, 70, 700_000] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn count_at_most_splits_at_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 10, 100, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count_at_most(0), 0);
        assert_eq!(h.count_at_most(5), 2);
        assert_eq!(h.count_at_most(10), 3);
        assert_eq!(h.count_at_most(u64::MAX), h.count());
        // Straddling-bucket samples count as above the threshold.
        assert!(h.count_at_most(9_000) <= 4);
    }

    #[test]
    fn count_at_most_is_exact_at_bucket_boundaries() {
        let mut h = Histogram::new();
        let samples = [1u64, 5, 10, 17, 100, 9_000, 10_000, 250_000];
        for &v in &samples {
            h.record(v);
        }
        // At the exact upper bound of any bucket the count is the true
        // number of samples ≤ that bound, with no conservative slack.
        for idx in 0..NBUCKETS {
            let upper = bucket_upper(idx);
            let expect = samples.iter().filter(|&&s| s <= upper).count() as u64;
            assert_eq!(h.count_at_most(upper), expect, "boundary {upper} (bucket {idx})");
        }
        // One below a bucket's lower bound is also a boundary (it is the
        // previous bucket's upper bound), so it is exact too.
        for idx in 1..NBUCKETS {
            let below = bucket_lower(idx) - 1;
            let expect = samples.iter().filter(|&&s| s <= below).count() as u64;
            assert_eq!(h.count_at_most(below), expect, "below-lower {below} (bucket {idx})");
        }
    }

    #[test]
    fn count_at_most_interior_values_are_conservative() {
        let mut h = Histogram::new();
        h.record(9_000); // interior of a wide bucket
        let idx = bucket_index(9_000);
        let (lower, upper) = Histogram::bucket_bounds(idx);
        assert!(lower < 9_000 && 9_000 < upper, "test needs an interior sample");
        // Interior thresholds exclude the straddling bucket (conservative
        // in the ≤ direction) …
        assert_eq!(h.count_at_most(9_000), 0);
        assert_eq!(h.count_at_most(upper - 1), 0);
        // … and the exact boundary includes it.
        assert_eq!(h.count_at_most(upper), 1);
        assert_eq!(h.count_at_most(lower - 1), 0);
    }

    #[test]
    fn bucket_bounds_are_contiguous() {
        for idx in 1..NBUCKETS {
            let (lower, _) = Histogram::bucket_bounds(idx);
            let (_, prev_upper) = Histogram::bucket_bounds(idx - 1);
            assert_eq!(prev_upper + 1, lower, "gap/overlap between buckets {} and {idx}", idx - 1);
        }
        assert_eq!(Histogram::bucket_bounds(0).0, 0);
        assert_eq!(Histogram::bucket_bounds(NBUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn buckets_roundtrip_through_from_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 8, 9, 100, 123_456, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let parts: Vec<(usize, u64)> = h.buckets().map(|(idx, _, c)| (idx, c)).collect();
        let back = Histogram::from_buckets(parts, h.sum(), h.min(), h.max()).unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_buckets([(NBUCKETS, 1)], 0, 0, 0).is_err());
        let empty = Histogram::from_buckets([], 0, 0, 0).unwrap();
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn json_export_carries_exact_buckets() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 90, 4_000] {
            h.record(v);
        }
        let json = h.to_json();
        assert!(json.contains("\"count\":4"));
        assert!(json.contains(&format!("[{},2]", bucket_index(3))));
        assert!(json.contains(&format!("[{},1]", bucket_index(90))));
        assert!(json.contains("\"buckets\":["));
        // Empty histograms serialize min as 0, not u64::MAX.
        assert!(Histogram::new().to_json().contains("\"min\":0"));
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_boundaries_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn quantile_boundaries_single_sample() {
        let mut h = Histogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 12_345, "q={q}");
        }
        assert_eq!(h.p999(), 12_345);
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let mut h = Histogram::new();
        for v in [3u64, 90, 4_000, 250_000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
        // Out-of-range inputs clamp rather than panic.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        // With 10k uniform samples the 99.9th percentile lands in the
        // top octave, clearly above the median.
        assert!(h.p999() > h.p50());
    }
}
