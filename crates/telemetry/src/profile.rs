//! Virtual-time core profiler: per-core state accounting, folded-stack
//! flamegraphs, and utilization timelines.
//!
//! Every simulated core owns a [`CoreAccount`] that partitions its elapsed
//! virtual time into five [`CoreState`]s: `working` (HPX task execution),
//! `progress` (network progress: cq polling, background sends, MPI test
//! loops), `lock-wait` (spinning on a `SimLock` / queued on a
//! `SimResource`), `serialize` (parcel encode) and `idle`. The **hard
//! invariant** is that the five durations partition the core's elapsed
//! virtual time exactly — no gaps, no double counting — for *any*
//! interleaving of records. It holds by construction (see below) and is
//! re-checked by [`CoreAccount::check_partition`] and the property tests
//! in `tests/profile_props.rs`.
//!
//! ## Base vs overlay records
//!
//! The scheduler (`amt::Locality`) knows exactly when a core ran and what
//! base activity it ran (`task`, `background`, `progress`); it reports
//! those intervals as **base** records after charging them. Probes deeper
//! in the stack (lock waits, resource queueing, serialization) fire
//! *inside* a base interval, before the scheduler has reported it; they
//! arrive as **overlay** records and are held pending until the enclosing
//! base record lands, then carved out of it — the base state keeps the
//! remainder. Time covered by no base record at all becomes `idle`
//! (overlays stranded in such a gap still count as their own state). A
//! per-core cursor makes attribution contiguous: everything below the
//! cursor is finally attributed, so the state durations always partition
//! `[0, cursor]` exactly, whatever order records arrive in.
//!
//! The `(state, leaf-label)` totals double as flamegraph frames:
//! [`CoreProfile::folded`] renders them in the folded-stack format that
//! `inferno` / `flamegraph.pl` consume
//! (`config;locL/coreC;state;leaf weight` per line, weights in ns).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simcore::escape_json;

/// Core activity states, in display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CoreState {
    /// Executing application/HPX tasks.
    Working = 0,
    /// Driving the network: cq polls, background sends, MPI test loops.
    Progress = 1,
    /// Spinning on a blocking lock or queued on a serialized resource.
    LockWait = 2,
    /// Encoding parcels into wire messages.
    Serialize = 3,
    /// Nothing to run.
    Idle = 4,
}

/// Number of distinct states.
pub const N_STATES: usize = 5;

/// All states in display order.
pub const STATES: [CoreState; N_STATES] = [
    CoreState::Working,
    CoreState::Progress,
    CoreState::LockWait,
    CoreState::Serialize,
    CoreState::Idle,
];

impl CoreState {
    /// Short display form (also the flamegraph frame name).
    pub fn label(self) -> &'static str {
        match self {
            CoreState::Working => "working",
            CoreState::Progress => "progress",
            CoreState::LockWait => "lock-wait",
            CoreState::Serialize => "serialize",
            CoreState::Idle => "idle",
        }
    }

    fn from_u8(v: u8) -> CoreState {
        STATES[v as usize]
    }
}

/// Timeline segments kept per core before rendering stops recording them
/// (pure memory guard — the ns accounting continues past the cap).
const MAX_SEGMENTS: usize = 1 << 20;

/// One core's virtual-time account.
///
/// All instants are virtual nanoseconds. `cursor` is the frontier of final
/// attribution; `ns` sums to `cursor` at every point in time.
#[derive(Debug, Clone, Default)]
pub struct CoreAccount {
    /// Everything below this instant is finally attributed.
    cursor: u64,
    /// Attributed time per state; partitions `[0, cursor]`.
    ns: [u64; N_STATES],
    /// Attributed time per `(state, leaf label)` — the flamegraph leaves.
    leaves: BTreeMap<(CoreState, &'static str), u64>,
    /// Overlay records waiting for their enclosing base record.
    pending: Vec<(u64, u64, CoreState, &'static str)>,
    /// Attributed `(start, end, state)` runs for timeline rendering,
    /// capped at [`MAX_SEGMENTS`].
    segments: Vec<(u64, u64, u8)>,
}

impl CoreAccount {
    /// Attribute `[self.cursor, end)` to `state`. The only place the
    /// cursor moves, which is what makes the partition exact.
    fn attribute(&mut self, end: u64, state: CoreState, label: &'static str) {
        let dur = end - self.cursor;
        if dur == 0 {
            return;
        }
        self.ns[state as usize] += dur;
        if state != CoreState::Idle {
            *self.leaves.entry((state, label)).or_insert(0) += dur;
        }
        let start = self.cursor;
        self.cursor = end;
        if let Some(last) = self.segments.last_mut() {
            if last.1 == start && last.2 == state as u8 {
                last.1 = end;
                return;
            }
        }
        if self.segments.len() < MAX_SEGMENTS {
            self.segments.push((start, end, state as u8));
        }
    }

    /// Advance the cursor to `t`: idle before `base_start`, the base
    /// state from `base_start` on.
    fn fill_to(&mut self, t: u64, base_start: u64, state: CoreState, label: &'static str) {
        if t <= self.cursor {
            return;
        }
        let idle_end = t.min(base_start);
        if idle_end > self.cursor {
            self.attribute(idle_end, CoreState::Idle, "idle");
        }
        if t > self.cursor {
            self.attribute(t, state, label);
        }
    }

    /// Record a base interval `[start, end)` in `state` (scheduler-level:
    /// the core was running `label` then, minus whatever overlays carve
    /// out). Any gap since the previous base interval becomes idle.
    pub fn record_base(&mut self, state: CoreState, label: &'static str, start: u64, end: u64) {
        debug_assert!(end >= start, "interval must not be negative");
        if end <= self.cursor {
            return;
        }
        let base_start = start.max(self.cursor);
        self.pending.sort_by_key(|p| (p.0, p.1));
        for (ps, pe, pstate, plabel) in std::mem::take(&mut self.pending) {
            if ps >= end {
                self.pending.push((ps, pe, pstate, plabel));
                continue;
            }
            if pe <= self.cursor {
                continue;
            }
            let ps = ps.max(self.cursor);
            self.fill_to(ps, base_start, state, label);
            self.attribute(pe, pstate, plabel);
        }
        self.fill_to(end, base_start, state, label);
    }

    /// Record an overlay interval `[start, end)` in `state` (probe-level:
    /// a lock wait or serialization nested inside a base interval the
    /// scheduler has not reported yet). Held pending until then.
    pub fn record_overlay(&mut self, state: CoreState, label: &'static str, start: u64, end: u64) {
        debug_assert!(end >= start, "interval must not be negative");
        if end <= self.cursor || end == start {
            return;
        }
        self.pending.push((start.max(self.cursor), end, state, label));
    }

    /// Flush pending overlays (gaps around them become idle) and extend
    /// the account to `horizon` with idle. Idempotent.
    pub fn finalize(&mut self, horizon: u64) {
        self.pending.sort_by_key(|p| (p.0, p.1));
        for (ps, pe, pstate, plabel) in std::mem::take(&mut self.pending) {
            if pe <= self.cursor {
                continue;
            }
            let ps = ps.max(self.cursor);
            if ps > self.cursor {
                self.attribute(ps, CoreState::Idle, "idle");
            }
            self.attribute(pe, pstate, plabel);
        }
        if horizon > self.cursor {
            self.attribute(horizon, CoreState::Idle, "idle");
        }
    }

    /// Elapsed (finally attributed) virtual time.
    pub fn elapsed_ns(&self) -> u64 {
        self.cursor
    }

    /// Latest instant any record (attributed or pending) reaches.
    pub fn frontier_ns(&self) -> u64 {
        self.pending.iter().map(|p| p.1).max().unwrap_or(0).max(self.cursor)
    }

    /// Attributed time in `state`.
    pub fn state_ns(&self, state: CoreState) -> u64 {
        self.ns[state as usize]
    }

    /// Attributed per-state durations, indexed by [`STATES`] order.
    pub fn state_table(&self) -> [u64; N_STATES] {
        self.ns
    }

    /// Non-idle attributed time.
    pub fn busy_ns(&self) -> u64 {
        self.cursor - self.ns[CoreState::Idle as usize]
    }

    /// Iterate `(state, leaf label, ns)` flamegraph leaves.
    pub fn leaves(&self) -> impl Iterator<Item = (CoreState, &'static str, u64)> + '_ {
        self.leaves.iter().map(|(&(s, l), &ns)| (s, l, ns))
    }

    /// Attributed `(start, end, state)` runs, oldest first.
    pub fn segments(&self) -> impl Iterator<Item = (u64, u64, CoreState)> + '_ {
        self.segments.iter().map(|&(s, e, st)| (s, e, CoreState::from_u8(st)))
    }

    /// Busy (non-idle) share per bucket over `[0, horizon)`, from the
    /// recorded segments.
    pub fn busy_timeline(&self, horizon: u64, buckets: usize) -> Vec<f64> {
        let mut out = vec![0.0; buckets];
        if horizon == 0 || buckets == 0 {
            return out;
        }
        let width = horizon as f64 / buckets as f64;
        for &(s, e, st) in &self.segments {
            if CoreState::from_u8(st) == CoreState::Idle {
                continue;
            }
            let first = ((s as f64 / width) as usize).min(buckets - 1);
            let last = (((e - 1) as f64 / width) as usize).min(buckets - 1);
            for (b, slot) in out.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = (b as f64 * width).max(s as f64);
                let hi = ((b + 1) as f64 * width).min(e as f64);
                if hi > lo {
                    *slot += (hi - lo) / width;
                }
            }
        }
        for v in &mut out {
            *v = v.clamp(0.0, 1.0);
        }
        out
    }

    /// The hard invariant: state durations partition `[0, cursor]`.
    pub fn check_partition(&self) -> Result<(), String> {
        let sum: u64 = self.ns.iter().sum();
        if sum == self.cursor {
            Ok(())
        } else {
            Err(format!(
                "state durations sum to {sum} ns but elapsed virtual time is {} ns",
                self.cursor
            ))
        }
    }
}

/// The per-core accounts of one run, keyed by `(locality, core)`, plus
/// the locality context used to attribute probe-driven overlays.
#[derive(Debug, Default)]
pub struct CoreProfile {
    cores: BTreeMap<(usize, usize), CoreAccount>,
    current_loc: usize,
}

impl CoreProfile {
    /// Create an empty profile.
    pub fn new() -> Self {
        CoreProfile::default()
    }

    /// Set the locality whose event handler is currently executing.
    /// Probe-driven overlays (which only know a core index) land here.
    pub fn set_loc(&mut self, loc: usize) {
        self.current_loc = loc;
    }

    /// The locality set by [`CoreProfile::set_loc`].
    pub fn current_loc(&self) -> usize {
        self.current_loc
    }

    /// Record a base interval on `(loc, core)`.
    pub fn record_base(
        &mut self,
        loc: usize,
        core: usize,
        state: CoreState,
        label: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.cores.entry((loc, core)).or_default().record_base(state, label, start_ns, end_ns);
    }

    /// Record an overlay interval on `core` of the current locality.
    pub fn record_overlay_here(
        &mut self,
        core: usize,
        state: CoreState,
        label: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.cores
            .entry((self.current_loc, core))
            .or_default()
            .record_overlay(state, label, start_ns, end_ns);
    }

    /// Whether no core recorded anything.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Fold another profile's accounts into this one. Used by the
    /// sharded-world merge: every lane profiles only its own locality's
    /// cores, so the `(loc, core)` key sets are disjoint and this is a
    /// plain union (an already-present key keeps its account).
    pub fn absorb(&mut self, other: CoreProfile) {
        for (key, acct) in other.cores {
            self.cores.entry(key).or_insert(acct);
        }
    }

    /// One core's live (unfinalized) account.
    pub fn account(&self, loc: usize, core: usize) -> Option<&CoreAccount> {
        self.cores.get(&(loc, core))
    }

    /// Latest instant any core's records reach — the report horizon.
    pub fn horizon_ns(&self) -> u64 {
        self.cores.values().map(|a| a.frontier_ns()).max().unwrap_or(0)
    }

    /// Finalized copies of every account, all extended to the common
    /// horizon (the live accounts keep accumulating untouched).
    pub fn snapshot(&self) -> BTreeMap<(usize, usize), CoreAccount> {
        let horizon = self.horizon_ns();
        let mut out = self.cores.clone();
        for acct in out.values_mut() {
            acct.finalize(horizon);
        }
        out
    }

    /// Build the ranked core-time report for `config`.
    pub fn report(&self, config: &str) -> CoreTimeReport {
        let horizon = self.horizon_ns();
        let mut rows: Vec<CoreRow> = self
            .snapshot()
            .into_iter()
            .map(|((loc, core), acct)| CoreRow { loc, core, ns: acct.state_table() })
            .collect();
        rows.sort_by(|a, b| {
            b.busy_ns().cmp(&a.busy_ns()).then((a.loc, a.core).cmp(&(b.loc, b.core)))
        });
        CoreTimeReport { config: config.to_string(), horizon_ns: horizon, rows }
    }

    /// Render the folded-stack flamegraph input for `config`: one
    /// `config;locL/coreC;state;leaf weight` line per leaf, weights in
    /// ns, idle excluded (it is a busy-time flamegraph).
    pub fn folded(&self, config: &str) -> String {
        let mut out = String::new();
        for ((loc, core), acct) in self.snapshot() {
            for (state, leaf, ns) in acct.leaves() {
                let _ = writeln!(out, "{config};loc{loc}/core{core};{};{leaf} {ns}", state.label());
            }
        }
        out
    }
}

/// One row of a [`CoreTimeReport`]: a core's finalized state durations.
#[derive(Debug, Clone)]
pub struct CoreRow {
    /// Locality id.
    pub loc: usize,
    /// Core index within the locality.
    pub core: usize,
    /// Durations per state, indexed by [`STATES`] order.
    pub ns: [u64; N_STATES],
}

impl CoreRow {
    /// Total accounted time (equals the report horizon).
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Non-idle time.
    pub fn busy_ns(&self) -> u64 {
        self.total_ns() - self.ns[CoreState::Idle as usize]
    }

    /// `state`'s share of total accounted time (0 when empty).
    pub fn share(&self, state: CoreState) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.ns[state as usize] as f64 / total as f64
        }
    }

    /// `state`'s share of *busy* time (0 when never busy).
    pub fn busy_share(&self, state: CoreState) -> f64 {
        let busy = self.busy_ns();
        if busy == 0 {
            0.0
        } else {
            self.ns[state as usize] as f64 / busy as f64
        }
    }
}

/// Ranked per-core time breakdown for one configuration.
#[derive(Debug, Clone)]
pub struct CoreTimeReport {
    /// Configuration label (e.g. `lci_psr_cq_pin_i`).
    pub config: String,
    /// Common horizon all rows are finalized to, ns.
    pub horizon_ns: u64,
    /// One row per `(locality, core)`, ranked by busy time descending.
    pub rows: Vec<CoreRow>,
}

impl CoreTimeReport {
    /// Rows of one locality, in rank order.
    pub fn locality(&self, loc: usize) -> impl Iterator<Item = &CoreRow> + '_ {
        self.rows.iter().filter(move |r| r.loc == loc)
    }

    /// Render an aligned text table (times in µs, shares of elapsed).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "core time breakdown [{}]  horizon={:.1}us  cores={}",
            self.config,
            self.horizon_ns as f64 / 1e3,
            self.rows.len()
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
            "core", "busy_us", "busy%", "work%", "progr%", "lockw%", "serial%", "idle%"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<12} {:>10.1} {:>6.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>6.1}%",
                format!("loc{}/core{}", r.loc, r.core),
                r.busy_ns() as f64 / 1e3,
                100.0 * r.busy_ns() as f64 / r.total_ns().max(1) as f64,
                100.0 * r.share(CoreState::Working),
                100.0 * r.share(CoreState::Progress),
                100.0 * r.share(CoreState::LockWait),
                100.0 * r.share(CoreState::Serialize),
                100.0 * r.share(CoreState::Idle),
            );
        }
        out
    }

    /// Render as machine-readable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"config\":\"{}\",\"horizon_ns\":{},\"cores\":[",
            escape_json(&self.config),
            self.horizon_ns
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"loc\":{},\"core\":{}", r.loc, r.core);
            for state in STATES {
                let _ = write!(out, ",\"{}_ns\":{}", state.label(), r.ns[state as usize]);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Downsample a `(t_ns, value)` series into `buckets` equal windows over
/// `[0, horizon)`: each bucket averages its samples; empty buckets carry
/// the previous bucket's value forward (0 before the first sample).
pub fn resample(series: &[(u64, f64)], horizon_ns: u64, buckets: usize) -> Vec<f64> {
    let mut out = vec![0.0; buckets];
    if buckets == 0 || horizon_ns == 0 {
        return out;
    }
    let width = horizon_ns as f64 / buckets as f64;
    let mut sums = vec![0.0; buckets];
    let mut counts = vec![0u64; buckets];
    for &(t, v) in series {
        let b = ((t as f64 / width) as usize).min(buckets - 1);
        sums[b] += v;
        counts[b] += 1;
    }
    let mut last = 0.0;
    for b in 0..buckets {
        if counts[b] > 0 {
            last = sums[b] / counts[b] as f64;
        }
        out[b] = last;
    }
    out
}

/// Render `values` as a Unicode sparkline, scaled to the series maximum.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BARS[0]
            } else {
                BARS[((v / max * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Render `values` (each in `[0, 1]`) as one ASCII heatmap row.
pub fn heatmap_row(values: &[f64]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    values
        .iter()
        .map(|&v| {
            let idx = (v.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[idx.min(RAMP.len() - 1)] as char
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_records_partition_with_idle_gaps() {
        let mut a = CoreAccount::default();
        a.record_base(CoreState::Working, "task", 100, 200);
        a.record_base(CoreState::Progress, "background", 300, 350);
        assert_eq!(a.elapsed_ns(), 350);
        assert_eq!(a.state_ns(CoreState::Working), 100);
        assert_eq!(a.state_ns(CoreState::Progress), 50);
        // [0,100) and [200,300) are idle gaps.
        assert_eq!(a.state_ns(CoreState::Idle), 200);
        a.check_partition().unwrap();
    }

    #[test]
    fn overlay_is_carved_out_of_enclosing_base() {
        let mut a = CoreAccount::default();
        // Probe fires first (lock wait inside a task)...
        a.record_overlay(CoreState::LockWait, "ucp_progress", 120, 150);
        // ...then the scheduler reports the enclosing interval.
        a.record_base(CoreState::Working, "task", 100, 200);
        assert_eq!(a.state_ns(CoreState::Working), 70); // [100,120) + [150,200)
        assert_eq!(a.state_ns(CoreState::LockWait), 30);
        assert_eq!(a.state_ns(CoreState::Idle), 100); // [0,100)
        a.check_partition().unwrap();
    }

    #[test]
    fn overlapping_overlays_never_double_count() {
        let mut a = CoreAccount::default();
        a.record_overlay(CoreState::LockWait, "l1", 10, 50);
        a.record_overlay(CoreState::LockWait, "l2", 30, 60);
        a.record_base(CoreState::Progress, "background", 0, 100);
        assert_eq!(a.state_ns(CoreState::LockWait), 50); // [10,60) once
        assert_eq!(a.state_ns(CoreState::Progress), 50);
        assert_eq!(a.elapsed_ns(), 100);
        a.check_partition().unwrap();
    }

    #[test]
    fn overlay_outside_any_base_survives_finalize() {
        let mut a = CoreAccount::default();
        a.record_overlay(CoreState::Serialize, "drain", 500, 600);
        a.finalize(1000);
        assert_eq!(a.state_ns(CoreState::Serialize), 100);
        assert_eq!(a.state_ns(CoreState::Idle), 900);
        assert_eq!(a.elapsed_ns(), 1000);
        a.check_partition().unwrap();
    }

    #[test]
    fn overlay_spilling_past_base_end_is_kept() {
        let mut a = CoreAccount::default();
        a.record_overlay(CoreState::LockWait, "l", 80, 150);
        a.record_base(CoreState::Working, "task", 0, 100);
        // The wait extends past the base interval; it is attributed whole.
        assert_eq!(a.state_ns(CoreState::LockWait), 70);
        assert_eq!(a.state_ns(CoreState::Working), 80);
        assert_eq!(a.elapsed_ns(), 150);
        a.check_partition().unwrap();
    }

    #[test]
    fn stale_records_in_the_past_are_dropped() {
        let mut a = CoreAccount::default();
        a.record_base(CoreState::Working, "task", 0, 100);
        a.record_base(CoreState::Working, "task", 20, 80); // fully in the past
        a.record_overlay(CoreState::LockWait, "l", 10, 90); // likewise
        a.finalize(100);
        assert_eq!(a.state_ns(CoreState::Working), 100);
        assert_eq!(a.elapsed_ns(), 100);
        a.check_partition().unwrap();
    }

    #[test]
    fn profile_report_ranks_by_busy_time() {
        let mut p = CoreProfile::new();
        p.record_base(0, 0, CoreState::Working, "task", 0, 1000);
        p.record_base(0, 1, CoreState::Progress, "background", 0, 400);
        p.record_base(1, 0, CoreState::Working, "task", 0, 700);
        let r = p.report("cfg");
        assert_eq!(r.horizon_ns, 1000);
        assert_eq!(r.rows.len(), 3);
        assert_eq!((r.rows[0].loc, r.rows[0].core), (0, 0));
        assert_eq!((r.rows[1].loc, r.rows[1].core), (1, 0));
        // Every row is finalized to the common horizon.
        for row in &r.rows {
            assert_eq!(row.total_ns(), 1000);
        }
        let text = r.to_text();
        assert!(text.contains("loc0/core0"), "text: {text}");
        let parsed = crate::json::parse(&r.to_json()).expect("report json parses");
        assert_eq!(parsed.get("horizon_ns").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parsed.get("cores").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn folded_stacks_have_config_core_state_leaf() {
        let mut p = CoreProfile::new();
        p.record_base(0, 2, CoreState::Working, "task", 0, 500);
        p.record_base(0, 2, CoreState::Progress, "background", 500, 600);
        let folded = p.folded("mpi");
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"mpi;loc0/core2;working;task 500"), "folded: {folded}");
        assert!(lines.contains(&"mpi;loc0/core2;progress;background 100"), "folded: {folded}");
        // Idle never appears in the flamegraph.
        assert!(!folded.contains("idle"), "folded: {folded}");
    }

    #[test]
    fn busy_timeline_tracks_activity() {
        let mut a = CoreAccount::default();
        a.record_base(CoreState::Working, "task", 0, 500);
        a.finalize(1000);
        let tl = a.busy_timeline(1000, 10);
        assert_eq!(tl.len(), 10);
        assert!(tl[0] > 0.99 && tl[4] > 0.99, "tl: {tl:?}");
        assert!(tl[9] < 0.01, "tl: {tl:?}");
    }

    #[test]
    fn resample_averages_and_carries_forward() {
        let series = [(0u64, 2.0), (50, 4.0), (450, 10.0)];
        let r = resample(&series, 1000, 10);
        assert_eq!(r.len(), 10);
        assert!((r[0] - 3.0).abs() < 1e-12); // mean of 2 and 4
        assert!((r[1] - 3.0).abs() < 1e-12); // carried forward
        assert!((r[4] - 10.0).abs() < 1e-12);
        assert!((r[9] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sparkline_and_heatmap_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        let h = heatmap_row(&[0.0, 0.5, 1.0]);
        assert_eq!(h.len(), 3);
        assert!(h.starts_with(' ') && h.ends_with('@'));
    }
}
