//! Parcel-lifecycle flow tracing.
//!
//! Each tracked parcel gets a *flow*: a timeline of timestamps through the
//! fixed stage sequence
//! `put → queue → serialize → inject → wire → match → deliver → spawn`
//! stitched across localities. The sender's parcelport registers the flow
//! ids of a message out-of-band under `(src, dst, tag_base)` at injection
//! time; the receiver's parcelport resolves the same key when it handles
//! the header — nothing is added to the simulated wire format, so enabling
//! tracing cannot perturb timing.
//!
//! Flow id 0 means "untracked": every mutator ignores it, so call sites
//! can mark unconditionally.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use simcore::SimTime;

/// Stage indices of the parcel lifecycle, in causal order.
pub mod stage {
    /// `put_parcel` entered on the sending locality.
    pub const PUT: usize = 0;
    /// Parcel queued behind the per-destination aggregation window.
    pub const QUEUE: usize = 1;
    /// Serialization/encode into an `HpxMessage`.
    pub const SERIALIZE: usize = 2;
    /// Message handed to the parcelport (`put_message`).
    pub const INJECT: usize = 3;
    /// Header packet arrived at the destination NIC.
    pub const WIRE: usize = 4;
    /// Header matched / popped from the completion queue by the receiver.
    pub const MATCH: usize = 5;
    /// Full message delivered to the destination locality.
    pub const DELIVER: usize = 6;
    /// Decode task started on a destination core.
    pub const SPAWN: usize = 7;
    /// Number of stages.
    pub const COUNT: usize = 8;
}

/// Stage display names, indexed by the `stage` constants.
pub const STAGE_NAMES: [&str; stage::COUNT] =
    ["put", "queue", "serialize", "inject", "wire", "match", "deliver", "spawn"];

/// Timestamp sentinel for "stage not reached".
pub const UNSET: u64 = u64::MAX;

/// Lane-mode flow ids carry the owning lane in bits 44.. (matching the
/// sharded engine's node-id namespacing); the low 44 bits are the lane's
/// 1-based local flow index. Lane 0's ids are therefore identical to the
/// legacy single-collector ids.
pub(crate) const LANE_SHIFT: u32 = 44;
const LOCAL_MASK: u64 = (1 << LANE_SHIFT) - 1;

/// Registered routes: `(src, dst, tag_base)` → the sender's flow ids.
type RouteMap = HashMap<(usize, usize, u64), Vec<u64>>;

/// Published lane-mode flow metadata: `id` → `(src, dst, put_ns)`.
type MetaMap = HashMap<u64, (usize, usize, u64)>;

/// Process-global route registry used in lane mode: the sender's and the
/// receiver's tracers live on different lanes (possibly different worker
/// threads), so the out-of-band `(src, dst, tag_base)` handoff has to
/// cross tracer boundaries. The engine's conservative barrier guarantees
/// the register happens-before the claim; the mutex only provides
/// data-race freedom, never ordering.
fn global_routes() -> &'static Mutex<RouteMap> {
    static ROUTES: OnceLock<Mutex<RouteMap>> = OnceLock::new();
    ROUTES.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Process-global flow metadata (`id → (src, dst, put_ns)`) registered at
/// `begin` in lane mode so a *receiving* lane can feed its end-to-end
/// latency histogram at delivery time without owning the sender's
/// `FlowRec`.
fn global_meta() -> &'static Mutex<MetaMap> {
    static META: OnceLock<Mutex<MetaMap>> = OnceLock::new();
    META.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Publish `(src, dst, put_ns)` for lane-mode flow `id`.
pub(crate) fn register_flow_meta(id: u64, src: usize, dst: usize, put_ns: u64) {
    if id != 0 {
        global_meta().lock().expect("flow meta").insert(id, (src, dst, put_ns));
    }
}

/// Look up the published metadata for a (typically foreign) flow id.
pub(crate) fn flow_meta(id: u64) -> Option<(usize, usize, u64)> {
    global_meta().lock().expect("flow meta").get(&id).copied()
}

/// Drop all lane-mode global state. Called from `telemetry::disable` so
/// back-to-back runs in one process cannot cross-contaminate.
pub(crate) fn clear_lane_globals() {
    global_routes().lock().expect("route registry").clear();
    global_meta().lock().expect("flow meta").clear();
}

/// An operation on a flow owned by *another* lane's tracer, buffered for
/// the post-run merge (receiver-side stages are marked on the receiving
/// lane, which does not hold the sender's `FlowRec`).
#[derive(Debug, Clone)]
pub(crate) enum ForeignOp {
    /// A stage mark: `(id, stage, t_ns, deliver_node)` —
    /// `deliver_node` is the raw causal gid captured at a DELIVER mark
    /// (0 otherwise), remapped to merged node ids at merge time.
    Mark(u64, usize, u64, u64),
    /// `set_dst_core(id, core)`.
    DstCore(u64, usize),
}

/// One parcel's recorded lifecycle.
#[derive(Debug, Clone)]
pub struct FlowRec {
    /// Source locality.
    pub src: usize,
    /// Destination locality.
    pub dst: usize,
    /// Core that ran `put_parcel`.
    pub src_core: usize,
    /// Core that delivered/decoded (set at deliver time).
    pub dst_core: usize,
    /// Per-stage timestamps in ns ([`UNSET`] where not reached).
    pub stages: [u64; stage::COUNT],
    /// Causal node id of the event that delivered this parcel (0 when no
    /// causal collector was installed) — links the flow to the provenance
    /// graph so the critical path can highlight on-path parcels.
    pub deliver_node: u64,
}

impl FlowRec {
    /// Timestamp of `stage`, if recorded.
    pub fn at(&self, stage: usize) -> Option<u64> {
        let t = self.stages[stage];
        (t != UNSET).then_some(t)
    }

    /// Whether the flow reached the delivery stage.
    pub fn delivered(&self) -> bool {
        self.stages[stage::DELIVER] != UNSET
    }
}

/// Recorder of parcel flows plus the out-of-band route registry used to
/// stitch sender and receiver timelines together.
#[derive(Debug)]
pub struct FlowTracer {
    flows: Vec<FlowRec>,
    routes: HashMap<(usize, usize, u64), Vec<u64>>,
    /// Stop allocating new flows past this many (memory guard for long
    /// runs); marks on existing flows keep working.
    pub max_flows: usize,
    /// Lane-mode id base (`lane << LANE_SHIFT`); `None` = legacy
    /// single-collector mode with plain 1-based ids.
    lane_base: Option<u64>,
    /// Buffered operations on flows owned by other lanes' tracers.
    foreign: Vec<ForeignOp>,
    /// `(id, op-discriminant)` pairs already buffered — first-wins dedup
    /// so `mark` still reports "newly set" exactly once per stage (the
    /// in-flight accounting depends on it).
    foreign_seen: std::collections::HashSet<(u64, usize)>,
}

impl Default for FlowTracer {
    fn default() -> Self {
        FlowTracer::new()
    }
}

impl FlowTracer {
    /// Create an empty tracer.
    pub fn new() -> Self {
        FlowTracer {
            flows: Vec::new(),
            routes: HashMap::new(),
            max_flows: 1 << 22,
            lane_base: None,
            foreign: Vec::new(),
            foreign_seen: std::collections::HashSet::new(),
        }
    }

    /// Put this tracer in lane mode for `lane`: new flow ids carry the
    /// lane in their high bits, and operations on flows minted by other
    /// lanes are buffered as [`ForeignOp`]s for the post-run merge.
    pub(crate) fn set_lane(&mut self, lane: u32) {
        self.lane_base = Some((lane as u64) << LANE_SHIFT);
    }

    /// Whether this tracer is in lane mode.
    pub(crate) fn lane_mode(&self) -> bool {
        self.lane_base.is_some()
    }

    /// Whether `id` belongs to another lane's tracer.
    #[inline]
    fn is_foreign(&self, id: u64) -> bool {
        match self.lane_base {
            Some(base) => (id & !LOCAL_MASK) != base,
            None => false,
        }
    }

    /// Local index of a native id (the low bits are the 1-based index in
    /// both legacy and lane mode).
    #[inline]
    fn idx(id: u64) -> usize {
        (id & LOCAL_MASK) as usize - 1
    }

    /// Start a flow for a parcel put on `src_core` of locality `src`,
    /// destined for `dst`. Returns the flow id (0 if the tracer is full).
    pub fn begin(&mut self, src: usize, dst: usize, src_core: usize, t: SimTime) -> u64 {
        if self.flows.len() >= self.max_flows.min(LOCAL_MASK as usize) {
            return 0;
        }
        let mut stages = [UNSET; stage::COUNT];
        stages[stage::PUT] = t.as_nanos();
        self.flows.push(FlowRec { src, dst, src_core, dst_core: 0, stages, deliver_node: 0 });
        self.lane_base.unwrap_or(0) | self.flows.len() as u64
    }

    /// Record `stage` for flow `id` at `t`. First mark wins (retries keep
    /// the earliest entry into a stage); id 0 is ignored. Returns whether
    /// the stage was newly set (callers maintain in-flight counts on the
    /// first DELIVER mark only). In lane mode a mark on a foreign id is
    /// buffered for the merge; "newly set" then means "newly buffered",
    /// which coincides (each receiver-side stage is marked by exactly one
    /// locality, and the dedup set keeps retries idempotent).
    pub fn mark(&mut self, id: u64, stage: usize, t: SimTime) -> bool {
        if id == 0 {
            return false;
        }
        if self.is_foreign(id) {
            if !self.foreign_seen.insert((id, stage)) {
                return false;
            }
            let deliver_node =
                if stage == self::stage::DELIVER { simcore::causal::current_node() } else { 0 };
            self.foreign.push(ForeignOp::Mark(id, stage, t.as_nanos(), deliver_node));
            return true;
        }
        let rec = &mut self.flows[Self::idx(id)];
        let slot = &mut rec.stages[stage];
        if *slot == UNSET {
            *slot = t.as_nanos();
            if stage == self::stage::DELIVER {
                rec.deliver_node = simcore::causal::current_node();
            }
            true
        } else {
            false
        }
    }

    /// [`FlowTracer::mark`] over a batch of ids; returns how many stages
    /// were newly set.
    pub fn mark_many(&mut self, ids: &[u64], stage: usize, t: SimTime) -> usize {
        ids.iter().filter(|&&id| self.mark(id, stage, t)).count()
    }

    /// Record the core that handled delivery for `ids`.
    pub fn set_dst_core(&mut self, ids: &[u64], core: usize) {
        for &id in ids {
            if id == 0 {
                continue;
            }
            if self.is_foreign(id) {
                if self.foreign_seen.insert((id, stage::COUNT)) {
                    self.foreign.push(ForeignOp::DstCore(id, core));
                }
                continue;
            }
            self.flows[Self::idx(id)].dst_core = core;
        }
    }

    /// Sender side: associate `flows` with the message identified by
    /// `(src, dst, tag_base)` so the receiver can pick them up. In lane
    /// mode the registration goes through the process-global registry so
    /// a receiver on another lane (and another thread) can claim it; the
    /// engine's conservative barrier orders the register before the
    /// claim, the mutex only makes the handoff data-race-free.
    pub fn register_route(&mut self, src: usize, dst: usize, tag_base: u64, flows: &[u64]) {
        if flows.is_empty() {
            return;
        }
        if self.lane_mode() {
            global_routes()
                .lock()
                .expect("route registry")
                .insert((src, dst, tag_base), flows.to_vec());
        } else {
            self.routes.insert((src, dst, tag_base), flows.to_vec());
        }
    }

    /// Receiver side: claim the flows registered for `(src, dst,
    /// tag_base)`. Empty if the sender registered nothing.
    pub fn take_route(&mut self, src: usize, dst: usize, tag_base: u64) -> Vec<u64> {
        if self.lane_mode() {
            return global_routes()
                .lock()
                .expect("route registry")
                .remove(&(src, dst, tag_base))
                .unwrap_or_default();
        }
        self.routes.remove(&(src, dst, tag_base)).unwrap_or_default()
    }

    /// All recorded flows, in creation order.
    pub fn flows(&self) -> &[FlowRec] {
        &self.flows
    }

    /// The record behind flow `id`, if this tracer owns it (None for id 0
    /// and, in lane mode, for foreign ids).
    pub(crate) fn rec(&self, id: u64) -> Option<&FlowRec> {
        if id == 0 || self.is_foreign(id) {
            return None;
        }
        self.flows.get(Self::idx(id))
    }

    /// Merge per-lane tracers (in lane-rank order) back into one legacy
    /// tracer, replaying every buffered [`ForeignOp`] against the record
    /// owned by the minting lane. `remap` translates raw per-lane causal
    /// gids (node-base `rank << 44`) into merged causal-log node ids; gids
    /// absent from the merged log collapse to 0 ("no provenance").
    pub(crate) fn merge_lanes(lanes: Vec<FlowTracer>, remap: &HashMap<u64, u64>) -> FlowTracer {
        let remap_node = |n: u64| if n == 0 { 0 } else { remap.get(&n).copied().unwrap_or(0) };
        let mut merged = FlowTracer::new();
        let mut id_map: HashMap<u64, usize> = HashMap::new();
        let mut foreign: Vec<ForeignOp> = Vec::new();
        for lane in &lanes {
            let base = lane.lane_base.unwrap_or(0);
            for (i, rec) in lane.flows.iter().enumerate() {
                id_map.insert(base | (i as u64 + 1), merged.flows.len());
                let mut rec = rec.clone();
                rec.deliver_node = remap_node(rec.deliver_node);
                merged.flows.push(rec);
            }
            foreign.extend(lane.foreign.iter().cloned());
        }
        for op in foreign {
            match op {
                ForeignOp::Mark(id, stage, t_ns, deliver_node) => {
                    let Some(&idx) = id_map.get(&id) else { continue };
                    let rec = &mut merged.flows[idx];
                    if rec.stages[stage] == UNSET {
                        rec.stages[stage] = t_ns;
                        if stage == self::stage::DELIVER {
                            rec.deliver_node = remap_node(deliver_node);
                        }
                    }
                }
                ForeignOp::DstCore(id, core) => {
                    if let Some(&idx) = id_map.get(&id) {
                        merged.flows[idx].dst_core = core;
                    }
                }
            }
        }
        merged
    }

    /// Number of recorded flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_marks_in_order() {
        let mut f = FlowTracer::new();
        let id = f.begin(0, 1, 3, SimTime::from_nanos(100));
        assert_eq!(id, 1);
        f.mark(id, stage::SERIALIZE, SimTime::from_nanos(150));
        f.mark(id, stage::DELIVER, SimTime::from_nanos(900));
        f.set_dst_core(&[id], 5);
        let rec = &f.flows()[0];
        assert_eq!(rec.at(stage::PUT), Some(100));
        assert_eq!(rec.at(stage::SERIALIZE), Some(150));
        assert_eq!(rec.at(stage::QUEUE), None);
        assert!(rec.delivered());
        assert_eq!(rec.dst_core, 5);
    }

    #[test]
    fn first_mark_wins() {
        let mut f = FlowTracer::new();
        let id = f.begin(0, 1, 0, SimTime::ZERO);
        f.mark(id, stage::INJECT, SimTime::from_nanos(10));
        f.mark(id, stage::INJECT, SimTime::from_nanos(99));
        assert_eq!(f.flows()[0].at(stage::INJECT), Some(10));
    }

    #[test]
    fn id_zero_is_ignored() {
        let mut f = FlowTracer::new();
        f.mark(0, stage::PUT, SimTime::ZERO);
        f.mark_many(&[0, 0], stage::WIRE, SimTime::ZERO);
        f.set_dst_core(&[0], 9);
        assert!(f.is_empty());
    }

    #[test]
    fn routes_stitch_sender_to_receiver() {
        let mut f = FlowTracer::new();
        let a = f.begin(0, 1, 0, SimTime::ZERO);
        let b = f.begin(0, 1, 0, SimTime::ZERO);
        f.register_route(0, 1, 42, &[a, b]);
        assert_eq!(f.take_route(0, 1, 42), vec![a, b]);
        // Claimed exactly once.
        assert!(f.take_route(0, 1, 42).is_empty());
        assert!(f.take_route(1, 0, 42).is_empty());
    }

    #[test]
    fn max_flows_caps_allocation() {
        let mut f = FlowTracer::new();
        f.max_flows = 1;
        assert_eq!(f.begin(0, 1, 0, SimTime::ZERO), 1);
        assert_eq!(f.begin(0, 1, 0, SimTime::ZERO), 0);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn lane_ids_carry_lane_and_lane0_matches_legacy() {
        let mut l0 = FlowTracer::new();
        l0.set_lane(0);
        let mut l2 = FlowTracer::new();
        l2.set_lane(2);
        assert_eq!(l0.begin(0, 1, 0, SimTime::ZERO), 1);
        let id = l2.begin(2, 0, 0, SimTime::ZERO);
        assert_eq!(id, (2u64 << LANE_SHIFT) | 1);
        assert!(l0.rec(id).is_none(), "foreign id must not resolve locally");
        assert!(l2.rec(id).is_some());
    }

    #[test]
    fn foreign_marks_buffer_and_merge_back() {
        let mut sender = FlowTracer::new();
        sender.set_lane(1);
        let mut receiver = FlowTracer::new();
        receiver.set_lane(0);
        let id = sender.begin(1, 0, 0, SimTime::from_nanos(5));
        sender.mark(id, stage::INJECT, SimTime::from_nanos(10));
        // Receiver-side stages land on the other lane's tracer.
        assert!(receiver.mark(id, stage::WIRE, SimTime::from_nanos(40)));
        assert!(receiver.mark(id, stage::DELIVER, SimTime::from_nanos(50)));
        // Retry of an already-buffered stage is not "newly set".
        assert!(!receiver.mark(id, stage::DELIVER, SimTime::from_nanos(60)));
        receiver.set_dst_core(&[id], 3);
        assert_eq!(receiver.len(), 0, "foreign ops must not mint local flows");

        let merged = FlowTracer::merge_lanes(vec![receiver, sender], &HashMap::new());
        assert_eq!(merged.len(), 1);
        let rec = &merged.flows()[0];
        assert_eq!(rec.at(stage::PUT), Some(5));
        assert_eq!(rec.at(stage::INJECT), Some(10));
        assert_eq!(rec.at(stage::WIRE), Some(40));
        assert_eq!(rec.at(stage::DELIVER), Some(50));
        assert_eq!(rec.dst_core, 3);
        assert!(rec.delivered());
    }

    #[test]
    fn lane_routes_cross_tracers_and_clear() {
        let mut sender = FlowTracer::new();
        sender.set_lane(0);
        let mut receiver = FlowTracer::new();
        receiver.set_lane(1);
        let id = sender.begin(0, 1, 0, SimTime::ZERO);
        sender.register_route(0, 1, 7, &[id]);
        assert_eq!(receiver.take_route(0, 1, 7), vec![id]);
        assert!(receiver.take_route(0, 1, 7).is_empty());
        register_flow_meta(id, 0, 1, 123);
        assert_eq!(flow_meta(id), Some((0, 1, 123)));
        clear_lane_globals();
        assert_eq!(flow_meta(id), None);
    }
}
