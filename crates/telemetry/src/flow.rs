//! Parcel-lifecycle flow tracing.
//!
//! Each tracked parcel gets a *flow*: a timeline of timestamps through the
//! fixed stage sequence
//! `put → queue → serialize → inject → wire → match → deliver → spawn`
//! stitched across localities. The sender's parcelport registers the flow
//! ids of a message out-of-band under `(src, dst, tag_base)` at injection
//! time; the receiver's parcelport resolves the same key when it handles
//! the header — nothing is added to the simulated wire format, so enabling
//! tracing cannot perturb timing.
//!
//! Flow id 0 means "untracked": every mutator ignores it, so call sites
//! can mark unconditionally.

use std::collections::HashMap;

use simcore::SimTime;

/// Stage indices of the parcel lifecycle, in causal order.
pub mod stage {
    /// `put_parcel` entered on the sending locality.
    pub const PUT: usize = 0;
    /// Parcel queued behind the per-destination aggregation window.
    pub const QUEUE: usize = 1;
    /// Serialization/encode into an `HpxMessage`.
    pub const SERIALIZE: usize = 2;
    /// Message handed to the parcelport (`put_message`).
    pub const INJECT: usize = 3;
    /// Header packet arrived at the destination NIC.
    pub const WIRE: usize = 4;
    /// Header matched / popped from the completion queue by the receiver.
    pub const MATCH: usize = 5;
    /// Full message delivered to the destination locality.
    pub const DELIVER: usize = 6;
    /// Decode task started on a destination core.
    pub const SPAWN: usize = 7;
    /// Number of stages.
    pub const COUNT: usize = 8;
}

/// Stage display names, indexed by the `stage` constants.
pub const STAGE_NAMES: [&str; stage::COUNT] =
    ["put", "queue", "serialize", "inject", "wire", "match", "deliver", "spawn"];

/// Timestamp sentinel for "stage not reached".
pub const UNSET: u64 = u64::MAX;

/// One parcel's recorded lifecycle.
#[derive(Debug, Clone)]
pub struct FlowRec {
    /// Source locality.
    pub src: usize,
    /// Destination locality.
    pub dst: usize,
    /// Core that ran `put_parcel`.
    pub src_core: usize,
    /// Core that delivered/decoded (set at deliver time).
    pub dst_core: usize,
    /// Per-stage timestamps in ns ([`UNSET`] where not reached).
    pub stages: [u64; stage::COUNT],
    /// Causal node id of the event that delivered this parcel (0 when no
    /// causal collector was installed) — links the flow to the provenance
    /// graph so the critical path can highlight on-path parcels.
    pub deliver_node: u64,
}

impl FlowRec {
    /// Timestamp of `stage`, if recorded.
    pub fn at(&self, stage: usize) -> Option<u64> {
        let t = self.stages[stage];
        (t != UNSET).then_some(t)
    }

    /// Whether the flow reached the delivery stage.
    pub fn delivered(&self) -> bool {
        self.stages[stage::DELIVER] != UNSET
    }
}

/// Recorder of parcel flows plus the out-of-band route registry used to
/// stitch sender and receiver timelines together.
#[derive(Debug)]
pub struct FlowTracer {
    flows: Vec<FlowRec>,
    routes: HashMap<(usize, usize, u64), Vec<u64>>,
    /// Stop allocating new flows past this many (memory guard for long
    /// runs); marks on existing flows keep working.
    pub max_flows: usize,
}

impl Default for FlowTracer {
    fn default() -> Self {
        FlowTracer::new()
    }
}

impl FlowTracer {
    /// Create an empty tracer.
    pub fn new() -> Self {
        FlowTracer { flows: Vec::new(), routes: HashMap::new(), max_flows: 1 << 22 }
    }

    /// Start a flow for a parcel put on `src_core` of locality `src`,
    /// destined for `dst`. Returns the flow id (0 if the tracer is full).
    pub fn begin(&mut self, src: usize, dst: usize, src_core: usize, t: SimTime) -> u64 {
        if self.flows.len() >= self.max_flows {
            return 0;
        }
        let mut stages = [UNSET; stage::COUNT];
        stages[stage::PUT] = t.as_nanos();
        self.flows.push(FlowRec { src, dst, src_core, dst_core: 0, stages, deliver_node: 0 });
        self.flows.len() as u64
    }

    /// Record `stage` for flow `id` at `t`. First mark wins (retries keep
    /// the earliest entry into a stage); id 0 is ignored. Returns whether
    /// the stage was newly set (callers maintain in-flight counts on the
    /// first DELIVER mark only).
    pub fn mark(&mut self, id: u64, stage: usize, t: SimTime) -> bool {
        if id == 0 {
            return false;
        }
        let rec = &mut self.flows[id as usize - 1];
        let slot = &mut rec.stages[stage];
        if *slot == UNSET {
            *slot = t.as_nanos();
            if stage == self::stage::DELIVER {
                rec.deliver_node = simcore::causal::current_node();
            }
            true
        } else {
            false
        }
    }

    /// [`FlowTracer::mark`] over a batch of ids; returns how many stages
    /// were newly set.
    pub fn mark_many(&mut self, ids: &[u64], stage: usize, t: SimTime) -> usize {
        ids.iter().filter(|&&id| self.mark(id, stage, t)).count()
    }

    /// Record the core that handled delivery for `ids`.
    pub fn set_dst_core(&mut self, ids: &[u64], core: usize) {
        for &id in ids {
            if id != 0 {
                self.flows[id as usize - 1].dst_core = core;
            }
        }
    }

    /// Sender side: associate `flows` with the message identified by
    /// `(src, dst, tag_base)` so the receiver can pick them up.
    pub fn register_route(&mut self, src: usize, dst: usize, tag_base: u64, flows: &[u64]) {
        if !flows.is_empty() {
            self.routes.insert((src, dst, tag_base), flows.to_vec());
        }
    }

    /// Receiver side: claim the flows registered for `(src, dst,
    /// tag_base)`. Empty if the sender registered nothing.
    pub fn take_route(&mut self, src: usize, dst: usize, tag_base: u64) -> Vec<u64> {
        self.routes.remove(&(src, dst, tag_base)).unwrap_or_default()
    }

    /// All recorded flows, in creation order.
    pub fn flows(&self) -> &[FlowRec] {
        &self.flows
    }

    /// Number of recorded flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_marks_in_order() {
        let mut f = FlowTracer::new();
        let id = f.begin(0, 1, 3, SimTime::from_nanos(100));
        assert_eq!(id, 1);
        f.mark(id, stage::SERIALIZE, SimTime::from_nanos(150));
        f.mark(id, stage::DELIVER, SimTime::from_nanos(900));
        f.set_dst_core(&[id], 5);
        let rec = &f.flows()[0];
        assert_eq!(rec.at(stage::PUT), Some(100));
        assert_eq!(rec.at(stage::SERIALIZE), Some(150));
        assert_eq!(rec.at(stage::QUEUE), None);
        assert!(rec.delivered());
        assert_eq!(rec.dst_core, 5);
    }

    #[test]
    fn first_mark_wins() {
        let mut f = FlowTracer::new();
        let id = f.begin(0, 1, 0, SimTime::ZERO);
        f.mark(id, stage::INJECT, SimTime::from_nanos(10));
        f.mark(id, stage::INJECT, SimTime::from_nanos(99));
        assert_eq!(f.flows()[0].at(stage::INJECT), Some(10));
    }

    #[test]
    fn id_zero_is_ignored() {
        let mut f = FlowTracer::new();
        f.mark(0, stage::PUT, SimTime::ZERO);
        f.mark_many(&[0, 0], stage::WIRE, SimTime::ZERO);
        f.set_dst_core(&[0], 9);
        assert!(f.is_empty());
    }

    #[test]
    fn routes_stitch_sender_to_receiver() {
        let mut f = FlowTracer::new();
        let a = f.begin(0, 1, 0, SimTime::ZERO);
        let b = f.begin(0, 1, 0, SimTime::ZERO);
        f.register_route(0, 1, 42, &[a, b]);
        assert_eq!(f.take_route(0, 1, 42), vec![a, b]);
        // Claimed exactly once.
        assert!(f.take_route(0, 1, 42).is_empty());
        assert!(f.take_route(1, 0, 42).is_empty());
    }

    #[test]
    fn max_flows_caps_allocation() {
        let mut f = FlowTracer::new();
        f.max_flows = 1;
        assert_eq!(f.begin(0, 1, 0, SimTime::ZERO), 1);
        assert_eq!(f.begin(0, 1, 0, SimTime::ZERO), 0);
        assert_eq!(f.len(), 1);
    }
}
