//! The metrics registry: counters, gauges, histograms and counter-track
//! time series.
//!
//! Counters/gauges/histograms are `&'static str`-keyed `BTreeMap`s: a key
//! allocates its node once on first touch, after which updates are
//! allocation-free — the same discipline as `simcore::Stats`. Counter
//! tracks (sampled time series destined for Perfetto counter tracks) are
//! string-keyed because they are only ever fed from enabled-only code.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Registry of named metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Histogram>,
    /// Sampled `(t_ns, value)` series rendered as Perfetto counter tracks.
    tracks: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `n` to counter `key`.
    #[inline]
    pub fn counter_add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Set gauge `key` to `v`.
    #[inline]
    pub fn gauge_set(&mut self, key: &'static str, v: i64) {
        self.gauges.insert(key, v);
    }

    /// Add `delta` to gauge `key`.
    #[inline]
    pub fn gauge_add(&mut self, key: &'static str, delta: i64) {
        *self.gauges.entry(key).or_insert(0) += delta;
    }

    /// Read a gauge (0 if never touched).
    pub fn gauge(&self, key: &str) -> i64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Record `v` into histogram `key`.
    #[inline]
    pub fn hist_record(&mut self, key: &'static str, v: u64) {
        self.hists.entry(key).or_default().record(v);
    }

    /// Read a histogram.
    pub fn hist(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// Append a `(t_ns, value)` sample to counter track `name`.
    pub fn track_sample(&mut self, name: &str, t_ns: u64, v: f64) {
        if let Some(series) = self.tracks.get_mut(name) {
            series.push((t_ns, v));
        } else {
            self.tracks.insert(name.to_string(), vec![(t_ns, v)]);
        }
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate histograms in key order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// Iterate counter tracks in name order.
    pub fn tracks(&self) -> impl Iterator<Item = (&str, &[(u64, f64)])> + '_ {
        self.tracks.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// One named track's samples.
    pub fn track(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.tracks.get(name).map(|v| v.as_slice())
    }

    /// Replace counter track `name` wholesale. Used by the sharded-world
    /// merge to rebuild cumulative series (e.g. `parcels.in_flight`)
    /// from per-lane running values after [`Metrics::merge`] interleaved
    /// the raw samples.
    pub fn track_replace(&mut self, name: &str, series: Vec<(u64, f64)>) {
        if series.is_empty() {
            self.tracks.remove(name);
        } else {
            self.tracks.insert(name.to_string(), series);
        }
    }

    /// Fold `other` into `self`: counters sum, gauges take `other`'s
    /// value, histograms merge, track series interleave in time order —
    /// equivalent to one registry having recorded the union of both
    /// sample streams (see the property tests in `tests/profile_props.rs`).
    pub fn merge(&mut self, other: &Metrics) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            self.gauges.insert(k, v);
        }
        for (&k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
        for (k, series) in &other.tracks {
            let dst = self.tracks.entry(k.clone()).or_default();
            dst.extend(series.iter().copied());
            dst.sort_by_key(|&(t, _)| t);
        }
    }
}

/// What kind of synchronization object a contention row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// Blocking lock ([`simcore::SimLock`]) — the mpi `ucp_progress` model.
    Lock,
    /// Non-blocking try-lock ([`simcore::SimTryLock`]).
    TryLock,
    /// Serialized service center ([`simcore::SimResource`]).
    Resource,
}

impl ResourceKind {
    /// Short display form.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Lock => "lock",
            ResourceKind::TryLock => "trylock",
            ResourceKind::Resource => "resource",
        }
    }
}

/// Accumulated wait-vs-service time for one named resource.
#[derive(Debug, Clone, Copy)]
pub struct ContentionStat {
    /// What the underlying object is.
    pub kind: ResourceKind,
    /// Total acquisitions/accesses/attempts.
    pub events: u64,
    /// Events that experienced contention (waited, queued, or failed the
    /// try).
    pub contended: u64,
    /// Total time spent waiting (spin/park/queue) before service, ns.
    pub total_wait_ns: u64,
    /// Total time spent in service / holding the object, ns.
    pub total_service_ns: u64,
}

impl ContentionStat {
    fn new(kind: ResourceKind) -> Self {
        ContentionStat { kind, events: 0, contended: 0, total_wait_ns: 0, total_service_ns: 0 }
    }

    /// Mean wait per event, ns.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_wait_ns as f64 / self.events as f64
        }
    }
}

/// Per-resource contention attribution, fed by the `simcore::probe` hook.
#[derive(Debug, Default)]
pub struct ContentionTable {
    rows: BTreeMap<&'static str, ContentionStat>,
}

impl ContentionTable {
    /// Create an empty table.
    pub fn new() -> Self {
        ContentionTable::default()
    }

    /// Record one event against `name`.
    #[inline]
    pub fn record(
        &mut self,
        name: &'static str,
        kind: ResourceKind,
        wait_ns: u64,
        service_ns: u64,
        contended: bool,
    ) {
        let row = self.rows.entry(name).or_insert_with(|| ContentionStat::new(kind));
        row.events += 1;
        row.contended += contended as u64;
        row.total_wait_ns += wait_ns;
        row.total_service_ns += service_ns;
    }

    /// Fold `other`'s rows into this table (events/wait/service sum per
    /// resource name) — the sharded-world merge. Equivalent to one table
    /// having observed both event streams.
    pub fn merge(&mut self, other: &ContentionTable) {
        for (&name, s) in &other.rows {
            let row = self.rows.entry(name).or_insert_with(|| ContentionStat::new(s.kind));
            row.events += s.events;
            row.contended += s.contended;
            row.total_wait_ns += s.total_wait_ns;
            row.total_service_ns += s.total_service_ns;
        }
    }

    /// Rows ranked by total wait time, descending (name breaks ties).
    pub fn ranking(&self) -> Vec<(&'static str, ContentionStat)> {
        let mut v: Vec<_> = self.rows.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by(|a, b| b.1.total_wait_ns.cmp(&a.1.total_wait_ns).then(a.0.cmp(b.0)));
        v
    }

    /// Look up one row.
    pub fn get(&self, name: &str) -> Option<&ContentionStat> {
        self.rows.get(name)
    }

    /// Number of distinct resources seen.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists() {
        let mut m = Metrics::new();
        m.counter_add("a", 2);
        m.counter_add("a", 3);
        m.gauge_set("g", 7);
        m.gauge_add("g", -2);
        m.hist_record("h", 100);
        m.hist_record("h", 200);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.gauge("g"), 5);
        assert_eq!(m.hist("h").unwrap().count(), 2);
        assert_eq!(m.counters().count(), 1);
    }

    #[test]
    fn track_series_accumulate() {
        let mut m = Metrics::new();
        m.track_sample("q", 10, 1.0);
        m.track_sample("q", 20, 2.0);
        let (name, series) = m.tracks().next().unwrap();
        assert_eq!(name, "q");
        assert_eq!(series, &[(10, 1.0), (20, 2.0)]);
    }

    #[test]
    fn contention_ranking_orders_by_wait() {
        let mut t = ContentionTable::new();
        t.record("small", ResourceKind::TryLock, 10, 5, false);
        t.record("big", ResourceKind::Lock, 1000, 50, true);
        t.record("big", ResourceKind::Lock, 500, 50, true);
        let ranking = t.ranking();
        assert_eq!(ranking[0].0, "big");
        assert_eq!(ranking[0].1.total_wait_ns, 1500);
        assert_eq!(ranking[0].1.contended, 2);
        assert_eq!(ranking[1].0, "small");
        assert!(t.get("big").unwrap().mean_wait_ns() > 0.0);
    }
}
