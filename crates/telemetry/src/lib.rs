//! # telemetry — virtual-time observability for the simulated stack
//!
//! A single subsystem every layer reports into:
//!
//! * a **metrics registry** ([`Metrics`]): counters, gauges and
//!   log-bucketed histograms ([`Histogram`]) with p50/p90/p99, all
//!   `&'static str`-keyed with no steady-state allocation;
//! * **parcel-lifecycle flow tracing** ([`FlowTracer`]): a per-parcel
//!   stage timeline (`put → queue → serialize → inject → wire → match →
//!   deliver → spawn`) stitched across localities via an out-of-band
//!   route registry, exported as Chrome-trace flow events
//!   ([`chrome::chrome_trace`]) and a latency-breakdown report
//!   ([`report::Breakdown`]);
//! * **contention attribution** ([`ContentionTable`]): wait-vs-service
//!   time per named `SimLock`/`SimTryLock`/`SimResource`, fed through
//!   `simcore::probe`, ranked by total wait
//!   ([`report::ContentionReport`]);
//! * a **virtual-time core profiler** ([`CoreProfile`]): per-core
//!   `working/progress/lock-wait/serialize/idle` accounting whose state
//!   durations partition each core's elapsed virtual time exactly, with
//!   folded-stack flamegraph output and a ranked core-time report (see
//!   [`profile`]).
//!
//! ## Enable/disable
//!
//! The collector is a thread-local `Option<Rc<Telemetry>>`. Call sites go
//! through the free functions in this module, which no-op when disabled:
//! the disabled cost is one thread-local borrow and a `None` check, with
//! zero allocation. Telemetry is *pure observation* — it never schedules
//! events, charges virtual time, or alters wire traffic — so enabling it
//! does not change simulation results, and disabling it reproduces
//! byte-identical event streams (see `tests/golden_trace.rs`).

pub mod chrome;
pub mod critpath;
pub mod flow;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;

use std::cell::RefCell;
use std::rc::Rc;

use simcore::{CausalLog, SimTime, Span};

pub use critpath::{ComponentShare, CritPath, ParcelPath, PathSegment};
pub use flow::{stage, FlowRec, FlowTracer, STAGE_NAMES};
pub use hist::Histogram;
pub use metrics::{ContentionStat, ContentionTable, Metrics, ResourceKind};
pub use profile::{CoreProfile, CoreState, CoreTimeReport};
pub use report::{Breakdown, ContentionReport};

/// The collector: metrics + flows + contention, behind one `RefCell`.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: RefCell<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Metrics,
    flows: FlowTracer,
    contention: ContentionTable,
    spans: Vec<Span>,
    profile: CoreProfile,
    /// Parcels begun but not yet delivered, sampled as the
    /// `parcels.in_flight` counter track.
    in_flight: i64,
    /// The causal provenance log ([`simcore::causal`]), installed by
    /// [`enable`] alongside the contention probe.
    causal: Option<Rc<CausalLog>>,
}

impl Telemetry {
    /// Create a detached collector (not installed anywhere).
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Add `n` to counter `key`.
    pub fn counter_add(&self, key: &'static str, n: u64) {
        self.inner.borrow_mut().metrics.counter_add(key, n);
    }

    /// Set gauge `key`.
    pub fn gauge_set(&self, key: &'static str, v: i64) {
        self.inner.borrow_mut().metrics.gauge_set(key, v);
    }

    /// Record into histogram `key`.
    pub fn hist_record(&self, key: &'static str, v: u64) {
        self.inner.borrow_mut().metrics.hist_record(key, v);
    }

    /// Append a counter-track sample.
    pub fn track_sample(&self, name: &str, t: SimTime, v: f64) {
        self.inner.borrow_mut().metrics.track_sample(name, t.as_nanos(), v);
    }

    /// Start a parcel flow; returns its id (0 when the tracer is full).
    pub fn flow_begin(&self, src: usize, dst: usize, src_core: usize, t: SimTime) -> u64 {
        let inner = &mut *self.inner.borrow_mut();
        let id = inner.flows.begin(src, dst, src_core, t);
        if id != 0 {
            inner.in_flight += 1;
            let v = inner.in_flight as f64;
            inner.metrics.track_sample("parcels.in_flight", t.as_nanos(), v);
        }
        id
    }

    /// Mark `stage` on one flow.
    pub fn flow_mark(&self, id: u64, stage: usize, t: SimTime) {
        let inner = &mut *self.inner.borrow_mut();
        if inner.flows.mark(id, stage, t) && stage == stage::DELIVER {
            inner.in_flight -= 1;
            let v = inner.in_flight as f64;
            inner.metrics.track_sample("parcels.in_flight", t.as_nanos(), v);
        }
    }

    /// Mark `stage` on a batch of flows.
    pub fn flow_mark_many(&self, ids: &[u64], stage: usize, t: SimTime) {
        if !ids.is_empty() {
            let inner = &mut *self.inner.borrow_mut();
            let newly = inner.flows.mark_many(ids, stage, t);
            if newly > 0 && stage == stage::DELIVER {
                inner.in_flight -= newly as i64;
                let v = inner.in_flight as f64;
                inner.metrics.track_sample("parcels.in_flight", t.as_nanos(), v);
            }
        }
    }

    /// Record the delivering core for `ids`.
    pub fn flow_set_dst_core(&self, ids: &[u64], core: usize) {
        if !ids.is_empty() {
            self.inner.borrow_mut().flows.set_dst_core(ids, core);
        }
    }

    /// Sender side of cross-locality stitching.
    pub fn register_route(&self, src: usize, dst: usize, tag_base: u64, flows: &[u64]) {
        self.inner.borrow_mut().flows.register_route(src, dst, tag_base, flows);
    }

    /// Receiver side of cross-locality stitching.
    pub fn take_route(&self, src: usize, dst: usize, tag_base: u64) -> Vec<u64> {
        self.inner.borrow_mut().flows.take_route(src, dst, tag_base)
    }

    /// Read access to the metrics registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&Metrics) -> R) -> R {
        f(&self.inner.borrow().metrics)
    }

    /// Read access to the recorded flows.
    pub fn with_flows<R>(&self, f: impl FnOnce(&[FlowRec]) -> R) -> R {
        f(self.inner.borrow().flows.flows())
    }

    /// Read access to the contention table.
    pub fn with_contention<R>(&self, f: impl FnOnce(&ContentionTable) -> R) -> R {
        f(&self.inner.borrow().contention)
    }

    /// Number of recorded flows.
    pub fn flow_count(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Build the per-stage latency breakdown for `config`.
    pub fn breakdown(&self, config: &str) -> Breakdown {
        Breakdown::from_flows(config, self.inner.borrow().flows.flows())
    }

    /// Build the wait-time-ranked contention report for `config`.
    pub fn contention_report(&self, config: &str) -> ContentionReport {
        ContentionReport {
            config: config.to_string(),
            rows: self.inner.borrow().contention.ranking(),
        }
    }

    /// Set the locality whose event handler is currently executing, so
    /// probe-driven profiler overlays attribute to the right locality.
    pub fn profile_set_loc(&self, loc: usize) {
        self.inner.borrow_mut().profile.set_loc(loc);
    }

    /// Record a scheduler-level (base) profiler interval on `(loc, core)`.
    pub fn profile_record(
        &self,
        loc: usize,
        core: usize,
        state: CoreState,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner.borrow_mut().profile.record_base(
            loc,
            core,
            state,
            label,
            start.as_nanos(),
            end.as_nanos(),
        );
    }

    /// Record a probe-level (overlay) profiler interval on `core` of the
    /// current locality.
    pub fn profile_overlay(
        &self,
        core: usize,
        state: CoreState,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner.borrow_mut().profile.record_overlay_here(
            core,
            state,
            label,
            start.as_nanos(),
            end.as_nanos(),
        );
    }

    /// Read access to the core profile.
    pub fn with_profile<R>(&self, f: impl FnOnce(&CoreProfile) -> R) -> R {
        f(&self.inner.borrow().profile)
    }

    /// Build the ranked core-time report for `config`.
    pub fn core_report(&self, config: &str) -> CoreTimeReport {
        self.inner.borrow().profile.report(config)
    }

    /// Render folded-stack flamegraph lines for `config`.
    pub fn folded_stacks(&self, config: &str) -> String {
        self.inner.borrow().profile.folded(config)
    }

    /// Deposit engine spans (drained from per-locality `simcore::Tracer`s
    /// — `parcelport::World` does this automatically on drop).
    pub fn add_spans(&self, spans: impl IntoIterator<Item = Span>) {
        self.inner.borrow_mut().spans.extend(spans);
    }

    /// Number of deposited spans.
    pub fn span_count(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Render the combined Chrome-trace JSON (spans + flows + counters).
    pub fn chrome_trace(&self, spans: &[Span]) -> String {
        let inner = self.inner.borrow();
        chrome::chrome_trace(spans, inner.flows.flows(), &inner.metrics)
    }

    /// [`Telemetry::chrome_trace`] over the deposited spans.
    pub fn chrome_trace_collected(&self) -> String {
        let inner = self.inner.borrow();
        chrome::chrome_trace(&inner.spans, inner.flows.flows(), &inner.metrics)
    }

    /// The causal provenance log captured by this collector, if any
    /// (present on collectors made by [`enable`]).
    pub fn causal_log(&self) -> Option<Rc<CausalLog>> {
        self.inner.borrow().causal.clone()
    }

    /// Extract the makespan critical path from the captured causal log.
    /// `None` when no causal log is attached or nothing was recorded.
    pub fn critpath(&self, config: &str) -> Option<CritPath> {
        let log = self.causal_log()?;
        let cp = CritPath::from_log(config, &log);
        (cp.total_ns > 0).then_some(cp)
    }

    /// Per-parcel critical paths (stage telescoping) for delivered flows.
    pub fn parcel_paths(&self) -> Vec<ParcelPath> {
        critpath::parcel_paths(self.inner.borrow().flows.flows())
    }

    /// [`Telemetry::chrome_trace_collected`] plus critical-path overlay:
    /// on-path segments as spans on a dedicated `critpath` track, a
    /// `critpath.total_us` counter, and on-path parcel flows highlighted.
    pub fn chrome_trace_with_critpath(&self, cp: &CritPath) -> String {
        let inner = self.inner.borrow();
        chrome::chrome_trace_with_critpath(&inner.spans, inner.flows.flows(), &inner.metrics, cp)
    }
}

/// Adapter feeding `simcore::probe` events into the contention table.
struct ProbeAdapter(Rc<Telemetry>);

impl simcore::Probe for ProbeAdapter {
    fn lock_wait(
        &self,
        name: &'static str,
        core: usize,
        now: SimTime,
        wait_ns: u64,
        hold_ns: u64,
        contended: bool,
    ) {
        let inner = &mut *self.0.inner.borrow_mut();
        inner.contention.record(name, ResourceKind::Lock, wait_ns, hold_ns, contended);
        // The wait interval `[now, now+wait)` is spin time on `core`; the
        // profiler carves it out of whatever base interval encloses it.
        if wait_ns > 0 {
            inner.profile.record_overlay_here(
                core,
                CoreState::LockWait,
                name,
                now.as_nanos(),
                now.as_nanos() + wait_ns,
            );
        }
    }

    fn try_lock(&self, name: &'static str, _now: SimTime, acquired: bool, hold_ns: u64) {
        // A failed try never waits — that is the point of the LCI design;
        // it only counts as a contended event.
        self.0.inner.borrow_mut().contention.record(
            name,
            ResourceKind::TryLock,
            0,
            hold_ns,
            !acquired,
        );
    }

    fn resource_access(
        &self,
        name: &'static str,
        core: usize,
        now: SimTime,
        wait_ns: u64,
        service_ns: u64,
        transferred: bool,
    ) {
        let inner = &mut *self.0.inner.borrow_mut();
        inner.contention.record(
            name,
            ResourceKind::Resource,
            wait_ns,
            service_ns,
            wait_ns > 0 || transferred,
        );
        // Queueing on a serialized resource is lock-wait-like core time.
        if wait_ns > 0 {
            inner.profile.record_overlay_here(
                core,
                CoreState::LockWait,
                name,
                now.as_nanos(),
                now.as_nanos() + wait_ns,
            );
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<Telemetry>>> = const { RefCell::new(None) };
}

/// Install a fresh collector on this thread (and hook `simcore::probe`
/// plus the `simcore::causal` provenance log). Returns the handle; keep
/// it to read reports after [`disable`].
pub fn enable() -> Rc<Telemetry> {
    // A stale collector from a run that never called `disable` must not
    // leak state (probe adapter, causal cursor) into this run.
    disable();
    let t = Rc::new(Telemetry::new());
    let log = CausalLog::new();
    t.inner.borrow_mut().causal = Some(log.clone());
    ACTIVE.with(|c| *c.borrow_mut() = Some(t.clone()));
    simcore::probe::install(Rc::new(ProbeAdapter(t.clone())));
    simcore::causal::install(log);
    t
}

/// Remove the active collector, the contention probe and the causal
/// collector, resetting every piece of thread-local recording state so
/// back-to-back instrumented runs in one process cannot contaminate each
/// other. The returned handle from [`enable`] stays valid for reading
/// reports.
pub fn disable() {
    ACTIVE.with(|c| *c.borrow_mut() = None);
    simcore::probe::uninstall();
    simcore::causal::uninstall();
}

/// Whether a collector is active on this thread.
pub fn enabled() -> bool {
    ACTIVE.with(|c| c.borrow().is_some())
}

/// The active collector, if any.
pub fn active() -> Option<Rc<Telemetry>> {
    ACTIVE.with(|c| c.borrow().clone())
}

/// Run `f` against the active collector; no-op when disabled.
#[inline]
pub fn with(f: impl FnOnce(&Telemetry)) {
    ACTIVE.with(|c| {
        if let Some(t) = c.borrow().as_deref() {
            f(t)
        }
    });
}

/// Start a flow (0 when disabled).
#[inline]
pub fn flow_begin(src: usize, dst: usize, src_core: usize, t: SimTime) -> u64 {
    let mut id = 0;
    with(|tel| id = tel.flow_begin(src, dst, src_core, t));
    id
}

/// Mark a stage on one flow; no-op when disabled or `id == 0`.
#[inline]
pub fn flow_mark(id: u64, stage: usize, t: SimTime) {
    if id != 0 {
        with(|tel| tel.flow_mark(id, stage, t));
    }
}

/// Mark a stage on a batch of flows; no-op when disabled or `ids` empty.
#[inline]
pub fn flow_mark_many(ids: &[u64], stage: usize, t: SimTime) {
    if !ids.is_empty() {
        with(|tel| tel.flow_mark_many(ids, stage, t));
    }
}

/// Record the delivering core; no-op when disabled or `ids` empty.
#[inline]
pub fn flow_set_dst_core(ids: &[u64], core: usize) {
    if !ids.is_empty() {
        with(|tel| tel.flow_set_dst_core(ids, core));
    }
}

/// Register a message route for cross-locality stitching.
#[inline]
pub fn register_route(src: usize, dst: usize, tag_base: u64, flows: &[u64]) {
    if !flows.is_empty() {
        with(|tel| tel.register_route(src, dst, tag_base, flows));
    }
}

/// Claim a registered route (empty when disabled or unknown).
#[inline]
pub fn take_route(src: usize, dst: usize, tag_base: u64) -> Vec<u64> {
    let mut flows = Vec::new();
    with(|tel| flows = tel.take_route(src, dst, tag_base));
    flows
}

/// Add to a counter on the active collector.
#[inline]
pub fn counter_add(key: &'static str, n: u64) {
    with(|tel| tel.counter_add(key, n));
}

/// Record into a histogram on the active collector.
#[inline]
pub fn hist_record(key: &'static str, v: u64) {
    with(|tel| tel.hist_record(key, v));
}

/// Append a counter-track sample on the active collector.
#[inline]
pub fn track_sample(name: &str, t: SimTime, v: f64) {
    with(|tel| tel.track_sample(name, t, v));
}

/// Set the profiler's current-locality context; no-op when disabled.
#[inline]
pub fn profile_set_loc(loc: usize) {
    with(|tel| tel.profile_set_loc(loc));
}

/// Record a base profiler interval; no-op when disabled or empty.
#[inline]
pub fn profile_record(
    loc: usize,
    core: usize,
    state: CoreState,
    label: &'static str,
    start: SimTime,
    end: SimTime,
) {
    if end > start {
        with(|tel| tel.profile_record(loc, core, state, label, start, end));
    }
}

/// Record an overlay profiler interval on the current locality; no-op
/// when disabled or empty.
#[inline]
pub fn profile_overlay(
    core: usize,
    state: CoreState,
    label: &'static str,
    start: SimTime,
    end: SimTime,
) {
    if end > start {
        with(|tel| tel.profile_overlay(core, state, label, start, end));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests touching the thread-local collector.
    fn with_clean_state(f: impl FnOnce()) {
        disable();
        f();
        disable();
    }

    #[test]
    fn disabled_free_functions_are_noops() {
        with_clean_state(|| {
            assert!(!enabled());
            assert_eq!(flow_begin(0, 1, 0, SimTime::ZERO), 0);
            flow_mark(1, stage::PUT, SimTime::ZERO);
            counter_add("x", 1);
            assert!(take_route(0, 1, 5).is_empty());
            assert!(active().is_none());
        });
    }

    #[test]
    fn enable_collects_and_survives_disable() {
        with_clean_state(|| {
            let tel = enable();
            assert!(enabled());
            let id = flow_begin(0, 1, 2, SimTime::from_nanos(5));
            assert_eq!(id, 1);
            flow_mark(id, stage::DELIVER, SimTime::from_nanos(500));
            counter_add("parcels", 3);
            register_route(0, 1, 7, &[id]);
            assert_eq!(take_route(0, 1, 7), vec![id]);
            disable();
            // The handle still reads collected data after disable.
            assert_eq!(tel.flow_count(), 1);
            assert_eq!(tel.with_metrics(|m| m.counter("parcels")), 3);
            assert_eq!(flow_begin(0, 1, 0, SimTime::ZERO), 0);
        });
    }

    #[test]
    fn back_to_back_runs_do_not_cross_contaminate() {
        with_clean_state(|| {
            // First instrumented "run": flows, routes, counters, causal
            // provenance, profiler locality cursor.
            let first = enable();
            let id = flow_begin(0, 1, 0, SimTime::ZERO);
            flow_mark(id, stage::DELIVER, SimTime::from_nanos(100));
            register_route(0, 1, 99, &[id]);
            counter_add("parcels", 7);
            profile_set_loc(3);
            simcore::causal::on_execute(1, 50, 0);
            simcore::causal::mark(
                "lock",
                simcore::causal::MarkKind::Hold,
                SimTime::ZERO,
                SimTime::from_nanos(10),
                0,
            );
            disable();
            assert!(!simcore::causal::installed());
            assert_eq!(simcore::causal::current_node(), 0);

            // Second run starts from a blank slate.
            let second = enable();
            assert_eq!(second.flow_count(), 0);
            assert_eq!(second.with_metrics(|m| m.counter("parcels")), 0);
            assert!(second.take_route(0, 1, 99).is_empty(), "routes must not leak");
            let log = second.causal_log().expect("fresh causal log");
            assert_eq!(log.node_count(), 0);
            assert_eq!(log.mark_count(), 0);
            let id2 = flow_begin(0, 1, 0, SimTime::ZERO);
            assert_eq!(id2, 1, "flow ids restart per collector");
            disable();

            // The first handle still holds only its own data.
            assert_eq!(first.flow_count(), 1);
            assert_eq!(first.with_metrics(|m| m.counter("parcels")), 7);
            assert_eq!(first.causal_log().unwrap().node_count(), 1);
            assert_eq!(second.flow_count(), 1);
        });
    }

    #[test]
    fn enable_while_enabled_resets_cleanly() {
        with_clean_state(|| {
            let stale = enable();
            counter_add("x", 1);
            // A run that forgot to disable: the next enable must not let
            // the stale adapter keep collecting.
            let fresh = enable();
            counter_add("x", 1);
            disable();
            assert_eq!(stale.with_metrics(|m| m.counter("x")), 1);
            assert_eq!(fresh.with_metrics(|m| m.counter("x")), 1);
        });
    }

    #[test]
    fn probe_feeds_contention_table() {
        with_clean_state(|| {
            let tel = enable();
            let mut lock = simcore::SimLock::new("ucp_progress", 500, 200);
            lock.acquire(0, SimTime::ZERO, 1_000);
            lock.acquire(1, SimTime::ZERO, 1_000); // convoy: waits
            let mut tl = simcore::SimTryLock::new("lci.progress");
            let _ = tl.try_acquire(SimTime::ZERO, 100);
            let _ = tl.try_acquire(SimTime::ZERO, 100); // busy
            let mut res = simcore::SimResource::new("nic.tx_post", 50);
            res.access(SimTime::ZERO, 0, 10);
            disable();
            let report = tel.contention_report("test");
            assert_eq!(report.rows[0].0, "ucp_progress");
            assert!(report.rows[0].1.total_wait_ns > 0);
            let names: Vec<_> = report.rows.iter().map(|r| r.0).collect();
            assert!(names.contains(&"lci.progress") && names.contains(&"nic.tx_post"));
            // The try-lock never accumulates wait.
            assert_eq!(tel.with_contention(|c| c.get("lci.progress").unwrap().total_wait_ns), 0);
        });
    }
}
