//! # telemetry — virtual-time observability for the simulated stack
//!
//! A single subsystem every layer reports into:
//!
//! * a **metrics registry** ([`Metrics`]): counters, gauges and
//!   log-bucketed histograms ([`Histogram`]) with p50/p90/p99, all
//!   `&'static str`-keyed with no steady-state allocation;
//! * **parcel-lifecycle flow tracing** ([`FlowTracer`]): a per-parcel
//!   stage timeline (`put → queue → serialize → inject → wire → match →
//!   deliver → spawn`) stitched across localities via an out-of-band
//!   route registry, exported as Chrome-trace flow events
//!   ([`chrome::chrome_trace`]) and a latency-breakdown report
//!   ([`report::Breakdown`]);
//! * **contention attribution** ([`ContentionTable`]): wait-vs-service
//!   time per named `SimLock`/`SimTryLock`/`SimResource`, fed through
//!   `simcore::probe`, ranked by total wait
//!   ([`report::ContentionReport`]);
//! * a **virtual-time core profiler** ([`CoreProfile`]): per-core
//!   `working/progress/lock-wait/serialize/idle` accounting whose state
//!   durations partition each core's elapsed virtual time exactly, with
//!   folded-stack flamegraph output and a ranked core-time report (see
//!   [`profile`]).
//!
//! ## Enable/disable
//!
//! The collector is a thread-local `Option<Rc<Telemetry>>`. Call sites go
//! through the free functions in this module, which no-op when disabled:
//! the disabled cost is one thread-local borrow and a `None` check, with
//! zero allocation. Telemetry is *pure observation* — it never schedules
//! events, charges virtual time, or alters wire traffic — so enabling it
//! does not change simulation results, and disabling it reproduces
//! byte-identical event streams (see `tests/golden_trace.rs`).

pub mod chrome;
pub mod critpath;
pub mod diff;
pub mod flow;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod record;
pub mod report;
pub mod timeline;

use std::cell::RefCell;
use std::rc::Rc;

use simcore::{CausalLog, SimTime, Span};

pub use critpath::{ComponentShare, CritPath, ParcelPath, PathSegment};
pub use diff::RecordDiff;
pub use flow::{stage, FlowRec, FlowTracer, STAGE_NAMES};
pub use hist::Histogram;
pub use metrics::{ContentionStat, ContentionTable, Metrics, ResourceKind};
pub use profile::{CoreProfile, CoreState, CoreTimeReport};
pub use record::{RunMeta, RunRecord};
pub use report::{Breakdown, ContentionReport};
pub use timeline::{FlightDump, SloAlert, SloRule, Timeline, TimelineConfig};

/// The collector: metrics + flows + contention, behind one `RefCell`.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: RefCell<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Metrics,
    flows: FlowTracer,
    contention: ContentionTable,
    spans: Vec<Span>,
    profile: CoreProfile,
    /// Parcels begun but not yet delivered, sampled as the
    /// `parcels.in_flight` counter track.
    in_flight: i64,
    /// The causal provenance log ([`simcore::causal`]), installed by
    /// [`enable`] alongside the contention probe.
    causal: Option<Rc<CausalLog>>,
    /// The windowed time-series layer ([`timeline`]), present only when
    /// timelines were requested ([`enable_with`] /
    /// [`Telemetry::enable_timeline`]).
    timeline: Option<Timeline>,
}

impl Inner {
    /// Feed one newly delivered flow into the windowed `parcel.latency_ns`
    /// series (plus its run-total twin) and the flight-recorder ring.
    /// No-op when timelines are off, so plain instrumented runs keep
    /// their exact metric key set.
    fn flow_delivered(&mut self, id: u64, t: SimTime) {
        if self.timeline.is_none() || id == 0 {
            return;
        }
        let (src, dst, put) = match self.flows.rec(id) {
            Some(rec) => (rec.src, rec.dst, rec.at(stage::PUT).unwrap_or(t.as_nanos())),
            // Lane mode: a foreign id's record lives on the sending
            // lane's tracer; read the published metadata instead.
            None => match flow::flow_meta(id) {
                Some(meta) => meta,
                None => return,
            },
        };
        let deliver = t.as_nanos();
        self.metrics.hist_record("parcel.latency_ns", deliver.saturating_sub(put));
        if let Some(tl) = &mut self.timeline {
            tl.flow_delivered(id, src, dst, put, deliver);
        }
    }

    /// Take a flight-recorder dump if one is armed and its post-roll has
    /// elapsed (called after anything that advances the timeline cursor).
    fn tl_poll(&mut self) {
        let Some(tl) = &mut self.timeline else { return };
        if tl.dump_due() {
            let cap = tl.dump_marks_cap();
            let marks = self.causal.as_ref().map(|log| causal_tail(log, cap)).unwrap_or_default();
            tl.take_dump(marks);
        }
    }
}

/// The last `cap` causal marks, as flight-recorder dump rows.
fn causal_tail(log: &CausalLog, cap: usize) -> Vec<timeline::DumpMark> {
    use simcore::causal::MarkKind;
    log.with_data(|_, _, marks| {
        marks
            .iter()
            .rev()
            .take(cap)
            .rev()
            .map(|m| {
                let kind = match m.kind {
                    MarkKind::Wait => "wait",
                    MarkKind::Hold => "hold",
                    MarkKind::Work => "work",
                    MarkKind::Wire => "wire",
                };
                (m.label, kind, m.start, m.end)
            })
            .collect()
    })
}

impl Telemetry {
    /// Create a detached collector (not installed anywhere).
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Add `n` to counter `key`.
    pub fn counter_add(&self, key: &'static str, n: u64) {
        let inner = &mut *self.inner.borrow_mut();
        inner.metrics.counter_add(key, n);
        // Untimed updates attribute to the timeline's current window so
        // window sums still reproduce the run total for every key.
        if let Some(tl) = &mut inner.timeline {
            let t = tl.cursor_ns();
            tl.counter_at(key, n, t);
        }
    }

    /// Add `n` to counter `key`, attributing it to instant `t` in the
    /// windowed timeline (identical to [`Telemetry::counter_add`] when
    /// timelines are off).
    pub fn counter_add_at(&self, key: &'static str, n: u64, t: SimTime) {
        let inner = &mut *self.inner.borrow_mut();
        inner.metrics.counter_add(key, n);
        if let Some(tl) = &mut inner.timeline {
            tl.counter_at(key, n, t.as_nanos());
            inner.tl_poll();
        }
    }

    /// Record `v` into histogram `key`, attributing it to instant `t` in
    /// the windowed timeline (identical to [`Telemetry::hist_record`]
    /// when timelines are off).
    pub fn hist_record_at(&self, key: &'static str, v: u64, t: SimTime) {
        let inner = &mut *self.inner.borrow_mut();
        inner.metrics.hist_record(key, v);
        if let Some(tl) = &mut inner.timeline {
            tl.hist_at(key, v, t.as_nanos());
            inner.tl_poll();
        }
    }

    /// Set gauge `key`.
    pub fn gauge_set(&self, key: &'static str, v: i64) {
        self.inner.borrow_mut().metrics.gauge_set(key, v);
    }

    /// Record into histogram `key`.
    pub fn hist_record(&self, key: &'static str, v: u64) {
        let inner = &mut *self.inner.borrow_mut();
        inner.metrics.hist_record(key, v);
        if let Some(tl) = &mut inner.timeline {
            let t = tl.cursor_ns();
            tl.hist_at(key, v, t);
        }
    }

    /// Append a counter-track sample.
    pub fn track_sample(&self, name: &str, t: SimTime, v: f64) {
        let inner = &mut *self.inner.borrow_mut();
        inner.metrics.track_sample(name, t.as_nanos(), v);
        if let Some(tl) = &mut inner.timeline {
            tl.observe(t.as_nanos());
            inner.tl_poll();
        }
    }

    /// Start a parcel flow; returns its id (0 when the tracer is full).
    pub fn flow_begin(&self, src: usize, dst: usize, src_core: usize, t: SimTime) -> u64 {
        let inner = &mut *self.inner.borrow_mut();
        let id = inner.flows.begin(src, dst, src_core, t);
        if id != 0 {
            inner.in_flight += 1;
            let v = inner.in_flight as f64;
            inner.metrics.track_sample("parcels.in_flight", t.as_nanos(), v);
            // Lane mode with timelines: publish (src, dst, put) so the
            // receiving lane can feed its latency series at delivery.
            if inner.timeline.is_some() && inner.flows.lane_mode() {
                flow::register_flow_meta(id, src, dst, t.as_nanos());
            }
        }
        if let Some(tl) = &mut inner.timeline {
            tl.observe(t.as_nanos());
        }
        id
    }

    /// Mark `stage` on one flow.
    pub fn flow_mark(&self, id: u64, stage: usize, t: SimTime) {
        let inner = &mut *self.inner.borrow_mut();
        if inner.flows.mark(id, stage, t) && stage == stage::DELIVER {
            inner.in_flight -= 1;
            let v = inner.in_flight as f64;
            inner.metrics.track_sample("parcels.in_flight", t.as_nanos(), v);
            inner.flow_delivered(id, t);
        }
        if let Some(tl) = &mut inner.timeline {
            tl.observe(t.as_nanos());
            inner.tl_poll();
        }
    }

    /// Mark `stage` on a batch of flows.
    pub fn flow_mark_many(&self, ids: &[u64], stage: usize, t: SimTime) {
        if !ids.is_empty() {
            let inner = &mut *self.inner.borrow_mut();
            if stage == stage::DELIVER && inner.timeline.is_some() {
                // Per-id marking so each newly delivered parcel lands on
                // the flight recorder and in the windowed latency series.
                let mut newly = 0i64;
                for &id in ids {
                    if inner.flows.mark(id, stage, t) {
                        newly += 1;
                        inner.flow_delivered(id, t);
                    }
                }
                if newly > 0 {
                    inner.in_flight -= newly;
                    let v = inner.in_flight as f64;
                    inner.metrics.track_sample("parcels.in_flight", t.as_nanos(), v);
                }
            } else {
                let newly = inner.flows.mark_many(ids, stage, t);
                if newly > 0 && stage == stage::DELIVER {
                    inner.in_flight -= newly as i64;
                    let v = inner.in_flight as f64;
                    inner.metrics.track_sample("parcels.in_flight", t.as_nanos(), v);
                }
            }
            if let Some(tl) = &mut inner.timeline {
                tl.observe(t.as_nanos());
                inner.tl_poll();
            }
        }
    }

    /// Record the delivering core for `ids`.
    pub fn flow_set_dst_core(&self, ids: &[u64], core: usize) {
        if !ids.is_empty() {
            self.inner.borrow_mut().flows.set_dst_core(ids, core);
        }
    }

    /// Sender side of cross-locality stitching.
    pub fn register_route(&self, src: usize, dst: usize, tag_base: u64, flows: &[u64]) {
        self.inner.borrow_mut().flows.register_route(src, dst, tag_base, flows);
    }

    /// Receiver side of cross-locality stitching.
    pub fn take_route(&self, src: usize, dst: usize, tag_base: u64) -> Vec<u64> {
        self.inner.borrow_mut().flows.take_route(src, dst, tag_base)
    }

    /// Read access to the metrics registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&Metrics) -> R) -> R {
        f(&self.inner.borrow().metrics)
    }

    /// Read access to the recorded flows.
    pub fn with_flows<R>(&self, f: impl FnOnce(&[FlowRec]) -> R) -> R {
        f(self.inner.borrow().flows.flows())
    }

    /// Read access to the contention table.
    pub fn with_contention<R>(&self, f: impl FnOnce(&ContentionTable) -> R) -> R {
        f(&self.inner.borrow().contention)
    }

    /// Number of recorded flows.
    pub fn flow_count(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Build the per-stage latency breakdown for `config`.
    pub fn breakdown(&self, config: &str) -> Breakdown {
        Breakdown::from_flows(config, self.inner.borrow().flows.flows())
    }

    /// Build the wait-time-ranked contention report for `config`.
    pub fn contention_report(&self, config: &str) -> ContentionReport {
        ContentionReport {
            config: config.to_string(),
            rows: self.inner.borrow().contention.ranking(),
        }
    }

    /// Set the locality whose event handler is currently executing, so
    /// probe-driven profiler overlays attribute to the right locality.
    pub fn profile_set_loc(&self, loc: usize) {
        self.inner.borrow_mut().profile.set_loc(loc);
    }

    /// Record a scheduler-level (base) profiler interval on `(loc, core)`.
    pub fn profile_record(
        &self,
        loc: usize,
        core: usize,
        state: CoreState,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        let inner = &mut *self.inner.borrow_mut();
        inner.profile.record_base(loc, core, state, label, start.as_nanos(), end.as_nanos());
        if let Some(tl) = &mut inner.timeline {
            tl.observe(end.as_nanos());
            inner.tl_poll();
        }
    }

    /// Record a probe-level (overlay) profiler interval on `core` of the
    /// current locality.
    pub fn profile_overlay(
        &self,
        core: usize,
        state: CoreState,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner.borrow_mut().profile.record_overlay_here(
            core,
            state,
            label,
            start.as_nanos(),
            end.as_nanos(),
        );
    }

    /// Read access to the core profile.
    pub fn with_profile<R>(&self, f: impl FnOnce(&CoreProfile) -> R) -> R {
        f(&self.inner.borrow().profile)
    }

    /// Build the ranked core-time report for `config`.
    pub fn core_report(&self, config: &str) -> CoreTimeReport {
        self.inner.borrow().profile.report(config)
    }

    /// Render folded-stack flamegraph lines for `config`.
    pub fn folded_stacks(&self, config: &str) -> String {
        self.inner.borrow().profile.folded(config)
    }

    /// Deposit engine spans (drained from per-locality `simcore::Tracer`s
    /// — `parcelport::World` does this automatically on drop).
    pub fn add_spans(&self, spans: impl IntoIterator<Item = Span>) {
        self.inner.borrow_mut().spans.extend(spans);
    }

    /// Number of deposited spans.
    pub fn span_count(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Render the combined Chrome-trace JSON (spans + flows + counters).
    pub fn chrome_trace(&self, spans: &[Span]) -> String {
        let inner = self.inner.borrow();
        chrome::chrome_trace(spans, inner.flows.flows(), &inner.metrics)
    }

    /// [`Telemetry::chrome_trace`] over the deposited spans.
    pub fn chrome_trace_collected(&self) -> String {
        let inner = self.inner.borrow();
        chrome::chrome_trace(&inner.spans, inner.flows.flows(), &inner.metrics)
    }

    /// The causal provenance log captured by this collector, if any
    /// (present on collectors made by [`enable`]).
    pub fn causal_log(&self) -> Option<Rc<CausalLog>> {
        self.inner.borrow().causal.clone()
    }

    /// Extract the makespan critical path from the captured causal log.
    /// `None` when no causal log is attached or nothing was recorded.
    pub fn critpath(&self, config: &str) -> Option<CritPath> {
        let log = self.causal_log()?;
        let cp = CritPath::from_log(config, &log);
        (cp.total_ns > 0).then_some(cp)
    }

    /// Per-parcel critical paths (stage telescoping) for delivered flows.
    pub fn parcel_paths(&self) -> Vec<ParcelPath> {
        critpath::parcel_paths(self.inner.borrow().flows.flows())
    }

    /// [`Telemetry::chrome_trace_collected`] plus critical-path overlay:
    /// on-path segments as spans on a dedicated `critpath` track, a
    /// `critpath.total_us` counter, and on-path parcel flows highlighted.
    pub fn chrome_trace_with_critpath(&self, cp: &CritPath) -> String {
        let inner = self.inner.borrow();
        chrome::chrome_trace_with_critpath(&inner.spans, inner.flows.flows(), &inner.metrics, cp)
    }

    /// Attach a windowed timeline to this collector (normally done by
    /// [`enable_with`] before the run starts).
    pub fn enable_timeline(&self, cfg: TimelineConfig) {
        self.inner.borrow_mut().timeline = Some(Timeline::new(cfg));
    }

    /// Whether this collector carries a timeline.
    pub fn timeline_enabled(&self) -> bool {
        self.inner.borrow().timeline.is_some()
    }

    /// Read access to the timeline; `None` when timelines are off.
    pub fn with_timeline<R>(&self, f: impl FnOnce(&Timeline) -> R) -> Option<R> {
        self.inner.borrow().timeline.as_ref().map(f)
    }

    /// Add an SLO rule mid-run (e.g. an objective derived from a baseline
    /// phase of the same run); no-op when timelines are off.
    pub fn timeline_add_rule(&self, rule: SloRule) {
        if let Some(tl) = &mut self.inner.borrow_mut().timeline {
            tl.add_rule(rule);
        }
    }

    /// Record one egress-port access into the per-port windows; no-op
    /// when timelines are off.
    pub fn timeline_port(&self, name: &'static str, t: SimTime, wait_ns: u64, bytes: u64) {
        let inner = &mut *self.inner.borrow_mut();
        if let Some(tl) = &mut inner.timeline {
            tl.port_at(name, t.as_nanos(), wait_ns, bytes);
            inner.tl_poll();
        }
    }

    /// Record an injected fault at instant `t`, arming the flight
    /// recorder; no-op when timelines are off.
    pub fn fault_event_at(&self, label: &'static str, t: SimTime) {
        let inner = &mut *self.inner.borrow_mut();
        if let Some(tl) = &mut inner.timeline {
            tl.fault_event(label, t.as_nanos());
            inner.tl_poll();
        }
    }

    /// [`Telemetry::fault_event_at`] at the timeline's current cursor,
    /// for fault sites with no virtual clock in hand.
    pub fn fault_event(&self, label: &'static str) {
        let inner = &mut *self.inner.borrow_mut();
        if let Some(tl) = &mut inner.timeline {
            let t = tl.cursor_ns();
            tl.fault_event(label, t);
            inner.tl_poll();
        }
    }

    /// Close out the timeline at end of run: evaluate the remaining
    /// windows, take any still-armed flight-recorder dump, render each
    /// alert as a zero-duration span on its `slo/<rule>` track, and
    /// inject the per-window counter tracks into the metrics registry so
    /// the Chrome export grows timeline counter tracks. Idempotent; no-op
    /// when timelines are off.
    pub fn timeline_finalize(&self) {
        let inner = &mut *self.inner.borrow_mut();
        let Some(tl) = &mut inner.timeline else { return };
        if tl.finalized() {
            return;
        }
        tl.finalize();
        inner.tl_poll();
        let Some(tl) = &mut inner.timeline else { return };
        for a in tl.alerts() {
            inner.spans.push(Span {
                track: format!("slo/{}", a.rule),
                label: "alert",
                start: SimTime::from_nanos(a.end_ns),
                end: SimTime::from_nanos(a.end_ns),
            });
        }
        for (name, series) in tl.counter_tracks() {
            for (t, v) in series {
                inner.metrics.track_sample(&name, t, v);
            }
        }
    }

    /// The deterministic SLO alert list (empty when timelines are off).
    pub fn timeline_alerts(&self) -> Vec<SloAlert> {
        self.with_timeline(|tl| tl.alerts().to_vec()).unwrap_or_default()
    }

    /// Flight-recorder dumps taken so far (empty when timelines are off).
    pub fn timeline_dumps(&self) -> Vec<FlightDump> {
        self.with_timeline(|tl| tl.dumps().to_vec()).unwrap_or_default()
    }

    /// The machine-readable timeline document for `config` (see
    /// [`Timeline::to_json`]), with per-window core-state occupancy and
    /// critical-path slices filled in from the profiler and causal log.
    /// `None` when timelines are off.
    pub fn timeline_json(&self, config: &str) -> Option<String> {
        self.timeline_finalize();
        let cp = self.critpath(config);
        let inner = self.inner.borrow();
        let tl = inner.timeline.as_ref()?;
        let snap = inner.profile.snapshot();
        let occ = (!snap.is_empty())
            .then(|| timeline::slice_occupancy(snap.values(), tl.window_ns(), tl.num_windows()));
        let crit = cp.map(|cp| timeline::critpath_slices(&cp, tl.window_ns(), tl.num_windows()));
        Some(tl.to_json(config, &inner.metrics, occ.as_ref(), crit.as_deref()))
    }

    /// The OpenMetrics-style text exposition for `config`; `None` when
    /// timelines are off.
    pub fn timeline_text(&self, config: &str) -> Option<String> {
        self.timeline_finalize();
        self.with_timeline(|tl| tl.to_openmetrics(config))
    }

    /// The timeline configuration, if a timeline is attached — used to
    /// clone per-lane timelines in the sharded world.
    pub fn timeline_config(&self) -> Option<TimelineConfig> {
        self.with_timeline(|tl| tl.config())
    }
}

/// Adapter feeding `simcore::probe` events into the contention table.
struct ProbeAdapter(Rc<Telemetry>);

impl simcore::Probe for ProbeAdapter {
    fn lock_wait(
        &self,
        name: &'static str,
        core: usize,
        now: SimTime,
        wait_ns: u64,
        hold_ns: u64,
        contended: bool,
    ) {
        let inner = &mut *self.0.inner.borrow_mut();
        inner.contention.record(name, ResourceKind::Lock, wait_ns, hold_ns, contended);
        // The wait interval `[now, now+wait)` is spin time on `core`; the
        // profiler carves it out of whatever base interval encloses it.
        if wait_ns > 0 {
            inner.profile.record_overlay_here(
                core,
                CoreState::LockWait,
                name,
                now.as_nanos(),
                now.as_nanos() + wait_ns,
            );
        }
        if let Some(tl) = &mut inner.timeline {
            if contended {
                tl.probe_event(name, "lock", now.as_nanos(), wait_ns, hold_ns);
            } else {
                tl.observe(now.as_nanos());
            }
            inner.tl_poll();
        }
    }

    fn try_lock(&self, name: &'static str, now: SimTime, acquired: bool, hold_ns: u64) {
        // A failed try never waits — that is the point of the LCI design;
        // it only counts as a contended event.
        let inner = &mut *self.0.inner.borrow_mut();
        inner.contention.record(name, ResourceKind::TryLock, 0, hold_ns, !acquired);
        if let Some(tl) = &mut inner.timeline {
            tl.observe(now.as_nanos());
        }
    }

    fn resource_access(
        &self,
        name: &'static str,
        core: usize,
        now: SimTime,
        wait_ns: u64,
        service_ns: u64,
        transferred: bool,
    ) {
        let inner = &mut *self.0.inner.borrow_mut();
        inner.contention.record(
            name,
            ResourceKind::Resource,
            wait_ns,
            service_ns,
            wait_ns > 0 || transferred,
        );
        // Queueing on a serialized resource is lock-wait-like core time.
        if wait_ns > 0 {
            inner.profile.record_overlay_here(
                core,
                CoreState::LockWait,
                name,
                now.as_nanos(),
                now.as_nanos() + wait_ns,
            );
        }
        if let Some(tl) = &mut inner.timeline {
            if wait_ns > 0 {
                tl.probe_event(name, "resource", now.as_nanos(), wait_ns, service_ns);
            } else {
                tl.observe(now.as_nanos());
            }
            inner.tl_poll();
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<Telemetry>>> = const { RefCell::new(None) };
}

/// Install a fresh collector on this thread (and hook `simcore::probe`
/// plus the `simcore::causal` provenance log). Returns the handle; keep
/// it to read reports after [`disable`].
pub fn enable() -> Rc<Telemetry> {
    // A stale collector from a run that never called `disable` must not
    // leak state (probe adapter, causal cursor) into this run.
    disable();
    let t = Rc::new(Telemetry::new());
    let log = CausalLog::new();
    t.inner.borrow_mut().causal = Some(log.clone());
    ACTIVE.with(|c| *c.borrow_mut() = Some(t.clone()));
    simcore::probe::install(Rc::new(ProbeAdapter(t.clone())));
    simcore::causal::install(log);
    t
}

/// [`enable`], plus a windowed timeline under `cfg`: per-window
/// histograms/counters/port accounting, SLO monitors, and the flight
/// recorder. The timeline is pure observation like everything else —
/// enabled runs reproduce the exact event streams of disabled runs.
pub fn enable_with(cfg: TimelineConfig) -> Rc<Telemetry> {
    let t = enable();
    t.enable_timeline(cfg);
    t
}

/// Remove the active collector, the contention probe and the causal
/// collector, resetting every piece of thread-local recording state so
/// back-to-back instrumented runs in one process cannot contaminate each
/// other. The returned handle from [`enable`] stays valid for reading
/// reports.
pub fn disable() {
    ACTIVE.with(|c| *c.borrow_mut() = None);
    simcore::probe::uninstall();
    simcore::causal::uninstall();
    flow::clear_lane_globals();
}

/// Whether a collector is active on this thread.
pub fn enabled() -> bool {
    ACTIVE.with(|c| c.borrow().is_some())
}

/// The active collector, if any.
pub fn active() -> Option<Rc<Telemetry>> {
    ACTIVE.with(|c| c.borrow().clone())
}

/// Run `f` against the active collector; no-op when disabled.
#[inline]
pub fn with(f: impl FnOnce(&Telemetry)) {
    ACTIVE.with(|c| {
        if let Some(t) = c.borrow().as_deref() {
            f(t)
        }
    });
}

/// Start a flow (0 when disabled).
#[inline]
pub fn flow_begin(src: usize, dst: usize, src_core: usize, t: SimTime) -> u64 {
    let mut id = 0;
    with(|tel| id = tel.flow_begin(src, dst, src_core, t));
    id
}

/// Mark a stage on one flow; no-op when disabled or `id == 0`.
#[inline]
pub fn flow_mark(id: u64, stage: usize, t: SimTime) {
    if id != 0 {
        with(|tel| tel.flow_mark(id, stage, t));
    }
}

/// Mark a stage on a batch of flows; no-op when disabled or `ids` empty.
#[inline]
pub fn flow_mark_many(ids: &[u64], stage: usize, t: SimTime) {
    if !ids.is_empty() {
        with(|tel| tel.flow_mark_many(ids, stage, t));
    }
}

/// Record the delivering core; no-op when disabled or `ids` empty.
#[inline]
pub fn flow_set_dst_core(ids: &[u64], core: usize) {
    if !ids.is_empty() {
        with(|tel| tel.flow_set_dst_core(ids, core));
    }
}

/// Register a message route for cross-locality stitching.
#[inline]
pub fn register_route(src: usize, dst: usize, tag_base: u64, flows: &[u64]) {
    if !flows.is_empty() {
        with(|tel| tel.register_route(src, dst, tag_base, flows));
    }
}

/// Claim a registered route (empty when disabled or unknown).
#[inline]
pub fn take_route(src: usize, dst: usize, tag_base: u64) -> Vec<u64> {
    let mut flows = Vec::new();
    with(|tel| flows = tel.take_route(src, dst, tag_base));
    flows
}

/// Add to a counter on the active collector.
#[inline]
pub fn counter_add(key: &'static str, n: u64) {
    with(|tel| tel.counter_add(key, n));
}

/// Record into a histogram on the active collector.
#[inline]
pub fn hist_record(key: &'static str, v: u64) {
    with(|tel| tel.hist_record(key, v));
}

/// Add to a counter, attributed to instant `t` in the windowed timeline.
#[inline]
pub fn counter_add_at(key: &'static str, n: u64, t: SimTime) {
    with(|tel| tel.counter_add_at(key, n, t));
}

/// Record into a histogram, attributed to instant `t` in the windowed
/// timeline.
#[inline]
pub fn hist_record_at(key: &'static str, v: u64, t: SimTime) {
    with(|tel| tel.hist_record_at(key, v, t));
}

/// Record an injected fault at instant `t` (arms the flight recorder);
/// no-op when disabled or when timelines are off.
#[inline]
pub fn fault_event_at(label: &'static str, t: SimTime) {
    with(|tel| tel.fault_event_at(label, t));
}

/// [`fault_event_at`] at the timeline cursor, for fault sites with no
/// virtual clock in hand.
#[inline]
pub fn fault_event(label: &'static str) {
    with(|tel| tel.fault_event(label));
}

/// Append a counter-track sample on the active collector.
#[inline]
pub fn track_sample(name: &str, t: SimTime, v: f64) {
    with(|tel| tel.track_sample(name, t, v));
}

/// Set the profiler's current-locality context; no-op when disabled.
#[inline]
pub fn profile_set_loc(loc: usize) {
    with(|tel| tel.profile_set_loc(loc));
}

/// Record a base profiler interval; no-op when disabled or empty.
#[inline]
pub fn profile_record(
    loc: usize,
    core: usize,
    state: CoreState,
    label: &'static str,
    start: SimTime,
    end: SimTime,
) {
    if end > start {
        with(|tel| tel.profile_record(loc, core, state, label, start, end));
    }
}

/// Record an overlay profiler interval on the current locality; no-op
/// when disabled or empty.
#[inline]
pub fn profile_overlay(
    core: usize,
    state: CoreState,
    label: &'static str,
    start: SimTime,
    end: SimTime,
) {
    if end > start {
        with(|tel| tel.profile_overlay(core, state, label, start, end));
    }
}

// ---------------------------------------------------------------------
// Sharded-world lane collectors
// ---------------------------------------------------------------------

/// One engine lane's private collector for the sharded world: a full
/// [`Telemetry`] (flow tracer in lane mode, its own causal log, its own
/// probe adapter) that the lane actor installs on whichever thread is
/// dispatching its events and uninstalls right after, so worker threads
/// never share mutable recording state. After the run,
/// [`merge_lane_collectors`] folds every lane into the main collector in
/// lane-rank order — the merged result is therefore a pure function of
/// the per-lane streams, independent of shard count and run mode.
pub struct LaneCollector {
    tel: Rc<Telemetry>,
    /// Adapter built once at construction so installs on the dispatch hot
    /// path do not allocate (the alloc-ceiling gates cover sharded runs).
    probe: Rc<dyn simcore::Probe>,
    causal: Rc<CausalLog>,
}

impl LaneCollector {
    /// Build the collector for `lane`. Pass the main collector's timeline
    /// config (see [`Telemetry::timeline_config`]) so windowed series
    /// keep working per-lane.
    pub fn new(lane: u32, timeline: Option<TimelineConfig>) -> Self {
        let tel = Rc::new(Telemetry::new());
        let causal = CausalLog::new();
        {
            let inner = &mut *tel.inner.borrow_mut();
            inner.flows.set_lane(lane);
            inner.causal = Some(causal.clone());
            inner.timeline = timeline.map(Timeline::new);
        }
        let probe: Rc<dyn simcore::Probe> = Rc::new(ProbeAdapter(tel.clone()));
        LaneCollector { tel, probe, causal }
    }

    /// Install this lane's collector on the current thread (pairs with
    /// [`LaneCollector::uninstall`] around each event dispatch).
    pub fn install(&self) {
        ACTIVE.with(|c| *c.borrow_mut() = Some(self.tel.clone()));
        simcore::probe::install(self.probe.clone());
        simcore::causal::install(self.causal.clone());
    }

    /// Remove this lane's collector from the current thread. Unlike
    /// [`disable`] this leaves the lane-global route/meta registries
    /// alone — other lanes still need them mid-run.
    pub fn uninstall(&self) {
        ACTIVE.with(|c| *c.borrow_mut() = None);
        simcore::probe::uninstall();
        simcore::causal::uninstall();
    }

    /// Handle to this lane's telemetry (read access for tests).
    pub fn telemetry(&self) -> Rc<Telemetry> {
        self.tel.clone()
    }
}

/// Re-install an existing collector on the current thread after a
/// sharded run temporarily displaced it with lane collectors.
pub fn reinstall(tel: &Rc<Telemetry>) {
    ACTIVE.with(|c| *c.borrow_mut() = Some(tel.clone()));
    simcore::probe::install(Rc::new(ProbeAdapter(tel.clone())));
    if let Some(log) = tel.inner.borrow().causal.clone() {
        simcore::causal::install(log);
    }
}

/// Counter tracks whose samples are *running totals* on each lane: the
/// merged run total must be rebuilt from per-lane increments rather than
/// interleaved raw values.
const CUMULATIVE_TRACKS: [&str; 2] = ["parcels.in_flight", "amt.delivered"];

/// Fold per-lane collectors (in lane-rank order) into `main` and
/// re-install `main` on the current thread. Per-lane causal logs merge
/// into one contiguous provenance log; flow tracers stitch foreign-op
/// buffers back onto the records the minting lanes own; metrics,
/// contention, profiler, spans and timelines merge additively. Assumes
/// `main` itself recorded no flows during the run (the sharded world
/// routes every event through a lane collector).
pub fn merge_lane_collectors(main: &Rc<Telemetry>, lanes: Vec<LaneCollector>) {
    let shards: Vec<_> = lanes.iter().map(|l| l.causal.take_data()).collect();
    let (merged_log, remap) = simcore::causal::merge_sharded_with_remap(shards);

    {
        let main_inner = &mut *main.inner.borrow_mut();
        let mut tracers = Vec::with_capacity(lanes.len());
        // Per-track, per-lane snapshots of the cumulative series, taken
        // before the additive merge interleaves their raw values.
        let mut cum: Vec<Vec<Vec<(u64, f64)>>> = vec![Vec::new(); CUMULATIVE_TRACKS.len()];
        for lane in &lanes {
            // The probe adapter keeps an `Rc` to the lane telemetry, so
            // take the inner state rather than unwrapping the handle.
            let inner = std::mem::take(&mut *lane.tel.inner.borrow_mut());
            for (slot, name) in CUMULATIVE_TRACKS.iter().enumerate() {
                cum[slot].push(inner.metrics.track(name).map(|s| s.to_vec()).unwrap_or_default());
            }
            main_inner.metrics.merge(&inner.metrics);
            main_inner.contention.merge(&inner.contention);
            main_inner.profile.absorb(inner.profile);
            main_inner.spans.extend(inner.spans);
            main_inner.in_flight += inner.in_flight;
            if let (Some(dst), Some(src)) = (&mut main_inner.timeline, inner.timeline) {
                dst.absorb(src);
            }
            tracers.push(inner.flows);
        }
        main_inner.causal = Some(merged_log);
        main_inner.flows = FlowTracer::merge_lanes(tracers, &remap);
        for (slot, name) in CUMULATIVE_TRACKS.iter().enumerate() {
            let rebuilt = rebuild_cumulative(&cum[slot]);
            if !rebuilt.is_empty() {
                main_inner.metrics.track_replace(name, rebuilt);
            }
        }
    }
    reinstall(main);
}

/// Rebuild one cumulative counter track from per-lane running values:
/// reconstruct each lane's increments, interleave them in time order
/// (stable, so simultaneous samples keep lane-rank order), and re-
/// accumulate. Exact even when lanes sample at irregular instants.
fn rebuild_cumulative(per_lane: &[Vec<(u64, f64)>]) -> Vec<(u64, f64)> {
    let mut deltas: Vec<(u64, f64)> = Vec::new();
    for series in per_lane {
        let mut prev = 0.0;
        for &(t, v) in series {
            deltas.push((t, v - prev));
            prev = v;
        }
    }
    deltas.sort_by_key(|&(t, _)| t);
    let mut running = 0.0;
    deltas
        .into_iter()
        .map(|(t, d)| {
            running += d;
            (t, running)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests touching the thread-local collector.
    fn with_clean_state(f: impl FnOnce()) {
        disable();
        f();
        disable();
    }

    #[test]
    fn disabled_free_functions_are_noops() {
        with_clean_state(|| {
            assert!(!enabled());
            assert_eq!(flow_begin(0, 1, 0, SimTime::ZERO), 0);
            flow_mark(1, stage::PUT, SimTime::ZERO);
            counter_add("x", 1);
            assert!(take_route(0, 1, 5).is_empty());
            assert!(active().is_none());
        });
    }

    #[test]
    fn enable_collects_and_survives_disable() {
        with_clean_state(|| {
            let tel = enable();
            assert!(enabled());
            let id = flow_begin(0, 1, 2, SimTime::from_nanos(5));
            assert_eq!(id, 1);
            flow_mark(id, stage::DELIVER, SimTime::from_nanos(500));
            counter_add("parcels", 3);
            register_route(0, 1, 7, &[id]);
            assert_eq!(take_route(0, 1, 7), vec![id]);
            disable();
            // The handle still reads collected data after disable.
            assert_eq!(tel.flow_count(), 1);
            assert_eq!(tel.with_metrics(|m| m.counter("parcels")), 3);
            assert_eq!(flow_begin(0, 1, 0, SimTime::ZERO), 0);
        });
    }

    #[test]
    fn back_to_back_runs_do_not_cross_contaminate() {
        with_clean_state(|| {
            // First instrumented "run": flows, routes, counters, causal
            // provenance, profiler locality cursor.
            let first = enable();
            let id = flow_begin(0, 1, 0, SimTime::ZERO);
            flow_mark(id, stage::DELIVER, SimTime::from_nanos(100));
            register_route(0, 1, 99, &[id]);
            counter_add("parcels", 7);
            profile_set_loc(3);
            simcore::causal::on_execute(1, 50, 0);
            simcore::causal::mark(
                "lock",
                simcore::causal::MarkKind::Hold,
                SimTime::ZERO,
                SimTime::from_nanos(10),
                0,
            );
            disable();
            assert!(!simcore::causal::installed());
            assert_eq!(simcore::causal::current_node(), 0);

            // Second run starts from a blank slate.
            let second = enable();
            assert_eq!(second.flow_count(), 0);
            assert_eq!(second.with_metrics(|m| m.counter("parcels")), 0);
            assert!(second.take_route(0, 1, 99).is_empty(), "routes must not leak");
            let log = second.causal_log().expect("fresh causal log");
            assert_eq!(log.node_count(), 0);
            assert_eq!(log.mark_count(), 0);
            let id2 = flow_begin(0, 1, 0, SimTime::ZERO);
            assert_eq!(id2, 1, "flow ids restart per collector");
            disable();

            // The first handle still holds only its own data.
            assert_eq!(first.flow_count(), 1);
            assert_eq!(first.with_metrics(|m| m.counter("parcels")), 7);
            assert_eq!(first.causal_log().unwrap().node_count(), 1);
            assert_eq!(second.flow_count(), 1);
        });
    }

    #[test]
    fn enable_while_enabled_resets_cleanly() {
        with_clean_state(|| {
            let stale = enable();
            counter_add("x", 1);
            // A run that forgot to disable: the next enable must not let
            // the stale adapter keep collecting.
            let fresh = enable();
            counter_add("x", 1);
            disable();
            assert_eq!(stale.with_metrics(|m| m.counter("x")), 1);
            assert_eq!(fresh.with_metrics(|m| m.counter("x")), 1);
        });
    }

    #[test]
    fn lane_collectors_merge_to_one_run() {
        with_clean_state(|| {
            let main = enable();
            let lane0 = LaneCollector::new(0, None);
            let lane1 = LaneCollector::new(1, None);

            // Lane 1 sends a parcel to lane 0: begin/inject on lane 1,
            // receiver-side stages + route claim on lane 0.
            lane1.install();
            let id = flow_begin(1, 0, 0, SimTime::from_nanos(10));
            flow_mark(id, stage::INJECT, SimTime::from_nanos(20));
            register_route(1, 0, 5, &[id]);
            counter_add("parcels", 1);
            lane1.uninstall();

            lane0.install();
            let claimed = take_route(1, 0, 5);
            assert_eq!(claimed, vec![id]);
            flow_mark_many(&claimed, stage::DELIVER, SimTime::from_nanos(90));
            flow_set_dst_core(&claimed, 2);
            counter_add("parcels", 2);
            lane0.uninstall();

            merge_lane_collectors(&main, vec![lane0, lane1]);
            assert!(enabled(), "main collector re-installed after merge");
            assert_eq!(main.flow_count(), 1);
            main.with_flows(|flows| {
                let rec = &flows[0];
                assert_eq!(rec.at(stage::PUT), Some(10));
                assert_eq!(rec.at(stage::INJECT), Some(20));
                assert_eq!(rec.at(stage::DELIVER), Some(90));
                assert_eq!(rec.dst_core, 2);
            });
            assert_eq!(main.with_metrics(|m| m.counter("parcels")), 3);
            // In-flight sums to zero (one begin on lane 1, one deliver on
            // lane 0) and the rebuilt track ends at 0.
            let track = main.with_metrics(|m| m.track("parcels.in_flight").unwrap().to_vec());
            assert_eq!(track, vec![(10, 1.0), (90, 0.0)]);
            disable();
        });
    }

    #[test]
    fn probe_feeds_contention_table() {
        with_clean_state(|| {
            let tel = enable();
            let mut lock = simcore::SimLock::new("ucp_progress", 500, 200);
            lock.acquire(0, SimTime::ZERO, 1_000);
            lock.acquire(1, SimTime::ZERO, 1_000); // convoy: waits
            let mut tl = simcore::SimTryLock::new("lci.progress");
            let _ = tl.try_acquire(SimTime::ZERO, 100);
            let _ = tl.try_acquire(SimTime::ZERO, 100); // busy
            let mut res = simcore::SimResource::new("nic.tx_post", 50);
            res.access(SimTime::ZERO, 0, 10);
            disable();
            let report = tel.contention_report("test");
            assert_eq!(report.rows[0].0, "ucp_progress");
            assert!(report.rows[0].1.total_wait_ns > 0);
            let names: Vec<_> = report.rows.iter().map(|r| r.0).collect();
            assert!(names.contains(&"lci.progress") && names.contains(&"nic.tx_post"));
            // The try-lock never accumulates wait.
            assert_eq!(tel.with_contention(|c| c.get("lci.progress").unwrap().total_wait_ns), 0);
        });
    }
}
