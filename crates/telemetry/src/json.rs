//! A minimal JSON parser, used to validate exported traces (the build is
//! offline, so no external JSON crate is available).
//!
//! Supports the full JSON grammar the exporters emit: objects, arrays,
//! strings with escapes, numbers, booleans, null. Not optimized — it is a
//! test/validation tool, not a runtime dependency of the simulator.
//!
//! String *escaping* lives in one place for the whole workspace:
//! [`simcore::json::escape_json`], re-exported here so telemetry code can
//! keep importing `crate::json::escape_json`. The round-trip tests below
//! pin the contract between that escaper and this parser on hostile
//! inputs.

pub use simcore::escape_json;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse `src` as a single JSON document.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser { b: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.b[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }

    /// `parse(escape_json(s))` must reproduce `s` exactly for any input —
    /// the workspace-wide contract between the shared escaper and this
    /// parser.
    fn round_trips(s: &str) -> bool {
        parse(&format!("\"{}\"", escape_json(s))).map(|v| v.as_str() == Some(s)).unwrap_or(false)
    }

    #[test]
    fn escape_round_trips_hostile_inputs() {
        for s in [
            "",
            "plain",
            "quote\" backslash\\ slash/",
            "newline\n carriage\r tab\t",
            "\u{0}\u{1}\u{1f}",                  // raw control chars
            "\\u0041 not an escape",             // escape-looking literal
            "{\"nested\":[\"json\"]}",           // json-in-a-string
            "多字节 🌍 ütf-8",                   // multibyte
            "mixed \"\\\n\u{7}🌍\u{1b}[31mansi", // everything at once
        ] {
            assert!(round_trips(s), "failed round trip: {s:?}");
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary BMP strings (multibyte and unassigned points
            /// included) survive the escape → parse round trip
            /// byte-identically.
            #[test]
            fn escape_parse_round_trip(
                points in proptest::collection::vec(any::<u16>(), 0..64)
            ) {
                let s: String = points
                    .iter()
                    .map(|&p| char::from_u32(p as u32).unwrap_or('\u{fffd}'))
                    .collect();
                prop_assert!(round_trips(&s), "failed round trip: {}", s.escape_debug());
            }

            /// Arbitrary ASCII strings with forced control chars.
            #[test]
            fn escape_parse_round_trip_controls(
                bytes in proptest::collection::vec(any::<u8>(), 0..64)
            ) {
                let s: String =
                    bytes.iter().map(|&b| char::from_u32(b as u32 % 0x80).unwrap()).collect();
                prop_assert!(round_trips(&s), "failed round trip: {}", s.escape_debug());
            }
        }
    }
}
