//! Chrome-trace / Perfetto JSON export: core spans, parcel flow arrows,
//! and counter tracks, in one event array.

use std::collections::HashSet;
use std::fmt::Write as _;

use simcore::{escape_json, Span};

use crate::critpath::CritPath;
use crate::flow::{stage, FlowRec};
use crate::metrics::Metrics;

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Render a combined Chrome-trace JSON document.
///
/// * `spans` — core activity (one `tid` per `locN/coreM` track), as
///   recorded by `simcore::Tracer`.
/// * flows — every delivered parcel contributes a send slice on its source
///   core track, a deliver slice on its destination core track, and a
///   flow-event pair (`ph:"s"` / `ph:"f"`) so Perfetto draws an arrow from
///   the sending core to the delivering core across localities.
/// * counter tracks — sampled series (queue depths, utilization) as
///   `ph:"C"` events.
pub fn chrome_trace(spans: &[Span], flows: &[FlowRec], metrics: &Metrics) -> String {
    render(spans, flows, metrics, None)
}

/// [`chrome_trace`] plus a critical-path overlay: the path's segments as
/// spans on a dedicated `critpath` track, a `critpath.total_us` counter
/// carrying the makespan, and parcels whose delivery event lies on the
/// path renamed `parcel (critical)` so on-path flow arrows stand out.
pub fn chrome_trace_with_critpath(
    spans: &[Span],
    flows: &[FlowRec],
    metrics: &Metrics,
    cp: &CritPath,
) -> String {
    render(spans, flows, metrics, Some(cp))
}

fn render(spans: &[Span], flows: &[FlowRec], metrics: &Metrics, cp: Option<&CritPath>) -> String {
    let on_path: HashSet<u64> =
        cp.map(|cp| cp.path_nodes.iter().copied().collect()).unwrap_or_default();
    let mut out = String::from("[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    if let Some(cp) = cp {
        for seg in &cp.segments {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"cat\":\"critpath\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":\"critpath\"}}",
                escape_json(&seg.component),
                us(seg.start),
                us(seg.len_ns()),
            );
        }
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"critpath.total_us\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\
             \"args\":{{\"value\":{}}}}}",
            us(cp.total_ns),
        );
    }

    for s in spans {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":\"{}\"}}",
            escape_json(s.label),
            us(s.start.as_nanos()),
            us(s.end.since(s.start)),
            escape_json(&s.track)
        );
    }

    for (i, f) in flows.iter().enumerate() {
        let id = i as u64 + 1;
        let (Some(put), Some(deliver)) = (f.at(stage::PUT), f.at(stage::DELIVER)) else {
            continue;
        };
        let name = if f.deliver_node != 0 && on_path.contains(&f.deliver_node) {
            "parcel (critical)"
        } else {
            "parcel"
        };
        // End of the send-side slice: injection if recorded, else a sliver.
        let send_end = f.at(stage::INJECT).unwrap_or(put + 1).max(put + 1);
        let recv_end = f.at(stage::SPAWN).unwrap_or(deliver + 1).max(deliver + 1);
        let src_tid = format!("loc{}/core{}", f.src, f.src_core);
        let dst_tid = format!("loc{}/core{}", f.dst, f.dst_core);
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"cat\":\"parcel\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":\"{src_tid}\",\"args\":{{\"flow\":{id}}}}}",
            us(put),
            us(send_end - put),
        );
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"s\",\"cat\":\"parcel\",\"id\":{id},\"ts\":{},\
             \"pid\":0,\"tid\":\"{src_tid}\"}}",
            us(put),
        );
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"cat\":\"parcel\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":\"{dst_tid}\",\"args\":{{\"flow\":{id}}}}}",
            us(deliver),
            us(recv_end - deliver),
        );
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"parcel\",\"id\":{id},\
             \"ts\":{},\"pid\":0,\"tid\":\"{dst_tid}\"}}",
            us(deliver),
        );
    }

    for (name, series) in metrics.tracks() {
        // Samples arrive in event-execution order, but some are stamped
        // with future instants (delivery times, wire-free times), so
        // each track must be re-sorted to keep its timeline monotone.
        let mut series = series.to_vec();
        series.sort_by_key(|s| s.0);
        for &(t, v) in &series {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"value\":{v}}}}}",
                escape_json(name),
                us(t),
            );
        }
    }

    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTracer;
    use simcore::SimTime;

    #[test]
    fn full_export_parses_and_contains_flow_pair() {
        let spans = vec![Span {
            track: "loc0/core0".into(),
            label: "task",
            start: SimTime::from_nanos(0),
            end: SimTime::from_nanos(5_000),
        }];
        let mut f = FlowTracer::new();
        let id = f.begin(0, 1, 0, SimTime::from_nanos(100));
        f.mark(id, stage::INJECT, SimTime::from_nanos(400));
        f.mark(id, stage::DELIVER, SimTime::from_nanos(3_000));
        f.mark(id, stage::SPAWN, SimTime::from_nanos(3_200));
        f.set_dst_core(&[id], 2);
        let mut m = Metrics::new();
        m.track_sample("queue_depth", 1_000, 3.0);
        let json = chrome_trace(&spans, f.flows(), &m);
        let parsed = crate::json::parse(&json).expect("chrome json parses");
        let events = parsed.as_arr().unwrap();
        let phases: Vec<_> =
            events.iter().map(|e| e.get("ph").unwrap().as_str().unwrap()).collect();
        assert!(phases.contains(&"s") && phases.contains(&"f") && phases.contains(&"C"));
        let finish = events.iter().find(|e| e.get("ph").unwrap().as_str() == Some("f")).unwrap();
        assert_eq!(finish.get("tid").unwrap().as_str(), Some("loc1/core2"));
    }

    #[test]
    fn undelivered_flows_are_skipped() {
        let mut f = FlowTracer::new();
        f.begin(0, 1, 0, SimTime::ZERO);
        let json = chrome_trace(&[], f.flows(), &Metrics::new());
        assert_eq!(json, "[]");
    }
}
