//! Property tests for the telemetry crate: histogram quantile bounds,
//! merge-equals-union, and Chrome-export JSON round-tripping through the
//! built-in parser.

use proptest::prelude::*;
use simcore::{SimTime, Span};
use telemetry::json::Value;
use telemetry::{json, Histogram};

proptest! {
    /// Every quantile of a log-bucketed histogram must stay inside the
    /// true `[min, max]` of the recorded samples, and quantiles must be
    /// monotone in `q`.
    #[test]
    fn quantiles_bounded_by_true_extremes(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        q_raw in any::<f64>(),
    ) {
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let lo = *samples.iter().min().expect("non-empty");
        let hi = *samples.iter().max().expect("non-empty");
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        prop_assert_eq!(h.count(), samples.len() as u64);
        let q = q_raw.clamp(0.0, 1.0);
        let v = h.quantile(q);
        prop_assert!(v >= lo && v <= hi, "quantile({}) = {} outside [{}, {}]", q, v, lo, hi);
        prop_assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
    }

    /// `merge(a, b)` must be indistinguishable from recording the union
    /// of both sample streams into one histogram.
    #[test]
    fn merge_equals_union(
        xs in proptest::collection::vec(any::<u64>(), 0..120),
        ys in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for &v in &xs {
            a.record(v);
            u.record(v);
        }
        for &v in &ys {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &u);
    }

    /// The Chrome export must stay parseable JSON for arbitrary track
    /// names (quotes, backslashes, control characters, unicode), and the
    /// parse must recover the track string exactly.
    #[test]
    fn chrome_export_roundtrips_hostile_track_names(
        chars in proptest::collection::vec(0usize..NASTY.len(), 0..24),
        start in 0u64..1_000_000,
        dur in 1u64..1_000_000,
    ) {
        let track: String = chars.iter().map(|&i| NASTY[i]).collect();
        let tel = telemetry::Telemetry::new();
        tel.add_spans([Span {
            track: track.clone(),
            label: "task",
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(start + dur),
        }]);
        let out = tel.chrome_trace_collected();
        let doc = json::parse(&out).expect("chrome export must parse");
        let events = doc.as_arr().expect("array");
        prop_assert_eq!(events.len(), 1);
        prop_assert_eq!(events[0].get("tid").and_then(Value::as_str), Some(track.as_str()));
    }
}

/// Characters that break naive JSON emitters.
const NASTY: [char; 12] =
    ['a', 'Z', '"', '\\', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', 'é', '💥'];
