//! Property tests for the cross-run differential engine: diffing a
//! record against itself is empty, diffing `A` against `A ⊎ B`
//! attributes exactly `B`, the critical-path delta table always sums to
//! the end-to-end delta, and records survive a JSON round trip.

use std::collections::BTreeMap;

use proptest::prelude::*;
use telemetry::record::{CritSummary, RunMeta, RunRecord, SCHEMA_VERSION};
use telemetry::{Histogram, RecordDiff};

/// Generator inputs for one synthetic run record: per-component
/// critical-path shares, counters, and histogram sample streams.
#[derive(Debug, Clone)]
struct Synth {
    components: Vec<(String, u64)>,
    counters: Vec<(String, u64)>,
    hists: Vec<(String, Vec<u64>)>,
}

/// Component labels drawn for synthetic critical paths; includes the
/// residual `cpu`/`startup` labels so localization gets exercised.
const COMPONENTS: [&str; 7] =
    ["net.wire", "lci.cq", "lci.progress", "amt.serialize", "amt.task_queue", "cpu", "startup"];
const COUNTERS: [&str; 4] = ["parcels.sent", "polls", "retries", "acks"];
const HIST_KEYS: [&str; 2] = ["parcel.latency_ns", "msg_bytes"];

fn synth() -> impl Strategy<Value = Synth> {
    let comps = collection::vec((0usize..COMPONENTS.len(), 0u64..5_000_000), 1..6);
    let counters = collection::vec((0usize..COUNTERS.len(), 0u64..100_000), 0..4);
    let hists =
        collection::vec((0usize..HIST_KEYS.len(), collection::vec(1u64..10_000_000, 0..60)), 0..3);
    (comps, counters, hists).prop_map(|(c, k, h)| {
        // Duplicate draws of the same key merge additively, so each key
        // appears once (records key their sections by name).
        let mut comps: BTreeMap<String, u64> = BTreeMap::new();
        for (i, v) in c {
            *comps.entry(COMPONENTS[i].to_string()).or_insert(0) += v;
        }
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (i, v) in k {
            *counters.entry(COUNTERS[i].to_string()).or_insert(0) += v;
        }
        let mut hists: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (i, samples) in h {
            hists.entry(HIST_KEYS[i].to_string()).or_default().extend_from_slice(&samples);
        }
        Synth {
            components: comps.into_iter().collect(),
            counters: counters.into_iter().collect(),
            hists: hists.into_iter().collect(),
        }
    })
}

/// Materialize a [`RunRecord`] whose critical path partitions the sum of
/// the component shares (components laid out as one contiguous segment
/// each, so the partition identity holds by construction).
fn build(s: &Synth) -> RunRecord {
    let total: u64 = s.components.iter().map(|&(_, ns)| ns).sum();
    let mut segments = Vec::new();
    let mut cursor = 0u64;
    for (name, ns) in &s.components {
        segments.push((name.clone(), cursor, cursor + ns));
        cursor += ns;
    }
    let mut rec = RunRecord {
        version: SCHEMA_VERSION,
        meta: RunMeta { scenario: "prop".into(), config: "cfg".into(), ..Default::default() },
        end_to_end_ns: total,
        events: s.counters.iter().map(|&(_, v)| v).sum(),
        critpath: Some(CritSummary {
            total_ns: total,
            components: s.components.clone(),
            segments,
            ..CritSummary::default()
        }),
        ..RunRecord::default()
    };
    for (k, v) in &s.counters {
        rec.counters.insert(k.clone(), *v);
    }
    for (k, samples) in &s.hists {
        let mut h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        rec.hists.insert(k.clone(), h);
    }
    rec
}

/// `A ⊎ B`: component shares, counters and histogram streams added
/// key-wise.
fn union(a: &Synth, b: &Synth) -> Synth {
    let mut comps: BTreeMap<String, u64> = a.components.iter().cloned().collect();
    for (k, v) in &b.components {
        *comps.entry(k.clone()).or_insert(0) += v;
    }
    let mut counters: BTreeMap<String, u64> = a.counters.iter().cloned().collect();
    for (k, v) in &b.counters {
        *counters.entry(k.clone()).or_insert(0) += v;
    }
    let mut hists: BTreeMap<String, Vec<u64>> = a.hists.iter().cloned().collect();
    for (k, samples) in &b.hists {
        hists.entry(k.clone()).or_default().extend_from_slice(samples);
    }
    Synth {
        components: comps.into_iter().collect(),
        counters: counters.into_iter().collect(),
        hists: hists.into_iter().collect(),
    }
}

proptest! {
    /// Self-diff is observationally empty: zero end-to-end delta, no
    /// changed counters/hists/resources, localization 1.
    #[test]
    fn self_diff_is_empty(s in synth()) {
        let rec = build(&s);
        let d = RecordDiff::between(&rec, &rec.clone());
        prop_assert!(d.is_empty());
        prop_assert_eq!(d.end_delta(), 0);
        prop_assert_eq!(d.critpath_delta_sum(), 0);
        prop_assert_eq!(d.localization(), 1.0);
    }

    /// Diffing `A` against `A ⊎ B` recovers exactly `B`: each
    /// critical-path component moves by `B`'s share, each counter by
    /// `B`'s value, and each histogram's bucket deltas are exactly `B`'s
    /// bucket counts.
    #[test]
    fn diff_against_union_attributes_exactly_b(a in synth(), b in synth()) {
        let base = build(&a);
        let head = build(&union(&a, &b));
        let d = RecordDiff::between(&base, &head);

        let b_total: u64 = b.components.iter().map(|&(_, ns)| ns).sum();
        prop_assert_eq!(d.end_delta(), b_total as i64);
        prop_assert!(d.critpath_exact);
        prop_assert_eq!(d.critpath_delta_sum(), d.end_delta());
        let b_comps: BTreeMap<&str, u64> =
            b.components.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for c in &d.critpath {
            prop_assert_eq!(
                c.delta_ns(),
                b_comps.get(c.component.as_str()).copied().unwrap_or(0) as i64,
                "component {} moved by something other than B's share", c.component
            );
        }

        let b_counters: BTreeMap<&str, u64> =
            b.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for c in &d.counters {
            prop_assert_eq!(c.delta(), b_counters.get(c.key.as_str()).copied().unwrap_or(0) as i64);
        }
        // Every non-zero counter of B shows up as a delta.
        for (k, v) in &b.counters {
            if *v > 0 {
                prop_assert!(d.counters.iter().any(|c| &c.key == k));
            }
        }

        for h in &d.hists {
            let mut bh = Histogram::new();
            if let Some((_, samples)) = b.hists.iter().find(|(k, _)| k == &h.key) {
                for &v in samples {
                    bh.record(v);
                }
            }
            // The bucket-delta list must be exactly B's bucket contents.
            let expected: Vec<(usize, u64, i64)> =
                bh.buckets().map(|(i, upper, c)| (i, upper, c as i64)).collect();
            prop_assert_eq!(&h.bucket_deltas, &expected, "hist {} deltas are not B", h.key);
            prop_assert_eq!(h.moved, bh.count());
            prop_assert_eq!(h.count.delta(), bh.count() as i64);
        }
    }

    /// The delta table's structural identity holds for *any* pair of
    /// records with critical paths, not just related ones.
    #[test]
    fn delta_table_sums_to_end_delta(a in synth(), b in synth()) {
        let d = RecordDiff::between(&build(&a), &build(&b));
        prop_assert!(d.critpath_exact);
        prop_assert_eq!(d.critpath_delta_sum(), d.end_delta());
        let loc = d.localization();
        prop_assert!((0.0..=1.0).contains(&loc));
    }

    /// Serialization is lossless and deterministic for arbitrary
    /// records, and a JSON round trip never changes a diff.
    #[test]
    fn record_roundtrip_preserves_diffs(a in synth(), b in synth()) {
        let (base, head) = (build(&a), build(&b));
        let base2 = RunRecord::from_json(&base.to_json()).expect("parse base");
        let head2 = RunRecord::from_json(&head.to_json()).expect("parse head");
        prop_assert_eq!(&base2, &base);
        prop_assert_eq!(base.to_json(), base2.to_json());
        let d1 = RecordDiff::between(&base, &head);
        let d2 = RecordDiff::between(&base2, &head2);
        prop_assert_eq!(d1.to_json(), d2.to_json());
    }
}
