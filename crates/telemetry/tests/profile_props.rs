//! Property tests for the virtual-time core profiler and the metrics
//! registry: the partition invariant under arbitrary probe
//! interleavings, and merge-equals-union for histograms, counters and
//! counter-track timelines.

use proptest::prelude::*;
use telemetry::profile::CoreProfile;
use telemetry::{CoreState, Histogram, Metrics};

/// The states a probe can report (idle is never reported, only derived).
const STATES: [CoreState; 4] =
    [CoreState::Working, CoreState::Progress, CoreState::LockWait, CoreState::Serialize];

/// Leaf labels (must be `&'static str`, like real probe sites).
const LABELS: [&str; 4] = ["task", "progress", "mpi.lock", "serialize"];

/// One synthetic probe record: base (scheduler-level) or overlay
/// (probe-level), on one of a few cores.
#[derive(Debug, Clone)]
struct Rec {
    base: bool,
    loc: usize,
    core: usize,
    state: CoreState,
    label: &'static str,
    start: u64,
    len: u64,
}

fn rec_strategy() -> impl Strategy<Value = Rec> {
    // The vendored proptest only implements `Strategy` for tuples up to
    // arity 5, so the discrete fields ride packed in one u32.
    (any::<u32>(), 0u64..10_000, 0u64..500).prop_map(|(bits, start, len)| Rec {
        base: bits & 1 == 1,
        loc: (bits >> 1) as usize & 1,
        core: (bits >> 2) as usize % 3,
        state: STATES[(bits >> 4) as usize % STATES.len()],
        label: LABELS[(bits >> 6) as usize % LABELS.len()],
        start,
        len,
    })
}

proptest! {
    /// THE profiler invariant: for any interleaving of base and overlay
    /// records — overlapping, out of order, duplicated, zero-length —
    /// every finalized core account partitions `[0, horizon]` exactly:
    /// the per-state durations sum to the elapsed virtual time, with no
    /// gap and no double counting.
    #[test]
    fn state_durations_partition_elapsed_time(
        recs in proptest::collection::vec(rec_strategy(), 0..80),
        extra_horizon in 0u64..1_000,
    ) {
        let mut p = CoreProfile::new();
        for r in &recs {
            if r.base {
                p.record_base(r.loc, r.core, r.state, r.label, r.start, r.start + r.len);
            } else {
                p.set_loc(r.loc);
                p.record_overlay_here(r.core, r.state, r.label, r.start, r.start + r.len);
            }
        }
        let horizon = p.horizon_ns() + extra_horizon;
        let mut snap = p.snapshot();
        for ((loc, core), acct) in &mut snap {
            acct.finalize(horizon);
            prop_assert!(
                acct.check_partition().is_ok(),
                "loc{loc}/core{core}: {:?}",
                acct.check_partition()
            );
            let sum: u64 = acct.state_table().iter().sum();
            prop_assert_eq!(sum, acct.elapsed_ns(), "loc{}/core{}", loc, core);
            prop_assert_eq!(acct.elapsed_ns(), horizon, "loc{}/core{}", loc, core);
            // The flamegraph leaves must re-partition the busy time.
            let leaf_sum: u64 = acct.leaves().map(|(_, _, ns)| ns).sum();
            prop_assert_eq!(leaf_sum, acct.busy_ns(), "loc{}/core{}", loc, core);
        }
    }

    /// Finalize is idempotent: a second finalize at the same horizon
    /// changes nothing.
    #[test]
    fn finalize_is_idempotent(
        recs in proptest::collection::vec(rec_strategy(), 0..40),
    ) {
        let mut p = CoreProfile::new();
        for r in &recs {
            if r.base {
                p.record_base(r.loc, r.core, r.state, r.label, r.start, r.start + r.len);
            } else {
                p.set_loc(r.loc);
                p.record_overlay_here(r.core, r.state, r.label, r.start, r.start + r.len);
            }
        }
        let horizon = p.horizon_ns();
        let mut snap = p.snapshot();
        for acct in snap.values_mut() {
            let before = acct.state_table();
            acct.finalize(horizon);
            prop_assert_eq!(before, acct.state_table());
        }
    }

    /// `Metrics::merge` must be indistinguishable from one registry that
    /// recorded the union of both streams: counters sum, histograms
    /// union, and counter-track timelines interleave into the same
    /// time-ordered multiset of samples.
    #[test]
    fn merged_metrics_equal_union(
        xs in proptest::collection::vec((0usize..3, 0u64..10_000), 0..60),
        ys in proptest::collection::vec((0usize..3, 0u64..10_000), 0..60),
    ) {
        const KEYS: [&str; 3] = ["k.a", "k.b", "k.c"];
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        let mut u = Metrics::new();
        for &(ki, v) in &xs {
            a.counter_add(KEYS[ki], v);
            u.counter_add(KEYS[ki], v);
            a.hist_record(KEYS[ki], v);
            u.hist_record(KEYS[ki], v);
            a.track_sample(KEYS[ki], v, v as f64);
            u.track_sample(KEYS[ki], v, v as f64);
        }
        for &(ki, v) in &ys {
            b.counter_add(KEYS[ki], v);
            u.counter_add(KEYS[ki], v);
            b.hist_record(KEYS[ki], v);
            u.hist_record(KEYS[ki], v);
            b.track_sample(KEYS[ki], v, v as f64);
            u.track_sample(KEYS[ki], v, v as f64);
        }
        a.merge(&b);
        for k in KEYS {
            prop_assert_eq!(a.counter(k), u.counter(k));
            match (a.hist(k), u.hist(k)) {
                (None, None) => {}
                (Some(ha), Some(hu)) => prop_assert_eq!(ha, hu),
                other => prop_assert!(false, "hist presence mismatch for {}: {:?}", k, other),
            }
            // Track timelines: same time-ordered multiset of samples.
            let mut ta: Vec<_> = a.track(k).unwrap_or(&[]).to_vec();
            let mut tu: Vec<_> = u.track(k).unwrap_or(&[]).to_vec();
            ta.sort_by(|x, y| x.partial_cmp(y).unwrap());
            tu.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(ta, tu);
        }
    }

    /// Histogram merge is associative with respect to the union stream
    /// regardless of how samples are split into three registries.
    #[test]
    fn hist_merge_order_independent(
        xs in proptest::collection::vec(any::<u64>(), 0..60),
        splits in proptest::collection::vec(0usize..3, 0..60),
    ) {
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        let mut u = Histogram::new();
        for (i, &v) in xs.iter().enumerate() {
            let which = splits.get(i).copied().unwrap_or(0);
            parts[which].record(v);
            u.record(v);
        }
        // (p0 + p1) + p2 and p0 + (p1 + p2) must both equal the union.
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right = parts[1].clone();
        right.merge(&parts[2]);
        let mut right_total = parts[0].clone();
        right_total.merge(&right);
        prop_assert_eq!(&left, &u);
        prop_assert_eq!(&right_total, &u);
    }
}
