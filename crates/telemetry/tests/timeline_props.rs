//! Property tests for the windowed timeline: the merge of every
//! per-window sub-histogram must reproduce the run-total histogram
//! *exactly* (bucket-identical, not just quantile-close), per-counter
//! window deltas must sum to the run totals, and window attribution must
//! put boundary samples in the right window.

use proptest::prelude::*;
use telemetry::timeline::{Timeline, TimelineConfig};
use telemetry::Histogram;

fn timeline(window_ns: u64) -> Timeline {
    Timeline::new(TimelineConfig { window_ns, ..TimelineConfig::default() })
}

proptest! {
    /// Merging all per-window sub-histograms of a key yields a histogram
    /// bucket-identical to one fed the whole sample stream: same counts,
    /// same min/max, and therefore the same value for *every* quantile.
    #[test]
    fn window_merge_is_bucket_identical_to_total(
        window_ns in 1u64..5_000,
        samples in proptest::collection::vec((0u64..200_000, 0u64..1_000_000), 1..300),
    ) {
        let mut tl = timeline(window_ns);
        let mut total = Histogram::new();
        for &(t, v) in &samples {
            tl.hist_at("lat", v, t);
            total.record(v);
        }
        let merged = tl.merged_hist("lat").expect("samples recorded");
        prop_assert_eq!(&merged, &total);
        prop_assert_eq!(merged.p50(), total.p50());
        prop_assert_eq!(merged.p90(), total.p90());
        prop_assert_eq!(merged.p99(), total.p99());
        prop_assert_eq!(merged.p999(), total.p999());
        prop_assert_eq!(merged.min(), total.min());
        prop_assert_eq!(merged.max(), total.max());
        prop_assert_eq!(merged.count(), samples.len() as u64);
    }

    /// Out-of-order (late) samples are still attributed to their true
    /// window, counted as late, and never dropped — merge == total holds
    /// unconditionally.
    #[test]
    fn late_samples_still_merge_exactly(
        window_ns in 1u64..2_000,
        forward in proptest::collection::vec((0u64..100_000, 0u64..50_000), 1..100),
        late in proptest::collection::vec((0u64..100_000, 0u64..50_000), 1..100),
    ) {
        let mut tl = timeline(window_ns);
        let mut total = Histogram::new();
        // Drive the cursor to the max forward time first, then replay the
        // "late" stream behind it.
        let horizon = forward.iter().map(|&(t, _)| t).max().unwrap_or(0);
        // A sample is late exactly when its window has already been
        // settled (evaluated) — i.e. it lies at least one full window
        // behind the cursor's window at the time it arrives. Both loops
        // can go backwards in time, so model the whole sequence.
        let mut cur = 0u64;
        let mut expect_late = 0u64;
        for &(t, v) in &forward {
            if t / window_ns < (cur / window_ns).saturating_sub(1) {
                expect_late += 1;
            }
            cur = cur.max(t);
            tl.hist_at("lat", v, t);
            total.record(v);
        }
        tl.observe(horizon);
        for &(t, v) in &late {
            if t / window_ns < (cur / window_ns).saturating_sub(1) {
                expect_late += 1;
            }
            cur = cur.max(t);
            tl.hist_at("lat", v, t);
            total.record(v);
        }
        prop_assert_eq!(&tl.merged_hist("lat").expect("samples"), &total);
        prop_assert_eq!(tl.late_samples(), expect_late);
    }

    /// Per-window counter deltas sum to the run total for every key.
    #[test]
    fn counter_windows_sum_to_totals(
        window_ns in 1u64..5_000,
        events in proptest::collection::vec((0u64..200_000, 1u64..50, 0usize..3), 1..200),
    ) {
        let keys = ["a", "b", "c"];
        let mut tl = timeline(window_ns);
        let mut expect = [0u64; 3];
        for &(t, n, k) in &events {
            tl.counter_at(keys[k], n, t);
            expect[k] += n;
        }
        for (k, key) in keys.iter().enumerate() {
            prop_assert_eq!(tl.counter_total(key), expect[k]);
            let windowed: u64 =
                tl.counter_windows(key).map(|w| w.values().sum()).unwrap_or(0);
            prop_assert_eq!(windowed, expect[k]);
        }
    }

    /// A sample at instant `t` lands in window `t / window_ns` — in
    /// particular a sample exactly on a boundary opens the *next* window.
    #[test]
    fn boundary_samples_open_the_next_window(
        window_ns in 1u64..10_000,
        k in 0u64..50,
    ) {
        let mut tl = timeline(window_ns);
        let t = k * window_ns;
        tl.hist_at("lat", 7, t);
        prop_assert_eq!(tl.window_of(t), k);
        let h = tl.hist_window("lat", k).expect("sample in window k");
        prop_assert_eq!(h.count(), 1);
        if k > 0 {
            prop_assert!(tl.hist_window("lat", k - 1).is_none());
        }
        // The instant just before the boundary belongs to window k-1.
        if t > 0 {
            prop_assert_eq!(tl.window_of(t - 1), k - 1);
        }
    }
}

/// Empty windows between samples stay empty (no phantom histograms) but
/// the covered horizon still spans them gap-free.
#[test]
fn empty_windows_are_gaps_in_keys_not_in_coverage() {
    let mut tl = timeline(100);
    tl.hist_at("lat", 5, 10); // window 0
    tl.hist_at("lat", 9, 950); // window 9
    assert_eq!(tl.num_windows(), 10);
    for w in 1..9 {
        assert!(tl.hist_window("lat", w).is_none(), "window {w} should be empty");
    }
    let merged = tl.merged_hist("lat").expect("two samples");
    assert_eq!(merged.count(), 2);
    assert_eq!((merged.min(), merged.max()), (5, 9));
}

/// A run with no samples at all has one (empty) window and no keys.
#[test]
fn empty_timeline_has_no_keys() {
    let mut tl = timeline(100);
    tl.observe(0);
    assert_eq!(tl.num_windows(), 1);
    assert!(tl.merged_hist("lat").is_none());
    assert_eq!(tl.hist_keys().count(), 0);
    assert_eq!(tl.late_samples(), 0);
}
