//! Minimal binary codec used for HPX-message framing and action arguments.
//!
//! Hand-written (rather than pulling in a serde format) because the byte
//! layout of the HPX message — non-zero-copy chunk, zero-copy chunks,
//! transmission chunk — is itself the object of study in the paper; we
//! want the chunk boundaries under our explicit control.

use bytes::{BufMut, Bytes, BytesMut};

/// Streaming writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer { buf: BytesMut::new() }
    }

    /// Create a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: BytesMut::with_capacity(cap) }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.put_u8(x);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.put_u32_le(x);
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.put_u64_le(x);
    }

    /// Append a little-endian `f64`.
    pub fn put_f64(&mut self, x: f64) {
        self.buf.put_f64_le(x);
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(u32::try_from(b.len()).expect("chunk too large"));
        self.buf.put_slice(b);
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.put_slice(b);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Cursor-based reader over a byte slice; panics on truncation (framing
/// errors are programming bugs in this closed system, not external input).
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `f64`.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> &'a [u8] {
        let n = self.get_u32() as usize;
        self.take(n)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(1.5);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_f64(), 1.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_bytes() {
        let mut w = Writer::with_capacity(64);
        w.put_bytes(b"hello");
        w.put_bytes(b"");
        w.put_raw(b"xyz");
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.get_bytes(), b"hello");
        assert_eq!(r.get_bytes(), b"");
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    #[should_panic]
    fn truncated_read_panics() {
        let mut r = Reader::new(&[1, 2]);
        r.get_u32();
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_u64_roundtrips(x: u64) {
                let mut w = Writer::new();
                w.put_u64(x);
                let b = w.finish();
                prop_assert_eq!(Reader::new(&b).get_u64(), x);
            }

            #[test]
            fn any_byte_string_roundtrips(v: Vec<u8>) {
                let mut w = Writer::new();
                w.put_bytes(&v);
                let b = w.finish();
                let mut r = Reader::new(&b);
                prop_assert_eq!(r.get_bytes(), &v[..]);
                prop_assert!(r.is_exhausted());
            }

            #[test]
            fn mixed_sequences_roundtrip(items: Vec<(u32, Vec<u8>)>) {
                let mut w = Writer::new();
                for (x, v) in &items {
                    w.put_u32(*x);
                    w.put_bytes(v);
                }
                let b = w.finish();
                let mut r = Reader::new(&b);
                for (x, v) in &items {
                    prop_assert_eq!(r.get_u32(), *x);
                    prop_assert_eq!(r.get_bytes(), &v[..]);
                }
                prop_assert!(r.is_exhausted());
            }
        }
    }
}
