//! Minimal binary codec used for HPX-message framing and action arguments.
//!
//! Hand-written (rather than pulling in a serde format) because the byte
//! layout of the HPX message — non-zero-copy chunk, zero-copy chunks,
//! transmission chunk — is itself the object of study in the paper; we
//! want the chunk boundaries under our explicit control.

use bytes::{BufMut, Bytes, BytesMut};

/// Streaming writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer { buf: BytesMut::new() }
    }

    /// Create a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: BytesMut::with_capacity(cap) }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.put_u8(x);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.put_u32_le(x);
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.put_u64_le(x);
    }

    /// Append a little-endian `f64`.
    pub fn put_f64(&mut self, x: f64) {
        self.buf.put_f64_le(x);
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(u32::try_from(b.len()).expect("chunk too large"));
        self.buf.put_slice(b);
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.put_slice(b);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Payload size (bytes) at or above which [`FrameWriter::put_shared`]
/// keeps the chunk as a shared piece (a refcount bump) instead of copying
/// it into the frame. Matches HPX's zero-copy serialization threshold.
pub const SHARED_CHUNK_MIN: usize = 8192;

/// A serialized frame as a rope of byte pieces.
///
/// Small writes are coalesced into contiguous pieces; large chunks are
/// *shared* pieces referencing the original argument storage. The encoded
/// byte stream is identical to writing everything through [`Writer`] —
/// only the ownership differs.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    pieces: Vec<Bytes>,
    len: usize,
    shared: usize,
}

impl Frame {
    /// Total encoded length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes carried by reference (shared pieces) rather than copied.
    pub fn shared_bytes(&self) -> usize {
        self.shared
    }

    /// The pieces, in stream order.
    pub fn pieces(&self) -> &[Bytes] {
        &self.pieces
    }

    /// Consume into the pieces, in stream order.
    pub fn into_pieces(self) -> Vec<Bytes> {
        self.pieces
    }

    /// Flatten into one contiguous buffer (copies; for tests and
    /// receive-side reassembly).
    pub fn to_bytes(&self) -> Bytes {
        let mut v = Vec::with_capacity(self.len);
        for p in &self.pieces {
            v.extend_from_slice(p);
        }
        Bytes::from(v)
    }
}

/// Streaming writer producing a [`Frame`]: scalar writes coalesce, large
/// chunk payloads ride along by reference.
#[derive(Debug, Default)]
pub struct FrameWriter {
    pieces: Vec<Bytes>,
    cur: BytesMut,
    len: usize,
    shared: usize,
}

impl FrameWriter {
    /// Create an empty frame writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Create a frame writer with reserved capacity for the coalesced
    /// (copied) portion.
    pub fn with_capacity(cap: usize) -> Self {
        FrameWriter { pieces: Vec::new(), cur: BytesMut::with_capacity(cap), len: 0, shared: 0 }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, x: u8) {
        self.cur.put_u8(x);
        self.len += 1;
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.cur.put_u32_le(x);
        self.len += 4;
    }

    /// Append raw bytes (copied) with a `u32` length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(u32::try_from(b.len()).expect("chunk too large"));
        self.cur.put_slice(b);
        self.len += b.len();
    }

    /// Append a chunk with a `u32` length prefix; payloads of
    /// [`SHARED_CHUNK_MIN`] bytes or more become shared pieces — a
    /// refcount bump on the original storage instead of a copy. The byte
    /// stream is identical to [`FrameWriter::put_bytes`] either way.
    pub fn put_shared(&mut self, b: &Bytes) {
        self.put_u32(u32::try_from(b.len()).expect("chunk too large"));
        if b.len() >= SHARED_CHUNK_MIN {
            self.seal_cur();
            self.pieces.push(b.clone());
            self.shared += b.len();
        } else {
            self.cur.put_slice(b);
        }
        self.len += b.len();
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn seal_cur(&mut self) {
        if !self.cur.is_empty() {
            let sealed = std::mem::take(&mut self.cur);
            self.pieces.push(sealed.freeze());
        }
    }

    /// Finish, yielding the frame rope.
    pub fn finish(mut self) -> Frame {
        self.seal_cur();
        Frame { pieces: self.pieces, len: self.len, shared: self.shared }
    }
}

/// Cursor-based reader over a byte slice; panics on truncation (framing
/// errors are programming bugs in this closed system, not external input).
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `f64`.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> &'a [u8] {
        let n = self.get_u32() as usize;
        self.take(n)
    }

    /// Read `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> &'a [u8] {
        self.take(n)
    }

    /// Current cursor offset from the start of the buffer. Callers that
    /// hold shared storage of the same bytes can turn `get_bytes` results
    /// into zero-copy sub-views (`position` before the read names the
    /// length prefix, `position` after names the end of the payload).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(1.5);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_f64(), 1.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_bytes() {
        let mut w = Writer::with_capacity(64);
        w.put_bytes(b"hello");
        w.put_bytes(b"");
        w.put_raw(b"xyz");
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.get_bytes(), b"hello");
        assert_eq!(r.get_bytes(), b"");
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    #[should_panic]
    fn truncated_read_panics() {
        let mut r = Reader::new(&[1, 2]);
        r.get_u32();
    }

    #[test]
    fn frame_writer_matches_flat_writer() {
        let small = Bytes::from(vec![9u8; 100]);
        let big = Bytes::from(vec![8u8; SHARED_CHUNK_MIN]);
        let mut fw = FrameWriter::new();
        fw.put_u32(0xFEED);
        fw.put_shared(&small);
        fw.put_shared(&big);
        fw.put_u8(3);
        let frame = fw.finish();

        let mut w = Writer::new();
        w.put_u32(0xFEED);
        w.put_bytes(&small);
        w.put_bytes(&big);
        w.put_u8(3);
        let flat = w.finish();

        assert_eq!(frame.len(), flat.len());
        assert_eq!(&frame.to_bytes()[..], &flat[..]);
        assert_eq!(frame.shared_bytes(), big.len());
        // coalesced-head, shared, coalesced-tail
        assert_eq!(frame.pieces().len(), 3);
    }

    #[test]
    fn frame_shared_piece_is_a_refcount_bump() {
        let big = Bytes::from(vec![5u8; SHARED_CHUNK_MIN + 1]);
        let mut fw = FrameWriter::new();
        fw.put_shared(&big);
        let frame = fw.finish();
        // The shared piece aliases the source buffer: same backing
        // pointer, no copy.
        let shared = &frame.pieces()[1];
        assert_eq!(shared.as_ptr(), big.as_ptr());
    }

    #[test]
    fn frame_below_threshold_copies() {
        let chunk = Bytes::from(vec![5u8; SHARED_CHUNK_MIN - 1]);
        let mut fw = FrameWriter::new();
        fw.put_shared(&chunk);
        let frame = fw.finish();
        assert_eq!(frame.shared_bytes(), 0);
        assert_eq!(frame.pieces().len(), 1);
        assert_eq!(frame.len(), 4 + chunk.len());
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_u64_roundtrips(x: u64) {
                let mut w = Writer::new();
                w.put_u64(x);
                let b = w.finish();
                prop_assert_eq!(Reader::new(&b).get_u64(), x);
            }

            #[test]
            fn any_byte_string_roundtrips(v: Vec<u8>) {
                let mut w = Writer::new();
                w.put_bytes(&v);
                let b = w.finish();
                let mut r = Reader::new(&b);
                prop_assert_eq!(r.get_bytes(), &v[..]);
                prop_assert!(r.is_exhausted());
            }

            #[test]
            fn mixed_sequences_roundtrip(items: Vec<(u32, Vec<u8>)>) {
                let mut w = Writer::new();
                for (x, v) in &items {
                    w.put_u32(*x);
                    w.put_bytes(v);
                }
                let b = w.finish();
                let mut r = Reader::new(&b);
                for (x, v) in &items {
                    prop_assert_eq!(r.get_u32(), *x);
                    prop_assert_eq!(r.get_bytes(), &v[..]);
                }
                prop_assert!(r.is_exhausted());
            }
        }
    }
}
