//! The action registry: named functions invocable across localities.

use std::collections::HashMap;
use std::rc::Rc;

use simcore::{Sim, SimTime};

use crate::locality::Locality;
use crate::parcel::Parcel;

/// Identifier of a registered action (stable across localities as long as
/// registration order matches, as in SPMD HPX programs).
pub type ActionId = u32;

/// An action body. Runs on a worker core of the destination locality;
/// returns the virtual time at which the core is done (actions charge
/// their own compute costs).
pub type ActionFn = Rc<dyn Fn(&mut Sim, &Rc<Locality>, usize, Parcel) -> SimTime>;

/// Registry mapping action ids/names to handlers. Each locality holds a
/// clone (registration must be replicated identically, mirroring HPX's
/// requirement that actions be registered on every locality).
#[derive(Clone, Default)]
pub struct ActionRegistry {
    by_name: HashMap<String, ActionId>,
    handlers: Vec<(String, ActionFn)>,
}

impl ActionRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `f` under `name`; returns its id. Panics on duplicates —
    /// double registration is a program bug.
    pub fn register<F>(&mut self, name: &str, f: F) -> ActionId
    where
        F: Fn(&mut Sim, &Rc<Locality>, usize, Parcel) -> SimTime + 'static,
    {
        assert!(!self.by_name.contains_key(name), "action {name:?} registered twice");
        let id = self.handlers.len() as ActionId;
        self.by_name.insert(name.to_string(), id);
        self.handlers.push((name.to_string(), Rc::new(f)));
        id
    }

    /// Look up an action id by name.
    pub fn id_of(&self, name: &str) -> Option<ActionId> {
        self.by_name.get(name).copied()
    }

    /// Name of an action.
    pub fn name_of(&self, id: ActionId) -> &str {
        &self.handlers[id as usize].0
    }

    /// Fetch the handler for `id`. Panics on unknown ids (a parcel for an
    /// unregistered action is a protocol violation).
    pub fn handler(&self, id: ActionId) -> ActionFn {
        self.handlers
            .get(id as usize)
            .unwrap_or_else(|| panic!("no action registered with id {id}"))
            .1
            .clone()
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// Whether no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> impl Fn(&mut Sim, &Rc<Locality>, usize, Parcel) -> SimTime + 'static {
        |sim, _loc, _core, _p| sim.now()
    }

    #[test]
    fn register_and_lookup() {
        let mut r = ActionRegistry::new();
        let a = r.register("ping", noop());
        let b = r.register("pong", noop());
        assert_ne!(a, b);
        assert_eq!(r.id_of("ping"), Some(a));
        assert_eq!(r.id_of("nope"), None);
        assert_eq!(r.name_of(b), "pong");
        assert_eq!(r.len(), 2);
        let _h = r.handler(a);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut r = ActionRegistry::new();
        r.register("x", noop());
        r.register("x", noop());
    }

    #[test]
    #[should_panic(expected = "no action registered")]
    fn unknown_handler_panics() {
        let r = ActionRegistry::new();
        r.handler(4);
    }
}
