//! A locality: one simulated node of the HPX runtime — worker cores, task
//! queue, background work, and the plumbing into the parcelport.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

use simcore::causal::{self, MarkKind};
use simcore::{
    CoreClock, CostModel, EventHandler, EventId, HandlerId, Sim, SimResource, SimTime, Tracer,
};

use telemetry::CoreState;

use crate::action::{ActionId, ActionRegistry};
use crate::parcel::Parcel;
use crate::parcel_layer::{ParcelLayer, ParcelLayerConfig};
use crate::sched::{IdleBackoff, Task, WorkerConfig};
use crate::serialize::HpxMessage;
use crate::{BgOutcome, DeliverFn, OnSent, Parcelport};

/// Scheduler state of one locality.
struct SchedState {
    queue: VecDeque<Task>,
    /// The shared task-queue cache lines (HPX scheduler contention).
    queue_res: SimResource,
    cores: Vec<CoreClock>,
    /// Per-core armed-tick marker; `SimTime::NEVER` when the core sleeps.
    armed: Vec<SimTime>,
    /// The pending tick event per core, for rescheduling in place.
    armed_ev: Vec<Option<EventId>>,
    backoff: Vec<IdleBackoff>,
    tasks_spawned: u64,
    tasks_run: u64,
    wake_rr: usize,
}

/// Typed-event tags carried in the low bits of the handler argument word.
const EV_TICK: u64 = 0;
const EV_DELIVER: u64 = 1;
const EV_FLUSH: u64 = 2;
const EV_TAG_MASK: u64 = 0b11;

#[inline]
fn tick_arg(core: usize) -> u64 {
    EV_TICK | ((core as u64) << 2)
}

#[inline]
fn deliver_arg(slot: usize) -> u64 {
    EV_DELIVER | ((slot as u64) << 2)
}

#[inline]
fn flush_arg(core: usize, dest: usize) -> u64 {
    debug_assert!(dest < (1 << 31), "destination id too large to encode");
    EV_FLUSH | ((dest as u64) << 2) | ((core as u64) << 33)
}

/// A delivery parked between the parcelport upcall and its decode task.
struct PendingDeliver {
    core: usize,
    msg: HpxMessage,
}

/// Slab of in-flight deliveries, indexed by the event argument word.
#[derive(Default)]
struct DeliverSlab {
    entries: Vec<Option<PendingDeliver>>,
    free: Vec<u32>,
}

impl DeliverSlab {
    fn insert(&mut self, pd: PendingDeliver) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = Some(pd);
                slot as usize
            }
            None => {
                self.entries.push(Some(pd));
                self.entries.len() - 1
            }
        }
    }

    fn take(&mut self, slot: usize) -> PendingDeliver {
        let pd = self.entries[slot].take().expect("delivery fired twice");
        self.free.push(slot as u32);
        pd
    }
}

/// One simulated node running the AMT runtime.
///
/// All interior mutability is host-single-threaded (`RefCell`); simulated
/// concurrency is expressed through virtual time and [`SimResource`]s.
pub struct Locality {
    /// This locality's id (== its netsim node id).
    pub id: usize,
    /// The shared cost model.
    pub cost: Rc<CostModel>,
    cfg: WorkerConfig,
    sched: RefCell<SchedState>,
    registry: RefCell<ActionRegistry>,
    layer: RefCell<ParcelLayer>,
    parcelport: RefCell<Option<Rc<RefCell<dyn Parcelport>>>>,
    tracer: RefCell<Option<Tracer>>,
    /// Self-reference for registering as an event handler.
    weak: Weak<Locality>,
    /// Typed-event handler id, registered lazily on first use. A locality
    /// drives exactly one `Sim` over its lifetime.
    handler: Cell<Option<HandlerId>>,
    pending: RefCell<DeliverSlab>,
}

impl Locality {
    /// Create a locality with `cfg` cores and the given registry snapshot.
    pub fn new(
        id: usize,
        cost: Rc<CostModel>,
        cfg: WorkerConfig,
        registry: ActionRegistry,
        layer_cfg: ParcelLayerConfig,
    ) -> Rc<Self> {
        let transfer = cost.cacheline_transfer;
        let sched = SchedState {
            queue: VecDeque::new(),
            queue_res: SimResource::new("amt.task_queue", transfer),
            cores: (0..cfg.cores).map(CoreClock::new).collect(),
            armed: vec![SimTime::NEVER; cfg.cores],
            armed_ev: vec![None; cfg.cores],
            backoff: (0..cfg.cores)
                .map(|_| IdleBackoff::new(cost.idle_poll.max(50), cfg.max_idle_backoff_ns))
                .collect(),
            tasks_spawned: 0,
            tasks_run: 0,
            wake_rr: 0,
        };
        Rc::new_cyclic(|weak| Locality {
            id,
            cfg,
            sched: RefCell::new(sched),
            registry: RefCell::new(registry),
            layer: RefCell::new(ParcelLayer::new(layer_cfg, &cost)),
            parcelport: RefCell::new(None),
            tracer: RefCell::new(None),
            cost,
            weak: weak.clone(),
            handler: Cell::new(None),
            pending: RefCell::new(DeliverSlab::default()),
        })
    }

    /// This locality's typed-event handler id, registering on first use.
    fn handler_id(&self, sim: &mut Sim) -> HandlerId {
        match self.handler.get() {
            Some(h) => h,
            None => {
                let rc = self.weak.upgrade().expect("locality alive");
                let h = sim.register_handler(rc);
                self.handler.set(Some(h));
                h
            }
        }
    }

    /// Worker configuration.
    pub fn worker_config(&self) -> &WorkerConfig {
        &self.cfg
    }

    /// Install the parcelport and wire its delivery upcall back to this
    /// locality.
    pub fn set_parcelport(self: &Rc<Self>, pp: Rc<RefCell<dyn Parcelport>>) {
        let weak = Rc::downgrade(self);
        let deliver: DeliverFn = Rc::new(move |sim, core, at, src, msg| {
            if let Some(loc) = weak.upgrade() {
                loc.deliver(sim, core, at, src, msg);
            }
        });
        pp.borrow_mut().set_deliver(deliver);
        *self.parcelport.borrow_mut() = Some(pp);
    }

    /// The installed parcelport, if any.
    pub fn parcelport(&self) -> Option<Rc<RefCell<dyn Parcelport>>> {
        self.parcelport.borrow().clone()
    }

    /// Attach a tracer: every task, background-work slice and progress
    /// slice on this locality is recorded as a span (track
    /// `loc<id>/core<k>`). Retrieve with [`Locality::take_tracer`].
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.borrow_mut() = Some(tracer);
    }

    /// Detach and return the tracer, if one was attached.
    pub fn take_tracer(&self) -> Option<Tracer> {
        self.tracer.borrow_mut().take()
    }

    fn trace(&self, core: usize, label: &'static str, start: SimTime, end: SimTime) {
        if let Some(tr) = self.tracer.borrow_mut().as_mut() {
            tr.span(format!("loc{}/core{}", self.id, core), label, start, end);
        }
    }

    /// Sample the run-queue depth as a counter track (the `format!` only
    /// runs when a collector is installed).
    fn sample_runq(&self, sim: &Sim) {
        telemetry::with(|tel| {
            let depth = self.sched.borrow().queue.len();
            tel.track_sample(&format!("loc{}.runq", self.id), sim.now(), depth as f64);
        });
    }

    /// Access the action registry.
    pub fn with_registry<R>(&self, f: impl FnOnce(&ActionRegistry) -> R) -> R {
        f(&self.registry.borrow())
    }

    /// Access the parcel layer (tests/metrics).
    pub fn with_layer<R>(&self, f: impl FnOnce(&mut ParcelLayer) -> R) -> R {
        f(&mut self.layer.borrow_mut())
    }

    /// Tasks executed so far.
    pub fn tasks_run(&self) -> u64 {
        self.sched.borrow().tasks_run
    }

    /// Tasks spawned so far.
    pub fn tasks_spawned(&self) -> u64 {
        self.sched.borrow().tasks_spawned
    }

    /// Tasks waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.sched.borrow().queue.len()
    }

    /// Busy-time utilization of core `core` over `[0, now]`.
    pub fn core_utilization(&self, core: usize, now: SimTime) -> f64 {
        self.sched.borrow().cores[core].utilization(now)
    }

    /// Kick every core once; call after wiring the parcelport.
    pub fn start(self: &Rc<Self>, sim: &mut Sim) {
        let now = sim.now();
        for core in 0..self.cfg.cores {
            self.arm(sim, core, now);
        }
    }

    /// Arm a tick for `core` at `at` (deduplicated: keeps the earliest).
    ///
    /// A core has at most one live tick event. Arming earlier than the
    /// pending tick *reschedules* it in place — re-sequenced exactly as a
    /// freshly scheduled event would be — instead of the old scheme of
    /// scheduling a second event and letting the first fire as a stale
    /// no-op. The heap never carries dead tick events.
    pub fn arm(self: &Rc<Self>, sim: &mut Sim, core: usize, at: SimTime) {
        let at = at.max(sim.now());
        let h = self.handler_id(sim);
        let pending = {
            let mut s = self.sched.borrow_mut();
            let cur = s.armed[core];
            if cur <= at {
                sim.stats.bump("amt.arm_dedup");
                return; // an earlier (or equal) tick is already pending
            }
            s.armed[core] = at;
            s.armed_ev[core]
        };
        sim.stats.bump("amt.arm_scheduled");
        match pending {
            Some(ev) => {
                let live = sim.reschedule(ev, at);
                debug_assert!(live, "armed tick event must be pending");
            }
            None => {
                let ev = sim.schedule_event_at(at, h, tick_arg(core));
                self.sched.borrow_mut().armed_ev[core] = Some(ev);
            }
        }
    }

    /// Spawn a task; wakes sleeping workers.
    pub fn spawn(self: &Rc<Self>, sim: &mut Sim, core: usize, task: Task) -> SimTime {
        let done = {
            let mut s = self.sched.borrow_mut();
            let done = s.queue_res.access(sim.now(), core, self.cost.task_spawn);
            s.queue.push_back(task);
            s.tasks_spawned += 1;
            done
        };
        sim.stats.bump("amt.spawn");
        self.sample_runq(sim);
        self.wake_workers(sim, done, 1);
        done
    }

    /// Wake up to `n` sleeping (unarmed, not busy) worker cores at `at`,
    /// round-robin — one notify per work item, not a broadcast, like a
    /// condition variable's `notify_one`.
    pub fn wake_workers(self: &Rc<Self>, sim: &mut Sim, at: SimTime, n: usize) {
        let first = self.cfg.first_worker();
        let mut idle: Vec<usize> = {
            let s = self.sched.borrow();
            (first..self.cfg.cores)
                .filter(|&c| s.armed[c] == SimTime::NEVER && s.cores[c].free_at <= at)
                .collect()
        };
        if idle.is_empty() {
            return;
        }
        let rot = {
            let mut s = self.sched.borrow_mut();
            let r = s.wake_rr;
            s.wake_rr = s.wake_rr.wrapping_add(n);
            r
        };
        let len = idle.len();
        idle.rotate_left(rot % len);
        for &c in idle.iter().take(n) {
            self.arm(sim, c, at);
        }
    }

    /// Arm the dedicated progress core (or all idle workers when there is
    /// none) at `at` — the NIC arrival waker target.
    pub fn wake_progress(self: &Rc<Self>, sim: &mut Sim, at: SimTime) {
        if self.cfg.dedicated_progress {
            // The pinned progress thread spins on the NIC: it reacts at
            // the arrival instant.
            self.arm(sim, 0, at);
        } else {
            // Worker threads poll opportunistically: they notice the
            // event one polling period later than a spinning thread.
            let skewed = at + self.cost.worker_poll_skew;
            causal::mark("worker.poll_skew", MarkKind::Wait, at, skewed, 0);
            let at = skewed;
            self.wake_workers(sim, at, 1);
            // Ensure at least one worker will look even if all are busy:
            // the earliest-free worker checks right after it frees up.
            let first = self.cfg.first_worker();
            let best = {
                let s = self.sched.borrow();
                (first..self.cfg.cores).min_by_key(|&c| s.cores[c].free_at)
            };
            if let Some(c) = best {
                let free = self.sched.borrow().cores[c].free_at;
                self.arm(sim, c, free.max(at));
            }
        }
    }

    /// One core tick: run a task if available, otherwise background work.
    fn tick(self: Rc<Self>, sim: &mut Sim, core: usize) {
        let now = sim.now();
        let free_at = self.sched.borrow().cores[core].free_at;
        if free_at > now {
            self.arm(sim, core, free_at);
            return;
        }

        // The dedicated progress core only does communication progress.
        if self.cfg.dedicated_progress && core == 0 {
            self.progress_tick(sim);
            return;
        }

        // 1. Try to pop a task (charges the shared queue).
        let (task, t0) = {
            let mut s = self.sched.borrow_mut();
            if s.queue.is_empty() {
                let t = s.queue_res.access(now, core, self.cost.idle_poll);
                (None, t)
            } else {
                let t = s.queue_res.access(now, core, self.cost.task_schedule);
                (s.queue.pop_front(), t)
            }
        };

        if let Some(task) = task {
            let t_end = task(sim, &self, core).max(t0);
            self.trace(core, "task", now, t_end);
            telemetry::profile_record(self.id, core, CoreState::Working, "task", now, t_end);
            {
                let mut s = self.sched.borrow_mut();
                let charged = t_end - now;
                s.cores[core].charge(now, charged);
                s.tasks_run += 1;
                s.backoff[core].reset();
            }
            self.sample_runq(sim);
            self.arm(sim, core, t_end);
            return;
        }

        // 2. Idle: offer background work to the parcelport.
        let bg = self.run_background(sim, core, t0);
        let t_end = bg.cpu_done.max(t0);
        if bg.did_work {
            self.trace(core, "background", now, t_end);
        }
        // Charged polling burns the core even when nothing was found —
        // that is exactly the time the profiler must surface for the
        // every-worker-polls parcelports.
        let bg_label = if bg.did_work { "background" } else { "poll" };
        telemetry::profile_record(self.id, core, CoreState::Progress, bg_label, now, t_end);
        {
            let mut s = self.sched.borrow_mut();
            let charged = t_end - now;
            s.cores[core].charge(now, charged);
        }
        if bg.wake_workers {
            self.wake_workers(sim, t_end, bg.completions.max(1));
        }
        if bg.did_work {
            self.sched.borrow_mut().backoff[core].reset();
            self.arm(sim, core, t_end);
        } else {
            // Nothing anywhere: back off, or sleep entirely and rely on
            // spawn / NIC wakeups.
            let queue_nonempty = !self.sched.borrow().queue.is_empty();
            if queue_nonempty {
                self.arm(sim, core, t_end);
                return;
            }
            let delay = self.sched.borrow_mut().backoff[core].next();
            match bg.retry_at {
                Some(r) => {
                    let at = r.max(t_end).min(t_end + delay);
                    self.arm(sim, core, at);
                }
                None => { /* sleep until woken */ }
            }
        }
    }

    /// Tick body for the dedicated progress core.
    fn progress_tick(self: &Rc<Self>, sim: &mut Sim) {
        let now = sim.now();
        let bg = {
            let pp = self.parcelport.borrow().clone();
            match pp {
                Some(pp) => {
                    let out = pp.borrow_mut().progress(sim, 0);
                    out
                }
                None => BgOutcome::idle(now),
            }
        };
        let t_end = bg.cpu_done.max(now);
        if bg.did_work {
            self.trace(0, "progress", now, t_end);
        }
        let label = if bg.did_work { "progress" } else { "poll" };
        telemetry::profile_record(self.id, 0, CoreState::Progress, label, now, t_end);
        self.sched.borrow_mut().cores[0].charge(now, t_end - now);
        if bg.wake_workers {
            self.wake_workers(sim, t_end, bg.completions.max(1));
        }
        if bg.did_work {
            self.arm(sim, 0, t_end);
        } else if let Some(r) = bg.retry_at {
            self.arm(sim, 0, r.max(t_end));
        }
        // else: sleep; the NIC arrival waker re-arms core 0.
    }

    fn run_background(self: &Rc<Self>, sim: &mut Sim, core: usize, t0: SimTime) -> BgOutcome {
        let pp = self.parcelport.borrow().clone();
        match pp {
            Some(pp) => {
                let wrapper = self.cost.amt_background_work;
                let mut out = pp.borrow_mut().background_work(sim, core);
                out.cpu_done = out.cpu_done.max(t0) + wrapper;
                out
            }
            None => BgOutcome::idle(t0),
        }
    }

    /// Enqueue a parcel for `dest` (full upper-layer path: parcel queue +
    /// connection cache, or send-immediate). Returns when the calling
    /// core is done.
    pub fn put_parcel(
        self: &Rc<Self>,
        sim: &mut Sim,
        core: usize,
        dest: usize,
        parcel: Parcel,
    ) -> SimTime {
        ParcelLayer::put_parcel(self, sim, core, dest, parcel)
    }

    /// Convenience: invoke `action` on `dest` with `args`.
    pub fn send_action(
        self: &Rc<Self>,
        sim: &mut Sim,
        core: usize,
        dest: usize,
        action: ActionId,
        args: Vec<bytes::Bytes>,
    ) -> SimTime {
        self.put_parcel(sim, core, dest, Parcel::new(action, args))
    }

    /// Hand a message to the parcelport (used by the parcel layer).
    pub(crate) fn pp_put_message(
        self: &Rc<Self>,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dest: usize,
        msg: HpxMessage,
        on_sent: Option<OnSent>,
    ) -> SimTime {
        let pp = self.parcelport.borrow().clone().expect("no parcelport installed");
        telemetry::counter_add_at("amt.messages_put", 1, at.max(sim.now()));
        telemetry::hist_record_at("amt.msg_bytes", msg.total_bytes() as u64, at.max(sim.now()));
        let t = pp.borrow_mut().put_message(sim, core, at, dest, msg, on_sent);
        sim.stats.bump("amt.messages_put");
        t
    }

    /// Delivery upcall: a complete HPX message arrived from `src` and was
    /// fully handled at virtual time `at`. Parks the message in the
    /// delivery slab and schedules a typed event (no allocation beyond the
    /// slab slot) that spawns the decode task at `at`.
    pub fn deliver(
        self: &Rc<Self>,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        src: usize,
        msg: HpxMessage,
    ) {
        sim.stats.bump("amt.messages_delivered");
        let _ = src;
        telemetry::counter_add_at("amt.messages_delivered", 1, at.max(sim.now()));
        telemetry::flow_mark_many(&msg.flows, telemetry::stage::DELIVER, at.max(sim.now()));
        // Counter track of cumulative deliveries (all localities share the
        // thread-local collector, so one track covers the world). The
        // flows guard keeps the disabled path allocation-free.
        if !msg.flows.is_empty() {
            telemetry::with(|tel| {
                let n = tel.with_metrics(|m| m.counter("amt.messages_delivered"));
                tel.track_sample("amt.delivered", at.max(sim.now()), n as f64);
            });
        }
        let h = self.handler_id(sim);
        let slot = self.pending.borrow_mut().insert(PendingDeliver { core, msg });
        sim.schedule_event_at(at.max(sim.now()), h, deliver_arg(slot));
    }

    /// Schedule a parcel-queue flush for `dest` at `at` (the close of a
    /// drain window) as a typed event.
    pub(crate) fn schedule_flush(
        self: &Rc<Self>,
        sim: &mut Sim,
        core: usize,
        dest: usize,
        at: SimTime,
    ) {
        let h = self.handler_id(sim);
        sim.schedule_event_at(at, h, flush_arg(core, dest));
    }

    /// Body of a fired delivery event: spawn the decode task.
    fn spawn_decode(self: &Rc<Self>, sim: &mut Sim, pd: PendingDeliver) {
        let PendingDeliver { core, msg } = pd;
        let decode_cost = self.cost.amt_decode_base + self.cost.serialize(msg.non_zero_copy.len());
        let per_parcel = self.cost.amt_decode_per_parcel;
        let dispatch = self.cost.amt_action_dispatch;
        self.spawn(
            sim,
            core,
            Box::new(move |sim, loc, core| {
                telemetry::flow_set_dst_core(&msg.flows, core);
                telemetry::flow_mark_many(&msg.flows, telemetry::stage::SPAWN, sim.now());
                let mut t = sim.now() + decode_cost;
                let parcels = msg.decode();
                for p in parcels {
                    let handler = loc.with_registry(|r| r.handler(p.action));
                    t += per_parcel + dispatch;
                    // The action observes `t` as its start time via charge
                    // accounting: it returns its own end time, measured
                    // from `sim.now()`; we add our offset before running.
                    let end = handler(sim, loc, core, p);
                    t = t.max(end);
                }
                t
            }),
        );
    }
}

impl EventHandler for Locality {
    fn on_event(&self, sim: &mut Sim, arg: u64) {
        let this = self.weak.upgrade().expect("locality alive");
        // Everything nested under this event (parcelport calls, lock
        // acquires, fabric sends) belongs to this locality's cores.
        telemetry::profile_set_loc(self.id);
        match arg & EV_TAG_MASK {
            EV_TICK => {
                let core = (arg >> 2) as usize;
                {
                    let mut s = this.sched.borrow_mut();
                    s.armed[core] = SimTime::NEVER;
                    s.armed_ev[core] = None;
                }
                this.tick(sim, core);
            }
            EV_DELIVER => {
                let slot = (arg >> 2) as usize;
                let pd = this.pending.borrow_mut().take(slot);
                this.spawn_decode(sim, pd);
            }
            EV_FLUSH => {
                let core = (arg >> 33) as usize;
                let dest = ((arg >> 2) & 0x7FFF_FFFF) as usize;
                ParcelLayer::flush(&this, sim, core, dest);
            }
            _ => unreachable!("unknown event tag"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locality(cfg: WorkerConfig) -> Rc<Locality> {
        Locality::new(
            0,
            Rc::new(CostModel::default()),
            cfg,
            ActionRegistry::new(),
            ParcelLayerConfig::default(),
        )
    }

    #[test]
    fn spawned_tasks_run_and_charge_time() {
        let mut sim = Sim::new(0);
        let loc = locality(WorkerConfig::workers_only(2));
        loc.start(&mut sim);
        let hits = Rc::new(std::cell::Cell::new(0));
        for _ in 0..5 {
            let h = hits.clone();
            loc.spawn(
                &mut sim,
                0,
                Box::new(move |sim, _loc, _core| {
                    h.set(h.get() + 1);
                    sim.now() + 1_000 // 1us of work
                }),
            );
        }
        sim.run();
        assert_eq!(hits.get(), 5);
        assert_eq!(loc.tasks_run(), 5);
        assert_eq!(loc.queue_depth(), 0);
        // 5us of work split over 2 workers: ~3us wall, >0 utilization.
        assert!(loc.core_utilization(0, sim.now()) > 0.0);
    }

    #[test]
    fn two_workers_run_in_parallel() {
        let mut sim = Sim::new(0);
        let loc = locality(WorkerConfig::workers_only(2));
        loc.start(&mut sim);
        for _ in 0..2 {
            loc.spawn(&mut sim, 0, Box::new(|sim, _l, _c| sim.now() + 10_000));
        }
        sim.run();
        // If serialized this would be >= 20us; parallel is ~10us.
        assert!(sim.now().as_nanos() < 15_000, "took {}", sim.now());
    }

    #[test]
    fn single_worker_serializes() {
        let mut sim = Sim::new(0);
        let loc = locality(WorkerConfig::workers_only(1));
        loc.start(&mut sim);
        for _ in 0..2 {
            loc.spawn(&mut sim, 0, Box::new(|sim, _l, _c| sim.now() + 10_000));
        }
        sim.run();
        assert!(sim.now().as_nanos() >= 20_000, "took {}", sim.now());
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let mut sim = Sim::new(0);
        let loc = locality(WorkerConfig::workers_only(2));
        loc.start(&mut sim);
        let hits = Rc::new(std::cell::Cell::new(0u32));
        let h = hits.clone();
        loc.spawn(
            &mut sim,
            0,
            Box::new(move |sim, loc, core| {
                let h2 = h.clone();
                loc.spawn(
                    sim,
                    core,
                    Box::new(move |sim, _l, _c| {
                        h2.set(h2.get() + 1);
                        sim.now()
                    }),
                );
                sim.now() + 100
            }),
        );
        sim.run();
        assert_eq!(hits.get(), 1);
        assert_eq!(loc.tasks_run(), 2);
    }

    #[test]
    fn sim_quiesces_when_idle() {
        let mut sim = Sim::new(0);
        let loc = locality(WorkerConfig::workers_only(4));
        loc.start(&mut sim);
        loc.spawn(&mut sim, 0, Box::new(|sim, _l, _c| sim.now() + 50));
        sim.run();
        // No runaway self-arming: the event heap drained.
        assert_eq!(sim.events_pending(), 0);
        // And a fresh spawn wakes the sleeping workers again.
        let hits = Rc::new(std::cell::Cell::new(false));
        let h = hits.clone();
        loc.spawn(
            &mut sim,
            0,
            Box::new(move |sim, _l, _c| {
                h.set(true);
                sim.now()
            }),
        );
        sim.run();
        assert!(hits.get());
    }

    #[test]
    fn tracer_records_task_spans() {
        let mut sim = Sim::new(0);
        let loc = locality(WorkerConfig::workers_only(2));
        loc.set_tracer(Tracer::new());
        loc.start(&mut sim);
        loc.spawn(&mut sim, 0, Box::new(|sim, _l, _c| sim.now() + 2_000));
        sim.run();
        let tr = loc.take_tracer().expect("tracer attached");
        assert!(!tr.is_empty());
        let totals = tr.totals_by_label();
        assert_eq!(totals[0].0, "task");
        assert!(totals[0].1 >= 2_000);
        assert!(tr.to_chrome_json().contains("loc0/core"));
    }

    #[test]
    fn dedicated_progress_core_runs_no_tasks() {
        let mut sim = Sim::new(0);
        let loc = locality(WorkerConfig::with_progress(2));
        loc.start(&mut sim);
        let core_seen = Rc::new(std::cell::Cell::new(usize::MAX));
        let cs = core_seen.clone();
        loc.spawn(
            &mut sim,
            1,
            Box::new(move |sim, _l, core| {
                cs.set(core);
                sim.now() + 10
            }),
        );
        sim.run();
        assert_eq!(core_seen.get(), 1, "task must not run on the progress core");
    }
}
