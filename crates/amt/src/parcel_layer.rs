//! The upper-layer send path: connection cache + parcel queues, and the
//! send-immediate bypass.
//!
//! §3.2.2 of the paper: "By default, the HPX upper layer interacts with
//! two internal data structures when sending a parcel: the connection
//! cache and the parcel queue. ... These two data structures improve
//! aggregation and memory usage. However, accesses to each of those are
//! protected by HPX spin locks so their use also increases lock
//! contention." The *immediate* configuration "serializes directly the
//! parcel into an HPX message and passes it to the parcelport layer,
//! bypassing the connection cache and the parcel queue."
//!
//! Aggregation emerges from two mechanisms, as in HPX:
//! * while one core is draining/serializing a destination queue
//!   (`draining_until` in the future), parcels pushed by other cores ride
//!   along in the next drain;
//! * when the connection cache is exhausted (all `max_connections`
//!   connections in flight because the parcelport is slow), parcels pile
//!   up in the queue and leave in bulk when a connection returns — this
//!   is what saves the MPI parcelport under high injection pressure.

use std::collections::HashMap;
use std::rc::Rc;

use simcore::causal::{self, MarkKind};
use simcore::{CostModel, Sim, SimResource, SimTime};

use crate::locality::Locality;
use crate::parcel::Parcel;
use crate::serialize::HpxMessage;
use crate::OnSent;

/// Parcel-layer configuration.
#[derive(Debug, Clone)]
pub struct ParcelLayerConfig {
    /// HPX zero-copy serialization threshold (default 8192 bytes).
    pub zero_copy_threshold: usize,
    /// Bypass the connection cache and parcel queues entirely.
    pub send_immediate: bool,
    /// Maximum in-flight sender connections (HPX default 8192).
    pub max_connections: usize,
}

impl Default for ParcelLayerConfig {
    fn default() -> Self {
        ParcelLayerConfig {
            zero_copy_threshold: 8192,
            send_immediate: false,
            max_connections: 8192,
        }
    }
}

struct DestQueue {
    parcels: Vec<Parcel>,
    /// Telemetry flow ids riding alongside `parcels` (empty when
    /// telemetry is disabled — ids of 0 are never pushed).
    flows: Vec<u64>,
    res: SimResource,
    draining_until: SimTime,
}

/// Per-locality send-path state.
pub struct ParcelLayer {
    cfg: ParcelLayerConfig,
    queues: HashMap<usize, DestQueue>,
    conncache_res: SimResource,
    conn_in_use: usize,
    messages_sent: u64,
    parcels_sent: u64,
    starved: u64,
}

impl ParcelLayer {
    /// Create the layer.
    pub fn new(cfg: ParcelLayerConfig, cost: &CostModel) -> Self {
        ParcelLayer {
            cfg,
            queues: HashMap::new(),
            conncache_res: SimResource::new("amt.conncache", cost.cacheline_transfer),
            conn_in_use: 0,
            messages_sent: 0,
            parcels_sent: 0,
            starved: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ParcelLayerConfig {
        &self.cfg
    }

    /// HPX messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Parcels sent so far (>= messages when aggregation happened).
    pub fn parcels_sent(&self) -> u64 {
        self.parcels_sent
    }

    /// Mean parcels per HPX message (aggregation factor).
    pub fn aggregation_factor(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.parcels_sent as f64 / self.messages_sent as f64
        }
    }

    /// Sender connections currently in flight.
    pub fn connections_in_flight(&self) -> usize {
        self.conn_in_use
    }

    /// Times a parcel had to wait because the connection cache was empty.
    pub fn connection_starvations(&self) -> u64 {
        self.starved
    }

    /// Parcels queued for `dest` but not yet drained.
    pub fn queued_for(&self, dest: usize) -> usize {
        self.queues.get(&dest).map_or(0, |q| q.parcels.len())
    }

    fn encode_cost(cost: &CostModel, msg: &HpxMessage, parcels: usize) -> u64 {
        cost.amt_encode_base
            + cost.amt_encode_per_parcel * parcels as u64
            + cost.serialize(msg.non_zero_copy.len())
            + cost.alloc * msg.zero_copy.len() as u64
    }

    /// Extra staging work for zero-copy chunks routed through the
    /// aggregated path (see `CostModel::amt_drain_zc_per_byte_milli`).
    fn drain_zc_cost(cost: &CostModel, msg: &HpxMessage) -> u64 {
        let zc_bytes: usize = msg.zero_copy.iter().map(|c| c.len()).sum();
        (zc_bytes as u64 * cost.amt_drain_zc_per_byte_milli) / 1000
    }

    /// Entry point: send `parcel` to `dest` (see module docs for the two
    /// paths). Returns when the calling core is done.
    pub fn put_parcel(
        loc: &Rc<Locality>,
        sim: &mut Sim,
        core: usize,
        dest: usize,
        parcel: Parcel,
    ) -> SimTime {
        let cost = loc.cost.clone();
        let (immediate, threshold) =
            { loc.with_layer(|l| (l.cfg.send_immediate, l.cfg.zero_copy_threshold)) };

        let flow = telemetry::flow_begin(loc.id, dest, core, sim.now());
        telemetry::counter_add_at("amt.parcels_put", 1, sim.now());

        if immediate {
            // Serialize directly and hand to the parcelport: no queue, no
            // connection cache, no aggregation.
            let mut msg = HpxMessage::encode(std::slice::from_ref(&parcel), threshold);
            let t = sim.now() + Self::encode_cost(&cost, &msg, 1);
            telemetry::profile_overlay(
                core,
                telemetry::CoreState::Serialize,
                "serialize.immediate",
                sim.now(),
                t,
            );
            causal::mark("amt.serialize", MarkKind::Work, sim.now(), t, 0);
            if flow != 0 {
                telemetry::flow_mark(flow, telemetry::stage::SERIALIZE, t);
                msg.flows.push(flow);
            }
            loc.with_layer(|l| {
                l.messages_sent += 1;
                l.parcels_sent += 1;
            });
            sim.stats.bump("amt.send_immediate");
            return loc.pp_put_message(sim, core, t, dest, msg, None);
        }

        // Default path: parcel queue → connection cache → drain.
        let now = sim.now();
        telemetry::flow_mark(flow, telemetry::stage::QUEUE, now);
        enum Next {
            Aggregated((SimTime, SimTime)),
            Starved(SimTime),
            Drain(SimTime),
        }
        let mut queue_depth = 0usize;
        let next = loc.with_layer(|l| {
            let max_conn = l.cfg.max_connections;
            let transfer = cost.cacheline_transfer;
            let q = l.queues.entry(dest).or_insert_with(|| DestQueue {
                parcels: Vec::new(),
                flows: Vec::new(),
                res: SimResource::new("amt.parcel_queue", transfer),
                draining_until: SimTime::ZERO,
            });
            let t1 = q.res.access(now, core, cost.amt_parcel_queue_op);
            q.parcels.push(parcel);
            queue_depth = q.parcels.len();
            if flow != 0 {
                q.flows.push(flow);
            }
            if q.draining_until > now {
                // Another core is serializing this destination right now;
                // our parcel rides along with a later drain.
                sim.stats.bump("amt.aggregated_push");
                return Next::Aggregated((t1, q.draining_until));
            }
            let t2 = l.conncache_res.access(t1, core, cost.amt_conncache_op);
            if l.conn_in_use >= max_conn {
                l.starved += 1;
                sim.stats.bump("amt.conncache_starved");
                return Next::Starved(t2);
            }
            l.conn_in_use += 1;
            Next::Drain(t2)
        });

        // Counter track of the per-destination queue depth. The `flow != 0`
        // guard means the name is only formatted while tracing is on.
        if flow != 0 {
            telemetry::track_sample(&format!("loc{}.sendq", loc.id), now, queue_depth as f64);
        }

        match next {
            Next::Aggregated((t, window_end)) => {
                // Guarantee the rider leaves even if no connection returns
                // and no later put comes: flush when the window closes
                // (a typed event — core and destination ride in the
                // argument word, nothing is boxed).
                loc.schedule_flush(sim, core, dest, window_end);
                t
            }
            Next::Starved(t) => t,
            Next::Drain(t) => Self::drain(loc, sim, core, dest, t),
        }
    }

    /// Drain `dest`'s queue into one HPX message using an already-reserved
    /// connection, send it, and arrange the connection's return.
    fn drain(loc: &Rc<Locality>, sim: &mut Sim, core: usize, dest: usize, t0: SimTime) -> SimTime {
        let cost = loc.cost.clone();
        let (parcels, flows, threshold) = loc.with_layer(|l| {
            let threshold = l.cfg.zero_copy_threshold;
            let q = l.queues.get_mut(&dest).expect("drain of unknown dest");
            (std::mem::take(&mut q.parcels), std::mem::take(&mut q.flows), threshold)
        });
        if parcels.is_empty() {
            // Someone else drained in between; return the connection.
            loc.with_layer(|l| l.conn_in_use -= 1);
            return t0;
        }
        let mut msg = HpxMessage::encode(&parcels, threshold);
        msg.flows = flows;
        // Dequeue + per-parcel serialization is one serialized pass over
        // the destination queue: only one drain makes progress on a
        // destination at a time (this is what caps the aggregated path's
        // parcel rate regardless of backend — the common ~400 K/s plateau
        // of all non-immediate variants in §4.1).
        let encode = Self::encode_cost(&cost, &msg, parcels.len())
            + Self::drain_zc_cost(&cost, &msg)
            + cost.pp_connection;
        let t1 = loc.with_layer(|l| {
            let q = l.queues.get_mut(&dest).expect("dest exists");
            q.res.access(t0, core, encode)
        });
        // The queueing prefix of `[t0, t1)` is already overlaid as
        // lock-wait by the resource probe; the serialize overlay sorts
        // after it and keeps only the service part.
        telemetry::profile_overlay(
            core,
            telemetry::CoreState::Serialize,
            "serialize.drain",
            t0,
            t1,
        );
        // The queue resource emitted its own wait mark for the prefix of
        // `[t0, t1)`; this mark (later in emission order) claims only the
        // remaining service part under the critical-path carve.
        causal::mark("amt.serialize", MarkKind::Work, t0, t1, 0);
        telemetry::flow_mark_many(&msg.flows, telemetry::stage::SERIALIZE, t1);
        loc.with_layer(|l| {
            l.messages_sent += 1;
            l.parcels_sent += parcels.len() as u64;
            let q = l.queues.get_mut(&dest).expect("dest exists");
            q.draining_until = t1;
        });
        sim.stats.bump("amt.drain");
        sim.stats.add("amt.drained_parcels", parcels.len() as u64);

        let loc2 = loc.clone();
        let on_sent: OnSent = Box::new(move |sim, core| {
            Self::on_connection_returned(&loc2, sim, core as usize, dest);
        });
        loc.pp_put_message(sim, core, t1, dest, msg, Some(on_sent))
    }

    /// Flush parcels left behind by a closed drain window (no connection
    /// outstanding to pick them up).
    pub(crate) fn flush(loc: &Rc<Locality>, sim: &mut Sim, core: usize, dest: usize) {
        let cost = loc.cost.clone();
        let now = sim.now();
        let start = loc.with_layer(|l| {
            let pending = l
                .queues
                .get(&dest)
                .is_some_and(|q| !q.parcels.is_empty() && q.draining_until <= now);
            if !pending || l.conn_in_use >= l.cfg.max_connections {
                return None;
            }
            let t = l.conncache_res.access(now, core, cost.amt_conncache_op);
            l.conn_in_use += 1;
            Some(t)
        });
        if let Some(t) = start {
            Self::drain(loc, sim, core, dest, t);
        }
    }

    /// A connection came back: recycle it, and if parcels piled up while
    /// the cache was starved (or a drain window passed over them), send
    /// them now.
    fn on_connection_returned(loc: &Rc<Locality>, sim: &mut Sim, core: usize, dest: usize) {
        let cost = loc.cost.clone();
        let now = sim.now();
        let redrain = loc.with_layer(|l| {
            l.conn_in_use -= 1;
            // Any parcels still queued (riders that pushed during a drain
            // window, or starvation backlog) leave now with this freed
            // connection.
            let pending = l.queues.get(&dest).is_some_and(|q| !q.parcels.is_empty());
            if !pending || l.conn_in_use >= l.cfg.max_connections {
                return None;
            }
            let t = l.conncache_res.access(now, core, cost.amt_conncache_op);
            l.conn_in_use += 1;
            Some(t)
        });
        if let Some(t) = redrain {
            Self::drain(loc, sim, core, dest, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionRegistry;
    use crate::sched::WorkerConfig;
    use crate::{BgOutcome, DeliverFn, Parcelport};
    use bytes::Bytes;
    use std::cell::RefCell;

    /// A parcelport stub that records messages and completes sends after
    /// a fixed delay.
    struct StubPort {
        sent: Rc<RefCell<Vec<(usize, HpxMessage)>>>,
        delay: u64,
    }

    impl Parcelport for StubPort {
        fn put_message(
            &mut self,
            sim: &mut Sim,
            core: usize,
            at: SimTime,
            dest: usize,
            msg: HpxMessage,
            on_sent: Option<OnSent>,
        ) -> SimTime {
            self.sent.borrow_mut().push((dest, msg));
            let t = at.max(sim.now()) + 100;
            if let Some(cb) = on_sent {
                let at = sim.now() + self.delay;
                sim.schedule_once_at(at, cb, core as u64);
            }
            t
        }

        fn background_work(&mut self, sim: &mut Sim, _core: usize) -> BgOutcome {
            BgOutcome::idle(sim.now())
        }

        fn set_deliver(&mut self, _d: DeliverFn) {}

        fn config_name(&self) -> String {
            "stub".into()
        }
    }

    fn world(
        cfg: ParcelLayerConfig,
        delay: u64,
    ) -> (Sim, Rc<Locality>, Rc<RefCell<Vec<(usize, HpxMessage)>>>) {
        let sim = Sim::new(0);
        let loc = Locality::new(
            0,
            Rc::new(CostModel::default()),
            WorkerConfig::workers_only(2),
            ActionRegistry::new(),
            cfg,
        );
        let sent = Rc::new(RefCell::new(Vec::new()));
        let port = StubPort { sent: sent.clone(), delay };
        loc.set_parcelport(Rc::new(RefCell::new(port)));
        (sim, loc, sent)
    }

    fn parcel(n: usize) -> Parcel {
        Parcel::new(0, vec![Bytes::from(vec![1u8; n])])
    }

    #[test]
    fn immediate_path_one_message_per_parcel() {
        let cfg = ParcelLayerConfig { send_immediate: true, ..Default::default() };
        let (mut sim, loc, sent) = world(cfg, 100);
        for _ in 0..5 {
            loc.put_parcel(&mut sim, 0, 1, parcel(16));
        }
        sim.run();
        assert_eq!(sent.borrow().len(), 5);
        loc.with_layer(|l| {
            assert_eq!(l.messages_sent(), 5);
            assert!((l.aggregation_factor() - 1.0).abs() < 1e-9);
        });
    }

    #[test]
    fn default_path_sends_and_recycles_connections() {
        let (mut sim, loc, sent) = world(ParcelLayerConfig::default(), 100);
        loc.put_parcel(&mut sim, 0, 1, parcel(16));
        sim.run();
        assert_eq!(sent.borrow().len(), 1);
        loc.with_layer(|l| assert_eq!(l.connections_in_flight(), 0));
    }

    #[test]
    fn connection_exhaustion_aggregates() {
        let cfg = ParcelLayerConfig { max_connections: 1, ..Default::default() };
        // Long in-flight delay: the single connection stays busy.
        let (mut sim, loc, sent) = world(cfg, 1_000_000);
        loc.put_parcel(&mut sim, 0, 1, parcel(16));
        for _ in 0..9 {
            // Step past the drain window so each put genuinely hits the
            // empty connection cache rather than an in-progress drain.
            sim.run_until(sim.now() + 10_000);
            loc.put_parcel(&mut sim, 0, 1, parcel(16));
        }
        // Only the first parcel went out; the rest wait for the connection.
        assert_eq!(sent.borrow().len(), 1);
        loc.with_layer(|l| {
            assert_eq!(l.queued_for(1), 9);
            assert!(l.connection_starvations() > 0);
        });
        sim.run();
        // After the connection returns, the 9 waiting parcels leave as ONE
        // aggregated message.
        assert_eq!(sent.borrow().len(), 2);
        let agg = &sent.borrow()[1].1;
        assert_eq!(agg.decode().len(), 9);
        loc.with_layer(|l| {
            assert_eq!(l.parcels_sent(), 10);
            assert_eq!(l.messages_sent(), 2);
            assert!(l.aggregation_factor() > 1.0);
        });
    }

    #[test]
    fn drain_window_aggregates_concurrent_pushes() {
        let (mut sim, loc, sent) = world(ParcelLayerConfig::default(), 100);
        // First put starts a drain whose serialization occupies a window;
        // a second put landing inside that window must ride along later
        // rather than open its own connection.
        loc.put_parcel(&mut sim, 0, 1, parcel(16));
        // Same timestamp: the second push sees draining_until > now.
        loc.put_parcel(&mut sim, 1, 1, parcel(16));
        assert_eq!(sent.borrow().len(), 1, "second parcel aggregated, not sent yet");
        sim.run();
        assert_eq!(sent.borrow().len(), 2, "rider drains when the connection returns");
        assert_eq!(sent.borrow()[1].1.decode().len(), 1);
    }

    #[test]
    fn zero_copy_threshold_respected_end_to_end() {
        let (mut sim, loc, sent) = world(ParcelLayerConfig::default(), 10);
        loc.put_parcel(&mut sim, 0, 1, parcel(16 * 1024));
        sim.run();
        let msg = &sent.borrow()[0].1;
        assert_eq!(msg.zero_copy.len(), 1);
        assert!(msg.transmission.is_some());
    }
}
