//! # amt — a miniature HPX-style asynchronous many-task runtime
//!
//! Models the parts of HPX (§2.2 of the paper) that sit *above* the
//! parcelport layer:
//!
//! * **Localities** — one per simulated node (the HPX equivalent of an
//!   MPI rank), each with a pool of simulated worker cores driven by the
//!   [`simcore`] event loop.
//! * **Actions** — registered functions invocable on any locality; the
//!   argument bundle travels as a *parcel*.
//! * **Parcels & HPX messages** — parcels aggregate per destination and
//!   serialize into an *HPX message* with exactly the paper's anatomy: a
//!   non-zero-copy chunk (small arguments + metadata), optional zero-copy
//!   chunks (arguments at or above the zero-copy serialization threshold,
//!   default 8192 bytes), and a transmission chunk (index/length table,
//!   present iff there is at least one zero-copy chunk).
//! * **Connection cache and parcel queues** — the two spinlock-protected
//!   upper-layer structures that improve aggregation/memory reuse but add
//!   lock contention; the *send-immediate* optimization (§3.2.2) bypasses
//!   both.
//! * **Background work** — idle worker cores call the parcelport's
//!   background-work function; optionally, a *resource partitioner*
//!   reserves simulated core 0 for a dedicated, pinned progress thread
//!   (the `pin`/`rp` configurations).
//!
//! The actual parcelports (MPI and LCI) live in the `parcelport` crate
//! and plug in through the [`Parcelport`] trait defined here.

pub mod action;
pub mod codec;
pub mod locality;
pub mod parcel;
pub mod parcel_layer;
pub mod runtime;
pub mod sched;
pub mod serialize;

pub use action::{ActionFn, ActionId, ActionRegistry};
pub use locality::Locality;
pub use parcel::Parcel;
pub use parcel_layer::{ParcelLayer, ParcelLayerConfig};
pub use runtime::{Runtime, RuntimeConfig};
pub use sched::Task;
pub use serialize::HpxMessage;

use simcore::{Sim, SimTime};

/// Outcome of one parcelport background-work or progress invocation.
#[derive(Debug, Clone, Copy)]
pub struct BgOutcome {
    /// Whether anything was accomplished (completions reaped, packets
    /// handled, pending sends advanced). Idle cores use this to back off.
    pub did_work: bool,
    /// When the calling core is done.
    pub cpu_done: SimTime,
    /// Earliest instant it is worth calling again (e.g. next known packet
    /// arrival), if the parcelport knows one.
    pub retry_at: Option<SimTime>,
    /// Set by a dedicated progress thread when it produced completions
    /// that *worker* cores must reap (completion-queue entries, tripped
    /// synchronizers). The runtime then wakes sleeping workers.
    pub wake_workers: bool,
    /// How many reapable completions were produced (bounds how many
    /// workers are woken — one notify per item, not a broadcast).
    pub completions: usize,
}

impl BgOutcome {
    /// An outcome that accomplished nothing.
    pub fn idle(cpu_done: SimTime) -> Self {
        BgOutcome { did_work: false, cpu_done, retry_at: None, wake_workers: false, completions: 0 }
    }
}

/// Callback invoked by a parcelport when a complete HPX message has been
/// received: `(sim, receiving core, completion virtual time, source
/// locality, message)`.
pub type DeliverFn = std::rc::Rc<dyn Fn(&mut Sim, usize, SimTime, usize, HpxMessage)>;

/// Callback invoked when a posted HPX message has fully left the sender
/// (all its chunks' sends completed locally) — used by the parcel layer to
/// recycle the connection-cache slot. Receives `(sim, core)` where `core`
/// is the core that observed the completion. Parcelports must invoke it
/// from a *fresh event* (`sim.schedule_once_at`, which moves this box into
/// the event with no further allocation), never inline from a method
/// that still holds the parcelport borrowed, because the callback may
/// re-enter the parcelport to send the next aggregated message.
pub type OnSent = simcore::OnceFn;

/// The parcelport interface: everything the runtime needs from a
/// communication backend. Implementations live in the `parcelport` crate.
pub trait Parcelport {
    /// Hand a serialized HPX message to the backend for transmission.
    /// The backend owns retries; `on_sent` fires when the message has
    /// fully left this locality. Returns when the calling core is free.
    fn put_message(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dest: usize,
        msg: HpxMessage,
        on_sent: Option<OnSent>,
    ) -> SimTime;

    /// One slice of background work, called by idle worker cores.
    fn background_work(&mut self, sim: &mut Sim, core: usize) -> BgOutcome;

    /// One slice of dedicated progress work, called by the pinned progress
    /// core when the resource partitioner reserves one. Defaults to
    /// [`Parcelport::background_work`].
    fn progress(&mut self, sim: &mut Sim, core: usize) -> BgOutcome {
        self.background_work(sim, core)
    }

    /// Whether this parcelport wants the runtime to dedicate core 0 to
    /// calling [`Parcelport::progress`] (the `pin`/`rp` configurations).
    fn wants_dedicated_progress(&self) -> bool {
        false
    }

    /// Register the upcall for received messages.
    fn set_deliver(&mut self, deliver: DeliverFn);

    /// Human-readable configuration name (Table 1 naming scheme).
    fn config_name(&self) -> String;
}
