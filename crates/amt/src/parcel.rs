//! Parcels: the unit of remote action invocation.

use bytes::Bytes;

use crate::action::ActionId;

/// A parcel: "the collection of arguments to invoke an action, provided by
/// the source locality, along with some metadata of the action invoked"
/// (§2.2). Argument blobs are already encoded by the caller; blobs at or
/// above the zero-copy serialization threshold become zero-copy chunks of
/// the HPX message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parcel {
    /// The action to invoke at the destination.
    pub action: ActionId,
    /// Encoded argument blobs.
    pub args: Vec<Bytes>,
}

impl Parcel {
    /// Build a parcel.
    pub fn new(action: ActionId, args: Vec<Bytes>) -> Self {
        Parcel { action, args }
    }

    /// Build an argument-less parcel.
    pub fn empty(action: ActionId) -> Self {
        Parcel { action, args: Vec::new() }
    }

    /// Total payload bytes across all arguments.
    pub fn payload_bytes(&self) -> usize {
        self.args.iter().map(|a| a.len()).sum()
    }

    /// Bytes that will serialize into the non-zero-copy chunk given the
    /// zero-copy `threshold` (arguments strictly below it).
    pub fn small_bytes(&self, threshold: usize) -> usize {
        self.args.iter().map(|a| a.len()).filter(|&l| l < threshold).sum()
    }

    /// Arguments that become zero-copy chunks (length >= `threshold`).
    pub fn zero_copy_args(&self, threshold: usize) -> impl Iterator<Item = &Bytes> {
        self.args.iter().filter(move |a| a.len() >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let p = Parcel::new(
            3,
            vec![
                Bytes::from(vec![0u8; 10]),
                Bytes::from(vec![0u8; 100]),
                Bytes::from(vec![0u8; 5]),
            ],
        );
        assert_eq!(p.payload_bytes(), 115);
        assert_eq!(p.small_bytes(50), 15);
        assert_eq!(p.zero_copy_args(50).count(), 1);
        assert_eq!(p.zero_copy_args(5).count(), 3);
        assert_eq!(p.zero_copy_args(1000).count(), 0);
    }

    #[test]
    fn empty_parcel() {
        let p = Parcel::empty(9);
        assert_eq!(p.action, 9);
        assert_eq!(p.payload_bytes(), 0);
    }

    #[test]
    fn threshold_boundary_is_inclusive_for_zero_copy() {
        let p = Parcel::new(0, vec![Bytes::from(vec![0u8; 64])]);
        // Exactly at threshold => zero-copy (HPX: >= threshold).
        assert_eq!(p.zero_copy_args(64).count(), 1);
        assert_eq!(p.small_bytes(64), 0);
        assert_eq!(p.zero_copy_args(65).count(), 0);
    }
}
