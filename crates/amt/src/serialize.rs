//! HPX-message serialization: the exact anatomy of §2.2.
//!
//! > An HPX message passed to the parcelport layer consists of the
//! > following components: a non-zero-copy chunk containing all the small
//! > arguments of the serialized parcels and some metadata about the
//! > parcels; optionally, multiple zero-copy chunks, each containing a
//! > large argument of the serialized parcels; a transmission chunk
//! > containing the index and length of the arguments. It is only needed
//! > when there is at least one zero-copy chunk.
//!
//! Encoding of the non-zero-copy chunk:
//!
//! ```text
//! u32 parcel_count
//! per parcel:
//!   u32 action id
//!   u32 argument count
//!   per argument:
//!     u8 0  + u32 len + bytes        (inline small argument)
//!     u8 1  + u32 zero-copy index    (reference to a zero-copy chunk)
//! ```
//!
//! The transmission chunk is `u32 count` then `(u32 index, u64 len)` per
//! zero-copy chunk.

use bytes::Bytes;

use crate::codec::{Reader, Writer};
use crate::parcel::Parcel;

/// A serialized HPX message as handed to the parcelport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpxMessage {
    /// Small arguments + parcel metadata.
    pub non_zero_copy: Bytes,
    /// One chunk per large argument, in reference order. These are
    /// `Bytes` handles onto the original argument storage — genuinely
    /// zero-copy.
    pub zero_copy: Vec<Bytes>,
    /// Index/length table; `Some` iff `zero_copy` is non-empty.
    pub transmission: Option<Bytes>,
    /// Telemetry flow ids of the parcels aggregated into this message.
    /// Always empty when telemetry is disabled; never serialized — the
    /// receive side re-attaches ids via the out-of-band route registry.
    pub flows: Vec<u64>,
}

impl HpxMessage {
    /// Serialize `parcels` with the given zero-copy serialization
    /// `threshold` (arguments of `len >= threshold` become zero-copy
    /// chunks; HPX default 8192).
    pub fn encode(parcels: &[Parcel], threshold: usize) -> HpxMessage {
        let mut w = Writer::with_capacity(64);
        let mut zero_copy: Vec<Bytes> = Vec::new();
        w.put_u32(u32::try_from(parcels.len()).expect("too many parcels"));
        for p in parcels {
            w.put_u32(p.action);
            w.put_u32(u32::try_from(p.args.len()).expect("too many args"));
            for a in &p.args {
                if a.len() >= threshold {
                    w.put_u8(1);
                    w.put_u32(u32::try_from(zero_copy.len()).expect("too many chunks"));
                    zero_copy.push(a.clone());
                } else {
                    w.put_u8(0);
                    w.put_bytes(a);
                }
            }
        }
        let transmission = if zero_copy.is_empty() {
            None
        } else {
            let mut tw = Writer::with_capacity(4 + 12 * zero_copy.len());
            tw.put_u32(zero_copy.len() as u32);
            for (i, c) in zero_copy.iter().enumerate() {
                tw.put_u32(i as u32);
                tw.put_u64(c.len() as u64);
            }
            Some(tw.finish())
        };
        HpxMessage { non_zero_copy: w.finish(), zero_copy, transmission, flows: Vec::new() }
    }

    /// Deserialize back into parcels. The remote locality can decode
    /// solely from the non-zero-copy chunk when there are no zero-copy
    /// chunks; otherwise the transmission chunk is validated against the
    /// received zero-copy chunks.
    pub fn decode(&self) -> Vec<Parcel> {
        if let Some(t) = &self.transmission {
            let mut tr = Reader::new(t);
            let n = tr.get_u32() as usize;
            assert_eq!(n, self.zero_copy.len(), "transmission chunk count mismatch");
            for i in 0..n {
                assert_eq!(tr.get_u32() as usize, i, "transmission chunk index mismatch");
                assert_eq!(
                    tr.get_u64() as usize,
                    self.zero_copy[i].len(),
                    "transmission chunk length mismatch"
                );
            }
        } else {
            assert!(self.zero_copy.is_empty(), "zero-copy chunks without transmission chunk");
        }
        let mut r = Reader::new(&self.non_zero_copy);
        let count = r.get_u32() as usize;
        let mut parcels = Vec::with_capacity(count);
        for _ in 0..count {
            let action = r.get_u32();
            let argc = r.get_u32() as usize;
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                match r.get_u8() {
                    0 => {
                        // Zero-copy: the argument is a sub-view of the
                        // non-zero-copy chunk (a refcount bump), not a
                        // fresh copy — the receive path stays
                        // allocation-free per small argument.
                        let len = r.get_u32() as usize;
                        let start = r.position();
                        let _ = r.get_raw(len);
                        args.push(self.non_zero_copy.slice(start..start + len));
                    }
                    1 => {
                        let idx = r.get_u32() as usize;
                        args.push(self.zero_copy[idx].clone());
                    }
                    k => panic!("bad argument kind {k}"),
                }
            }
            parcels.push(Parcel { action, args });
        }
        assert!(r.is_exhausted(), "trailing bytes in non-zero-copy chunk");
        parcels
    }

    /// Whether the message needs a transmission chunk.
    pub fn has_zero_copy(&self) -> bool {
        !self.zero_copy.is_empty()
    }

    /// Total bytes across all chunks (wire payload accounting).
    pub fn total_bytes(&self) -> usize {
        self.non_zero_copy.len()
            + self.zero_copy.iter().map(|c| c.len()).sum::<usize>()
            + self.transmission.as_ref().map_or(0, |t| t.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parcel(action: u32, sizes: &[usize]) -> Parcel {
        Parcel::new(
            action,
            sizes
                .iter()
                .map(|&n| Bytes::from((0..n).map(|i| i as u8).collect::<Vec<_>>()))
                .collect(),
        )
    }

    #[test]
    fn small_only_message_has_no_transmission_chunk() {
        let msg = HpxMessage::encode(&[parcel(1, &[8, 16])], 8192);
        assert!(msg.transmission.is_none());
        assert!(msg.zero_copy.is_empty());
        assert_eq!(msg.decode(), vec![parcel(1, &[8, 16])]);
    }

    #[test]
    fn large_args_become_zero_copy_chunks() {
        let msg = HpxMessage::encode(&[parcel(2, &[8, 16384, 9000])], 8192);
        assert_eq!(msg.zero_copy.len(), 2);
        assert!(msg.transmission.is_some());
        assert_eq!(msg.decode(), vec![parcel(2, &[8, 16384, 9000])]);
    }

    #[test]
    fn zero_copy_is_actually_zero_copy() {
        let big = Bytes::from(vec![9u8; 10000]);
        let p = Parcel::new(0, vec![big.clone()]);
        let msg = HpxMessage::encode(&[p], 8192);
        assert_eq!(msg.zero_copy[0].as_ptr(), big.as_ptr(), "no copy of large args");
    }

    #[test]
    fn multiple_parcels_aggregate() {
        let ps = vec![parcel(1, &[4]), parcel(2, &[]), parcel(3, &[10000, 3])];
        let msg = HpxMessage::encode(&ps, 8192);
        assert_eq!(msg.decode(), ps);
    }

    #[test]
    fn threshold_exact_boundary() {
        let msg = HpxMessage::encode(&[parcel(0, &[8192])], 8192);
        assert_eq!(msg.zero_copy.len(), 1, ">= threshold goes zero-copy");
        let msg2 = HpxMessage::encode(&[parcel(0, &[8191])], 8192);
        assert!(msg2.zero_copy.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn corrupted_transmission_chunk_detected() {
        let mut msg = HpxMessage::encode(&[parcel(0, &[9000])], 8192);
        msg.zero_copy[0] = Bytes::from(vec![0u8; 42]);
        msg.decode();
    }

    #[test]
    fn total_bytes_accounts_all_chunks() {
        let msg = HpxMessage::encode(&[parcel(0, &[8, 9000])], 8192);
        assert_eq!(
            msg.total_bytes(),
            msg.non_zero_copy.len() + 9000 + msg.transmission.as_ref().unwrap().len()
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_parcel() -> impl Strategy<Value = Parcel> {
            (
                0u32..1000,
                proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 0..6),
            )
                .prop_map(|(a, args)| Parcel::new(a, args.into_iter().map(Bytes::from).collect()))
        }

        proptest! {
            #[test]
            fn encode_decode_roundtrips(
                parcels in proptest::collection::vec(arb_parcel(), 0..8),
                threshold in 1usize..200,
            ) {
                let msg = HpxMessage::encode(&parcels, threshold);
                prop_assert_eq!(msg.decode(), parcels);
            }

            #[test]
            fn transmission_iff_zero_copy(
                parcels in proptest::collection::vec(arb_parcel(), 0..8),
                threshold in 1usize..200,
            ) {
                let msg = HpxMessage::encode(&parcels, threshold);
                prop_assert_eq!(msg.transmission.is_some(), !msg.zero_copy.is_empty());
                let expected: usize = parcels
                    .iter()
                    .map(|p| p.zero_copy_args(threshold).count())
                    .sum();
                prop_assert_eq!(msg.zero_copy.len(), expected);
            }
        }
    }
}
