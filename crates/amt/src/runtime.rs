//! Runtime assembly: a set of localities sharing an action registry.

use std::rc::Rc;

use simcore::{CostModel, Sim};

use crate::action::ActionRegistry;
use crate::locality::Locality;
use crate::parcel_layer::ParcelLayerConfig;
use crate::sched::WorkerConfig;

/// Configuration of a whole runtime instance.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of localities (simulated nodes).
    pub localities: usize,
    /// Worker-pool shape, identical on every locality.
    pub workers: WorkerConfig,
    /// Parcel-layer (upper layer) configuration.
    pub layer: ParcelLayerConfig,
}

impl RuntimeConfig {
    /// Two localities (the microbenchmark topology) with `cores` cores.
    pub fn two_nodes(cores: usize, dedicated_progress: bool) -> Self {
        RuntimeConfig {
            localities: 2,
            workers: if dedicated_progress {
                WorkerConfig::with_progress(cores)
            } else {
                WorkerConfig::workers_only(cores)
            },
            layer: ParcelLayerConfig::default(),
        }
    }
}

/// A running set of localities. Parcelports are installed per locality by
/// the caller (they live in the `parcelport` crate, which depends on this
/// one).
pub struct Runtime {
    /// The localities, indexed by id.
    pub localities: Vec<Rc<Locality>>,
    /// The shared cost model.
    pub cost: Rc<CostModel>,
}

impl Runtime {
    /// Build localities; every locality gets a clone of `registry`.
    pub fn new(cfg: &RuntimeConfig, cost: Rc<CostModel>, registry: ActionRegistry) -> Runtime {
        let localities = (0..cfg.localities)
            .map(|id| {
                Locality::new(
                    id,
                    cost.clone(),
                    cfg.workers.clone(),
                    registry.clone(),
                    cfg.layer.clone(),
                )
            })
            .collect();
        Runtime { localities, cost }
    }

    /// Build exactly one locality of an SPMD world — the federated
    /// construction path, where each engine lane owns only its own rank.
    /// Identical per-locality recipe to [`Runtime::new`]: the same
    /// `rank` with the same `cfg`/`registry` yields a locality
    /// indistinguishable from `Runtime::new(..).locality(rank)`.
    pub fn single_locality(
        rank: usize,
        cfg: &RuntimeConfig,
        cost: Rc<CostModel>,
        registry: ActionRegistry,
    ) -> Rc<Locality> {
        assert!(rank < cfg.localities, "rank {rank} outside the {}-locality world", cfg.localities);
        Locality::new(rank, cost, cfg.workers.clone(), registry, cfg.layer.clone())
    }

    /// Locality by id.
    pub fn locality(&self, id: usize) -> &Rc<Locality> {
        &self.localities[id]
    }

    /// Arm every core of every locality. Call after parcelports are
    /// installed.
    pub fn start(&self, sim: &mut Sim) {
        for loc in &self.localities {
            loc.start(sim);
        }
    }

    /// Total tasks run across localities.
    pub fn total_tasks_run(&self) -> u64 {
        self.localities.iter().map(|l| l.tasks_run()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_topology() {
        let cfg = RuntimeConfig::two_nodes(4, true);
        let rt = Runtime::new(&cfg, Rc::new(CostModel::default()), ActionRegistry::new());
        assert_eq!(rt.localities.len(), 2);
        assert_eq!(rt.locality(0).worker_config().cores, 4);
        assert!(rt.locality(1).worker_config().dedicated_progress);
        assert_eq!(rt.locality(1).worker_config().worker_count(), 3);
    }

    #[test]
    fn start_and_quiesce() {
        let cfg = RuntimeConfig::two_nodes(2, false);
        let rt = Runtime::new(&cfg, Rc::new(CostModel::default()), ActionRegistry::new());
        let mut sim = Sim::new(0);
        rt.start(&mut sim);
        sim.run();
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(rt.total_tasks_run(), 0);
    }
}
