//! Scheduler primitives: tasks, worker configuration, idle backoff.

use std::rc::Rc;

use simcore::{Sim, SimTime};

use crate::locality::Locality;

/// A one-shot HPX task. Runs on a worker core; receives the simulator,
/// its locality and its core id; returns the virtual instant its work
/// ends (tasks charge their own compute costs).
pub type Task = Box<dyn FnOnce(&mut Sim, &Rc<Locality>, usize) -> SimTime>;

/// Worker-pool configuration for one locality (the HPX resource
/// partitioner's view of the node).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Total simulated cores on the node.
    pub cores: usize,
    /// Reserve core 0 for a dedicated, pinned communication progress
    /// thread (the `pin`/`rp` configurations). Worker tasks then run on
    /// cores `1..cores`.
    pub dedicated_progress: bool,
    /// Upper bound of the idle exponential backoff, ns.
    pub max_idle_backoff_ns: u64,
}

impl WorkerConfig {
    /// `cores` workers, no dedicated progress thread.
    pub fn workers_only(cores: usize) -> Self {
        WorkerConfig { cores, dedicated_progress: false, max_idle_backoff_ns: 2_000 }
    }

    /// `cores` cores with core 0 pinned to progress.
    pub fn with_progress(cores: usize) -> Self {
        WorkerConfig { cores, dedicated_progress: true, max_idle_backoff_ns: 2_000 }
    }

    /// Index of the first task-running core.
    pub fn first_worker(&self) -> usize {
        usize::from(self.dedicated_progress)
    }

    /// Number of task-running cores.
    pub fn worker_count(&self) -> usize {
        self.cores - self.first_worker()
    }
}

/// Exponential idle backoff: a worker that repeatedly finds nothing to do
/// polls less and less often, up to a cap.
#[derive(Debug, Clone)]
pub struct IdleBackoff {
    current: u64,
    min: u64,
    max: u64,
}

impl IdleBackoff {
    /// Backoff starting (and resetting) to `min`, capped at `max`.
    pub fn new(min: u64, max: u64) -> Self {
        IdleBackoff { current: min, min, max }
    }

    /// Call when work was found: reset to the minimum.
    pub fn reset(&mut self) {
        self.current = self.min;
    }

    /// Call when idle: returns the delay to sleep, then doubles it.
    #[allow(clippy::should_implement_trait)] // not an Iterator: never ends
    pub fn next(&mut self) -> u64 {
        let d = self.current;
        self.current = (self.current * 2).min(self.max);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_config_partitions_cores() {
        let w = WorkerConfig::workers_only(8);
        assert_eq!(w.first_worker(), 0);
        assert_eq!(w.worker_count(), 8);
        let p = WorkerConfig::with_progress(8);
        assert_eq!(p.first_worker(), 1);
        assert_eq!(p.worker_count(), 7);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = IdleBackoff::new(100, 1000);
        assert_eq!(b.next(), 100);
        assert_eq!(b.next(), 200);
        assert_eq!(b.next(), 400);
        assert_eq!(b.next(), 800);
        assert_eq!(b.next(), 1000);
        assert_eq!(b.next(), 1000);
        b.reset();
        assert_eq!(b.next(), 100);
    }
}
