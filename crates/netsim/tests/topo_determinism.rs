//! Sharding must stay unobservable when the lookahead comes from a
//! switched topology: lanes are the hosts of a k=4 fat-tree, cross-lane
//! sends arrive after the *static path latency* between the two hosts
//! (always >= the fabric's first-hop lookahead), and 1/2/4-shard
//! sequential and threaded placements must produce bit-identical
//! canonical digests and per-actor histories.
//!
//! This is the topology-flavoured companion of simcore's
//! `shard_determinism.rs`: same engine invariant, but the lookahead and
//! the cross-lane delays are now derived from a real interconnect model
//! instead of a uniform constant.

use std::any::Any;

use netsim::topo::fattree::FatTreeParams;
use netsim::WireModel;
use proptest::prelude::*;
use simcore::{LaneCtx, LaneId, ShardActor, ShardedSim, SimTime};

/// Zero-load fat-tree path latencies for every (src, dst) host pair, plus
/// the fabric's advertised lookahead. Pure precomputation — the live port
/// state is not touched, so every placement sees the same matrix.
fn latency_matrix(payload: usize) -> (Vec<Vec<u64>>, u64) {
    let fab = FatTreeParams::new(4).build();
    let model = WireModel::expanse();
    let hosts = fab.graph().hosts();
    let lat = (0..hosts)
        .map(|src| {
            (0..hosts)
                .map(|dst| {
                    if src == dst {
                        0
                    } else {
                        fab.static_path_latency(src, dst, payload, &model)
                    }
                })
                .collect()
        })
        .collect();
    (lat, fab.min_first_hop_latency())
}

struct HostActor {
    me: usize,
    lat: Vec<u64>,
    lanes: usize,
    rng: u64,
    budget: u32,
    history: Vec<(u64, u64)>,
}

impl HostActor {
    fn next(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

impl ShardActor for HostActor {
    fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64) {
        self.history.push((ctx.now().as_nanos(), arg));
        for _ in 0..2 {
            if self.budget == 0 {
                break;
            }
            self.budget -= 1;
            let r = self.next();
            let dst = (r as usize >> 8) % self.lanes;
            if dst == self.me {
                // Local work: schedule at a small offset.
                ctx.schedule_in(r >> 32 & 63, r);
            } else {
                // Cross-lane parcel: arrives after the fat-tree path
                // latency, which the engine requires to be >= lookahead.
                let delay = self.lat[dst];
                assert!(delay >= ctx.lookahead(), "path latency undercuts lookahead");
                ctx.send(LaneId(dst as u32), ctx.now() + delay, r);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct Outcome {
    digest: u64,
    executed: u64,
    end_ns: u64,
    histories: Vec<Vec<(u64, u64)>>,
}

fn run_workload(seed: u64, budget: u32, shards: usize, threaded: bool) -> Outcome {
    let (lat, lookahead) = latency_matrix(64);
    let hosts = lat.len();
    let mut sim = ShardedSim::new(shards, lookahead);
    sim.set_exec_capture(true);
    for host in 0..hosts {
        let actor = HostActor {
            me: host,
            lat: lat[host].clone(),
            lanes: hosts,
            rng: seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(host as u64 + 1)),
            budget,
            history: Vec::new(),
        };
        sim.add_actor(host % shards, Box::new(actor));
    }
    for host in 0..hosts {
        sim.seed(LaneId(host as u32), SimTime::from_nanos(host as u64 % 5), host as u64);
    }
    let report = if threaded { sim.run_threaded() } else { sim.run_sequential() };
    assert_eq!(sim.events_pending(), 0);
    Outcome {
        digest: sim.digest(),
        executed: report.executed,
        end_ns: report.end.as_nanos(),
        histories: (0..hosts)
            .map(|h| sim.actor::<HostActor>(LaneId(h as u32)).unwrap().history.clone())
            .collect(),
    }
}

fn assert_same(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.executed, b.executed, "{what}: executed diverged");
    assert_eq!(a.end_ns, b.end_ns, "{what}: makespan diverged");
    assert_eq!(a.digest, b.digest, "{what}: digest diverged");
    assert_eq!(a.histories, b.histories, "{what}: histories diverged");
}

#[test]
fn fat_tree_lookahead_is_positive_and_bounds_paths() {
    let (lat, lookahead) = latency_matrix(64);
    assert!(lookahead > 0, "a switched topology must offer real lookahead");
    for (src, row) in lat.iter().enumerate() {
        for (dst, &l) in row.iter().enumerate() {
            if src != dst {
                assert!(l >= lookahead, "{src}->{dst}: {l} < {lookahead}");
            }
        }
    }
}

#[test]
fn fixed_fat_tree_workload_is_placement_invariant() {
    let one = run_workload(0xFA77_4EE5u64, 40, 1, false);
    assert!(one.executed > 100, "workload should be non-trivial");
    for shards in [2usize, 4] {
        let seq = run_workload(0xFA77_4EE5u64, 40, shards, false);
        assert_same(&one, &seq, "sequential");
        let thr = run_workload(0xFA77_4EE5u64, 40, shards, true);
        assert_same(&one, &thr, "threaded");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary seeds/budgets: 1-shard, 2/4-shard sequential and
    /// threaded runs over the fat-tree are bit-identical.
    #[test]
    fn fat_tree_sharding_is_unobservable(seed in any::<u64>(), budget in 1u32..24) {
        let one = run_workload(seed, budget, 1, false);
        for shards in [2usize, 4] {
            let seq = run_workload(seed, budget, shards, false);
            assert_same(&one, &seq, "sequential");
            let thr = run_workload(seed, budget, shards, true);
            assert_same(&one, &thr, "threaded");
        }
    }
}
