//! Interconnect topology models: switched fabrics with real routing.
//!
//! Everything the 2-node `Fabric` abstracts away — switches, output-port
//! buffers, multi-hop routes, path diversity, link failure — lives here.
//! A [`Topology`] value selects the backend: [`Topology::Direct`] keeps
//! the original point-to-point wire model byte-for-byte, while
//! [`Topology::FatTree`] and [`Topology::Dragonfly`] build a
//! [`SwitchFabric`] that packets walk hop by hop, with every output port
//! a contended [`simcore::SimResource`] visible to the contention
//! attributor and the critical-path analyzer.

pub mod dragonfly;
pub mod fattree;
pub mod graph;
pub mod routing;
pub mod switch;

pub use dragonfly::DragonflyParams;
pub use fattree::FatTreeParams;
pub use graph::{Peer, PortSpec, SwitchSpec, TopoGraph};
pub use routing::{RouteTable, RoutingPolicy};
pub use switch::{PortCounters, SwitchFabric, WalkResult};

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Intern a string, leaking at most once per distinct name.
///
/// Port resources need `&'static str` names (the [`simcore::probe`] and
/// contention-report plumbing is `&'static`-keyed to stay allocation-free
/// on the hot path), but port names are computed from topology layout at
/// build time. Distinct names are bounded by the port count of the
/// largest topology ever built in-process, so leaking is fine; repeated
/// builds of the same topology reuse the same leaked names.
pub fn intern(name: String) -> &'static str {
    static POOL: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut pool = POOL.lock().unwrap();
    if let Some(&s) = pool.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    pool.insert(name, leaked);
    leaked
}

/// Which interconnect the fabric simulates.
#[derive(Debug, Clone, Default)]
pub enum Topology {
    /// Point-to-point wire between every pair of localities — the
    /// original 2-node model, preserved exactly.
    #[default]
    Direct,
    /// k-ary fat-tree (folded Clos).
    FatTree(FatTreeParams),
    /// Dragonfly (groups of routers, all-to-all local and global links).
    Dragonfly(DragonflyParams),
}

impl Topology {
    /// A fat-tree sized for `n` localities with default link timings.
    pub fn fat_tree_for(n: usize) -> Topology {
        Topology::FatTree(FatTreeParams::for_hosts(n))
    }

    /// A balanced dragonfly sized for `n` localities.
    pub fn dragonfly_for(n: usize) -> Topology {
        Topology::Dragonfly(DragonflyParams::for_hosts(n))
    }

    /// Short label for traces and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Direct => "direct",
            Topology::FatTree(_) => "fattree",
            Topology::Dragonfly(_) => "dragonfly",
        }
    }

    /// Build the live switch fabric, or `None` for [`Topology::Direct`].
    ///
    /// Panics if the topology cannot hold `hosts` localities — sizing is
    /// explicit (via [`FatTreeParams::for_hosts`] etc.), not silent.
    pub fn build(&self, hosts: usize) -> Option<SwitchFabric> {
        let fab = match self {
            Topology::Direct => return None,
            Topology::FatTree(p) => {
                assert!(
                    p.hosts() >= hosts,
                    "fat-tree k={} holds {} hosts, need {hosts}",
                    p.k,
                    p.hosts()
                );
                p.build()
            }
            Topology::Dragonfly(p) => {
                assert!(
                    p.hosts() >= hosts,
                    "dragonfly {:?} holds {} hosts, need {hosts}",
                    (p.p, p.a, p.h, p.g),
                    p.hosts()
                );
                p.build()
            }
        };
        Some(fab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_returns_stable_pointers() {
        let a = intern("fab.test.p0".to_string());
        let b = intern("fab.test.p0".to_string());
        assert!(std::ptr::eq(a, b), "same name must intern to the same allocation");
        assert_eq!(a, "fab.test.p0");
    }

    #[test]
    fn direct_builds_nothing() {
        assert!(Topology::Direct.build(2).is_none());
        assert_eq!(Topology::Direct.label(), "direct");
    }

    #[test]
    fn sized_builders_fit_the_host_count() {
        for n in [2, 16, 64] {
            let t = Topology::fat_tree_for(n);
            assert!(t.build(n).is_some());
            let t = Topology::dragonfly_for(n);
            assert!(t.build(n).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "need 64")]
    fn undersized_topology_rejected() {
        let _ = Topology::FatTree(FatTreeParams::new(4)).build(64);
    }
}
