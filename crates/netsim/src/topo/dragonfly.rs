//! Dragonfly generator (Kim/Dally/Scott/Abts arrangement).
//!
//! `g` groups of `a` routers; each router carries `p` hosts, `a-1` local
//! links (groups are internally all-to-all) and `h` global links. Global
//! link slots are allocated consecutively: slot `s` (`= r*h + q`) of
//! group `G` connects to group `s` if `s < G` else `s+1`, which is
//! symmetric and leaves surplus slots unconnected when `a*h > g-1`.
//! Minimal routes are at most local-global-local (3 switch hops plus the
//! downlink); the BFS distance table recovers exactly that.

use super::graph::TopoGraph;
use super::routing::RoutingPolicy;
use super::switch::SwitchFabric;

/// Parameters of a dragonfly.
#[derive(Debug, Clone)]
pub struct DragonflyParams {
    /// Hosts per router.
    pub p: usize,
    /// Routers per group.
    pub a: usize,
    /// Global links per router.
    pub h: usize,
    /// Groups (`2 <= g <= a*h + 1` so every pair of groups has a link).
    pub g: usize,
    /// Host NIC-to-router link latency, ns.
    pub host_link_ns: u64,
    /// Intra-group (local) link latency, ns.
    pub local_ns: u64,
    /// Inter-group (global) link latency, ns — optical, longer.
    pub global_ns: u64,
    /// Per-packet router forwarding latency, ns.
    pub switch_ns: u64,
    /// Route selection policy.
    pub routing: RoutingPolicy,
}

impl DragonflyParams {
    /// Defaults for a `(p, a, h, g)` arrangement.
    pub fn new(p: usize, a: usize, h: usize, g: usize) -> Self {
        DragonflyParams {
            p,
            a,
            h,
            g,
            host_link_ns: 300,
            local_ns: 300,
            global_ns: 900,
            switch_ns: 100,
            routing: RoutingPolicy::Static,
        }
    }

    /// Smallest balanced dragonfly (`a = 2h`, `p = h`) holding at least
    /// `n` hosts, with just enough groups.
    pub fn for_hosts(n: usize) -> Self {
        let mut h = 1usize;
        loop {
            let (a, p) = (2 * h, h);
            let g_max = a * h + 1;
            if a * p * g_max >= n {
                let g = n.div_ceil(a * p).max(2);
                return DragonflyParams::new(p, a, h, g);
            }
            h += 1;
        }
    }

    /// Hosts supported: `g * a * p`.
    pub fn hosts(&self) -> usize {
        self.g * self.a * self.p
    }

    /// Generate the wired graph.
    pub fn graph(&self) -> TopoGraph {
        let (p, a, h, g) = (self.p, self.a, self.h, self.g);
        assert!(p >= 1 && a >= 1 && h >= 1, "degenerate dragonfly {self:?}");
        assert!(g >= 2 && g <= a * h + 1, "need 2 <= g <= a*h+1 for pairwise group links");
        let radix = p + (a - 1) + h;
        let mut graph = TopoGraph::new("dragonfly", self.hosts());
        let router = |grp: usize, r: usize| grp * a + r;
        for grp in 0..g {
            for r in 0..a {
                let id = graph.add_switch(format!("df.g{grp}.r{r}"), radix);
                debug_assert_eq!(id, router(grp, r));
            }
        }
        // Hosts on ports 0..p.
        for grp in 0..g {
            for r in 0..a {
                for i in 0..p {
                    graph.attach_host((grp * a + r) * p + i, router(grp, r), i, self.host_link_ns);
                }
            }
        }
        // Local all-to-all: router r's port towards r' is
        // `p + r' - (r' > r)` — one port per peer, connected once.
        for grp in 0..g {
            for r in 0..a {
                for r2 in r + 1..a {
                    graph.connect(
                        (router(grp, r), p + r2 - 1),
                        (router(grp, r2), p + r),
                        self.local_ns,
                    );
                }
            }
        }
        // Global links: slot s = r*h + q of group G reaches group
        // `s + (s >= G)`; connect each pair once from the lower group.
        for grp in 0..g {
            for s in 0..a * h {
                let dst_grp = if s < grp { s } else { s + 1 };
                if dst_grp >= g || dst_grp < grp {
                    continue; // surplus slot, or already wired from the other side
                }
                let back = grp; // grp < dst_grp, so the return slot is exactly grp
                graph.connect(
                    (router(grp, s / h), p + (a - 1) + s % h),
                    (router(dst_grp, back / h), p + (a - 1) + back % h),
                    self.global_ns,
                );
            }
        }
        graph
    }

    /// Build the live switch fabric.
    pub fn build(&self) -> SwitchFabric {
        SwitchFabric::build(self.graph(), self.routing, self.switch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_for_hosts() {
        let d = DragonflyParams::for_hosts(64);
        assert_eq!((d.p, d.a, d.h), (2, 4, 2));
        assert!(d.hosts() >= 64, "{}", d.hosts());
        let d = DragonflyParams::for_hosts(1024);
        assert_eq!((d.p, d.a, d.h, d.g), (4, 8, 4, 32));
        assert_eq!(d.hosts(), 1024);
    }

    #[test]
    fn graph_validates_and_is_minimal_diameter() {
        let params = DragonflyParams::new(2, 4, 2, 9);
        let g = params.graph();
        g.validate().expect("well-formed");
        assert_eq!(g.switches(), 36);
        // Every switch reaches every host in at most 4 egress traversals
        // (local, global, local, downlink).
        let dead = vec![false; g.num_ports()];
        let d = g.compute_dist(&dead);
        for dst in 0..g.hosts() {
            for sw in 0..g.switches() {
                let hops = d.get(sw, dst);
                assert!(hops >= 1 && hops <= 4, "sw {sw} -> host {dst}: {hops} hops");
            }
        }
    }

    #[test]
    fn lookahead_is_strictly_positive() {
        let fab = DragonflyParams::for_hosts(16).build();
        assert!(fab.min_first_hop_latency() > 0);
        assert_eq!(fab.min_first_hop_latency(), 300);
    }

    #[test]
    #[should_panic(expected = "pairwise group links")]
    fn too_many_groups_rejected() {
        // a*h+1 = 3 max groups for a=2,h=1.
        let _ = DragonflyParams::new(1, 2, 1, 4).graph();
    }
}
