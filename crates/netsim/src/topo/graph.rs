//! The fabric graph: switches, ports, links, and host attachment points.
//!
//! A topology is a bipartite-ish graph: `hosts` NICs hang off switch
//! ports, and switch ports connect to each other with symmetric links.
//! The graph itself is pure structure — timing (port buffers, service
//! times) lives in [`crate::topo::switch::SwitchFabric`], and route
//! selection in [`crate::topo::routing`]. Distances are precomputed per
//! destination host with a BFS over the switch graph so both the static
//! and the adaptive router can recognize the minimal next hops in O(radix).

/// What a switch port is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// Directly attached host NIC (this is `host`'s edge port).
    Host(usize),
    /// Another switch's port (symmetric link; the other side points back).
    Switch {
        /// Peer switch index.
        sw: usize,
        /// Peer port index on that switch.
        port: usize,
    },
    /// Nothing attached (legal: dragonfly groups may leave global-link
    /// slots empty when `a*h > g-1`).
    Unconnected,
}

/// One output port of a switch and the link behind it.
#[derive(Debug, Clone)]
pub struct PortSpec {
    /// What the link connects to.
    pub peer: Peer,
    /// One-way propagation latency of the attached link, ns.
    pub latency_ns: u64,
}

/// One switch: a label (used for telemetry/contention names) and its ports.
#[derive(Debug, Clone)]
pub struct SwitchSpec {
    /// Human-readable name, e.g. `ft.p2.e1` (fat-tree pod 2, edge 1).
    pub label: String,
    /// Output ports in index order.
    pub ports: Vec<PortSpec>,
}

/// The wired interconnect graph.
#[derive(Debug, Clone)]
pub struct TopoGraph {
    /// Topology family name (`fattree`, `dragonfly`).
    pub name: &'static str,
    hosts: usize,
    switches: Vec<SwitchSpec>,
    /// `host -> (switch, port)` of the switch port facing the host: the
    /// packet ingress point for traffic *from* the host and the egress
    /// port for the final downlink *to* the host.
    host_up: Vec<(usize, usize)>,
    /// One-way latency of each host's NIC-to-edge link, ns.
    host_latency: Vec<u64>,
}

impl TopoGraph {
    /// Start an empty graph for `hosts` hosts.
    pub fn new(name: &'static str, hosts: usize) -> Self {
        TopoGraph {
            name,
            hosts,
            switches: Vec::new(),
            host_up: vec![(usize::MAX, usize::MAX); hosts],
            host_latency: vec![0; hosts],
        }
    }

    /// Add a switch with `radix` (initially unconnected) ports; returns
    /// its index.
    pub fn add_switch(&mut self, label: String, radix: usize) -> usize {
        self.switches.push(SwitchSpec {
            label,
            ports: vec![PortSpec { peer: Peer::Unconnected, latency_ns: 0 }; radix],
        });
        self.switches.len() - 1
    }

    /// Wire a symmetric switch-to-switch link.
    pub fn connect(&mut self, a: (usize, usize), b: (usize, usize), latency_ns: u64) {
        assert!(latency_ns > 0, "links must have positive propagation latency");
        let pa = &mut self.switches[a.0].ports[a.1];
        assert_eq!(pa.peer, Peer::Unconnected, "port {a:?} already wired");
        *pa = PortSpec { peer: Peer::Switch { sw: b.0, port: b.1 }, latency_ns };
        let pb = &mut self.switches[b.0].ports[b.1];
        assert_eq!(pb.peer, Peer::Unconnected, "port {b:?} already wired");
        *pb = PortSpec { peer: Peer::Switch { sw: a.0, port: a.1 }, latency_ns };
    }

    /// Attach `host` to a switch port with a `latency_ns` NIC link.
    pub fn attach_host(&mut self, host: usize, sw: usize, port: usize, latency_ns: u64) {
        assert!(latency_ns > 0, "host links must have positive propagation latency");
        assert_eq!(self.host_up[host], (usize::MAX, usize::MAX), "host {host} already attached");
        let p = &mut self.switches[sw].ports[port];
        assert_eq!(p.peer, Peer::Unconnected, "port ({sw},{port}) already wired");
        *p = PortSpec { peer: Peer::Host(host), latency_ns };
        self.host_up[host] = (sw, port);
        self.host_latency[host] = latency_ns;
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Number of switches.
    pub fn switches(&self) -> usize {
        self.switches.len()
    }

    /// Switch by index.
    pub fn switch(&self, sw: usize) -> &SwitchSpec {
        &self.switches[sw]
    }

    /// The `(switch, port)` facing `host`.
    pub fn host_port(&self, host: usize) -> (usize, usize) {
        self.host_up[host]
    }

    /// One-way latency of `host`'s NIC link, ns.
    pub fn host_latency(&self, host: usize) -> u64 {
        self.host_latency[host]
    }

    /// Minimum NIC-link latency over all hosts — the first-hop wire
    /// latency that bounds every delivery, i.e. the topology's
    /// conservative lookahead contribution.
    pub fn min_host_latency(&self) -> u64 {
        self.host_latency.iter().copied().min().unwrap_or(0)
    }

    /// Total port count (flattened index space).
    pub fn num_ports(&self) -> usize {
        self.switches.iter().map(|s| s.ports.len()).sum()
    }

    /// Flattened index of `(sw, port)`.
    pub fn port_index(&self, sw: usize, port: usize) -> usize {
        self.port_base(sw) + port
    }

    /// Flattened index of `(sw, 0)`.
    fn port_base(&self, sw: usize) -> usize {
        self.switches[..sw].iter().map(|s| s.ports.len()).sum()
    }

    /// Structural validation: every host attached, every link symmetric,
    /// every wired link with positive latency. Returns a description of
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for h in 0..self.hosts {
            let (sw, port) = self.host_up[h];
            if sw == usize::MAX {
                return Err(format!("host {h} not attached to any switch"));
            }
            if self.switches[sw].ports[port].peer != Peer::Host(h) {
                return Err(format!("host {h}: port ({sw},{port}) does not face it"));
            }
            if self.host_latency[h] == 0 {
                return Err(format!("host {h}: zero-latency NIC link"));
            }
        }
        for (si, s) in self.switches.iter().enumerate() {
            for (pi, p) in s.ports.iter().enumerate() {
                match p.peer {
                    Peer::Unconnected => {}
                    Peer::Host(_) | Peer::Switch { .. } if p.latency_ns == 0 => {
                        return Err(format!("{}:{pi}: zero-latency link", s.label));
                    }
                    Peer::Switch { sw, port } => {
                        let back = &self.switches[sw].ports[port];
                        if back.peer != (Peer::Switch { sw: si, port: pi }) {
                            return Err(format!("{}:{pi}: asymmetric link", s.label));
                        }
                        if back.latency_ns != p.latency_ns {
                            return Err(format!("{}:{pi}: asymmetric link latency", s.label));
                        }
                    }
                    Peer::Host(_) => {}
                }
            }
        }
        Ok(())
    }

    /// Per-destination hop distances: `dist[dst * switches + sw]` is the
    /// minimal number of egress (port) traversals from switch `sw` to
    /// host `dst`, counting the final downlink — so a destination's edge
    /// switch is at distance 1. `u16::MAX` marks unreachable. `dead`
    /// masks failed ports by flattened index (both directions of a failed
    /// link must be masked by the caller).
    pub fn compute_dist(&self, dead: &[bool]) -> Dist {
        let s = self.switches.len();
        let mut d = vec![u16::MAX; self.hosts * s];
        let mut queue = std::collections::VecDeque::new();
        for dst in 0..self.hosts {
            let (esw, eport) = self.host_up[dst];
            let row = &mut d[dst * s..(dst + 1) * s];
            if dead[self.port_index(esw, eport)] {
                continue; // edge link dead: dst unreachable via fabric
            }
            row[esw] = 1;
            queue.clear();
            queue.push_back(esw);
            while let Some(sw) = queue.pop_front() {
                let next = row[sw] + 1;
                // Walk neighbours of `sw`; a link is usable towards `sw`
                // when the *neighbour's* egress port onto it is alive.
                for (pi, p) in self.switches[sw].ports.iter().enumerate() {
                    if let Peer::Switch { sw: nsw, port: nport } = p.peer {
                        if dead[self.port_index(sw, pi)] || dead[self.port_index(nsw, nport)] {
                            continue;
                        }
                        if row[nsw] > next {
                            row[nsw] = next;
                            queue.push_back(nsw);
                        }
                    }
                }
            }
        }
        Dist { switches: s, d }
    }
}

/// Precomputed hop-distance table (see [`TopoGraph::compute_dist`]).
#[derive(Debug, Clone)]
pub struct Dist {
    switches: usize,
    d: Vec<u16>,
}

impl Dist {
    /// Remaining egress traversals from `sw` to host `dst` (`u16::MAX`
    /// when unreachable).
    #[inline]
    pub fn get(&self, sw: usize, dst: usize) -> u16 {
        self.d[dst * self.switches + sw]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two hosts on one switch, two hosts on another, switches linked.
    fn dumbbell() -> TopoGraph {
        let mut g = TopoGraph::new("dumbbell", 4);
        let a = g.add_switch("a".into(), 3);
        let b = g.add_switch("b".into(), 3);
        g.attach_host(0, a, 0, 500);
        g.attach_host(1, a, 1, 500);
        g.attach_host(2, b, 0, 500);
        g.attach_host(3, b, 1, 500);
        g.connect((a, 2), (b, 2), 700);
        g
    }

    #[test]
    fn dumbbell_validates_and_distances() {
        let g = dumbbell();
        g.validate().expect("well-formed");
        let dead = vec![false; g.num_ports()];
        let d = g.compute_dist(&dead);
        // Host 0 sits on switch a: a is its edge (1), b is 2 away.
        assert_eq!(d.get(0, 0), 1);
        assert_eq!(d.get(1, 0), 2);
        // Host 2 sits on switch b.
        assert_eq!(d.get(0, 2), 2);
        assert_eq!(d.get(1, 2), 1);
    }

    #[test]
    fn dead_link_makes_far_side_unreachable() {
        let g = dumbbell();
        let mut dead = vec![false; g.num_ports()];
        dead[g.port_index(0, 2)] = true;
        dead[g.port_index(1, 2)] = true;
        let d = g.compute_dist(&dead);
        assert_eq!(d.get(0, 2), u16::MAX, "no alternative path in a dumbbell");
        assert_eq!(d.get(0, 0), 1, "local reachability survives");
    }

    #[test]
    fn min_host_latency_is_the_first_hop_floor() {
        let mut g = TopoGraph::new("t", 2);
        let s = g.add_switch("s".into(), 2);
        g.attach_host(0, s, 0, 900);
        g.attach_host(1, s, 1, 300);
        assert_eq!(g.min_host_latency(), 300);
    }

    #[test]
    fn validate_rejects_detached_host() {
        let mut g = TopoGraph::new("t", 2);
        let s = g.add_switch("s".into(), 2);
        g.attach_host(0, s, 0, 500);
        assert!(g.validate().unwrap_err().contains("host 1"));
    }
}
