//! Route selection over a [`TopoGraph`]: static destination-mod-k tables
//! and the deterministic adaptive (least-loaded) variant.
//!
//! Both policies only ever consider *minimal* next hops — ports whose
//! far side is strictly closer to the destination (per the BFS distance
//! table) or the destination host itself. The static policy fixes one
//! port per `(switch, destination)` up front, spreading destinations
//! over the candidates by `dst mod candidates` — D-mod-k on a fat-tree's
//! up-paths, plain minimal routing on a dragonfly. The adaptive policy
//! re-picks per packet by earliest port availability; ties break by port
//! index so runs stay bit-identical.

use super::graph::{Dist, Peer, TopoGraph};

/// How a switch picks among minimal next-hop ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Destination-based table computed once (D-mod-k flavoured),
    /// recomputed only on link failure.
    Static,
    /// Per-packet least-loaded minimal port (earliest `free_at`),
    /// deterministic tie-break by port index.
    Adaptive,
}

/// Static routing table: one egress port per `(switch, destination host)`.
#[derive(Debug, Clone)]
pub struct RouteTable {
    switches: usize,
    /// `out[dst * switches + sw]`; `u16::MAX` = unreachable.
    out: Vec<u16>,
}

impl RouteTable {
    /// The egress port of `sw` towards host `dst`, if reachable.
    #[inline]
    pub fn port(&self, sw: usize, dst: usize) -> Option<usize> {
        match self.out[dst * self.switches + sw] {
            u16::MAX => None,
            p => Some(p as usize),
        }
    }
}

/// Append the minimal egress candidates of `sw` towards `dst` to `buf`
/// in port-index order (deterministic).
pub fn minimal_candidates(
    g: &TopoGraph,
    dist: &Dist,
    dead: &[bool],
    sw: usize,
    dst: usize,
    buf: &mut Vec<u16>,
) {
    let here = dist.get(sw, dst);
    if here == u16::MAX {
        return;
    }
    for (pi, p) in g.switch(sw).ports.iter().enumerate() {
        if dead[g.port_index(sw, pi)] {
            continue;
        }
        match p.peer {
            Peer::Host(h) if h == dst => buf.push(pi as u16),
            Peer::Switch { sw: nsw, port: nport }
                if !dead[g.port_index(nsw, nport)] && dist.get(nsw, dst) == here - 1 =>
            {
                buf.push(pi as u16)
            }
            _ => {}
        }
    }
}

/// Compute the static table: for every `(switch, destination)` take the
/// minimal candidates in port order and pick `dst mod candidates` —
/// deterministic, and on a fat-tree exactly the classic D-mod-k spread
/// of destinations over the up-path diversity.
pub fn compute_static(g: &TopoGraph, dist: &Dist, dead: &[bool]) -> RouteTable {
    let s = g.switches();
    let mut out = vec![u16::MAX; g.hosts() * s];
    let mut cands: Vec<u16> = Vec::new();
    for dst in 0..g.hosts() {
        for sw in 0..s {
            cands.clear();
            minimal_candidates(g, dist, dead, sw, dst, &mut cands);
            if !cands.is_empty() {
                out[dst * s + sw] = cands[dst % cands.len()];
            }
        }
    }
    RouteTable { switches: s, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::fattree::FatTreeParams;

    #[test]
    fn dmodk_spreads_destinations_over_up_ports() {
        let g = FatTreeParams::new(4).graph();
        let dead = vec![false; g.num_ports()];
        let dist = g.compute_dist(&dead);
        let table = compute_static(&g, &dist, &dead);
        // From edge(0,0) (switch 0), hosts in *other* pods route upward;
        // with two up-ports, destinations must use both (D-mod-k), not
        // funnel through one.
        let mut used = std::collections::BTreeSet::new();
        for dst in 8..16 {
            used.insert(table.port(0, dst).expect("reachable"));
        }
        assert_eq!(used.len(), 2, "both up-ports must carry traffic: {used:?}");
        // Local hosts take their downlink directly.
        assert_eq!(table.port(0, 0), Some(0));
        assert_eq!(table.port(0, 1), Some(1));
    }

    #[test]
    fn table_routes_converge_on_destination() {
        // Follow the table hop by hop from every edge switch to every
        // host; it must terminate at the host within the graph diameter.
        let g = FatTreeParams::new(4).graph();
        let dead = vec![false; g.num_ports()];
        let dist = g.compute_dist(&dead);
        let table = compute_static(&g, &dist, &dead);
        for dst in 0..g.hosts() {
            for start in 0..g.switches() {
                let mut sw = start;
                let mut hops = 0;
                loop {
                    let port = table.port(sw, dst).expect("connected fabric");
                    match g.switch(sw).ports[port].peer {
                        Peer::Host(h) => {
                            assert_eq!(h, dst);
                            break;
                        }
                        Peer::Switch { sw: n, .. } => sw = n,
                        Peer::Unconnected => panic!("routed into an unconnected port"),
                    }
                    hops += 1;
                    assert!(hops <= 6, "loop routing {start} -> host {dst}");
                }
            }
        }
    }

    #[test]
    fn dead_link_removes_candidates() {
        let g = FatTreeParams::new(4).graph();
        let mut dead = vec![false; g.num_ports()];
        let dist = g.compute_dist(&dead);
        let mut cands = Vec::new();
        // Edge(0,0) towards a cross-pod host: both up-ports qualify.
        minimal_candidates(&g, &dist, &dead, 0, 15, &mut cands);
        assert_eq!(cands.len(), 2);
        // Kill the first up-link (edge port 2 on a k=4 edge switch).
        dead[g.port_index(0, 2)] = true;
        cands.clear();
        minimal_candidates(&g, &dist, &dead, 0, 15, &mut cands);
        assert_eq!(cands, vec![3]);
    }
}
