//! k-ary fat-tree (folded Clos) generator.
//!
//! The classic three-level fat-tree: `k` pods, each with `k/2` edge and
//! `k/2` aggregation switches of radix `k`, plus `(k/2)^2` core switches
//! — supporting `k^3/4` hosts at full bisection bandwidth. Up-path
//! diversity (every edge switch reaches every core through `(k/2)^2`
//! distinct paths) is what D-mod-k static routing spreads over and what
//! the adaptive router exploits when a link dies.

use super::graph::TopoGraph;
use super::routing::RoutingPolicy;
use super::switch::SwitchFabric;

/// Parameters of a k-ary fat-tree.
#[derive(Debug, Clone)]
pub struct FatTreeParams {
    /// Switch radix / pod count. Must be even and `>= 2`; supports
    /// `k^3/4` hosts.
    pub k: usize,
    /// Host NIC-to-edge link latency, ns (the first-hop lookahead floor).
    pub host_link_ns: u64,
    /// Switch-to-switch link latency, ns.
    pub link_ns: u64,
    /// Per-packet switch forwarding latency, ns.
    pub switch_ns: u64,
    /// Route selection policy.
    pub routing: RoutingPolicy,
}

impl FatTreeParams {
    /// Defaults for radix `k` (HDR-class link latencies).
    pub fn new(k: usize) -> Self {
        FatTreeParams {
            k,
            host_link_ns: 300,
            link_ns: 300,
            switch_ns: 100,
            routing: RoutingPolicy::Static,
        }
    }

    /// Smallest even `k` whose fat-tree holds at least `n` hosts.
    pub fn for_hosts(n: usize) -> Self {
        let mut k = 2usize;
        while k * k * k / 4 < n {
            k += 2;
        }
        FatTreeParams::new(k)
    }

    /// Hosts supported: `k^3/4`.
    pub fn hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Generate the wired graph.
    pub fn graph(&self) -> TopoGraph {
        let k = self.k;
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree radix must be even and >= 2, got {k}");
        let half = k / 2;
        let hosts = self.hosts();
        let mut g = TopoGraph::new("fattree", hosts);

        // Switch index layout: edges, then aggs, then cores.
        let edge = |pod: usize, e: usize| pod * half + e;
        let agg = |pod: usize, a: usize| k * half + pod * half + a;
        let core = |c: usize| 2 * k * half + c;
        for pod in 0..k {
            for e in 0..half {
                let id = g.add_switch(format!("ft.p{pod}.e{e}"), k);
                debug_assert_eq!(id, edge(pod, e));
            }
        }
        for pod in 0..k {
            for a in 0..half {
                let id = g.add_switch(format!("ft.p{pod}.a{a}"), k);
                debug_assert_eq!(id, agg(pod, a));
            }
        }
        for c in 0..half * half {
            let id = g.add_switch(format!("ft.c{c}"), k);
            debug_assert_eq!(id, core(c));
        }

        // Hosts: ports 0..k/2 of each edge switch.
        for pod in 0..k {
            for e in 0..half {
                for i in 0..half {
                    let h = pod * half * half + e * half + i;
                    g.attach_host(h, edge(pod, e), i, self.host_link_ns);
                }
            }
        }
        // Edge <-> agg: edge port k/2+a to agg a's down-port e.
        for pod in 0..k {
            for e in 0..half {
                for a in 0..half {
                    g.connect((edge(pod, e), half + a), (agg(pod, a), e), self.link_ns);
                }
            }
        }
        // Agg <-> core: agg a's up-port k/2+c to core a*(k/2)+c, whose
        // port `pod` faces this pod.
        for pod in 0..k {
            for a in 0..half {
                for c in 0..half {
                    g.connect((agg(pod, a), half + c), (core(a * half + c), pod), self.link_ns);
                }
            }
        }
        g
    }

    /// Build the live switch fabric.
    pub fn build(&self) -> SwitchFabric {
        SwitchFabric::build(self.graph(), self.routing, self.switch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_shape() {
        let p = FatTreeParams::new(4);
        assert_eq!(p.hosts(), 16);
        let g = p.graph();
        g.validate().expect("well-formed");
        // 4 pods x (2 edge + 2 agg) + 4 core.
        assert_eq!(g.switches(), 20);
        assert_eq!(g.num_ports(), 20 * 4);
    }

    #[test]
    fn for_hosts_picks_smallest_even_radix() {
        assert_eq!(FatTreeParams::for_hosts(2).k, 2);
        assert_eq!(FatTreeParams::for_hosts(16).k, 4);
        assert_eq!(FatTreeParams::for_hosts(64).k, 8);
        assert_eq!(FatTreeParams::for_hosts(256).k, 12);
        assert_eq!(FatTreeParams::for_hosts(1024).k, 16);
        assert_eq!(FatTreeParams::for_hosts(1024).hosts(), 1024);
    }

    #[test]
    fn lookahead_is_strictly_positive_at_any_radix() {
        for k in [2, 4, 8] {
            let fab = FatTreeParams::new(k).build();
            assert!(
                fab.min_first_hop_latency() > 0,
                "k={k}: fat-tree must offer positive first-hop lookahead"
            );
            assert_eq!(fab.min_first_hop_latency(), 300);
        }
    }

    #[test]
    fn distances_match_fat_tree_levels() {
        let g = FatTreeParams::new(4).graph();
        let dead = vec![false; g.num_ports()];
        let d = g.compute_dist(&dead);
        // Host 0 is on edge(0,0): its own edge is 1 egress traversal away
        // (the downlink), the other edge of pod 0 is 3 (edge-agg-edge-
        // downlink), an edge in another pod is 5 (up to core and back).
        assert_eq!(d.get(0, 0), 1);
        let (same_pod_other_edge, _) = g.host_port(2); // host 2 sits on edge(0,1)
        assert_eq!(d.get(same_pod_other_edge, 0), 3);
        let (cross_pod_edge, _) = g.host_port(15); // last host, pod 3
        assert_eq!(d.get(cross_pod_edge, 0), 5);
    }
}
