//! The live switch fabric: per-switch output-port buffers, packet
//! walking, per-port IB-style counters, and link failure with reroute.
//!
//! Every output port is a [`SimResource`] (service = switch forwarding +
//! wire serialization of the packet on that link, ownership-transfer cost
//! zero), so queueing, congestion, and head-of-line blocking fall out of
//! the existing resource machinery: port waits land in the contention
//! attributor via `simcore::probe` and on the causal graph via the
//! resource's `Wait`/`Work` marks, with no extra instrumentation here.
//!
//! Counters mirror the InfiniBand PMA set (`ibmad`'s `perfquery`):
//! `xmit_pkts`/`xmit_bytes` are PortXmitPkts/PortXmitData, `xmit_wait_ns`
//! is PortXmitWait (time a packet sat queued with the port busy), and the
//! sampled buffer occupancy is exported as a Chrome-trace counter track
//! per touched port. A packet is walked hop-by-hop at send time —
//! virtual-cut-through with port reservations — so a multi-hop delivery
//! is a pure timing computation, not extra simulator events.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::Rng;
use simcore::{SimResource, SimTime};

use super::graph::{Dist, Peer, TopoGraph};
use super::intern;
use super::routing::{compute_static, minimal_candidates, RouteTable, RoutingPolicy};
use crate::fabric::FaultConfig;
use crate::model::WireModel;

/// Per-port transmit counters (IB PMA flavoured).
#[derive(Debug, Clone, Copy, Default)]
pub struct PortCounters {
    /// Packets transmitted through this port.
    pub xmit_pkts: u64,
    /// Payload+frame bytes transmitted.
    pub xmit_bytes: u64,
    /// Cumulative time packets waited for the port (queueing), ns — the
    /// PortXmitWait analogue, and the congestion observable.
    pub xmit_wait_ns: u64,
    /// Link-level retransmits performed (drop-fault recovery).
    pub retries: u64,
    /// Times this port's link was administratively killed
    /// ([`SwitchFabric::fail_link`]) — the error-counter observable.
    pub link_downed: u32,
}

struct PortState {
    res: SimResource,
    name: &'static str,
    counters: PortCounters,
    /// Departure instants (ns) of packets still occupying the buffer at
    /// the last access — pruned lazily; its length is the occupancy.
    inflight: VecDeque<u64>,
    /// Last counter-track sample instant (tracks must stay time-ordered
    /// even though multi-hop walks timestamp ports ahead of time).
    last_sample_ns: u64,
}

/// Outcome of walking one packet through the fabric.
#[derive(Debug, Clone, Copy)]
pub struct WalkResult {
    /// When the packet is fully delivered at the destination NIC.
    pub deliver_at: SimTime,
    /// Delivery instant of a fault-injected duplicate copy, if any.
    pub dup_deliver_at: Option<SimTime>,
    /// Switch egress traversals taken (incl. the final downlink).
    pub hops: u32,
    /// Pure propagation latency along the path (host links + wires), ns —
    /// the bandwidth-independent portion for the causal wire mark.
    pub prop_ns: u64,
    /// Link-level retransmits this packet suffered.
    pub retries: u32,
}

/// A built topology: graph + distance/routing state + live port buffers.
pub struct SwitchFabric {
    graph: TopoGraph,
    dist: Dist,
    table: RouteTable,
    policy: RoutingPolicy,
    switch_ns: u64,
    ports: Vec<PortState>,
    dead: Vec<bool>,
    cand_buf: Vec<u16>,
}

impl SwitchFabric {
    /// Build the live fabric from a validated graph.
    pub fn build(graph: TopoGraph, policy: RoutingPolicy, switch_ns: u64) -> Self {
        graph.validate().expect("topology graph must be well-formed");
        let dead = vec![false; graph.num_ports()];
        let dist = graph.compute_dist(&dead);
        let table = compute_static(&graph, &dist, &dead);
        let mut ports = Vec::with_capacity(graph.num_ports());
        for sw in 0..graph.switches() {
            let label = &graph.switch(sw).label;
            for pi in 0..graph.switch(sw).ports.len() {
                let name = intern(format!("fab.{label}.p{pi}"));
                ports.push(PortState {
                    res: SimResource::new(name, 0),
                    name,
                    counters: PortCounters::default(),
                    inflight: VecDeque::new(),
                    last_sample_ns: 0,
                });
            }
        }
        SwitchFabric { graph, dist, table, policy, switch_ns, ports, dead, cand_buf: Vec::new() }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TopoGraph {
        &self.graph
    }

    /// Routing policy in use.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Minimum first-hop (host NIC link) latency — the conservative
    /// lookahead this topology guarantees on every delivery.
    pub fn min_first_hop_latency(&self) -> u64 {
        self.graph.min_host_latency()
    }

    /// Counters of port `(sw, port)`.
    pub fn port_counters(&self, sw: usize, port: usize) -> PortCounters {
        self.ports[self.graph.port_index(sw, port)].counters
    }

    /// Interned telemetry/contention name of port `(sw, port)`.
    pub fn port_name(&self, sw: usize, port: usize) -> &'static str {
        self.ports[self.graph.port_index(sw, port)].name
    }

    /// Iterate `(name, counters)` over all ports that carried traffic,
    /// busiest (by `xmit_wait_ns`) first.
    pub fn ranked_ports(&self) -> Vec<(&'static str, PortCounters)> {
        let mut rows: Vec<_> = self
            .ports
            .iter()
            .filter(|p| p.counters.xmit_pkts > 0 || p.counters.link_downed > 0)
            .map(|p| (p.name, p.counters))
            .collect();
        rows.sort_by(|a, b| b.1.xmit_wait_ns.cmp(&a.1.xmit_wait_ns).then(a.0.cmp(b.0)));
        rows
    }

    /// The static route from `src` to `dst` as `(switch, port)` egress
    /// hops, final downlink included. Uses the current table (so it
    /// reflects failures). Intended for tests picking fault victims.
    pub fn route_ports(&self, src: usize, dst: usize) -> Vec<(usize, usize)> {
        let mut hops = Vec::new();
        let (mut sw, _) = self.graph.host_port(src);
        loop {
            let port = self
                .table
                .port(sw, dst)
                .unwrap_or_else(|| panic!("no route from switch {sw} to host {dst}"));
            hops.push((sw, port));
            match self.graph.switch(sw).ports[port].peer {
                Peer::Host(h) => {
                    debug_assert_eq!(h, dst);
                    return hops;
                }
                Peer::Switch { sw: n, .. } => sw = n,
                Peer::Unconnected => unreachable!("routed into an unconnected port"),
            }
        }
    }

    /// Zero-load latency of the static route for a `len`-byte packet:
    /// host link + per-hop (switch forwarding + wire serialization +
    /// link propagation). No queueing — a floor, and a deterministic
    /// cross-lane delay for the sharded-engine tests.
    pub fn static_path_latency(
        &self,
        src: usize,
        dst: usize,
        len: usize,
        model: &WireModel,
    ) -> u64 {
        let mut t = self.graph.host_latency(src);
        for (sw, port) in self.route_ports(src, dst) {
            t += self.switch_ns + model.wire_time(len);
            t += self.graph.switch(sw).ports[port].latency_ns;
        }
        t
    }

    /// Administratively kill the link behind `(sw, port)` — both
    /// directions — and recompute distances and the static table so new
    /// packets route around it. Packets already walked keep their
    /// delivery times (they left before the failure). Returns `false` if
    /// the port was already dead or unconnected.
    pub fn fail_link(&mut self, sw: usize, port: usize) -> bool {
        let flat = self.graph.port_index(sw, port);
        if self.dead[flat] {
            return false;
        }
        match self.graph.switch(sw).ports[port].peer {
            Peer::Unconnected => return false,
            Peer::Host(_) => {
                self.dead[flat] = true;
                self.ports[flat].counters.link_downed += 1;
            }
            Peer::Switch { sw: psw, port: pport } => {
                let pflat = self.graph.port_index(psw, pport);
                self.dead[flat] = true;
                self.dead[pflat] = true;
                self.ports[flat].counters.link_downed += 1;
                self.ports[pflat].counters.link_downed += 1;
            }
        }
        telemetry::fault_event("fab.link_down");
        self.dist = self.graph.compute_dist(&self.dead);
        self.table = compute_static(&self.graph, &self.dist, &self.dead);
        true
    }

    /// Pick the egress port of `sw` towards `dst` under the active policy.
    fn pick(&mut self, sw: usize, dst: usize) -> Option<usize> {
        match self.policy {
            RoutingPolicy::Static => self.table.port(sw, dst),
            RoutingPolicy::Adaptive => {
                let mut buf = std::mem::take(&mut self.cand_buf);
                buf.clear();
                minimal_candidates(&self.graph, &self.dist, &self.dead, sw, dst, &mut buf);
                // Least-loaded: earliest `free_at`; ties break by port
                // index (`buf` is in port order and `min` keeps the
                // first minimum) so runs stay bit-identical.
                let best = buf
                    .iter()
                    .map(|&p| {
                        let flat = self.graph.port_index(sw, p as usize);
                        (self.ports[flat].res.free_at(), p as usize)
                    })
                    .min()
                    .map(|(_, p)| p);
                self.cand_buf = buf;
                best
            }
        }
    }

    /// One egress-port access: queue + serialize through the port buffer,
    /// maintain counters and the occupancy/xmit-wait counter tracks.
    /// Returns the instant the last byte leaves the port.
    fn port_access(
        &mut self,
        flat: usize,
        t: SimTime,
        core: usize,
        service: u64,
        bytes: u64,
    ) -> SimTime {
        let p = &mut self.ports[flat];
        let end = p.res.access(t, core, service);
        let wait = end.since(t) - service;
        p.counters.xmit_pkts += 1;
        p.counters.xmit_bytes += bytes;
        p.counters.xmit_wait_ns += wait;
        let tn = t.as_nanos();
        while p.inflight.front().is_some_and(|&d| d <= tn) {
            p.inflight.pop_front();
        }
        p.inflight.push_back(end.as_nanos());
        telemetry::with(|tel| {
            // Multi-hop walks timestamp downstream ports ahead of wall
            // progress, so clamp sample instants to keep each per-port
            // track time-ordered (a Perfetto requirement that
            // `trace_check` enforces).
            let at = SimTime::from_nanos(tn.max(p.last_sample_ns));
            p.last_sample_ns = at.as_nanos();
            tel.track_sample(&format!("{}.occ", p.name), at, p.inflight.len() as f64);
            tel.track_sample(
                &format!("{}.xmit_wait_us", p.name),
                at,
                p.counters.xmit_wait_ns as f64 / 1e3,
            );
            // Windowed per-port utilization/wait (no-op without a
            // timeline). Keyed by the access instant, not the clamped
            // sample instant: window attribution has no ordering
            // requirement, and the true time is the useful one.
            tel.timeline_port(p.name, t, wait, bytes);
        });
        end
    }

    /// Walk one packet from `src` to `dst`, starting when its last byte
    /// left the source NIC (`nic_done`). Applies per-link fault
    /// injection: a `drop_prob` hit costs a link-level retransmit (one
    /// extra serialization plus a round trip on that link — delivery
    /// stays reliable, like IB link-layer retry), a `duplicate_prob` hit
    /// forks a second copy that completes the walk independently.
    #[allow(clippy::too_many_arguments)]
    pub fn walk(
        &mut self,
        nic_done: SimTime,
        src: usize,
        dst: usize,
        len: usize,
        model: &WireModel,
        core: usize,
        faults: &FaultConfig,
        rng: &mut StdRng,
    ) -> WalkResult {
        let bytes = (len + model.frame_bytes) as u64;
        let service = self.switch_ns + model.wire_time(len);
        let mut t = nic_done + self.graph.host_latency(src);
        let mut prop = self.graph.host_latency(src);
        let (mut sw, _) = self.graph.host_port(src);
        let mut hops = 0u32;
        let mut retries = 0u32;
        // Where a duplicate copy forked: `None` switch means it forked on
        // the final downlink and is already delivered at the stored time.
        let mut dup: Option<(Option<usize>, SimTime)> = None;
        let deliver_at = loop {
            let port = self.pick(sw, dst).unwrap_or_else(|| {
                panic!(
                    "fabric partitioned: no live minimal port from switch {sw} \
                     ({}) to host {dst}",
                    self.graph.switch(sw).label
                )
            });
            let flat = self.graph.port_index(sw, port);
            let mut done = self.port_access(flat, t, core, service, bytes);
            let spec = &self.graph.switch(sw).ports[port];
            let (peer, link_lat) = (spec.peer, spec.latency_ns);
            if faults.drop_prob > 0.0 && rng.gen_bool(faults.drop_prob.min(1.0)) {
                // Link-level loss: NAK travels back, the port re-serializes.
                retries += 1;
                self.ports[flat].counters.retries += 1;
                done = done + 2 * link_lat + service;
                telemetry::fault_event_at("fab.link_retransmit", t);
            }
            if dup.is_none()
                && faults.duplicate_prob > 0.0
                && rng.gen_bool(faults.duplicate_prob.min(1.0))
            {
                // The copy queues behind the original on the same port,
                // then continues on its own.
                let copy_done = self.port_access(flat, t, core, service, bytes);
                let copy_t = copy_done + link_lat;
                telemetry::fault_event_at("fab.link_duplicate", t);
                dup = Some(match peer {
                    Peer::Host(_) => (None, copy_t),
                    Peer::Switch { sw: n, .. } => (Some(n), copy_t),
                    Peer::Unconnected => unreachable!(),
                });
            }
            t = done + link_lat;
            prop += link_lat;
            hops += 1;
            match peer {
                Peer::Host(h) => {
                    debug_assert_eq!(h, dst, "walk must terminate at the destination");
                    break t;
                }
                Peer::Switch { sw: n, .. } => sw = n,
                Peer::Unconnected => unreachable!("picked an unconnected port"),
            }
        };
        let dup_deliver_at = dup.map(|(from, at)| match from {
            None => at,
            Some(from_sw) => self.walk_plain(from_sw, at, dst, service, bytes),
        });
        WalkResult { deliver_at, dup_deliver_at, hops, prop_ns: prop, retries }
    }

    /// Fault-free continuation walk for a duplicate copy.
    fn walk_plain(
        &mut self,
        mut sw: usize,
        mut t: SimTime,
        dst: usize,
        service: u64,
        bytes: u64,
    ) -> SimTime {
        loop {
            let port = self
                .pick(sw, dst)
                .unwrap_or_else(|| panic!("no live route from switch {sw} to host {dst}"));
            let flat = self.graph.port_index(sw, port);
            let done = self.port_access(flat, t, 0, service, bytes);
            let spec = &self.graph.switch(sw).ports[port];
            t = done + spec.latency_ns;
            match spec.peer {
                Peer::Host(_) => return t,
                Peer::Switch { sw: n, .. } => sw = n,
                Peer::Unconnected => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::fattree::FatTreeParams;
    use rand::SeedableRng;

    fn fab(policy: RoutingPolicy) -> SwitchFabric {
        let mut p = FatTreeParams::new(4);
        p.routing = policy;
        p.build()
    }

    fn quiet() -> (WireModel, FaultConfig, StdRng) {
        (WireModel::expanse(), FaultConfig::default(), StdRng::seed_from_u64(7))
    }

    #[test]
    fn walk_pays_per_hop_latency_and_counts() {
        let (model, faults, mut rng) = quiet();
        let mut f = fab(RoutingPolicy::Static);
        // Cross-pod: 5 egress hops.
        let r = f.walk(SimTime::ZERO, 0, 15, 8, &model, 0, &faults, &mut rng);
        assert_eq!(r.hops, 5);
        assert_eq!(r.prop_ns, 300 + 5 * 300, "host link + 5 wire hops");
        let floor = r.prop_ns + 5 * (100 + model.wire_time(8));
        assert_eq!(r.deliver_at.as_nanos(), floor, "zero-load walk has no queueing");
        assert_eq!(r.deliver_at.as_nanos(), f.static_path_latency(0, 15, 8, &model));
        // Same-edge: 1 hop.
        let r = f.walk(SimTime::ZERO, 0, 1, 8, &model, 0, &faults, &mut rng);
        assert_eq!(r.hops, 1);
        // Counters moved on the downlink port of host 1.
        let (sw, port) = f.graph().host_port(1);
        let c = f.port_counters(sw, port);
        assert_eq!(c.xmit_pkts, 1);
        assert_eq!(c.xmit_bytes, (8 + model.frame_bytes) as u64);
    }

    #[test]
    fn hot_spot_queues_and_records_xmit_wait() {
        let (model, faults, mut rng) = quiet();
        let mut f = fab(RoutingPolicy::Static);
        // Everyone in pod 0 blasts host 0: its downlink port serializes.
        let mut last = SimTime::ZERO;
        for src in 1..4 {
            for _ in 0..10 {
                let r = f.walk(SimTime::ZERO, src, 0, 4096, &model, src, &faults, &mut rng);
                last = last.max(r.deliver_at);
            }
        }
        let (sw, port) = f.graph().host_port(0);
        let c = f.port_counters(sw, port);
        assert_eq!(c.xmit_pkts, 30);
        assert!(c.xmit_wait_ns > 0, "hot-spot downlink must record queueing");
        // The downlink serializes 30 packets: delivery spread covers at
        // least the full serialization train.
        assert!(last.as_nanos() >= 30 * model.wire_time(4096));
    }

    #[test]
    fn adaptive_spreads_load_over_up_ports() {
        let (model, faults, mut rng) = quiet();
        let mut f = fab(RoutingPolicy::Adaptive);
        // One source hammers a cross-pod destination: with adaptive
        // routing both up-ports of its edge switch carry packets.
        for _ in 0..8 {
            f.walk(SimTime::ZERO, 0, 15, 4096, &model, 0, &faults, &mut rng);
        }
        let (esw, _) = f.graph().host_port(0);
        let up0 = f.port_counters(esw, 2).xmit_pkts;
        let up1 = f.port_counters(esw, 3).xmit_pkts;
        assert_eq!(up0 + up1, 8);
        assert!(up0 > 0 && up1 > 0, "adaptive must use both up-ports ({up0}/{up1})");
    }

    #[test]
    fn adaptive_is_deterministic() {
        let model = WireModel::expanse();
        let faults = FaultConfig::default();
        let run = || {
            let mut f = fab(RoutingPolicy::Adaptive);
            let mut rng = StdRng::seed_from_u64(3);
            let mut ends = Vec::new();
            for i in 0..40u64 {
                let src = (i % 16) as usize;
                let dst = ((i * 7 + 3) % 16) as usize;
                if src == dst {
                    continue;
                }
                let r = f.walk(
                    SimTime::from_nanos(i * 50),
                    src,
                    dst,
                    256,
                    &model,
                    src,
                    &faults,
                    &mut rng,
                );
                ends.push(r.deliver_at.as_nanos());
            }
            ends
        };
        assert_eq!(run(), run(), "adaptive tie-breaks must be reproducible");
    }

    #[test]
    fn link_failure_reroutes_and_freezes_the_dead_port() {
        let (model, faults, mut rng) = quiet();
        let mut f = fab(RoutingPolicy::Static);
        // Pick the first up-link on the static route 0 -> 15.
        let route = f.route_ports(0, 15);
        let (sw, port) = route[0];
        for _ in 0..5 {
            f.walk(SimTime::ZERO, 0, 15, 8, &model, 0, &faults, &mut rng);
        }
        let before = f.port_counters(sw, port);
        assert!(before.xmit_pkts > 0);
        assert!(f.fail_link(sw, port));
        assert!(!f.fail_link(sw, port), "double-kill is a no-op");
        // New packets avoid the dead link and still arrive.
        for _ in 0..5 {
            let r = f.walk(SimTime::ZERO, 0, 15, 8, &model, 0, &faults, &mut rng);
            assert_eq!(r.hops, 5);
        }
        let after = f.port_counters(sw, port);
        assert_eq!(after.xmit_pkts, before.xmit_pkts, "dead port must stop transmitting");
        assert_eq!(after.link_downed, 1, "LinkDowned error counter is the observable");
        assert_ne!(f.route_ports(0, 15)[0], (sw, port), "route must change");
    }

    #[test]
    fn drop_fault_retransmits_but_still_delivers() {
        let model = WireModel::expanse();
        let mut f = fab(RoutingPolicy::Static);
        let mut rng = StdRng::seed_from_u64(9);
        let clean = f
            .walk(SimTime::ZERO, 0, 15, 8, &model, 0, &FaultConfig::default(), &mut rng)
            .deliver_at;
        let mut f = fab(RoutingPolicy::Static);
        let faults = FaultConfig { drop_prob: 1.0, ..FaultConfig::default() };
        let r = f.walk(SimTime::ZERO, 0, 15, 8, &model, 0, &faults, &mut rng);
        assert_eq!(r.retries, 5, "every link dropped once");
        assert!(r.deliver_at > clean, "retransmits cost time");
    }

    #[test]
    fn duplicate_fault_forks_one_copy() {
        let model = WireModel::expanse();
        let mut f = fab(RoutingPolicy::Static);
        let mut rng = StdRng::seed_from_u64(9);
        let faults = FaultConfig { duplicate_prob: 1.0, ..FaultConfig::default() };
        let r = f.walk(SimTime::ZERO, 0, 15, 8, &model, 0, &faults, &mut rng);
        let dup = r.dup_deliver_at.expect("duplicate copy must arrive");
        assert!(dup > r.deliver_at, "copy queues behind the original");
    }

    #[test]
    fn ranked_ports_orders_by_wait() {
        let (model, faults, mut rng) = quiet();
        let mut f = fab(RoutingPolicy::Static);
        for src in 1..4 {
            for _ in 0..5 {
                f.walk(SimTime::ZERO, src, 0, 4096, &model, src, &faults, &mut rng);
            }
        }
        let rows = f.ranked_ports();
        assert!(!rows.is_empty());
        assert!(rows[0].1.xmit_wait_ns > 0, "top-ranked port must show queueing");
        for w in rows.windows(2) {
            assert!(w[0].1.xmit_wait_ns >= w[1].1.xmit_wait_ns);
        }
        // The victim's downlink carried every packet of the incast.
        let (sw, port) = f.graph().host_port(0);
        let down = f.port_counters(sw, port);
        assert_eq!(down.xmit_pkts, 15);
        assert!(down.xmit_wait_ns > 0);
    }
}
