//! Wire/NIC performance models with presets for the paper's two platforms.

/// LogGP-style parameters of a NIC + interconnect.
///
/// `byte_ns_milli` is in thousandths of a nanosecond per byte so that
/// multi-GB/s links can be expressed without floating point on the hot
/// path (100 Gb/s = 12.5 GB/s = 0.080 ns/B = 80 milli-ns/B).
#[derive(Debug, Clone)]
pub struct WireModel {
    /// Human-readable name of the platform this models.
    pub name: &'static str,
    /// One-way propagation + switch latency, ns.
    pub latency_ns: u64,
    /// Wire serialization cost per byte, milli-ns.
    pub byte_ns_milli: u64,
    /// Minimum gap between message injections (1 / max message rate), ns.
    pub msg_gap_ns: u64,
    /// CPU cost of posting one descriptor to the NIC (doorbell etc.), ns.
    pub post_ns: u64,
    /// CPU cost of polling an empty hardware RX queue, ns.
    pub rx_poll_ns: u64,
    /// CPU cost of reaping one arrived packet from the RX queue, ns.
    pub rx_reap_ns: u64,
    /// Fixed per-packet wire framing overhead, bytes.
    pub frame_bytes: usize,
}

impl WireModel {
    /// SDSC Expanse: Mellanox ConnectX-6, HDR InfiniBand (2x50 Gb/s).
    ///
    /// ~1.0 us end-to-end small-message latency; the per-process TX context
    /// sustains ~8 M msg/s before software overheads.
    pub fn expanse() -> Self {
        WireModel {
            name: "expanse-hdr",
            latency_ns: 1_000,
            byte_ns_milli: 80, // 12.5 GB/s
            msg_gap_ns: 125,   // ~8 M msg/s per context
            post_ns: 80,
            rx_poll_ns: 40,
            rx_reap_ns: 70,
            frame_bytes: 64,
        }
    }

    /// LSU Rostam: Mellanox ConnectX-3, FDR InfiniBand (4x14 Gb/s).
    ///
    /// Older NIC generation: higher latency, lower bandwidth, lower
    /// packet rate.
    pub fn rostam() -> Self {
        WireModel {
            name: "rostam-fdr",
            latency_ns: 1_700,
            byte_ns_milli: 143, // ~7 GB/s
            msg_gap_ns: 250,    // ~4 M msg/s per context
            post_ns: 110,
            rx_poll_ns: 55,
            rx_reap_ns: 95,
            frame_bytes: 64,
        }
    }

    /// An idealized zero-latency infinite-rate wire, for unit tests that
    /// want to observe pure software behaviour.
    pub fn ideal() -> Self {
        WireModel {
            name: "ideal",
            latency_ns: 0,
            byte_ns_milli: 0,
            msg_gap_ns: 0,
            post_ns: 0,
            rx_poll_ns: 0,
            rx_reap_ns: 0,
            frame_bytes: 0,
        }
    }

    /// Wire serialization time of a `payload`-byte packet, ns.
    #[inline]
    pub fn wire_time(&self, payload: usize) -> u64 {
        ((payload + self.frame_bytes) as u64 * self.byte_ns_milli) / 1000
    }

    /// Total NIC occupancy of one packet: injection gap + serialization.
    #[inline]
    pub fn injection_time(&self, payload: usize) -> u64 {
        self.msg_gap_ns + self.wire_time(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expanse_is_faster_than_rostam() {
        let e = WireModel::expanse();
        let r = WireModel::rostam();
        assert!(e.latency_ns < r.latency_ns);
        assert!(e.byte_ns_milli < r.byte_ns_milli);
        assert!(e.msg_gap_ns < r.msg_gap_ns);
    }

    #[test]
    fn wire_time_scales_with_size() {
        let e = WireModel::expanse();
        // 16 KiB at 12.5 GB/s ≈ 1.31 us (plus framing).
        let t = e.wire_time(16 * 1024);
        assert!((1_300..1_400).contains(&t), "got {t}");
        assert!(e.wire_time(8) < e.wire_time(4096));
    }

    #[test]
    fn ideal_wire_is_free() {
        let i = WireModel::ideal();
        assert_eq!(i.injection_time(1_000_000), 0);
        assert_eq!(i.latency_ns, 0);
    }

    #[test]
    fn injection_includes_gap() {
        let e = WireModel::expanse();
        assert_eq!(e.injection_time(0), e.msg_gap_ns + e.wire_time(0));
    }
}
