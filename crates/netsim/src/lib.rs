//! # netsim — a simulated RDMA fabric
//!
//! Stands in for the InfiniBand hardware + libibverbs/libfabric layer the
//! paper runs on (Mellanox ConnectX-6 / HDR on SDSC Expanse, ConnectX-3 /
//! FDR on Rostam). The model is LogGP-flavoured:
//!
//! * **o** (overhead): posting a descriptor costs CPU time on the posting
//!   core and serializes through a per-node *TX context* resource — one
//!   network context per process, exactly the §7.2 bottleneck ("the LCI
//!   parcelport only uses one LCI device per process... severe thread
//!   contention when the sender injects messages").
//! * **g** (gap): the NIC injects at most one message per `msg_gap_ns`,
//!   plus a per-byte serialization cost — this caps achievable message
//!   rate and bandwidth.
//! * **L** (latency): constant propagation delay.
//!
//! Delivery is reliable and ordered per (src → dst) pair, like an IB RC
//! queue pair. Optional fault injection (duplication / bounded reordering)
//! exists purely to harden upper-layer tests.
//!
//! Receivers [`Fabric::poll`] their node's RX queues; polling serializes
//! through a per-node *RX queue* resource, so many cores polling the same
//! NIC contend — the "network receive queue" contention of §4.1.

pub mod fabric;
pub mod model;
pub mod packet;
pub mod topo;

pub use fabric::{Fabric, FaultConfig, PollOutcome, SendOutcome};
pub use model::WireModel;
pub use packet::{NodeId, Packet};
pub use topo::{
    DragonflyParams, FatTreeParams, PortCounters, RoutingPolicy, SwitchFabric, Topology,
};
