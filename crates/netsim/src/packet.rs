//! Wire packets: what the simulated NIC actually carries.

use bytes::Bytes;

/// Index of a simulated node (one NIC per node).
pub type NodeId = usize;

/// One packet on the simulated wire.
///
/// The fabric does not interpret `kind`, `tag`, or `imm` — they are an
/// upper-layer namespace (LCI and the MPI model each define their own
/// packet kinds). `data` is reference-counted ([`Bytes`]) so "zero-copy"
/// transfers really are zero-copy in host memory; the *modeled* copy costs
/// are charged explicitly by the layers that perform copies.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Communication context (network endpoint) on both nodes. Context
    /// `i` of the source talks to context `i` of the destination —
    /// replicating contexts is the §7.2 remedy for single-context
    /// contention.
    pub ctx: u8,
    /// Upper-layer packet discriminator (eager, RTS, RTR, payload, ...).
    pub kind: u8,
    /// Upper-layer tag.
    pub tag: u64,
    /// Immediate data carried in the packet header.
    pub imm: u64,
    /// Payload.
    pub data: Bytes,
}

impl Packet {
    /// Construct a packet with empty payload.
    pub fn control(src: NodeId, dst: NodeId, kind: u8, tag: u64, imm: u64) -> Self {
        Packet { src, dst, ctx: 0, kind, tag, imm, data: Bytes::new() }
    }

    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packets_are_empty() {
        let p = Packet::control(0, 1, 3, 42, 7);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!((p.src, p.dst, p.kind, p.tag, p.imm), (0, 1, 3, 42, 7));
    }

    #[test]
    fn payload_clone_is_shallow() {
        let data = Bytes::from(vec![0u8; 4096]);
        let p = Packet { src: 0, dst: 1, ctx: 0, kind: 0, tag: 0, imm: 0, data: data.clone() };
        let q = p.clone();
        // Bytes clones share the same backing storage (zero-copy).
        assert_eq!(q.data.as_ptr(), data.as_ptr());
    }
}
