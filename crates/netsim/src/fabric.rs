//! The fabric: per-node NICs, per-pair ordered channels, delivery timing.

use std::collections::VecDeque;
use std::rc::Rc;

use rand::Rng;
use simcore::causal::{self, MarkKind};
use simcore::{Sim, SimResource, SimTime};

use crate::model::WireModel;
use crate::packet::{NodeId, Packet};
use crate::topo::{SwitchFabric, Topology};

/// Fault injection knobs (test-only; defaults are all off, matching the
/// reliable, ordered delivery of an InfiniBand RC queue pair).
///
/// On a switched topology the faults are applied *per link*: every hop of
/// a packet's route rolls independently, so a long path is proportionally
/// more exposed — exactly why fault rates matter more at scale.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Probability a packet is delivered twice. On a topology, rolled per
    /// link; the duplicate copy finishes the walk on its own.
    pub duplicate_prob: f64,
    /// Probability a packet swaps places with the previously queued packet
    /// on the same (src, dst) channel.
    pub reorder_prob: f64,
    /// Probability a transfer is lost and link-level retransmitted (one
    /// extra serialization plus a round trip on the affected link —
    /// delivery stays reliable, like IB link-layer retry). On a topology,
    /// rolled per link.
    pub drop_prob: f64,
}

/// Result of posting a send descriptor.
#[derive(Debug, Clone, Copy)]
pub struct SendOutcome {
    /// When the posting core is done (endpoint-post serialization included);
    /// the caller must charge its core until this instant.
    pub cpu_done: SimTime,
    /// When the packet becomes visible at the destination NIC.
    pub deliver_at: SimTime,
}

/// Result of polling a node's RX queues.
#[derive(Debug)]
pub enum PollOutcome {
    /// A packet was reaped.
    Packet {
        /// The reaped packet.
        pkt: Packet,
        /// When the polling core is done reaping.
        cpu_done: SimTime,
        /// When the packet actually arrived at the NIC (its wire
        /// delivery instant — at or before the poll).
        arrived: SimTime,
    },
    /// Nothing deliverable yet.
    Empty {
        /// When the polling core is done with the (empty) poll.
        cpu_done: SimTime,
        /// Earliest known future arrival on this node, if any in flight.
        next_arrival: Option<SimTime>,
    },
}

/// Callback invoked when a packet is addressed to a node: `(sim, deliver_at)`.
///
/// This is the model of a NIC interrupt / CQ doorbell: it lets the runtime
/// schedule a progress poll at exactly the arrival instant instead of
/// busy-polling virtual time. The poll it schedules still pays full
/// polling costs; the waker only carries *timing* information.
pub type ArrivalWaker = Rc<dyn Fn(&mut Sim, SimTime)>;

struct InFlight {
    deliver_at: SimTime,
    pkt: Packet,
}

/// The simulated interconnect: `n` nodes, each with one NIC (one TX
/// context, one RX queue), fully connected by ordered reliable channels.
pub struct Fabric {
    model: WireModel,
    nodes: usize,
    /// Communication contexts (endpoints) per node. One by default — the
    /// "one network context per process" contention point of §7.2;
    /// replicating them is the paper's future-work remedy.
    contexts: usize,
    /// Per-(node, ctx) endpoint-post serialization.
    tx_post: Vec<SimResource>,
    /// Per-node NIC TX pipeline availability (the physical port is
    /// shared by all contexts).
    wire_free: Vec<SimTime>,
    /// Per-(node, ctx) RX queue access serialization.
    rx_access: Vec<SimResource>,
    /// Channel ((src * nodes + dst) * contexts + ctx) → in-flight
    /// packets, delivery ordered.
    queues: Vec<VecDeque<InFlight>>,
    /// Per-(dst, ctx) round-robin cursor over sources.
    rx_cursor: Vec<usize>,
    wakers: Vec<Option<ArrivalWaker>>,
    /// Switched interconnect behind the NICs; `None` = the original
    /// direct point-to-point wire (preserved byte-for-byte).
    topo: Option<SwitchFabric>,
    fault: FaultConfig,
    sent: u64,
    delivered: u64,
    bytes_sent: u64,
    /// Per-source-node cumulative wire busy time (injection/serialization),
    /// the numerator of per-link utilization.
    link_busy: Vec<u64>,
}

impl Fabric {
    /// Create a fabric of `nodes` nodes with one context per node.
    pub fn new(nodes: usize, model: WireModel) -> Self {
        Fabric::with_contexts(nodes, model, 1)
    }

    /// Create a fabric with `contexts` communication contexts per node.
    pub fn with_contexts(nodes: usize, model: WireModel, contexts: usize) -> Self {
        assert!(nodes >= 1 && contexts >= 1 && contexts <= u8::MAX as usize);
        Fabric {
            nodes,
            contexts,
            tx_post: (0..nodes * contexts).map(|_| SimResource::new("nic.tx_post", 150)).collect(),
            wire_free: vec![SimTime::ZERO; nodes],
            rx_access: (0..nodes * contexts)
                .map(|_| SimResource::new("nic.rx_queue", 150))
                .collect(),
            queues: (0..nodes * nodes * contexts).map(|_| VecDeque::new()).collect(),
            rx_cursor: vec![0; nodes * contexts],
            wakers: (0..nodes).map(|_| None).collect(),
            topo: None,
            fault: FaultConfig::default(),
            sent: 0,
            delivered: 0,
            bytes_sent: 0,
            link_busy: vec![0; nodes],
            model,
        }
    }

    /// Create a fabric whose NICs hang off a switched [`Topology`].
    /// [`Topology::Direct`] yields exactly [`Fabric::new`].
    pub fn with_topology(nodes: usize, model: WireModel, topology: &Topology) -> Self {
        let mut fab = Fabric::new(nodes, model);
        fab.install_topology(topology);
        fab
    }

    /// Install (or clear, with [`Topology::Direct`]) the switched
    /// interconnect on an existing fabric — used by world builders that
    /// also configure contexts. Must happen before traffic flows.
    pub fn install_topology(&mut self, topology: &Topology) {
        assert!(self.sent == 0, "topology must be installed before traffic");
        self.topo = topology.build(self.nodes);
    }

    /// The switched interconnect, if one is configured (for counters,
    /// route inspection, and failure injection).
    pub fn topology(&self) -> Option<&SwitchFabric> {
        self.topo.as_ref()
    }

    /// Mutable access to the switched interconnect.
    pub fn topology_mut(&mut self) -> Option<&mut SwitchFabric> {
        self.topo.as_mut()
    }

    /// Administratively kill the link behind `(sw, port)` (both
    /// directions) and reroute. Returns `false` without a topology or if
    /// the link was already dead.
    pub fn fail_link(&mut self, sw: usize, port: usize) -> bool {
        self.topo.as_mut().is_some_and(|t| t.fail_link(sw, port))
    }

    /// Communication contexts per node.
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The wire model in use.
    pub fn model(&self) -> &WireModel {
        &self.model
    }

    /// Minimum one-way propagation latency across all links, ns.
    ///
    /// This is the conservative-PDES lookahead the fabric guarantees: a
    /// packet handed to the wire is never visible at its destination
    /// earlier than `send time + min_lookahead()` (see [`Fabric::send`]:
    /// `deliver_at = wire_free + latency_ns >= now + latency_ns`). A
    /// sharded engine may therefore run localities up to one lookahead
    /// apart without risking an event in any shard's past. On the direct
    /// point-to-point wire this is the model's fixed latency; on a
    /// switched topology it is the minimum *first-hop* (host NIC link)
    /// latency — every walk starts by crossing the host link, and all
    /// later hops only push delivery further out.
    ///
    /// Floored at 1 ns: a zero-propagation wire ([`WireModel::ideal`])
    /// would otherwise advertise a lookahead of 0, which no conservative
    /// engine can run under. The floor is a modeling convention for the
    /// sharded world — an ideal-wire packet may still *arrive* at its
    /// send instant, but its cross-lane **visibility** is deferred to
    /// `send + 1 ns` (equivalent to the receiver polling one nanosecond
    /// late, which the polling-based runtime already tolerates). The
    /// single-`Sim` direct-wire path never reads this value on delivery,
    /// so direct-wire traces are unaffected.
    pub fn min_lookahead(&self) -> u64 {
        let raw = match &self.topo {
            Some(t) => t.min_first_hop_latency(),
            None => self.model.latency_ns,
        };
        raw.max(1)
    }

    /// Enable fault injection (tests only).
    pub fn set_faults(&mut self, fault: FaultConfig) {
        self.fault = fault;
    }

    /// Register the arrival waker for `node` (see [`ArrivalWaker`]).
    pub fn set_arrival_waker(&mut self, node: NodeId, waker: ArrivalWaker) {
        self.wakers[node] = Some(waker);
    }

    #[inline]
    fn chan(&self, src: NodeId, dst: NodeId, ctx: usize) -> usize {
        (src * self.nodes + dst) * self.contexts + ctx
    }

    #[inline]
    fn node_ctx(&self, node: NodeId, ctx: usize) -> usize {
        node * self.contexts + ctx
    }

    /// Post a send from `core` on the packet's source node, no earlier
    /// than `at` (the caller's accumulated virtual time — descriptor
    /// posting happens after whatever CPU work preceded it).
    ///
    /// The posting core is busy until `SendOutcome::cpu_done` (endpoint
    /// post + contention); the NIC then serializes the packet onto the
    /// wire independently of the CPU.
    pub fn send(&mut self, sim: &mut Sim, core: usize, at: SimTime, pkt: Packet) -> SendOutcome {
        let now = at.max(sim.now());
        let src = pkt.src;
        let dst = pkt.dst;
        let ctx = pkt.ctx as usize;
        assert!(src < self.nodes && dst < self.nodes, "bad node id");
        assert!(ctx < self.contexts, "bad context id");

        // CPU side: serialize through the sending context.
        let nc = self.node_ctx(src, ctx);
        let cpu_done = self.tx_post[nc].access(now, core, self.model.post_ns);

        // NIC side: injection gap + wire serialization, pipelined.
        let inj_start = cpu_done.max(self.wire_free[src]);
        let busy = self.model.injection_time(pkt.len());
        self.wire_free[src] = inj_start + busy;
        self.link_busy[src] += busy;
        // Delivery instant of a fault-injected duplicate (topology mode
        // forks the copy inside the walk, at the duplicating link).
        let mut dup_at: Option<SimTime> = None;
        let model = self.model.clone();
        let fault = self.fault.clone();
        let nic_done = self.wire_free[src];
        let deliver_at = if let Some(topo) = &mut self.topo {
            // Switched path: once injected, the packet walks the fabric
            // hop by hop — queueing through every output-port buffer on
            // its route. Per-link faults are rolled inside the walk.
            let r = topo.walk(nic_done, src, dst, pkt.len(), &model, core, &fault, &mut sim.rng);
            if r.retries > 0 {
                sim.stats.bump("net.retransmitted");
            }
            dup_at = r.dup_deliver_at;
            // Causal wire span: injection through final delivery; the
            // `fixed` part is the path's pure propagation latency.
            causal::mark("net.wire", MarkKind::Wire, inj_start, r.deliver_at, r.prop_ns);
            r.deliver_at
        } else {
            let mut deliver_at = self.wire_free[src] + self.model.latency_ns;
            if self.fault.drop_prob > 0.0 && sim.rng.gen_bool(self.fault.drop_prob.min(1.0)) {
                // Wire-level loss: the NIC retransmits after a round trip.
                sim.stats.bump("net.retransmitted");
                deliver_at = deliver_at + busy + 2 * self.model.latency_ns;
                telemetry::fault_event_at("net.retransmit", inj_start);
            }
            // Causal wire span: injection + serialization + propagation.
            // The `fixed` part is pure propagation latency (what a latency
            // knob scales); the rest is bandwidth-dependent.
            causal::mark("net.wire", MarkKind::Wire, inj_start, deliver_at, self.model.latency_ns);
            deliver_at
        };

        self.sent += 1;
        self.bytes_sent += pkt.len() as u64;
        sim.stats.bump("net.sent");
        // Per-link utilization track: cumulative wire-busy µs, sampled at
        // the instant the link frees (the `with` guard keeps the disabled
        // path allocation-free).
        telemetry::with(|tel| {
            tel.track_sample(
                &format!("net.link{src}.busy_us"),
                self.wire_free[src],
                self.link_busy[src] as f64 / 1e3,
            );
        });

        let chan = self.chan(src, dst, ctx);
        // Channel-level duplication only applies on the direct wire; a
        // topology already rolled per-link duplication inside the walk.
        let dup = self.topo.is_none()
            && self.fault.duplicate_prob > 0.0
            && sim.rng.gen_bool(self.fault.duplicate_prob.min(1.0));
        let reorder =
            self.fault.reorder_prob > 0.0 && sim.rng.gen_bool(self.fault.reorder_prob.min(1.0));

        if dup {
            sim.stats.bump("net.duplicated");
            telemetry::fault_event_at("net.duplicate", deliver_at);
            self.queues[chan].push_back(InFlight { deliver_at, pkt: pkt.clone() });
        }
        match dup_at {
            Some(at) => {
                sim.stats.bump("net.duplicated");
                self.queues[chan].push_back(InFlight { deliver_at, pkt: pkt.clone() });
                self.queues[chan].push_back(InFlight { deliver_at: at, pkt });
            }
            None => self.queues[chan].push_back(InFlight { deliver_at, pkt }),
        }
        if reorder {
            let q = &mut self.queues[chan];
            let n = q.len();
            if n >= 2 {
                sim.stats.bump("net.reordered");
                telemetry::fault_event_at("net.reorder", deliver_at);
                q.swap(n - 1, n - 2);
            }
        }

        if let Some(waker) = self.wakers[dst].clone() {
            waker(sim, deliver_at);
        }
        SendOutcome { cpu_done, deliver_at }
    }

    /// Poll context 0 of node `dst` (the common single-context case).
    pub fn poll(&mut self, sim: &mut Sim, core: usize, dst: NodeId) -> PollOutcome {
        self.poll_ctx(sim, core, dst, 0)
    }

    /// Poll one context of node `dst`'s RX queues from `core`.
    /// Round-robins over source channels for fairness.
    pub fn poll_ctx(&mut self, sim: &mut Sim, core: usize, dst: NodeId, ctx: usize) -> PollOutcome {
        let now = sim.now();
        let nc = self.node_ctx(dst, ctx);
        let cpu = self.rx_access[nc].access(now, core, self.model.rx_poll_ns);

        let mut next_arrival: Option<SimTime> = None;
        for i in 0..self.nodes {
            let src = (self.rx_cursor[nc] + i) % self.nodes;
            let chan = self.chan(src, dst, ctx);
            if let Some(head) = self.queues[chan].front() {
                if head.deliver_at <= now {
                    let inflight = self.queues[chan].pop_front().expect("head exists");
                    self.rx_cursor[nc] = (src + 1) % self.nodes;
                    self.delivered += 1;
                    sim.stats.bump("net.delivered");
                    let cpu_done = cpu + self.model.rx_reap_ns;
                    return PollOutcome::Packet {
                        pkt: inflight.pkt,
                        cpu_done,
                        arrived: inflight.deliver_at,
                    };
                }
                next_arrival = Some(match next_arrival {
                    Some(t) => t.min(head.deliver_at),
                    None => head.deliver_at,
                });
            }
        }
        PollOutcome::Empty { cpu_done: cpu, next_arrival }
    }

    /// Drain every in-flight packet addressed to a node other than
    /// `home` into `out` as `(deliver_at, pkt)` pairs — the lane-export
    /// half of the federated sharded world, where each lane owns a full
    /// fabric replica but only its `home` node ever receives locally.
    /// Channels are visited in canonical `(src, dst, ctx)` order and each
    /// is drained front-to-back, so per-channel FIFO is preserved and the
    /// output order is placement-independent.
    pub fn drain_remote(&mut self, home: NodeId, out: &mut Vec<(SimTime, Packet)>) {
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                if dst == home {
                    continue;
                }
                for ctx in 0..self.contexts {
                    let chan = self.chan(src, dst, ctx);
                    while let Some(inflight) = self.queues[chan].pop_front() {
                        out.push((inflight.deliver_at, inflight.pkt));
                    }
                }
            }
        }
    }

    /// Accept a packet drained from another lane's replica (the
    /// lane-import half of [`Fabric::drain_remote`]): enqueue it on its
    /// `(src, dst, ctx)` channel with its original delivery instant and
    /// fire the destination's arrival waker, exactly as a local
    /// [`Fabric::send`] would have. Acceptance order must follow the
    /// sender's drain order per channel to keep FIFO delivery.
    pub fn accept_remote(&mut self, sim: &mut Sim, deliver_at: SimTime, pkt: Packet) {
        let chan = self.chan(pkt.src, pkt.dst, pkt.ctx as usize);
        let dst = pkt.dst;
        self.queues[chan].push_back(InFlight { deliver_at, pkt });
        if let Some(waker) = self.wakers[dst].clone() {
            waker(sim, deliver_at);
        }
    }

    /// Earliest pending arrival at `dst` (any context), if any packet is
    /// in flight.
    pub fn next_arrival(&self, dst: NodeId) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for src in 0..self.nodes {
            for ctx in 0..self.contexts {
                if let Some(head) = self.queues[self.chan(src, dst, ctx)].front() {
                    best = Some(match best {
                        Some(t) => t.min(head.deliver_at),
                        None => head.deliver_at,
                    });
                }
            }
        }
        best
    }

    /// Number of packets currently in flight towards `dst`.
    pub fn pending(&self, dst: NodeId) -> usize {
        (0..self.nodes)
            .flat_map(|src| (0..self.contexts).map(move |c| (src, c)))
            .map(|(src, c)| self.queues[self.chan(src, dst, c)].len())
            .sum()
    }

    /// Total packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Total packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Cumulative wire-busy time of `node`'s TX link, ns.
    pub fn link_busy_ns(&self, node: NodeId) -> u64 {
        self.link_busy[node]
    }

    /// Utilization of `node`'s TX link over `[0, now]`.
    pub fn link_utilization(&self, node: NodeId, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            self.link_busy[node] as f64 / now.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(src: NodeId, dst: NodeId, tag: u64, len: usize) -> Packet {
        Packet { src, dst, ctx: 0, kind: 0, tag, imm: 0, data: Bytes::from(vec![0u8; len]) }
    }

    #[test]
    fn contexts_are_independent_channels() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::with_contexts(2, WireModel::ideal(), 2);
        let mut p0 = pkt(0, 1, 10, 8);
        let mut p1 = pkt(0, 1, 20, 8);
        p0.ctx = 0;
        p1.ctx = 1;
        fab.send(&mut sim, 0, SimTime::ZERO, p0);
        fab.send(&mut sim, 0, SimTime::ZERO, p1);
        // Context 1 sees only its own packet.
        match fab.poll_ctx(&mut sim, 0, 1, 1) {
            PollOutcome::Packet { pkt, .. } => assert_eq!(pkt.tag, 20),
            _ => panic!("ctx 1 should have a packet"),
        }
        match fab.poll_ctx(&mut sim, 0, 1, 0) {
            PollOutcome::Packet { pkt, .. } => assert_eq!(pkt.tag, 10),
            _ => panic!("ctx 0 should have a packet"),
        }
        assert_eq!(fab.pending(1), 0);
    }

    #[test]
    fn contexts_have_separate_tx_serialization() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::with_contexts(2, WireModel::expanse(), 2);
        let mut a = pkt(0, 1, 0, 8);
        let mut b = pkt(0, 1, 1, 8);
        a.ctx = 0;
        b.ctx = 1;
        // Two cores posting to different contexts: no queueing between them.
        let ta = fab.send(&mut sim, 0, SimTime::ZERO, a).cpu_done;
        let tb = fab.send(&mut sim, 1, SimTime::ZERO, b).cpu_done;
        assert_eq!(ta, tb, "independent contexts must not serialize posts");
    }

    #[test]
    fn packet_arrives_after_latency() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::expanse());
        let out = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 7, 8));
        assert!(out.deliver_at.as_nanos() >= 1_000, "must include propagation latency");

        // Not deliverable before deliver_at.
        match fab.poll(&mut sim, 0, 1) {
            PollOutcome::Empty { next_arrival, .. } => {
                assert_eq!(next_arrival, Some(out.deliver_at))
            }
            _ => panic!("too early"),
        }
        sim.run_until(out.deliver_at);
        match fab.poll(&mut sim, 0, 1) {
            PollOutcome::Packet { pkt, cpu_done, arrived } => {
                assert_eq!(pkt.tag, 7);
                assert!(cpu_done > out.deliver_at);
                assert_eq!(arrived, out.deliver_at);
            }
            _ => panic!("should be deliverable"),
        }
        assert_eq!(fab.delivered(), 1);
    }

    #[test]
    fn per_pair_delivery_is_fifo() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::expanse());
        for tag in 0..10 {
            fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, tag, 64));
        }
        sim.run_until(SimTime::from_millis(1));
        let mut tags = Vec::new();
        loop {
            match fab.poll(&mut sim, 0, 1) {
                PollOutcome::Packet { pkt, .. } => tags.push(pkt.tag),
                PollOutcome::Empty { .. } => break,
            }
        }
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn injection_gap_limits_message_rate() {
        let mut sim = Sim::new(1);
        let model = WireModel::expanse();
        let gap = model.injection_time(8);
        let mut fab = Fabric::new(2, model);
        let mut last = SimTime::ZERO;
        for i in 0..100 {
            let out = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, i, 8));
            if i > 0 {
                assert!(out.deliver_at - last >= gap, "NIC gap must separate deliveries");
            }
            last = out.deliver_at;
        }
    }

    #[test]
    fn large_messages_take_longer_on_the_wire() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::expanse());
        let small = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 8)).deliver_at;
        let mut sim2 = Sim::new(1);
        let mut fab2 = Fabric::new(2, WireModel::expanse());
        let big = fab2.send(&mut sim2, 0, SimTime::ZERO, pkt(0, 1, 0, 65536)).deliver_at;
        assert!(big > small);
    }

    #[test]
    fn concurrent_posters_contend_on_tx_context() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::expanse());
        // Two cores post at the same instant; second pays queueing + transfer.
        let a = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 8)).cpu_done;
        let b = fab.send(&mut sim, 1, SimTime::ZERO, pkt(0, 1, 1, 8)).cpu_done;
        assert!(b > a);
        assert!(b - a >= 150, "ownership migration penalty applies");
    }

    #[test]
    fn arrival_waker_fires_on_send() {
        use std::cell::RefCell;
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::expanse());
        let woken: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let w = woken.clone();
        fab.set_arrival_waker(
            1,
            Rc::new(move |_sim: &mut Sim, at: SimTime| w.borrow_mut().push(at)),
        );
        let out = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 8));
        assert_eq!(*woken.borrow(), vec![out.deliver_at]);
    }

    #[test]
    fn duplication_fault_delivers_twice() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::ideal());
        fab.set_faults(FaultConfig { duplicate_prob: 1.0, ..FaultConfig::default() });
        fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 9, 8));
        let mut got = 0;
        loop {
            match fab.poll(&mut sim, 0, 1) {
                PollOutcome::Packet { pkt, .. } => {
                    assert_eq!(pkt.tag, 9);
                    got += 1;
                }
                PollOutcome::Empty { .. } => break,
            }
        }
        assert_eq!(got, 2);
    }

    #[test]
    fn reordering_fault_swaps_neighbours() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::ideal());
        fab.set_faults(FaultConfig { reorder_prob: 1.0, ..FaultConfig::default() });
        fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 8));
        fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 1, 8));
        let mut tags = Vec::new();
        loop {
            match fab.poll(&mut sim, 0, 1) {
                PollOutcome::Packet { pkt, .. } => tags.push(pkt.tag),
                PollOutcome::Empty { .. } => break,
            }
        }
        assert_eq!(tags, vec![1, 0]);
    }

    #[test]
    fn link_busy_tracks_wire_serialization() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::expanse());
        assert_eq!(fab.link_busy_ns(0), 0);
        fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 64));
        let one = fab.link_busy_ns(0);
        assert!(one > 0);
        fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 1, 64));
        assert_eq!(fab.link_busy_ns(0), 2 * one);
        assert_eq!(fab.link_busy_ns(1), 0, "receiver's TX link stays idle");
        assert!(fab.link_utilization(0, SimTime::from_millis(1)) > 0.0);
        assert_eq!(fab.link_utilization(0, SimTime::ZERO), 0.0);
    }

    #[test]
    fn min_lookahead_bounds_every_delivery() {
        let model = WireModel::expanse();
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, model);
        let la = fab.min_lookahead();
        assert_eq!(la, fab.model().latency_ns);
        assert!(la > 0, "expanse wire has real propagation latency");
        // Every delivery instant respects the advertised lookahead, even
        // for back-to-back posts queueing on the wire.
        for i in 0..20 {
            let posted = sim.now();
            let out = fab.send(&mut sim, 0, posted, pkt(0, 1, i, 4096));
            assert!(
                out.deliver_at.as_nanos() >= posted.as_nanos() + la,
                "delivery {i} undercuts the lookahead"
            );
        }
        // The ideal (zero-latency) model is floored at 1 ns so a
        // conservative engine can always run (visibility deferral, not a
        // delivery delay — see the min_lookahead docs).
        assert_eq!(Fabric::new(2, WireModel::ideal()).min_lookahead(), 1);
    }

    #[test]
    fn ideal_wire_lookahead_floor_defers_visibility_not_delivery() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::ideal());
        assert_eq!(fab.min_lookahead(), 1, "documented positive floor");
        // Delivery itself is still instantaneous on the ideal wire: the
        // floor only governs when a *remote lane* may observe the packet.
        let out = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 3, 8));
        assert_eq!(out.deliver_at, SimTime::ZERO);
        match fab.poll(&mut sim, 0, 1) {
            PollOutcome::Packet { pkt, arrived, .. } => {
                assert_eq!(pkt.tag, 3);
                assert_eq!(arrived, SimTime::ZERO);
            }
            _ => panic!("ideal wire delivers at the send instant"),
        }
    }

    #[test]
    fn remote_drain_and_accept_preserve_fifo_and_wake() {
        use std::cell::RefCell;
        let mut sim = Sim::new(1);
        // Lane 0's replica: node 0 sends to a remote node 1.
        let mut src_fab = Fabric::new(2, WireModel::expanse());
        let a = fab_send_tagged(&mut src_fab, &mut sim, 0, 1, 10);
        let b = fab_send_tagged(&mut src_fab, &mut sim, 0, 1, 11);
        assert!(b.deliver_at >= a.deliver_at);
        let mut out = Vec::new();
        src_fab.drain_remote(0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.tag, 10, "drain preserves channel FIFO order");
        assert_eq!(out[1].1.tag, 11);
        assert_eq!(src_fab.pending(1), 0, "drained packets leave the replica");

        // Lane 1's replica: accept fires the registered arrival waker.
        let mut dst_fab = Fabric::new(2, WireModel::expanse());
        let woken: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let w = woken.clone();
        dst_fab.set_arrival_waker(
            1,
            Rc::new(move |_sim: &mut Sim, at: SimTime| w.borrow_mut().push(at)),
        );
        for (deliver_at, pkt) in out {
            dst_fab.accept_remote(&mut sim, deliver_at, pkt);
        }
        assert_eq!(woken.borrow().len(), 2);
        sim.run_until(b.deliver_at);
        let mut tags = Vec::new();
        loop {
            match dst_fab.poll(&mut sim, 0, 1) {
                PollOutcome::Packet { pkt, .. } => tags.push(pkt.tag),
                PollOutcome::Empty { .. } => break,
            }
        }
        assert_eq!(tags, vec![10, 11], "accepted packets deliver in order");
    }

    fn fab_send_tagged(
        fab: &mut Fabric,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        tag: u64,
    ) -> SendOutcome {
        let now = sim.now();
        fab.send(sim, 0, now, pkt(src, dst, tag, 64))
    }

    #[test]
    fn topology_fabric_delivers_end_to_end() {
        use crate::topo::Topology;
        let mut sim = Sim::new(1);
        let mut fab = Fabric::with_topology(16, WireModel::expanse(), &Topology::fat_tree_for(16));
        assert_eq!(fab.min_lookahead(), 300, "lookahead becomes the first-hop link");
        let out = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 15, 5, 64));
        sim.run_until(out.deliver_at);
        match fab.poll(&mut sim, 0, 15) {
            PollOutcome::Packet { pkt, arrived, .. } => {
                assert_eq!(pkt.tag, 5);
                assert_eq!(arrived, out.deliver_at);
            }
            _ => panic!("packet should be deliverable at its walk time"),
        }
        // Every port on the static route saw the packet.
        let topo = fab.topology().expect("switched fabric");
        for (sw, port) in topo.route_ports(0, 15) {
            assert!(topo.port_counters(sw, port).xmit_pkts >= 1);
        }
    }

    #[test]
    fn direct_topology_is_plain_fabric() {
        use crate::topo::Topology;
        let mut sim = Sim::new(1);
        let mut plain = Fabric::new(2, WireModel::expanse());
        let mut via = Fabric::with_topology(2, WireModel::expanse(), &Topology::Direct);
        assert!(via.topology().is_none());
        assert_eq!(plain.min_lookahead(), via.min_lookahead());
        let a = plain.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 256));
        let b = via.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 256));
        assert_eq!(a.deliver_at, b.deliver_at);
        assert_eq!(a.cpu_done, b.cpu_done);
    }

    #[test]
    fn direct_drop_fault_delays_but_delivers() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(2, WireModel::expanse());
        let clean = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 8)).deliver_at;
        let mut fab = Fabric::new(2, WireModel::expanse());
        fab.set_faults(FaultConfig { drop_prob: 1.0, ..FaultConfig::default() });
        let out = fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 1, 0, 8));
        assert!(out.deliver_at > clean, "retransmit must cost a round trip");
        sim.run_until(out.deliver_at);
        match fab.poll(&mut sim, 0, 1) {
            PollOutcome::Packet { .. } => {}
            _ => panic!("drop faults must stay reliable end-to-end"),
        }
    }

    #[test]
    fn pending_counts_in_flight() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(3, WireModel::expanse());
        fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 2, 0, 8));
        fab.send(&mut sim, 0, SimTime::ZERO, pkt(1, 2, 0, 8));
        assert_eq!(fab.pending(2), 2);
        assert_eq!(fab.pending(0), 0);
    }

    #[test]
    fn round_robin_across_sources() {
        let mut sim = Sim::new(1);
        let mut fab = Fabric::new(3, WireModel::ideal());
        for _ in 0..3 {
            fab.send(&mut sim, 0, SimTime::ZERO, pkt(0, 2, 100, 8));
            fab.send(&mut sim, 0, SimTime::ZERO, pkt(1, 2, 200, 8));
        }
        let mut tags = Vec::new();
        loop {
            match fab.poll(&mut sim, 0, 2) {
                PollOutcome::Packet { pkt, .. } => tags.push(pkt.tag),
                PollOutcome::Empty { .. } => break,
            }
        }
        // Fairness: sources alternate rather than one draining first.
        assert_eq!(tags.len(), 6);
        assert_ne!(tags[..2], [100, 100]);
    }
}
