//! # lci — a Rust model of the Lightweight Communication Interface
//!
//! LCI (§2.1 of the paper) is a communication library built for
//! multithreaded, irregular communication. This crate reproduces the
//! features the LCI parcelport depends on:
//!
//! * **Two-sided medium (eager) and long (rendezvous) send/receive** with
//!   `(rank, tag)` matching, including wildcard-source receives.
//! * **One-sided dynamic put** ([`Device::post_putva`]): the target buffer
//!   is allocated by the runtime on message arrival and an entry is pushed
//!   to a pre-configured *remote completion queue* — the primitive behind
//!   the `putsendrecv` protocol's header messages.
//! * **Completion mechanisms**: completion queues ([`CompQueue`]),
//!   synchronizers ([`Synchronizer`], MPI-request-like but multi-producer),
//!   and function handlers — freely combinable with the primitives.
//! * **Explicit progress**: communication advances only when someone calls
//!   [`Device::progress`]. The thread-safe variant uses a try-lock: a
//!   failed attempt returns immediately instead of blocking (contrast with
//!   `mpisim`'s coarse blocking lock).
//! * **Explicit retry**: all operations are non-blocking; when a resource
//!   (packet pool slot) is temporarily unavailable they return
//!   [`Error::Retry`] and the *user* decides when to retry.
//! * **Registered packet pool** with user-visible buffers, so the
//!   parcelport can assemble a header message directly in an LCI buffer
//!   and save one memory copy (§3.2.1).
//!
//! Contention inside the progress engine (matching table, completion
//! queues, packet pool, internal counters) is modeled with
//! [`simcore::SimResource`]s, so "multiple worker threads call the
//! progress function" genuinely degrades throughput via cache-line
//! migration and serialization, as the paper measures.

pub mod comp;
pub mod config;
pub mod device;
pub mod matching;
pub mod pool;
pub mod protocol;

pub use comp::{Comp, CompQueue, Request, Synchronizer};
pub use config::DeviceConfig;
pub use device::{Device, ProgressOutcome};
pub use matching::MatchTable;
pub use pool::PacketPool;
pub use protocol::{OpKind, ANY_SOURCE};

/// Errors surfaced to LCI users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A resource (packet pool slot, queue capacity) is temporarily
    /// unavailable; the caller should retry later. This mirrors LCI's
    /// explicit-retry design: "users can decide when to retry in case of
    /// temporarily unavailable resources".
    Retry,
    /// The operation is malformed (message too large for eager protocol,
    /// unknown rank, ...). Indicates a caller bug.
    Invalid(&'static str),
}

/// Result alias for LCI operations.
pub type Result<T> = std::result::Result<T, Error>;
