//! Device configuration knobs.

/// Configuration of an LCI device (one per locality/process).
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Largest payload sent with the eager (medium) protocol; larger
    /// payloads use the long (rendezvous) protocol. LCI's default packet
    /// size gives an 8 KiB threshold, matching HPX's default zero-copy
    /// serialization threshold.
    pub eager_threshold: usize,
    /// Number of pre-registered packets in the pool.
    pub packet_pool_size: usize,
    /// Maximum packets handled by one `progress` call. A dedicated
    /// progress thread calls back-to-back, so bursts amortize entry costs;
    /// worker threads calling opportunistically use small bursts.
    pub progress_burst: usize,
    /// Network context this device binds to (multi-device processes bind
    /// device *i* to context *i*; see the paper's §7.2 future work).
    pub ctx: u8,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig { eager_threshold: 8192, packet_pool_size: 4096, progress_burst: 8, ctx: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DeviceConfig::default();
        assert_eq!(c.eager_threshold, 8192);
        assert!(c.packet_pool_size >= 1024);
    }
}
