//! The registered packet pool: pre-registered eager buffers.
//!
//! LCI pre-registers a fixed set of medium-message buffers with the NIC.
//! Sends of eager messages must first obtain a packet; when the pool is
//! exhausted the operation fails with `Retry` and the *caller* decides
//! when to retry — part of LCI's "explicit control of communication
//! behaviors and resources" (§2.1). The parcelport exposes the buffer so
//! a header message can be assembled in place, saving one copy (§3.2.1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use simcore::{CostModel, Sim, SimResource, SimTime};

/// A handle to one registered eager buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHandle(pub(crate) u32);

/// Fixed-size pool of registered packets.
pub struct PacketPool {
    capacity: usize,
    available: usize,
    eager_size: usize,
    res: SimResource,
    exhausted_events: u64,
    next_id: u32,
    /// Buffers still owned by the NIC, returned at these instants
    /// (reclaimed lazily on the next pool access).
    pending_returns: BinaryHeap<Reverse<SimTime>>,
}

impl PacketPool {
    /// Create a pool of `capacity` buffers of `eager_size` bytes each.
    pub fn new(capacity: usize, eager_size: usize, transfer_ns: u64) -> Self {
        PacketPool {
            capacity,
            available: capacity,
            eager_size,
            res: SimResource::new("lci.packet_pool", transfer_ns),
            exhausted_events: 0,
            next_id: 0,
            pending_returns: BinaryHeap::new(),
        }
    }

    /// Reclaim buffers whose NIC ownership ended by `now`.
    fn reclaim(&mut self, now: SimTime) {
        while let Some(&Reverse(at)) = self.pending_returns.peek() {
            if at <= now {
                self.pending_returns.pop();
                self.available += 1;
                debug_assert!(self.available <= self.capacity);
            } else {
                break;
            }
        }
    }

    /// Largest eager payload a packet can carry.
    pub fn eager_size(&self) -> usize {
        self.eager_size
    }

    /// Try to take a packet from `core`; `None` (plus the time the failed
    /// attempt cost) when exhausted.
    pub fn get(
        &mut self,
        sim: &mut Sim,
        core: usize,
        cost: &CostModel,
    ) -> (Option<PacketHandle>, SimTime) {
        self.reclaim(sim.now());
        let done = self.res.access(sim.now(), core, cost.lci_packet_pool);
        if self.available == 0 {
            self.exhausted_events += 1;
            sim.stats.bump("lci.pool_exhausted");
            return (None, done);
        }
        self.available -= 1;
        let h = PacketHandle(self.next_id);
        self.next_id = self.next_id.wrapping_add(1);
        (Some(h), done)
    }

    /// Return a packet to the pool.
    pub fn put(&mut self, sim: &mut Sim, core: usize, cost: &CostModel) -> SimTime {
        self.reclaim(sim.now());
        let done = self.res.access(sim.now(), core, cost.lci_packet_pool);
        assert!(
            self.available + self.pending_returns.len() < self.capacity,
            "double free of pool packet"
        );
        self.available += 1;
        done
    }

    /// Return a packet at a future instant (NIC still owns the buffer
    /// until the wire finishes with it). No CPU cost is charged: the NIC
    /// releases the buffer asynchronously.
    pub fn put_at(&mut self, at: SimTime) {
        assert!(
            self.available + self.pending_returns.len() < self.capacity,
            "double free of pool packet"
        );
        self.pending_returns.push(Reverse(at));
    }

    /// Packets currently free.
    pub fn available(&self) -> usize {
        self.available
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many times `get` failed for exhaustion.
    pub fn exhausted_events(&self) -> u64 {
        self.exhausted_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_exhausts_and_recovers() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut pool = PacketPool::new(2, 8192, 0);
        assert!(pool.get(&mut sim, 0, &cost).0.is_some());
        assert!(pool.get(&mut sim, 0, &cost).0.is_some());
        assert!(pool.get(&mut sim, 0, &cost).0.is_none());
        assert_eq!(pool.exhausted_events(), 1);
        pool.put(&mut sim, 0, &cost);
        assert!(pool.get(&mut sim, 0, &cost).0.is_some());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut pool = PacketPool::new(1, 8192, 0);
        pool.put(&mut sim, 0, &cost);
    }

    #[test]
    fn deferred_return_reclaims_lazily() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut pool = PacketPool::new(1, 8192, 0);
        pool.get(&mut sim, 0, &cost).0.unwrap();
        pool.put_at(SimTime::from_nanos(500));
        // Before the return instant: still exhausted.
        assert!(pool.get(&mut sim, 0, &cost).0.is_none());
        sim.run_until(SimTime::from_nanos(500));
        assert!(pool.get(&mut sim, 0, &cost).0.is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn deferred_double_free_panics() {
        let mut pool = PacketPool::new(1, 8192, 0);
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        pool.get(&mut sim, 0, &cost).0.unwrap();
        pool.put_at(SimTime::from_nanos(10));
        pool.put_at(SimTime::from_nanos(20));
    }

    #[test]
    fn handles_are_distinct() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut pool = PacketPool::new(4, 8192, 0);
        let a = pool.get(&mut sim, 0, &cost).0.unwrap();
        let b = pool.get(&mut sim, 0, &cost).0.unwrap();
        assert_ne!(a, b);
    }
}
