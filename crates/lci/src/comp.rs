//! Completion mechanisms: completion queues, synchronizers, handlers.
//!
//! The paper's §4 shows the choice of completion mechanism matters:
//! completion queues give a smoother, ~25–30% higher peak 16 KiB message
//! rate than synchronizer pools (Fig. 5/6), because "polling one
//! completion queue leads to fewer CPU cycles and less thread contention
//! than polling a pool of individual requests" (§7.1).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use netsim::NodeId;
use simcore::{CostModel, Sim, SimResource, SimTime};

use crate::protocol::OpKind;

/// A completion entry delivered to the user: which operation finished,
/// with which peer/tag/payload, and the user context word.
#[derive(Debug, Clone)]
pub struct Request {
    /// Operation kind that completed.
    pub op: OpKind,
    /// Peer rank.
    pub rank: NodeId,
    /// Tag of the operation.
    pub tag: u64,
    /// Payload (receives and put-targets; empty otherwise).
    pub data: Bytes,
    /// User context word supplied when the operation was posted.
    pub user: u64,
    /// Wire-arrival instant of the packet that completed this operation
    /// (receives and put-targets; `SimTime::ZERO` for local completions).
    /// Observability only — never feeds back into protocol timing.
    pub arrived: SimTime,
}

/// A multi-producer completion queue.
///
/// Producer and consumer sides share the queue's cache lines, modeled by a
/// single [`SimResource`]: pushing from the progress engine and popping
/// from many worker cores contend realistically.
pub struct CompQueue {
    name: &'static str,
    inner: RefCell<CqInner>,
}

struct CqInner {
    q: std::collections::VecDeque<Request>,
    res: SimResource,
    pushes: u64,
    pops: u64,
}

impl CompQueue {
    /// Create a completion queue.
    pub fn new(name: &'static str, transfer_ns: u64) -> Rc<Self> {
        Rc::new(CompQueue {
            name,
            inner: RefCell::new(CqInner {
                q: std::collections::VecDeque::new(),
                res: SimResource::new("lci.cq", transfer_ns),
                pushes: 0,
                pops: 0,
            }),
        })
    }

    /// Name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Push a completion entry from `core`; returns when the core is done.
    pub fn push(&self, sim: &mut Sim, core: usize, cost: &CostModel, req: Request) -> SimTime {
        let mut inner = self.inner.borrow_mut();
        let done = inner.res.access(sim.now(), core, cost.lci_cq_push);
        inner.q.push_back(req);
        inner.pushes += 1;
        sim.stats.bump("lci.cq_push");
        done
    }

    /// Pop one entry from `core`; returns the entry (if any) and when the
    /// core is done. An empty pop still costs (and still touches the
    /// shared cache line).
    pub fn pop(&self, sim: &mut Sim, core: usize, cost: &CostModel) -> (Option<Request>, SimTime) {
        let mut inner = self.inner.borrow_mut();
        let done = inner.res.access(sim.now(), core, cost.lci_cq_pop);
        let item = inner.q.pop_front();
        if item.is_some() {
            inner.pops += 1;
            sim.stats.bump("lci.cq_pop");
        }
        (item, done)
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.inner.borrow().q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pushes so far.
    pub fn pushes(&self) -> u64 {
        self.inner.borrow().pushes
    }
}

impl fmt::Debug for CompQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompQueue").field("name", &self.name).field("len", &self.len()).finish()
    }
}

/// A synchronizer: MPI-request-like completion object, but with the option
/// of multiple producers (`expected` signals before it trips).
pub struct Synchronizer {
    inner: RefCell<SyncInner>,
}

struct SyncInner {
    expected: u64,
    signaled: u64,
    items: Vec<Request>,
    res: SimResource,
}

impl Synchronizer {
    /// Create a synchronizer that trips after `expected` signals.
    pub fn new(expected: u64, transfer_ns: u64) -> Rc<Self> {
        Rc::new(Synchronizer {
            inner: RefCell::new(SyncInner {
                expected,
                signaled: 0,
                items: Vec::new(),
                res: SimResource::new("lci.sync", transfer_ns),
            }),
        })
    }

    /// Producer side: record one completion from `core`.
    pub fn signal(&self, sim: &mut Sim, core: usize, cost: &CostModel, req: Request) -> SimTime {
        let mut inner = self.inner.borrow_mut();
        let done = inner.res.access(sim.now(), core, cost.lci_sync_signal);
        inner.signaled += 1;
        debug_assert!(inner.signaled <= inner.expected, "synchronizer over-signaled");
        inner.items.push(req);
        sim.stats.bump("lci.sync_signal");
        done
    }

    /// Consumer side: poll whether all expected signals arrived.
    pub fn test(&self, sim: &mut Sim, core: usize, cost: &CostModel) -> (bool, SimTime) {
        let mut inner = self.inner.borrow_mut();
        let done = inner.res.access(sim.now(), core, cost.lci_sync_test);
        sim.stats.bump("lci.sync_test");
        (inner.signaled >= inner.expected, done)
    }

    /// Drain the collected completion entries (call once tripped).
    pub fn take_items(&self) -> Vec<Request> {
        std::mem::take(&mut self.inner.borrow_mut().items)
    }

    /// Reset to await `expected` fresh signals (synchronizers are reusable).
    pub fn reset(&self, expected: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.expected = expected;
        inner.signaled = 0;
        inner.items.clear();
    }

    /// Signals received so far.
    pub fn signaled(&self) -> u64 {
        self.inner.borrow().signaled
    }
}

impl fmt::Debug for Synchronizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Synchronizer")
            .field("expected", &inner.expected)
            .field("signaled", &inner.signaled)
            .finish()
    }
}

/// Handler invoked (via a deferred event, to avoid re-entering the device)
/// when an operation completes.
pub type CompHandler = Rc<dyn Fn(&mut Sim, Request)>;

/// Where an operation's completion is delivered. LCI lets users combine
/// any primitive with almost any completion mechanism.
#[derive(Clone)]
pub enum Comp {
    /// Push an entry onto a completion queue.
    Cq(Rc<CompQueue>),
    /// Signal a synchronizer.
    Sync(Rc<Synchronizer>),
    /// Invoke a function handler (deferred to a fresh event).
    Handler(CompHandler),
    /// Discard the completion.
    None,
}

impl fmt::Debug for Comp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Comp::Cq(cq) => write!(f, "Comp::Cq({})", cq.name()),
            Comp::Sync(_) => write!(f, "Comp::Sync"),
            Comp::Handler(_) => write!(f, "Comp::Handler"),
            Comp::None => write!(f, "Comp::None"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tag: u64) -> Request {
        Request {
            op: OpKind::Recv,
            rank: 0,
            tag,
            data: Bytes::new(),
            user: 0,
            arrived: SimTime::ZERO,
        }
    }

    #[test]
    fn cq_is_fifo() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let cq = CompQueue::new("t", 0);
        for t in 0..5 {
            cq.push(&mut sim, 0, &cost, req(t));
        }
        assert_eq!(cq.len(), 5);
        for t in 0..5 {
            let (item, _) = cq.pop(&mut sim, 0, &cost);
            assert_eq!(item.unwrap().tag, t);
        }
        assert!(cq.is_empty());
        assert_eq!(cq.pushes(), 5);
    }

    #[test]
    fn cq_empty_pop_returns_none_but_costs() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let cq = CompQueue::new("t", 0);
        let (item, done) = cq.pop(&mut sim, 0, &cost);
        assert!(item.is_none());
        assert!(done > sim.now() || done.as_nanos() >= cost.lci_cq_pop);
    }

    #[test]
    fn cq_cross_core_access_pays_transfer() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let cq = CompQueue::new("t", 500);
        let d0 = cq.push(&mut sim, 0, &cost, req(0));
        let (_, d1) = cq.pop(&mut sim, 1, &cost);
        // pop from another core: queueing behind push + transfer penalty
        assert!(d1 - d0 >= 500);
    }

    #[test]
    fn synchronizer_trips_after_expected_signals() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let sync = Synchronizer::new(3, 0);
        for i in 0..2 {
            sync.signal(&mut sim, 0, &cost, req(i));
            let (ok, _) = sync.test(&mut sim, 0, &cost);
            assert!(!ok, "must not trip early");
        }
        sync.signal(&mut sim, 0, &cost, req(2));
        let (ok, _) = sync.test(&mut sim, 0, &cost);
        assert!(ok);
        assert_eq!(sync.take_items().len(), 3);
    }

    #[test]
    fn synchronizer_reset_reuses() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let sync = Synchronizer::new(1, 0);
        sync.signal(&mut sim, 0, &cost, req(0));
        assert!(sync.test(&mut sim, 0, &cost).0);
        sync.reset(2);
        assert!(!sync.test(&mut sim, 0, &cost).0);
        assert_eq!(sync.signaled(), 0);
    }
}
