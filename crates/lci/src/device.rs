//! The LCI device: operation posting and the progress engine.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NodeId, Packet, PollOutcome};
use simcore::causal::{self, MarkKind};
use simcore::{CostModel, Sim, SimResource, SimTime, SimTryLock, TryAcquire};

use crate::comp::{Comp, CompQueue, Request};
use crate::config::DeviceConfig;
use crate::matching::{MatchTable, PostedRecv, UnexpectedMsg};
use crate::pool::{PacketHandle, PacketPool};
use crate::protocol::{OpKind, PacketKind, RdvRecv, RdvSend};
use crate::{Error, Result};

/// Result of one [`Device::progress`] call.
#[derive(Debug, Clone, Copy)]
pub enum ProgressOutcome {
    /// The caller obtained the progress engine.
    Ran {
        /// Packets handled in this call.
        handled: usize,
        /// When the calling core is done.
        cpu_done: SimTime,
        /// Earliest known future packet arrival (scheduling hint).
        next_arrival: Option<SimTime>,
    },
    /// Another thread holds the progress engine (try-lock failed). The
    /// caller spent only the failed-try cost and is free to do other work
    /// — the non-blocking behaviour that distinguishes LCI from the
    /// blocking `ucp_progress` lock.
    Busy {
        /// When the calling core is done (failed try).
        cpu_done: SimTime,
        /// When the current holder releases.
        free_at: SimTime,
    },
}

/// An LCI device: one per locality. All communication state of the
/// process lives here (packet pool, matching table, rendezvous state,
/// progress engine).
pub struct Device {
    rank: NodeId,
    /// Communication context this device maps to (0 unless the process
    /// replicates devices, the §7.2 extension).
    ctx: u8,
    fabric: Rc<RefCell<Fabric>>,
    cost: Rc<CostModel>,
    cfg: DeviceConfig,
    progress_lock: SimTryLock,
    /// Internal progress-engine counters/state (a contended cache line).
    progress_state: SimResource,
    matching: MatchTable,
    pool: PacketPool,
    rdv_send: HashMap<u64, RdvSend>,
    rdv_recv: HashMap<u64, RdvRecv>,
    next_op: u64,
    remote_cq: Option<Rc<CompQueue>>,
    last_progress_core: Option<usize>,
}

impl Device {
    /// Create a device for `rank` on `fabric`.
    pub fn new(
        rank: NodeId,
        fabric: Rc<RefCell<Fabric>>,
        cost: Rc<CostModel>,
        cfg: DeviceConfig,
    ) -> Self {
        let transfer = cost.cacheline_transfer;
        Device {
            rank,
            ctx: cfg.ctx,
            fabric,
            cfg: cfg.clone(),
            progress_lock: SimTryLock::new("lci.progress"),
            progress_state: SimResource::new("lci.progress_state", transfer),
            matching: MatchTable::new(transfer),
            pool: PacketPool::new(cfg.packet_pool_size, cfg.eager_threshold, transfer),
            rdv_send: HashMap::new(),
            rdv_recv: HashMap::new(),
            next_op: 1,
            remote_cq: None,
            last_progress_core: None,
            cost,
        }
    }

    /// This device's rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// The eager/rendezvous protocol threshold.
    pub fn eager_threshold(&self) -> usize {
        self.cfg.eager_threshold
    }

    /// The cost model used by this device.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Configure the completion queue that receives remote completions of
    /// dynamic puts. The current LCI only supports a pre-configured queue
    /// here — which is why even the `sync` parcelport variants keep a CQ
    /// for header messages (§3.2.2).
    pub fn set_remote_cq(&mut self, cq: Rc<CompQueue>) {
        self.remote_cq = Some(cq);
    }

    /// CPU time a caller should charge for an operation that failed with
    /// [`Error::Retry`].
    pub fn retry_cost(&self) -> u64 {
        self.cost.lci_op + self.cost.lci_packet_pool
    }

    /// Packets currently free in the pool (observability for tests).
    pub fn pool_available(&self) -> usize {
        self.pool.available()
    }

    /// Posted receives waiting in the matching table.
    pub fn posted_receives(&self) -> usize {
        self.matching.posted_len()
    }

    /// Unexpected messages waiting in the matching table.
    pub fn unexpected_messages(&self) -> usize {
        self.matching.unexpected_len()
    }

    /// In-flight rendezvous operations (both directions).
    pub fn rendezvous_in_flight(&self) -> usize {
        self.rdv_send.len() + self.rdv_recv.len()
    }

    fn fresh_op(&mut self) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        id
    }

    /// Deliver a completion from the progress engine or a posting path.
    fn signal(&self, sim: &mut Sim, core: usize, t: SimTime, comp: &Comp, req: Request) -> SimTime {
        match comp {
            Comp::Cq(cq) => cq.push(sim, core, &self.cost, req).max(t),
            Comp::Sync(s) => s.signal(sim, core, &self.cost, req).max(t),
            Comp::Handler(h) => {
                let h = h.clone();
                sim.schedule_at(t, move |sim| h(sim, req));
                t
            }
            Comp::None => t,
        }
    }

    /// Allocate a registered packet so the caller can assemble a message
    /// directly in an LCI buffer (saves one copy for eager messages).
    pub fn alloc_packet(&mut self, sim: &mut Sim, core: usize) -> Result<(PacketHandle, SimTime)> {
        let (h, done) = self.pool.get(sim, core, &self.cost);
        match h {
            Some(h) => Ok((h, done)),
            None => Err(Error::Retry),
        }
    }

    /// Post an eager (medium) two-sided send. Completes locally as soon
    /// as the payload is staged in a registered buffer.
    #[allow(clippy::too_many_arguments)] // mirrors the LCI C API
    pub fn post_sendm(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dst: NodeId,
        tag: u64,
        data: Bytes,
        comp: Comp,
        user: u64,
    ) -> Result<SimTime> {
        if data.len() > self.cfg.eager_threshold {
            return Err(Error::Invalid("payload exceeds eager threshold"));
        }
        let (h, t_pool) = self.pool.get(sim, core, &self.cost);
        if h.is_none() {
            return Err(Error::Retry);
        }
        let t = t_pool.max(at) + self.cost.lci_op + self.cost.memcpy(data.len());
        let len = data.len();
        let out = self.fabric.borrow_mut().send(
            sim,
            core,
            t,
            Packet {
                src: self.rank,
                dst,
                ctx: self.ctx,
                kind: PacketKind::Eager as u8,
                tag,
                imm: 0,
                data,
            },
        );
        let t = t.max(out.cpu_done);
        // NIC owns the buffer until the wire finishes serializing it.
        self.pool.put_at(out.deliver_at);
        sim.stats.bump("lci.sendm");
        sim.stats.add("lci.sendm_bytes", len as u64);
        let req = Request {
            op: OpKind::Send,
            rank: dst,
            tag,
            data: Bytes::new(),
            user,
            arrived: SimTime::ZERO,
        };
        Ok(self.signal(sim, core, t, &comp, req))
    }

    /// Post a two-sided receive (either protocol; the sender's choice of
    /// eager vs rendezvous is transparent to the receiver). Returns when
    /// the posting core is done.
    #[allow(clippy::too_many_arguments)] // mirrors the LCI C API
    pub fn post_recv(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        src: NodeId,
        tag: u64,
        comp: Comp,
        user: u64,
    ) -> SimTime {
        let recv = PostedRecv { src, tag, comp, user };
        let (outcome, t0) = self.matching.post_recv_at(sim, core, at, &self.cost, recv);
        let t = t0;
        match outcome {
            Ok(()) => t,
            Err((recv, msg)) if !msg.rts => {
                // Unexpected eager message already arrived: deliver now
                // (one extra copy out of the bounce buffer).
                let t = t + self.cost.memcpy(msg.data.len());
                sim.stats.bump("lci.recv_from_unexpected");
                let req = Request {
                    op: OpKind::Recv,
                    rank: msg.src,
                    tag: msg.tag,
                    data: msg.data,
                    user: recv.user,
                    arrived: msg.arrived,
                };
                self.signal(sim, core, t, &recv.comp, req)
            }
            Err((recv, msg)) => {
                // Unexpected RTS: the receive side is now ready — answer
                // with an RTR so the sender pushes the payload.
                self.start_rtr(sim, core, t, recv, msg)
            }
        }
    }

    /// Post a long (rendezvous) two-sided send: emits an RTS carrying the
    /// payload size; the payload moves when the RTR comes back.
    #[allow(clippy::too_many_arguments)] // mirrors the LCI C API
    pub fn post_sendl(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dst: NodeId,
        tag: u64,
        data: Bytes,
        comp: Comp,
        user: u64,
    ) -> Result<SimTime> {
        let op = self.fresh_op();
        let t = at.max(sim.now()) + self.cost.lci_op + self.cost.atomic_op;
        let size = data.len();
        self.rdv_send.insert(op, RdvSend { dst, tag, data, comp, user, one_sided: false });
        let out = self.fabric.borrow_mut().send(
            sim,
            core,
            t,
            Packet {
                src: self.rank,
                dst,
                ctx: self.ctx,
                kind: PacketKind::Rts as u8,
                tag,
                imm: op,
                data: Bytes::copy_from_slice(&(size as u64).to_le_bytes()),
            },
        );
        sim.stats.bump("lci.sendl");
        Ok(t.max(out.cpu_done))
    }

    /// Post a one-sided dynamic put: the target allocates the buffer on
    /// arrival and pushes a completion entry to its pre-configured remote
    /// completion queue. Small payloads go eager; large payloads use a
    /// rendezvous handshake.
    #[allow(clippy::too_many_arguments)] // mirrors the LCI C API
    pub fn post_putva(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dst: NodeId,
        tag: u64,
        data: Bytes,
        comp: Comp,
        user: u64,
    ) -> Result<SimTime> {
        if data.len() <= self.cfg.eager_threshold {
            let (h, t_pool) = self.pool.get(sim, core, &self.cost);
            if h.is_none() {
                return Err(Error::Retry);
            }
            let t = t_pool.max(at) + self.cost.lci_op + self.cost.memcpy(data.len());
            let out = self.fabric.borrow_mut().send(
                sim,
                core,
                t,
                Packet {
                    src: self.rank,
                    dst,
                    ctx: self.ctx,
                    kind: PacketKind::PutEager as u8,
                    tag,
                    imm: 0,
                    data,
                },
            );
            let t = t.max(out.cpu_done);
            self.pool.put_at(out.deliver_at);
            sim.stats.bump("lci.put_eager");
            let req = Request {
                op: OpKind::Put,
                rank: dst,
                tag,
                data: Bytes::new(),
                user,
                arrived: SimTime::ZERO,
            };
            Ok(self.signal(sim, core, t, &comp, req))
        } else {
            let op = self.fresh_op();
            let size = data.len();
            let t = at.max(sim.now()) + self.cost.lci_op + self.cost.atomic_op;
            self.rdv_send.insert(op, RdvSend { dst, tag, data, comp, user, one_sided: true });
            let out = self.fabric.borrow_mut().send(
                sim,
                core,
                t,
                Packet {
                    src: self.rank,
                    dst,
                    ctx: self.ctx,
                    kind: PacketKind::PutRts as u8,
                    tag,
                    imm: op,
                    data: Bytes::copy_from_slice(&(size as u64).to_le_bytes()),
                },
            );
            sim.stats.bump("lci.put_long");
            Ok(t.max(out.cpu_done))
        }
    }

    /// Variant of the eager put where the message was already assembled
    /// in the registered packet `_h` obtained from [`Device::alloc_packet`]
    /// — the copy into the bounce buffer is skipped (§3.2.1: "we directly
    /// assemble the header message in an LCI-allocated buffer so that, for
    /// eager messages, we save one memory copy").
    #[allow(clippy::too_many_arguments)] // mirrors the LCI C API
    pub fn post_putva_packet(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        _h: PacketHandle,
        dst: NodeId,
        tag: u64,
        data: Bytes,
        comp: Comp,
        user: u64,
    ) -> Result<SimTime> {
        if data.len() > self.cfg.eager_threshold {
            return Err(Error::Invalid("packet-based put must be eager-sized"));
        }
        let t = at.max(sim.now()) + self.cost.lci_op;
        let out = self.fabric.borrow_mut().send(
            sim,
            core,
            t,
            Packet {
                src: self.rank,
                dst,
                ctx: self.ctx,
                kind: PacketKind::PutEager as u8,
                tag,
                imm: 0,
                data,
            },
        );
        let t = t.max(out.cpu_done);
        self.pool.put_at(out.deliver_at);
        sim.stats.bump("lci.put_eager_zc");
        let req = Request {
            op: OpKind::Put,
            rank: dst,
            tag,
            data: Bytes::new(),
            user,
            arrived: SimTime::ZERO,
        };
        Ok(self.signal(sim, core, t, &comp, req))
    }

    /// Make progress: poll the NIC, handle up to `progress_burst` packets,
    /// advance rendezvous protocols, deliver completions.
    ///
    /// Thread-safe via try-lock: concurrent callers get
    /// [`ProgressOutcome::Busy`] immediately instead of blocking.
    pub fn progress(&mut self, sim: &mut Sim, core: usize) -> ProgressOutcome {
        let now = sim.now();
        match self.progress_lock.try_acquire(now, 0) {
            TryAcquire::Busy { free_at } => {
                sim.stats.bump("lci.progress_busy");
                telemetry::counter_add_at("lci.progress_busy", 1, now);
                ProgressOutcome::Busy { cpu_done: now + self.cost.atomic_op, free_at }
            }
            TryAcquire::Acquired { .. } => {
                let mut t = now + self.cost.atomic_op;
                // Re-warm the engine's working set when ownership migrates
                // between cores (the `mt` variants pay this constantly;
                // a pinned progress thread never does).
                if self.last_progress_core != Some(core) {
                    if self.last_progress_core.is_some() {
                        t += self.cost.lci_progress_migrate;
                        sim.stats.bump("lci.progress_migrated");
                    }
                    self.last_progress_core = Some(core);
                }
                let mut handled = 0;
                let mut next_arrival = None;
                for _ in 0..self.cfg.progress_burst {
                    let outcome =
                        self.fabric.borrow_mut().poll_ctx(sim, core, self.rank, self.ctx as usize);
                    match outcome {
                        PollOutcome::Empty { cpu_done, next_arrival: na } => {
                            t = t.max(cpu_done) + self.cost.lci_progress_empty;
                            next_arrival = na;
                            break;
                        }
                        PollOutcome::Packet { pkt, cpu_done, arrived } => {
                            t = t.max(cpu_done);
                            t = self.handle_packet(sim, core, t, pkt, arrived);
                            handled += 1;
                        }
                    }
                }
                self.progress_lock.extend(t);
                // The try-lock was taken with hold 0 and extended as work
                // accrued, so emit the real critical-section span here.
                causal::mark("lci.progress", MarkKind::Hold, now, t, 0);
                sim.stats.bump("lci.progress");
                telemetry::counter_add_at("lci.progress_polls", 1, t);
                telemetry::counter_add_at("lci.progress_handled", handled as u64, t);
                ProgressOutcome::Ran { handled, cpu_done: t, next_arrival }
            }
        }
    }

    /// Handle one arrived packet inside the progress engine. `arrived` is
    /// the wire-delivery instant reported by the NIC (observability only).
    fn handle_packet(
        &mut self,
        sim: &mut Sim,
        core: usize,
        t0: SimTime,
        pkt: Packet,
        arrived: SimTime,
    ) -> SimTime {
        // Touch the progress engine's shared state (internal counters).
        let t = self
            .progress_state
            .access(t0, core, self.cost.atomic_op)
            .max(t0 + self.cost.lci_packet_handle);
        let src = pkt.src;
        let tag = pkt.tag;
        match PacketKind::from_u8(pkt.kind) {
            PacketKind::Eager => {
                let msg = UnexpectedMsg {
                    src,
                    tag,
                    data: pkt.data,
                    rts: false,
                    imm: 0,
                    size: 0,
                    arrived,
                };
                let (outcome, tm) = self.matching.match_arrival(sim, core, &self.cost, msg);
                let t = t.max(tm);
                match outcome {
                    Ok((recv, msg)) => {
                        let t = t + self.cost.memcpy(msg.data.len());
                        let req = Request {
                            op: OpKind::Recv,
                            rank: src,
                            tag,
                            data: msg.data,
                            user: recv.user,
                            arrived,
                        };
                        self.signal(sim, core, t, &recv.comp, req)
                    }
                    Err(()) => t,
                }
            }
            PacketKind::PutEager => {
                let t = t + self.cost.lci_dyn_alloc + self.cost.memcpy(pkt.data.len());
                let req = Request {
                    op: OpKind::PutTarget,
                    rank: src,
                    tag,
                    data: pkt.data,
                    user: 0,
                    arrived,
                };
                let cq = self.remote_cq.clone().expect("remote CQ not configured for puts");
                cq.push(sim, core, &self.cost, req).max(t)
            }
            PacketKind::Rts => {
                let size = u64::from_le_bytes(pkt.data[..8].try_into().expect("RTS size")) as usize;
                let msg = UnexpectedMsg {
                    src,
                    tag,
                    data: Bytes::new(),
                    rts: true,
                    imm: pkt.imm,
                    size,
                    arrived,
                };
                let (outcome, tm) = self.matching.match_arrival(sim, core, &self.cost, msg);
                let t = t.max(tm);
                match outcome {
                    Ok((recv, msg)) => self.start_rtr(sim, core, t, recv, msg),
                    Err(()) => t,
                }
            }
            PacketKind::PutRts => {
                // One-sided: no matching — allocate and answer immediately.
                let size = u64::from_le_bytes(pkt.data[..8].try_into().expect("RTS size")) as usize;
                let t = t + self.cost.lci_dyn_alloc + self.cost.lci_rdv_ctrl;
                let op = self.fresh_op();
                self.rdv_recv.insert(
                    op,
                    RdvRecv { src, tag, comp: Comp::None, user: 0, size, one_sided: true },
                );
                let out = self.fabric.borrow_mut().send(
                    sim,
                    core,
                    t,
                    Packet {
                        src: self.rank,
                        dst: src,
                        ctx: self.ctx,
                        kind: PacketKind::PutRtr as u8,
                        tag: op,
                        imm: pkt.imm,
                        data: Bytes::new(),
                    },
                );
                t.max(out.cpu_done)
            }
            PacketKind::Rtr | PacketKind::PutRtr => {
                // `imm` carries our (sender-side) op id; `tag` carries the
                // receiver-side op id to echo in the payload packet.
                let state = self.rdv_send.remove(&pkt.imm).expect("RTR for unknown rendezvous op");
                let t = t + self.cost.lci_rdv_ctrl;
                let payload_kind =
                    if state.one_sided { PacketKind::PutLongData } else { PacketKind::LongData };
                let out = self.fabric.borrow_mut().send(
                    sim,
                    core,
                    t,
                    Packet {
                        src: self.rank,
                        dst: state.dst,
                        ctx: self.ctx,
                        kind: payload_kind as u8,
                        tag: state.tag,
                        imm: pkt.tag,
                        data: state.data,
                    },
                );
                let t = t.max(out.cpu_done);
                // Local completion: payload handed to the NIC (models the
                // RDMA write being posted from a registered region).
                let op = if state.one_sided { OpKind::Put } else { OpKind::Send };
                let req = Request {
                    op,
                    rank: state.dst,
                    tag: state.tag,
                    data: Bytes::new(),
                    user: state.user,
                    arrived: SimTime::ZERO,
                };
                self.signal(sim, core, t, &state.comp, req)
            }
            PacketKind::LongData | PacketKind::PutLongData => {
                let state =
                    self.rdv_recv.remove(&pkt.imm).expect("payload for unknown rendezvous op");
                debug_assert_eq!(state.size, pkt.data.len(), "RTS promised a different size");
                let t = t + self.cost.lci_rdv_ctrl;
                if state.one_sided {
                    let req = Request {
                        op: OpKind::PutTarget,
                        rank: src,
                        tag,
                        data: pkt.data,
                        user: 0,
                        arrived,
                    };
                    let cq = self.remote_cq.clone().expect("remote CQ not configured for puts");
                    cq.push(sim, core, &self.cost, req).max(t)
                } else {
                    let req = Request {
                        op: OpKind::Recv,
                        rank: src,
                        tag,
                        data: pkt.data,
                        user: state.user,
                        arrived,
                    };
                    self.signal(sim, core, t, &state.comp, req)
                }
            }
        }
    }

    /// Receiver side of the two-sided rendezvous: a posted receive met an
    /// RTS — register the receive buffer and tell the sender to push.
    fn start_rtr(
        &mut self,
        sim: &mut Sim,
        core: usize,
        t: SimTime,
        recv: PostedRecv,
        msg: UnexpectedMsg,
    ) -> SimTime {
        debug_assert!(msg.rts);
        let t = t + self.cost.lci_rdv_ctrl + self.cost.lci_dyn_alloc;
        let op = self.fresh_op();
        self.rdv_recv.insert(
            op,
            RdvRecv {
                src: msg.src,
                tag: msg.tag,
                comp: recv.comp,
                user: recv.user,
                size: msg.size,
                one_sided: false,
            },
        );
        let out = self.fabric.borrow_mut().send(
            sim,
            core,
            t,
            Packet {
                src: self.rank,
                dst: msg.src,
                ctx: self.ctx,
                kind: PacketKind::Rtr as u8,
                tag: op,
                imm: msg.imm,
                data: Bytes::new(),
            },
        );
        sim.stats.bump("lci.rtr_sent");
        t.max(out.cpu_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(eager: usize) -> (Sim, Rc<RefCell<Fabric>>, Device, Device, Rc<CompQueue>) {
        let sim = Sim::new(7);
        let cost = Rc::new(CostModel::default());
        let fabric = Rc::new(RefCell::new(Fabric::new(2, netsim::WireModel::expanse())));
        let cfg = DeviceConfig { eager_threshold: eager, ..DeviceConfig::default() };
        let mut d0 = Device::new(0, fabric.clone(), cost.clone(), cfg.clone());
        let mut d1 = Device::new(1, fabric.clone(), cost, cfg);
        let rcq0 = CompQueue::new("rcq0", 0);
        let rcq1 = CompQueue::new("rcq1", 0);
        d0.set_remote_cq(rcq0);
        d1.set_remote_cq(rcq1.clone());
        (sim, fabric, d0, d1, rcq1)
    }

    /// Drive both devices' progress until quiescent.
    fn drain(sim: &mut Sim, d0: &mut Device, d1: &mut Device) {
        for _ in 0..200 {
            sim.run_until(sim.now() + 10_000);
            let mut busy = false;
            for d in [&mut *d0, &mut *d1] {
                if let ProgressOutcome::Ran { handled, .. } = d.progress(sim, 0) {
                    busy |= handled > 0;
                }
            }
            if !busy
                && d0.rendezvous_in_flight() == 0
                && d1.rendezvous_in_flight() == 0
                && sim.events_pending() == 0
            {
                break;
            }
        }
    }

    #[test]
    fn eager_send_recv_roundtrip() {
        let (mut sim, _f, mut d0, mut d1, _rcq) = world(8192);
        let cq = CompQueue::new("user", 0);
        d1.post_recv(&mut sim, 0, SimTime::ZERO, 0, 42, Comp::Cq(cq.clone()), 555);
        d0.post_sendm(
            &mut sim,
            0,
            SimTime::ZERO,
            1,
            42,
            Bytes::from_static(b"hello"),
            Comp::None,
            0,
        )
        .unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        let (req, _) = cq.pop(&mut sim, 0, &CostModel::default());
        let req = req.expect("receive completed");
        assert_eq!(req.op, OpKind::Recv);
        assert_eq!(req.data.as_ref(), b"hello");
        assert_eq!(req.user, 555);
        assert_eq!(req.rank, 0);
    }

    #[test]
    fn eager_unexpected_then_recv() {
        let (mut sim, _f, mut d0, mut d1, _rcq) = world(8192);
        d0.post_sendm(
            &mut sim,
            0,
            SimTime::ZERO,
            1,
            9,
            Bytes::from_static(b"early"),
            Comp::None,
            0,
        )
        .unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        assert_eq!(d1.unexpected_messages(), 1);
        let cq = CompQueue::new("user", 0);
        d1.post_recv(&mut sim, 0, SimTime::ZERO, 0, 9, Comp::Cq(cq.clone()), 1);
        let (req, _) = cq.pop(&mut sim, 0, &CostModel::default());
        assert_eq!(req.unwrap().data.as_ref(), b"early");
        assert_eq!(d1.unexpected_messages(), 0);
    }

    #[test]
    fn long_send_recv_rendezvous() {
        let (mut sim, _f, mut d0, mut d1, _rcq) = world(64);
        let payload = Bytes::from(vec![7u8; 1000]); // above threshold
        let cq = CompQueue::new("user", 0);
        let scq = CompQueue::new("sender", 0);
        d1.post_recv(&mut sim, 0, SimTime::ZERO, 0, 5, Comp::Cq(cq.clone()), 2);
        d0.post_sendl(&mut sim, 0, SimTime::ZERO, 1, 5, payload.clone(), Comp::Cq(scq.clone()), 3)
            .unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        let (req, _) = cq.pop(&mut sim, 0, &CostModel::default());
        let req = req.expect("long receive completed");
        assert_eq!(req.data.len(), 1000);
        assert_eq!(req.data, payload);
        let (sreq, _) = scq.pop(&mut sim, 0, &CostModel::default());
        assert_eq!(sreq.expect("send completed").op, OpKind::Send);
        assert_eq!(d0.rendezvous_in_flight(), 0);
        assert_eq!(d1.rendezvous_in_flight(), 0);
    }

    #[test]
    fn long_send_before_recv_waits_for_match() {
        let (mut sim, _f, mut d0, mut d1, _rcq) = world(64);
        let payload = Bytes::from(vec![1u8; 500]);
        d0.post_sendl(&mut sim, 0, SimTime::ZERO, 1, 8, payload, Comp::None, 0).unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        // RTS is unexpected at the receiver; no payload moved yet.
        assert_eq!(d1.unexpected_messages(), 1);
        assert_eq!(d0.rendezvous_in_flight(), 1);
        let cq = CompQueue::new("user", 0);
        d1.post_recv(&mut sim, 0, SimTime::ZERO, 0, 8, Comp::Cq(cq.clone()), 0);
        drain(&mut sim, &mut d0, &mut d1);
        let (req, _) = cq.pop(&mut sim, 0, &CostModel::default());
        assert_eq!(req.expect("completed").data.len(), 500);
    }

    #[test]
    fn put_eager_lands_in_remote_cq() {
        let (mut sim, _f, mut d0, mut d1, rcq) = world(8192);
        d0.post_putva(
            &mut sim,
            0,
            SimTime::ZERO,
            1,
            77,
            Bytes::from_static(b"put!"),
            Comp::None,
            0,
        )
        .unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        let (req, _) = rcq.pop(&mut sim, 0, &CostModel::default());
        let req = req.expect("put delivered");
        assert_eq!(req.op, OpKind::PutTarget);
        assert_eq!(req.tag, 77);
        assert_eq!(req.data.as_ref(), b"put!");
    }

    #[test]
    fn put_long_lands_in_remote_cq() {
        let (mut sim, _f, mut d0, mut d1, rcq) = world(64);
        let payload = Bytes::from(vec![3u8; 4096]);
        d0.post_putva(&mut sim, 0, SimTime::ZERO, 1, 13, payload.clone(), Comp::None, 0).unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        let (req, _) = rcq.pop(&mut sim, 0, &CostModel::default());
        let req = req.expect("long put delivered");
        assert_eq!(req.op, OpKind::PutTarget);
        assert_eq!(req.data, payload);
        assert_eq!(d0.rendezvous_in_flight(), 0);
        assert_eq!(d1.rendezvous_in_flight(), 0);
    }

    #[test]
    fn progress_trylock_reports_busy() {
        let (mut sim, _f, mut d0, mut d1, _rcq) = world(8192);
        // Queue several packets so progress holds the engine for a while.
        for i in 0..4 {
            d0.post_putva(
                &mut sim,
                0,
                SimTime::ZERO,
                1,
                i,
                Bytes::from(vec![0u8; 4096]),
                Comp::None,
                0,
            )
            .unwrap();
        }
        sim.run_until(SimTime::from_millis(1));
        let first = d1.progress(&mut sim, 0);
        let second = d1.progress(&mut sim, 1);
        match (first, second) {
            (ProgressOutcome::Ran { handled, .. }, ProgressOutcome::Busy { free_at, .. }) => {
                assert!(handled > 0);
                assert!(free_at > sim.now());
            }
            other => panic!("expected Ran then Busy, got {other:?}"),
        }
    }

    #[test]
    fn sendm_rejects_oversized_payload() {
        let (mut sim, _f, mut d0, _d1, _rcq) = world(64);
        let err = d0
            .post_sendm(&mut sim, 0, SimTime::ZERO, 1, 0, Bytes::from(vec![0u8; 65]), Comp::None, 0)
            .unwrap_err();
        assert_eq!(err, Error::Invalid("payload exceeds eager threshold"));
    }

    #[test]
    fn pool_exhaustion_returns_retry() {
        let sim_cost = Rc::new(CostModel::default());
        let fabric = Rc::new(RefCell::new(Fabric::new(2, netsim::WireModel::expanse())));
        let cfg =
            DeviceConfig { eager_threshold: 8192, packet_pool_size: 2, progress_burst: 8, ctx: 0 };
        let mut d0 = Device::new(0, fabric, sim_cost, cfg);
        let mut sim = Sim::new(0);
        d0.post_sendm(&mut sim, 0, SimTime::ZERO, 1, 0, Bytes::from_static(b"a"), Comp::None, 0)
            .unwrap();
        d0.post_sendm(&mut sim, 0, SimTime::ZERO, 1, 1, Bytes::from_static(b"b"), Comp::None, 0)
            .unwrap();
        let err = d0.post_sendm(
            &mut sim,
            0,
            SimTime::ZERO,
            1,
            2,
            Bytes::from_static(b"c"),
            Comp::None,
            0,
        );
        assert_eq!(err.unwrap_err(), Error::Retry);
        assert!(d0.retry_cost() > 0);
        // Buffers come back once the NIC is done with them.
        sim.run_until(SimTime::from_millis(1));
        assert!(d0
            .post_sendm(&mut sim, 0, SimTime::ZERO, 1, 3, Bytes::from_static(b"d"), Comp::None, 0)
            .is_ok());
    }

    #[test]
    fn handler_completion_fires_as_event() {
        use std::cell::Cell;
        let (mut sim, _f, mut d0, mut d1, _rcq) = world(8192);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let handler: crate::comp::CompHandler = Rc::new(move |_sim, req| {
            assert_eq!(req.data.as_ref(), b"hh");
            f.set(true);
        });
        d1.post_recv(&mut sim, 0, SimTime::ZERO, 0, 1, Comp::Handler(handler), 0);
        d0.post_sendm(&mut sim, 0, SimTime::ZERO, 1, 1, Bytes::from_static(b"hh"), Comp::None, 0)
            .unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        sim.run();
        assert!(fired.get());
    }

    #[test]
    fn synchronizer_completion_counts() {
        let (mut sim, _f, mut d0, mut d1, _rcq) = world(8192);
        let sync = crate::comp::Synchronizer::new(2, 0);
        d1.post_recv(&mut sim, 0, SimTime::ZERO, 0, 1, Comp::Sync(sync.clone()), 0);
        d1.post_recv(&mut sim, 0, SimTime::ZERO, 0, 2, Comp::Sync(sync.clone()), 0);
        d0.post_sendm(&mut sim, 0, SimTime::ZERO, 1, 1, Bytes::from_static(b"x"), Comp::None, 0)
            .unwrap();
        let cost = CostModel::default();
        assert!(!sync.test(&mut sim, 0, &cost).0);
        d0.post_sendm(&mut sim, 0, SimTime::ZERO, 1, 2, Bytes::from_static(b"y"), Comp::None, 0)
            .unwrap();
        drain(&mut sim, &mut d0, &mut d1);
        assert!(sync.test(&mut sim, 0, &cost).0);
        assert_eq!(sync.take_items().len(), 2);
    }
}
