//! The two-sided tag-matching table: posted receives vs. arrived sends.
//!
//! Matching semantics follow MPI/LCI: an arrived message matches the
//! oldest posted receive with the same `(src, tag)`, where a receive may
//! be posted with [`ANY_SOURCE`]. Exact-source receives are searched
//! before wildcards.
//!
//! The table is one of the contention points the paper names: "they
//! contend on various resources such as ... the matching table" (§4.1).
//! Every insert/lookup serializes through a [`SimResource`], so the
//! `sendrecv` protocol — which must post receives and match sends — pays
//! measurably more than `putsendrecv`, reproducing the up-to-3.5x gap of
//! Fig. 2.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use netsim::NodeId;
use simcore::{CostModel, Sim, SimResource, SimTime};

use crate::comp::Comp;
use crate::protocol::ANY_SOURCE;

/// A receive waiting for a message.
#[derive(Debug)]
pub struct PostedRecv {
    /// Exact source or [`ANY_SOURCE`].
    pub src: NodeId,
    /// Tag to match.
    pub tag: u64,
    /// Completion to signal on match.
    pub comp: Comp,
    /// User context word.
    pub user: u64,
}

/// An arrived message no receive was posted for yet.
#[derive(Debug)]
pub struct UnexpectedMsg {
    /// Sender rank.
    pub src: NodeId,
    /// Tag.
    pub tag: u64,
    /// Eager payload, or empty for a rendezvous RTS.
    pub data: Bytes,
    /// True when this records an RTS (long protocol) rather than an eager
    /// message; `imm` then carries the sender's op id.
    pub rts: bool,
    /// Sender-side op id (rendezvous only).
    pub imm: u64,
    /// Payload size promised by the RTS.
    pub size: usize,
    /// Wire-arrival instant of the packet that carried this message
    /// (observability only).
    pub arrived: SimTime,
}

/// The matching table. Not thread-safe in host terms (the simulation is
/// single-threaded); *simulated* contention is captured by the embedded
/// resource.
pub struct MatchTable {
    posted: HashMap<(NodeId, u64), VecDeque<PostedRecv>>,
    unexpected: HashMap<(NodeId, u64), VecDeque<UnexpectedMsg>>,
    res: SimResource,
    posted_count: usize,
    unexpected_count: usize,
}

impl MatchTable {
    /// Create an empty table; `transfer_ns` models cross-core access.
    pub fn new(transfer_ns: u64) -> Self {
        MatchTable {
            posted: HashMap::new(),
            unexpected: HashMap::new(),
            res: SimResource::new("lci.matching", transfer_ns),
            posted_count: 0,
            unexpected_count: 0,
        }
    }

    /// Charge one table access from `core` with `service` ns.
    pub fn charge(&mut self, sim: &mut Sim, core: usize, service: u64) -> SimTime {
        self.res.access(sim.now(), core, service)
    }

    /// Like [`MatchTable::post_recv`] but starting no earlier than `at`
    /// (the caller's accumulated virtual time).
    pub fn post_recv_at(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        cost: &CostModel,
        recv: PostedRecv,
    ) -> (std::result::Result<(), (PostedRecv, UnexpectedMsg)>, SimTime) {
        let base = at.max(sim.now());
        let (outcome, done) = self.post_recv(sim, core, cost, recv);
        (outcome, done.max(base + cost.lci_match_insert))
    }

    /// Post a receive. If a matching unexpected message is already queued,
    /// the receive is *not* inserted — both sides are handed back so the
    /// caller can complete the operation immediately.
    pub fn post_recv(
        &mut self,
        sim: &mut Sim,
        core: usize,
        cost: &CostModel,
        recv: PostedRecv,
    ) -> (std::result::Result<(), (PostedRecv, UnexpectedMsg)>, SimTime) {
        let done = self.charge(sim, core, cost.lci_match_insert);
        if recv.src == ANY_SOURCE {
            // Wildcard: take the matching unexpected message from the
            // lowest-numbered source for determinism.
            let found = self
                .unexpected
                .iter()
                .filter(|((_, t), q)| *t == recv.tag && !q.is_empty())
                .map(|((s, _), _)| *s)
                .min();
            if let Some(src) = found {
                let q = self.unexpected.get_mut(&(src, recv.tag)).expect("key exists");
                let msg = q.pop_front().expect("non-empty");
                self.unexpected_count -= 1;
                sim.stats.bump("lci.match_unexpected_hit");
                return (Err((recv, msg)), done);
            }
        } else if let Some(q) = self.unexpected.get_mut(&(recv.src, recv.tag)) {
            if let Some(msg) = q.pop_front() {
                self.unexpected_count -= 1;
                sim.stats.bump("lci.match_unexpected_hit");
                return (Err((recv, msg)), done);
            }
        }
        self.posted_count += 1;
        self.posted.entry((recv.src, recv.tag)).or_default().push_back(recv);
        sim.stats.bump("lci.recv_posted");
        (Ok(()), done)
    }

    /// An eager message or RTS arrived: find the oldest matching posted
    /// receive (returned together with the message), or stash the message
    /// as unexpected.
    pub fn match_arrival(
        &mut self,
        sim: &mut Sim,
        core: usize,
        cost: &CostModel,
        msg: UnexpectedMsg,
    ) -> (std::result::Result<(PostedRecv, UnexpectedMsg), ()>, SimTime) {
        let done = self.charge(sim, core, cost.lci_match_lookup);
        // Exact-source receives first, then wildcard.
        for key in [(msg.src, msg.tag), (ANY_SOURCE, msg.tag)] {
            let hit = self.posted.get_mut(&key).and_then(|q| q.pop_front());
            if let Some(recv) = hit {
                self.posted_count -= 1;
                sim.stats.bump("lci.match_hit");
                return (Ok((recv, msg)), done);
            }
        }
        let extra = self.charge(sim, core, cost.lci_unexpected);
        self.unexpected_count += 1;
        sim.stats.bump("lci.unexpected");
        self.unexpected.entry((msg.src, msg.tag)).or_default().push_back(msg);
        (Err(()), extra)
    }

    /// Number of posted receives waiting.
    pub fn posted_len(&self) -> usize {
        self.posted_count
    }

    /// Number of unexpected messages waiting.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv(src: NodeId, tag: u64) -> PostedRecv {
        PostedRecv { src, tag, comp: Comp::None, user: 0 }
    }

    fn msg(src: NodeId, tag: u64) -> UnexpectedMsg {
        UnexpectedMsg {
            src,
            tag,
            data: Bytes::from_static(b"x"),
            rts: false,
            imm: 0,
            size: 1,
            arrived: SimTime::ZERO,
        }
    }

    #[test]
    fn arrival_matches_posted_receive() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(0);
        let _ = t.post_recv(&mut sim, 0, &cost, recv(3, 7));
        let (m, _) = t.match_arrival(&mut sim, 0, &cost, msg(3, 7));
        let (r, m) = m.unwrap();
        assert_eq!(r.src, 3);
        assert_eq!(m.data.as_ref(), b"x");
        assert_eq!(t.posted_len(), 0);
    }

    #[test]
    fn unmatched_arrival_goes_unexpected_then_matches() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(0);
        let (m, _) = t.match_arrival(&mut sim, 0, &cost, msg(2, 9));
        assert!(m.is_err());
        assert_eq!(t.unexpected_len(), 1);
        let (u, _) = t.post_recv(&mut sim, 0, &cost, recv(2, 9));
        let (r, m) = u.unwrap_err();
        assert_eq!(r.src, 2);
        assert_eq!(m.src, 2);
        assert_eq!(t.unexpected_len(), 0);
        assert_eq!(t.posted_len(), 0);
    }

    #[test]
    fn wrong_tag_does_not_match() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(0);
        let _ = t.post_recv(&mut sim, 0, &cost, recv(2, 1));
        let (m, _) = t.match_arrival(&mut sim, 0, &cost, msg(2, 2));
        assert!(m.is_err());
        assert_eq!(t.posted_len(), 1);
        assert_eq!(t.unexpected_len(), 1);
    }

    #[test]
    fn wildcard_receive_matches_any_source() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(0);
        let _ = t.post_recv(&mut sim, 0, &cost, recv(ANY_SOURCE, 0));
        let (m, _) = t.match_arrival(&mut sim, 0, &cost, msg(5, 0));
        assert!(m.is_ok());
    }

    #[test]
    fn wildcard_post_drains_unexpected() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(0);
        let _ = t.match_arrival(&mut sim, 0, &cost, msg(4, 0));
        let (u, _) = t.post_recv(&mut sim, 0, &cost, recv(ANY_SOURCE, 0));
        assert_eq!(u.unwrap_err().1.src, 4);
    }

    #[test]
    fn per_key_fifo_order() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(0);
        for user in 0..3 {
            let mut r = recv(1, 1);
            r.user = user;
            let _ = t.post_recv(&mut sim, 0, &cost, r);
        }
        for expect in 0..3 {
            let (m, _) = t.match_arrival(&mut sim, 0, &cost, msg(1, 1));
            assert_eq!(m.unwrap().0.user, expect);
        }
    }

    #[test]
    fn exact_receive_preferred_over_wildcard() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(0);
        let mut wild = recv(ANY_SOURCE, 3);
        wild.user = 111;
        let mut exact = recv(6, 3);
        exact.user = 222;
        let _ = t.post_recv(&mut sim, 0, &cost, wild);
        let _ = t.post_recv(&mut sim, 0, &cost, exact);
        let (m, _) = t.match_arrival(&mut sim, 0, &cost, msg(6, 3));
        assert_eq!(m.unwrap().0.user, 222);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Conservation: every receive is eventually satisfiable by
            /// exactly one message and vice versa — no matches are lost
            /// or duplicated under any interleaving of posts and arrivals.
            #[test]
            fn posts_and_arrivals_conserve(
                ops in proptest::collection::vec((any::<bool>(), 0usize..3, 0u64..3), 1..200)
            ) {
                let mut sim = Sim::new(0);
                let cost = CostModel::default();
                let mut t = MatchTable::new(0);
                let mut matched = 0usize;
                let mut posts = 0usize;
                let mut arrivals = 0usize;
                for (is_post, src, tag) in ops {
                    if is_post {
                        posts += 1;
                        let r = PostedRecv { src, tag, comp: Comp::None, user: 0 };
                        if t.post_recv(&mut sim, 0, &cost, r).0.is_err() {
                            matched += 1;
                        }
                    } else {
                        arrivals += 1;
                        let m = UnexpectedMsg {
                            src,
                            tag,
                            data: Bytes::new(),
                            rts: false,
                            imm: 0,
                            size: 0,
                            arrived: SimTime::ZERO,
                        };
                        if t.match_arrival(&mut sim, 0, &cost, m).0.is_ok() {
                            matched += 1;
                        }
                    }
                }
                prop_assert_eq!(t.posted_len() + matched, posts, "receive conservation");
                prop_assert_eq!(t.unexpected_len() + matched, arrivals, "message conservation");
            }
        }
    }

    #[test]
    fn contended_table_serializes() {
        let mut sim = Sim::new(0);
        let cost = CostModel::default();
        let mut t = MatchTable::new(400);
        let (_, d0) = t.post_recv(&mut sim, 0, &cost, recv(1, 1));
        let (_, d1) = t.post_recv(&mut sim, 1, &cost, recv(1, 2));
        assert!(d1 - d0 >= 400, "cross-core table access pays transfer");
    }
}
