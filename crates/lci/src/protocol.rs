//! Wire-protocol constants and in-flight operation state.

use bytes::Bytes;
use netsim::NodeId;

use crate::comp::Comp;

/// Wildcard source rank for receives (matches any sender).
pub const ANY_SOURCE: NodeId = usize::MAX;

/// Packet kinds used by the LCI device on the simulated wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketKind {
    /// Eager two-sided medium message; consumed by a matching receive.
    Eager = 1,
    /// Eager one-sided dynamic put; buffer allocated at target, entry
    /// pushed to the target's pre-configured remote completion queue.
    PutEager = 2,
    /// Rendezvous request-to-send (two-sided long protocol).
    Rts = 3,
    /// Rendezvous ready-to-receive (carries the matched op id).
    Rtr = 4,
    /// Rendezvous payload (models the RDMA write + completion imm).
    LongData = 5,
    /// Rendezvous request-to-send for a long dynamic put.
    PutRts = 6,
    /// Rendezvous ready-to-receive for a long dynamic put.
    PutRtr = 7,
    /// Rendezvous payload for a long dynamic put.
    PutLongData = 8,
}

impl PacketKind {
    /// Decode from the wire byte; panics on garbage (the fabric is
    /// reliable, so garbage means a programming error).
    pub fn from_u8(x: u8) -> PacketKind {
        match x {
            1 => PacketKind::Eager,
            2 => PacketKind::PutEager,
            3 => PacketKind::Rts,
            4 => PacketKind::Rtr,
            5 => PacketKind::LongData,
            6 => PacketKind::PutRts,
            7 => PacketKind::PutRtr,
            8 => PacketKind::PutLongData,
            other => panic!("unknown LCI packet kind {other}"),
        }
    }
}

/// What kind of user-visible operation completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A medium or long send completed locally.
    Send,
    /// A medium or long receive completed with data.
    Recv,
    /// A put completed locally (source side).
    Put,
    /// A put landed at the target (remote-completion entry).
    PutTarget,
}

/// Sender-side state of an in-flight rendezvous send (two-sided long or
/// long put), keyed by op id; kept until the RTR arrives.
#[derive(Debug)]
pub struct RdvSend {
    /// Destination rank.
    pub dst: NodeId,
    /// User tag.
    pub tag: u64,
    /// Payload to transfer once the target is ready.
    pub data: Bytes,
    /// Completion to signal when the payload has been handed to the NIC.
    pub comp: Comp,
    /// User context propagated into the completion entry.
    pub user: u64,
    /// True when this is a one-sided long put (completion at the target
    /// goes to the remote completion queue, not a matched receive).
    pub one_sided: bool,
}

/// Receiver-side state of an in-flight rendezvous receive, keyed by op id;
/// created when the RTS is matched, resolved when the payload arrives.
#[derive(Debug)]
pub struct RdvRecv {
    /// Source rank.
    pub src: NodeId,
    /// User tag.
    pub tag: u64,
    /// Completion to signal when the payload lands.
    pub comp: Comp,
    /// User context propagated into the completion entry.
    pub user: u64,
    /// Expected payload size (from the RTS), for buffer allocation.
    pub size: usize,
    /// True when the payload should complete to the device's remote
    /// completion queue (long dynamic put).
    pub one_sided: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_kind_roundtrip() {
        for k in [
            PacketKind::Eager,
            PacketKind::PutEager,
            PacketKind::Rts,
            PacketKind::Rtr,
            PacketKind::LongData,
            PacketKind::PutRts,
            PacketKind::PutRtr,
            PacketKind::PutLongData,
        ] {
            assert_eq!(PacketKind::from_u8(k as u8), k);
        }
    }

    #[test]
    #[should_panic(expected = "unknown LCI packet kind")]
    fn garbage_kind_panics() {
        PacketKind::from_u8(99);
    }
}
